"""Unit tests for frame stitching and renormalization."""

import numpy as np
import pytest

from repro.core.stitching import (
    estimate_ratio,
    naive_concatenation,
    stitch_frames,
)
from repro.errors import StitchingError
from repro.timeutil import TimeWindow, utc
from repro.trends.records import TimeFrameRequest, TimeFrameResponse
from repro.trends.sampling import index_frame


def _hours(count):
    from datetime import timedelta

    return timedelta(hours=count)


def frame(start, values, geo="US-TX", term="Internet outage"):
    """Build a response whose raw values are indexed GT-style."""
    values = np.asarray(values)
    window = TimeWindow(start, start + _hours(len(values)))
    request = TimeFrameRequest(term=term, geo=geo, window=window)
    return TimeFrameResponse(
        request=request,
        values=index_frame(values),
        rising=(),
        sample_round=0,
    )


def make_signal(hours: int, seed: int = 0) -> np.ndarray:
    """A sparse synthetic truth: baseline blips plus two big spikes."""
    rng = np.random.default_rng(seed)
    signal = np.where(rng.random(hours) < 0.3, rng.integers(3, 8, hours), 0).astype(
        float
    )
    signal[hours // 4] = 60.0
    signal[hours // 2] = 120.0
    return signal


def split_into_frames(signal: np.ndarray, frame_hours: int, overlap: int):
    start = utc(2021, 1, 1)
    frames = []
    position = 0
    while position + frame_hours < signal.size:
        frames.append(
            frame(start + _hours(position), signal[position : position + frame_hours])
        )
        position += frame_hours - overlap
    frames.append(frame(start + _hours(signal.size - frame_hours), signal[-frame_hours:]))
    return frames


class TestEstimateRatio:
    def test_exact_scale_recovered(self):
        truth = np.array([10.0, 20.0, 0.0, 5.0])
        ratio = estimate_ratio(truth, truth * 4.0)
        assert ratio == pytest.approx(0.25, rel=0.05)

    def test_silent_overlap_returns_none(self):
        assert estimate_ratio(np.zeros(5), np.zeros(5)) is None

    def test_one_sided_silence_is_bounded(self):
        ratio = estimate_ratio(np.zeros(5), np.full(5, 100.0))
        assert 0 < ratio < 0.1

    def test_clamped(self):
        ratio = estimate_ratio(np.full(5, 1e6), np.full(5, 1e-6))
        assert ratio <= 100.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(StitchingError):
            estimate_ratio(np.zeros(3), np.zeros(4))

    def test_empty_overlap_raises(self):
        with pytest.raises(StitchingError):
            estimate_ratio(np.zeros(0), np.zeros(0))


class TestStitchFrames:
    def test_recovers_relative_spike_heights(self):
        """The whole point of stitching: the 120-spike must come out
        about twice the 60-spike even though each maxed its own frame."""
        signal = make_signal(600)
        frames = split_into_frames(signal, frame_hours=168, overlap=48)
        timeline, report = stitch_frames(frames)
        i_small = int(600 // 4)
        i_big = int(600 // 2)
        measured = timeline.values[i_big] / timeline.values[i_small]
        assert measured == pytest.approx(2.0, rel=0.35)
        assert report.frames == len(frames)

    def test_output_covers_full_span(self):
        signal = make_signal(600)
        frames = split_into_frames(signal, 168, 48)
        timeline, _ = stitch_frames(frames)
        assert len(timeline) == 600
        assert timeline.start == utc(2021, 1, 1)

    def test_renormalized_to_100(self):
        signal = make_signal(600)
        frames = split_into_frames(signal, 168, 48)
        timeline, _ = stitch_frames(frames)
        assert timeline.peak_value == pytest.approx(100.0)

    def test_no_renormalize_option(self):
        signal = make_signal(400)
        frames = split_into_frames(signal, 168, 48)
        timeline, _ = stitch_frames(frames, renormalize=False)
        assert timeline.values[: 168].max() == 100.0  # first frame kept as-is

    def test_zeros_preserved(self):
        """Privacy zeros must survive stitching exactly (the detector's
        walk rules depend on them)."""
        signal = make_signal(400)
        frames = split_into_frames(signal, 168, 48)
        timeline, _ = stitch_frames(frames)
        np.testing.assert_array_equal(timeline.values == 0, signal == 0)

    def test_single_frame(self):
        frames = [frame(utc(2021, 1, 1), make_signal(168))]
        timeline, report = stitch_frames(frames)
        assert len(timeline) == 168
        assert report.ratios == ()

    def test_empty_raises(self):
        with pytest.raises(StitchingError):
            stitch_frames([])

    def test_mixed_geo_raises(self):
        a = frame(utc(2021, 1, 1), make_signal(168))
        b = frame(utc(2021, 1, 7), make_signal(168), geo="US-CA")
        with pytest.raises(StitchingError):
            stitch_frames([a, b])

    def test_disjoint_frames_raise(self):
        a = frame(utc(2021, 1, 1), make_signal(168))
        b = frame(utc(2021, 2, 1), make_signal(168))
        with pytest.raises(StitchingError):
            stitch_frames([a, b])

    def test_all_silent_frames(self):
        zero = np.zeros(168)
        frames = [
            frame(utc(2021, 1, 1), zero),
            frame(utc(2021, 1, 7), zero),
        ]
        timeline, report = stitch_frames(frames)
        assert timeline.peak_value == 0.0
        assert report.carried_ratios == 1

    def test_contained_frame_skipped(self):
        signal = make_signal(200)
        outer = frame(utc(2021, 1, 1), signal[:168])
        inner = frame(utc(2021, 1, 2), signal[24:96])
        timeline, _ = stitch_frames([outer, inner])
        assert len(timeline) == 168


class TestNaiveConcatenation:
    def test_misses_relative_scale(self):
        """The ablation baseline: naive concatenation cannot recover the
        2:1 ratio between the spikes (both read ~100)."""
        signal = make_signal(600)
        frames = split_into_frames(signal, 168, 48)
        timeline = naive_concatenation(frames)
        i_small, i_big = 150, 300
        ratio = timeline.values[i_big] / timeline.values[i_small]
        assert ratio == pytest.approx(1.0, rel=0.3)

    def test_covers_span(self):
        signal = make_signal(600)
        frames = split_into_frames(signal, 168, 48)
        assert len(naive_concatenation(frames)) == 600

    def test_empty_raises(self):
        with pytest.raises(StitchingError):
            naive_concatenation([])
