"""Unit tests for ASCII report rendering."""

import numpy as np

from repro.analysis.reporting import (
    paper_vs_measured,
    render_bars,
    render_cdf,
    render_table,
    render_timeline,
)


class TestRenderTable:
    def test_headers_and_alignment(self):
        text = render_table(
            ("state", "duration"), [("TX", 45), ("CA", 3)], title="Impact"
        )
        lines = text.splitlines()
        assert lines[0] == "Impact"
        assert "state" in lines[1]
        assert "TX" in lines[3]
        # Columns align: every row has the separator at the same offset.
        offset = lines[1].index("duration")
        assert lines[3][offset - 2 : offset] == "  "

    def test_wide_cells_stretch_columns(self):
        text = render_table(("a",), [("a-very-long-value",)])
        assert "a-very-long-value" in text

    def test_empty_rows(self):
        text = render_table(("x", "y"), [])
        assert "x" in text


class TestRenderCdf:
    def test_contains_sampled_points(self):
        xs = np.arange(1, 101)
        ys = xs / 100.0
        text = render_cdf(xs, ys, "hours", "fraction", title="durations")
        assert "durations" in text
        assert "100.0%" in text

    def test_empty(self):
        text = render_cdf(np.array([]), np.array([]), "x", "y")
        assert "(empty)" in text


class TestRenderBars:
    def test_bar_lengths_proportional(self):
        text = render_bars(["a", "b"], [1.0, 0.5])
        lines = text.splitlines()
        assert lines[0].count("#") == 2 * lines[1].count("#")

    def test_percent_formatting(self):
        text = render_bars(["Mon."], [0.152])
        assert "15.2%" in text


class TestRenderTimeline:
    def test_peak_column_full_height(self):
        values = np.zeros(50)
        values[25] = 100.0
        text = render_timeline(values, height=5)
        lines = text.splitlines()
        assert lines[0][25] == "|"

    def test_pools_wide_series(self):
        values = np.zeros(1000)
        values[990] = 50.0
        text = render_timeline(values, width=80, height=4)
        assert "|" in text  # the spike survives max-pooling

    def test_flat_series(self):
        assert "(flat)" in render_timeline(np.zeros(10))

    def test_empty_series(self):
        assert "(empty)" in render_timeline(np.array([]))


class TestPaperVsMeasured:
    def test_three_columns(self):
        text = paper_vs_measured(
            [("total spikes", 49189, 8808), ("top-10 share", "51%", "55%")]
        )
        assert "paper" in text
        assert "measured" in text
        assert "49189" in text
