"""Unit tests for the user search-behaviour model."""

import numpy as np
import pytest

from repro.timeutil import TimeWindow, utc
from repro.world.behavior import (
    DEFAULT_BEHAVIOR,
    diurnal_curve,
    event_boost,
    interest_shape,
    local_diurnal,
    response_modulation,
    term_baseline_per_hour,
)
from repro.world.events import Cause, OutageEvent, StateImpact


@pytest.fixture()
def event():
    return OutageEvent(
        event_id="evt",
        name="test",
        cause=Cause.ISP,
        impacts=(StateImpact("TX", utc(2021, 2, 15, 10), 6, 4.0),),
        terms=("Verizon",),
    )


class TestDiurnal:
    def test_shape(self):
        curve = diurnal_curve()
        assert curve.shape == (24,)
        assert curve.max() == pytest.approx(1.0)
        assert curve.min() > 0.0

    def test_evening_peak(self):
        curve = diurnal_curve()
        assert int(np.argmax(curve)) in (19, 20, 21)
        assert curve[4] < 0.4  # deep night is quiet

    def test_local_diurnal_respects_timezone(self):
        window = TimeWindow(utc(2021, 6, 1), utc(2021, 6, 2))
        east = local_diurnal("NY", window)
        west = local_diurnal("CA", window)
        # California's curve is New York's shifted by three hours.
        np.testing.assert_allclose(east[:-3], west[3:])

    def test_handles_dst_transition(self):
        # US spring-forward 2021: March 14.  Must not raise and must
        # produce one value per UTC hour.
        window = TimeWindow(utc(2021, 3, 13), utc(2021, 3, 16))
        values = local_diurnal("NY", window)
        assert values.shape == (72,)


class TestInterestShape:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            interest_shape(0)

    def test_peak_is_one(self):
        for hours in (1, 2, 5, 45):
            assert interest_shape(hours).max() == pytest.approx(1.0)

    def test_length_includes_tail(self):
        assert interest_shape(5).size == 8  # 5 body + 3 tail

    def test_body_decay_stays_above_half(self):
        """During the outage the per-hour ratio must exceed 0.5 so the
        detector's forward walk does not end the spike early."""
        shape = interest_shape(12)
        body = shape[1:12]
        ratios = body[1:] / body[:-1]
        assert (ratios > 0.5).all()

    def test_tail_collapses_below_half(self):
        """After the outage the drop must trigger the half-drop rule."""
        shape = interest_shape(8)
        assert shape[8] / shape[7] < 0.5

    def test_single_hour_spike(self):
        shape = interest_shape(1)
        assert shape[0] == 1.0
        assert shape[1] < 0.5


class TestEventBoost:
    def test_boost_for_tracker(self, event):
        window = TimeWindow(utc(2021, 2, 14), utc(2021, 2, 18))
        boost = event_boost(event, "Internet outage", "TX", window)
        assert boost is not None
        # Impact onset is 34 hours into the window; the shape peaks on
        # its second block.
        assert int(np.argmax(boost)) in (34, 35)
        assert boost.max() == pytest.approx(
            4.0 * DEFAULT_BEHAVIOR.unit_boost_volume
        )

    def test_boost_for_associated_term_is_scaled(self, event):
        window = TimeWindow(utc(2021, 2, 14), utc(2021, 2, 18))
        tracker = event_boost(event, "Internet outage", "TX", window)
        verizon = event_boost(event, "Verizon", "TX", window)
        assert verizon.max() < tracker.max()
        assert verizon.max() > 0

    def test_no_boost_for_unrelated_term(self, event):
        window = TimeWindow(utc(2021, 2, 14), utc(2021, 2, 18))
        assert event_boost(event, "Netflix", "TX", window) is None

    def test_no_boost_for_other_state(self, event):
        window = TimeWindow(utc(2021, 2, 14), utc(2021, 2, 18))
        assert event_boost(event, "Internet outage", "CA", window) is None

    def test_no_boost_outside_window(self, event):
        window = TimeWindow(utc(2021, 3, 1), utc(2021, 3, 2))
        assert event_boost(event, "Internet outage", "TX", window) is None

    def test_boost_clipped_at_window_edges(self, event):
        # Window starts mid-event: the boost must align correctly.
        window = TimeWindow(utc(2021, 2, 15, 12), utc(2021, 2, 16))
        boost = event_boost(event, "Internet outage", "TX", window)
        full = event_boost(
            event,
            "Internet outage",
            "TX",
            TimeWindow(utc(2021, 2, 15), utc(2021, 2, 16)),
        )
        np.testing.assert_allclose(boost, full[12:])


class TestBaselines:
    def test_baseline_scales_with_population(self):
        assert term_baseline_per_hour("Internet outage", "CA") > (
            term_baseline_per_hour("Internet outage", "WY") * 20
        )

    def test_noise_terms_dwarf_tracker(self):
        assert term_baseline_per_hour("Weather", "TX") > (
            term_baseline_per_hour("Internet outage", "TX") * 10
        )

    def test_response_modulation_bounded(self):
        window = TimeWindow(utc(2021, 1, 1), utc(2021, 1, 3))
        values = response_modulation("TX", window)
        assert values.min() >= DEFAULT_BEHAVIOR.night_response_floor
        assert values.max() <= 1.0
