"""Tests for ground-truth validation and SIFT/ANT characterization."""

import pytest

from repro.analysis import validate_study
from repro.ant import AntDataset, characterize
from repro.core.spikes import Spike, SpikeSet
from repro.timeutil import utc
from repro.world.events import Cause, OutageEvent, StateImpact
from repro.world.scenarios import Scenario, ScenarioConfig


def lab_scenario(events) -> Scenario:
    config = ScenarioConfig(
        start=utc(2021, 4, 1),
        end=utc(2021, 5, 1),
        background_scale=0.0,
        include_headline_events=False,
    )
    return Scenario(config, tuple(events))


def event(state="TX", hour=12, hours=5, intensity=10.0, cause=Cause.ISP,
          terms=("Verizon",), event_id="lab-1"):
    return OutageEvent(
        event_id=event_id,
        name="lab event",
        cause=cause,
        impacts=(StateImpact(state, utc(2021, 4, 10, hour), hours, intensity),),
        terms=terms,
    )


def spike(state="TX", start_hour=12, duration=5, magnitude=50.0, annotations=()):
    from datetime import timedelta

    start = utc(2021, 4, 10, start_hour)
    return Spike(
        term="Internet outage",
        geo=f"US-{state}",
        start=start,
        peak=start + timedelta(hours=min(1, duration - 1)),
        end=start + timedelta(hours=duration - 1),
        magnitude=magnitude,
        annotations=annotations,
    )


class TestValidateStudy:
    def test_perfect_detection(self):
        scenario = lab_scenario([event()])
        spikes = SpikeSet([spike(annotations=("Verizon",))])
        report = validate_study(spikes, scenario)
        assert report.recall == 1.0
        assert report.precision == 1.0
        assert report.annotation_accuracy() == 1.0
        assert report.mean_absolute_duration_error == 0.0

    def test_missed_impact(self):
        scenario = lab_scenario([event()])
        report = validate_study(SpikeSet([]), scenario)
        assert report.recall == 0.0

    def test_noise_spike_hurts_precision(self):
        scenario = lab_scenario([event()])
        noise = spike(state="WY", start_hour=2, duration=1)
        spikes = SpikeSet([spike(annotations=("Verizon",)), noise])
        report = validate_study(spikes, scenario)
        assert report.precision == pytest.approx(0.5)
        assert report.recall == 1.0

    def test_duration_error_measured(self):
        scenario = lab_scenario([event(hours=5)])
        spikes = SpikeSet([spike(duration=8)])
        report = validate_study(spikes, scenario)
        assert report.mean_absolute_duration_error == pytest.approx(3.0)

    def test_spike_in_wrong_state_does_not_match(self):
        scenario = lab_scenario([event(state="TX")])
        spikes = SpikeSet([spike(state="CA")])
        report = validate_study(spikes, scenario)
        assert report.recall == 0.0
        assert report.precision == 0.0

    def test_recall_by_intensity(self):
        strong = event(intensity=20.0, event_id="lab-strong")
        weak = event(state="CA", intensity=1.8, event_id="lab-weak")
        scenario = lab_scenario([strong, weak])
        spikes = SpikeSet([spike()])  # only the strong one found
        report = validate_study(spikes, scenario)
        assert report.recall == pytest.approx(0.5)
        assert report.recall_above_intensity(10.0) == 1.0

    def test_annotation_accuracy_ignores_termless_events(self):
        termless = event(cause=Cause.OTHER, terms=(), event_id="lab-other")
        scenario = lab_scenario([termless])
        spikes = SpikeSet([spike(annotations=("Weather",))])
        report = validate_study(spikes, scenario)
        assert report.annotation_accuracy() == 0.0  # nothing relevant

    def test_end_to_end_recall_on_pipeline_output(self, small_env, mini_study):
        """The real pipeline must recover most strong ground-truth
        impacts in the states it studied."""
        from tests.conftest import MINI_GEOS

        states = {geo.removeprefix("US-") for geo in MINI_GEOS}
        scenario = small_env.scenario
        relevant = [
            e for e in scenario.events if set(e.states) & states
        ]
        assert relevant
        report = validate_study(mini_study.spikes, scenario)
        # Only impacts within studied states count for this check.
        studied = [
            m for m in report.matches if m.impact.state in states
        ]
        strong = [m for m in studied if m.impact.intensity >= 5.0]
        detected = sum(1 for m in strong if m.detected)
        assert detected / len(strong) > 0.8


class TestCharacterize:
    def test_three_way_split(self):
        power = event(
            cause=Cause.POWER_WEATHER,
            intensity=40.0,
            hours=12,
            terms=("Power outage",),
            event_id="lab-power",
        )
        mobile = event(
            state="CA",
            cause=Cause.MOBILE,
            intensity=12.0,
            hours=8,
            terms=("T-Mobile",),
            event_id="lab-mobile",
        )
        scenario = lab_scenario([power, mobile])
        dataset = AntDataset.build(scenario)
        spikes = SpikeSet(
            [
                spike(state="TX", duration=12, magnitude=90.0),
                spike(state="CA", duration=8, magnitude=60.0),
            ]
        )
        report = characterize(spikes, dataset, scenario, top_spikes=10)
        both_states = {s.state for s in report.seen_by_both}
        only_states = {s.state for s in report.sift_only}
        assert "TX" in both_states  # power outage: ANT sees it
        assert "CA" in only_states  # mobile outage: SIFT-only
        assert report.sift_only_causes["mobile"] == 1
        assert 0.0 <= report.sift_only_share <= 1.0

    def test_ant_only_counts_unsensed_episodes(self):
        power = event(
            cause=Cause.POWER_WEATHER,
            intensity=40.0,
            hours=12,
            terms=("Power outage",),
        )
        scenario = lab_scenario([power])
        dataset = AntDataset.build(scenario)
        # SIFT saw nothing at all: the darkening episode is ANT-only.
        report = characterize(SpikeSet([]), dataset, scenario)
        assert report.ant_only_episodes >= 1
