"""Unit tests for the collection layer: database, fetchers, scheduler."""

import numpy as np
import pytest

from repro.collection.database import CollectionDatabase
from repro.collection.fetchers import WorkItem, build_fleet
from repro.collection.scheduler import CollectionManager, CollectionScheduler
from repro.core.spikes import Spike
from repro.errors import (
    CollectionError,
    ConfigurationError,
    TransientServiceError,
    UnknownTermError,
)
from repro.timeutil import TimeWindow, utc
from repro.trends.ratelimit import RateLimitConfig, SimulatedClock
from repro.trends.records import RisingTerm, TimeFrameRequest, TimeFrameResponse
from repro.trends.service import TrendsConfig, TrendsService
from repro.world.population import SearchPopulation
from repro.world.scenarios import Scenario, ScenarioConfig

WEEK = TimeWindow(utc(2021, 1, 4), utc(2021, 1, 11))
WEEK2 = TimeWindow(utc(2021, 1, 10), utc(2021, 1, 17))


@pytest.fixture(scope="module")
def population():
    scenario = Scenario.build(
        ScenarioConfig(
            start=utc(2021, 1, 1), end=utc(2021, 2, 1), background_scale=0.0
        )
    )
    return SearchPopulation(scenario)


def make_response(window=WEEK, sample_round=0):
    request = TimeFrameRequest(term="Internet outage", geo="US-TX", window=window)
    values = np.zeros(window.hours, dtype=np.int16)
    values[10] = 100
    return TimeFrameResponse(
        request=request,
        values=values,
        rising=(RisingTerm("power outage", 120),),
        sample_round=sample_round,
    )


class TestDatabase:
    def test_frame_roundtrip(self):
        with CollectionDatabase() as db:
            response = make_response()
            db.store_frame(response, fetched_by="fetcher-00")
            loaded = db.load_frame("Internet outage", "US-TX", WEEK, 0)
            np.testing.assert_array_equal(loaded.values, response.values)
            assert loaded.rising == response.rising
            assert loaded.sample_round == 0

    def test_miss_returns_none(self):
        with CollectionDatabase() as db:
            assert db.load_frame("Internet outage", "US-TX", WEEK, 0) is None

    def test_rounds_are_distinct(self):
        with CollectionDatabase() as db:
            db.store_frame(make_response(sample_round=0), "f")
            db.store_frame(make_response(sample_round=1), "f")
            assert db.frame_count() == 2
            assert db.load_frame("Internet outage", "US-TX", WEEK, 1) is not None

    def test_replace_is_idempotent(self):
        with CollectionDatabase() as db:
            db.store_frame(make_response(), "f")
            db.store_frame(make_response(), "f")
            assert db.frame_count() == 1

    def test_frames_by_fetcher(self):
        with CollectionDatabase() as db:
            db.store_frame(make_response(WEEK), "a")
            db.store_frame(make_response(WEEK2), "b")
            assert db.frames_by_fetcher() == {"a": 1, "b": 1}

    def test_series_roundtrip(self):
        with CollectionDatabase() as db:
            values = np.linspace(0, 100, 50)
            db.store_series("Internet outage", "US-TX", utc(2021, 1, 1), values)
            start, loaded = db.load_series("Internet outage", "US-TX")
            assert start == utc(2021, 1, 1)
            np.testing.assert_allclose(loaded, values)

    def test_series_miss(self):
        with CollectionDatabase() as db:
            assert db.load_series("Internet outage", "US-WY") is None

    def test_spikes_roundtrip(self):
        with CollectionDatabase() as db:
            spike = Spike(
                term="Internet outage",
                geo="US-TX",
                start=utc(2021, 2, 15, 10),
                peak=utc(2021, 2, 15, 12),
                end=utc(2021, 2, 17, 6),
                magnitude=100.0,
                magnitude_rank=1,
                annotations=("Power outage",),
            )
            db.store_spikes([spike])
            loaded = db.load_spikes(geo="US-TX")
            assert loaded == [spike]
            assert db.spike_count() == 1

    def test_spike_filters(self):
        with CollectionDatabase() as db:
            spike = Spike(
                term="Internet outage",
                geo="US-TX",
                start=utc(2021, 2, 15, 10),
                peak=utc(2021, 2, 15, 12),
                end=utc(2021, 2, 17, 6),
                magnitude=100.0,
            )
            db.store_spikes([spike])
            assert db.load_spikes(geo="US-CA") == []
            assert db.load_spikes(term="Internet outage", geo="US-TX") == [spike]

    def test_persistence_to_file(self, tmp_path):
        path = str(tmp_path / "sift.db")
        with CollectionDatabase(path) as db:
            db.store_frame(make_response(), "f")
        with CollectionDatabase(path) as db:
            assert db.frame_count() == 1


class TestFleet:
    def test_build_fleet_distinct_ips(self, population):
        clock = SimulatedClock()
        service = TrendsService(population, clock=clock)
        fleet = build_fleet(service, 5, sleep=clock.sleep)
        ips = {unit.ip for unit in fleet}
        assert len(ips) == 5

    def test_fleet_size_validation(self, population):
        clock = SimulatedClock()
        service = TrendsService(population, clock=clock)
        with pytest.raises(ConfigurationError):
            build_fleet(service, 0, sleep=clock.sleep)
        with pytest.raises(ConfigurationError):
            build_fleet(service, 500, sleep=clock.sleep)

    def test_fetch_counts_completed(self, population):
        clock = SimulatedClock()
        service = TrendsService(population, clock=clock)
        fleet = build_fleet(service, 1, sleep=clock.sleep)
        fleet[0].fetch(WorkItem("Internet outage", "US-TX", WEEK))
        assert fleet[0].completed == 1


class TestScheduler:
    def make_scheduler(self, population, fetchers=3, burst=2, refill=5.0):
        clock = SimulatedClock()
        service = TrendsService(
            population,
            TrendsConfig(
                rate_limit=RateLimitConfig(burst=burst, refill_per_second=refill)
            ),
            clock=clock,
        )
        db = CollectionDatabase()
        fleet = build_fleet(service, fetchers, sleep=clock.sleep)
        return clock, CollectionScheduler(fleet, db)

    def workload(self, count=12):
        from datetime import timedelta

        items = []
        for i in range(count):
            start = utc(2021, 1, 4) + timedelta(days=i % 4 * 7)
            window = TimeWindow(start, start + timedelta(days=7))
            items.append(
                WorkItem(
                    "Internet outage",
                    "US-TX",
                    window,
                    sample_round=i // 4,
                    include_rising=False,
                )
            )
        return items

    def test_execute_crawls_everything(self, population):
        _, scheduler = self.make_scheduler(population)
        report = scheduler.execute(self.workload())
        assert report.fetched == 12
        assert report.served_from_cache == 0
        assert scheduler.database.frame_count() == 12

    def test_execute_is_idempotent(self, population):
        _, scheduler = self.make_scheduler(population)
        scheduler.execute(self.workload())
        report = scheduler.execute(self.workload())
        assert report.fetched == 0
        assert report.served_from_cache == 12

    def test_load_balances_across_fetchers(self, population):
        """The paper's point: the workload spreads over the units."""
        _, scheduler = self.make_scheduler(population, fetchers=3)
        report = scheduler.execute(self.workload(12))
        assert set(report.per_fetcher.values()) == {4}

    def test_rate_limit_survived_via_retries(self, population):
        clock, scheduler = self.make_scheduler(
            population, fetchers=1, burst=2, refill=1.0
        )
        report = scheduler.execute(self.workload(8))
        assert report.fetched == 8
        assert report.retries > 0
        assert clock() > 0

    def test_needs_a_fetcher(self, population):
        with pytest.raises(CollectionError):
            CollectionScheduler([], CollectionDatabase())


class TestManager:
    def test_manager_is_frame_source(self, population):
        clock = SimulatedClock()
        service = TrendsService(population, clock=clock)
        manager = CollectionManager(service, sleep=clock.sleep, fetcher_count=2)
        response = manager.interest_over_time("Internet outage", "US-TX", WEEK)
        assert response.values.shape == (WEEK.hours,)
        assert manager.frames_stored == 1

    def test_manager_caches(self, population):
        clock = SimulatedClock()
        service = TrendsService(population, clock=clock)
        manager = CollectionManager(service, sleep=clock.sleep, fetcher_count=2)
        first = manager.interest_over_time("Internet outage", "US-TX", WEEK)
        second = manager.interest_over_time("Internet outage", "US-TX", WEEK)
        np.testing.assert_array_equal(first.values, second.values)
        assert service.stats.frames_served == 1  # second came from the DB

    def test_distinct_rounds_crawled_separately(self, population):
        clock = SimulatedClock()
        service = TrendsService(population, clock=clock)
        manager = CollectionManager(service, sleep=clock.sleep, fetcher_count=2)
        manager.interest_over_time("Internet outage", "US-TX", WEEK, sample_round=0)
        manager.interest_over_time("Internet outage", "US-TX", WEEK, sample_round=1)
        assert manager.frames_stored == 2


class TestFatalErrorHandling:
    """Regression: a fatal mid-crawl error must not leak the leased unit.

    The client used to treat any non-RateLimitError as instantly fatal
    and the scheduler dropped the unit on the floor — a study that hit
    one malformed response would slowly strangle its own fleet.  Fatal
    errors now dead-letter the item and release the lease; transient
    errors are retried on the same unit.
    """

    def make_scheduler(self, service, fetchers, clock):
        fleet = build_fleet(service, fetchers, sleep=clock.sleep, clock=clock)
        return fleet, CollectionScheduler(fleet, CollectionDatabase())

    def test_fatal_error_releases_the_unit_and_dead_letters(self, population):
        clock = SimulatedClock()
        inner = TrendsService(population, clock=clock)

        class Exploding:
            explode = True

            def fetch(self, request, **kwargs):
                if self.explode:
                    raise UnknownTermError("no data for term")
                return inner.fetch(request, **kwargs)

        service = Exploding()
        fleet, scheduler = self.make_scheduler(service, 2, clock)
        with pytest.raises(UnknownTermError):
            scheduler.fetch_one(WorkItem("Internet outage", "US-TX", WEEK))

        assert len(scheduler.dead_letters) == 1
        (entry,) = scheduler.dead_letters.entries()
        assert entry.error_type == "UnknownTermError"
        # Every unit is back in the idle pool: the lease was released.
        assert sorted(unit.name for unit in scheduler._idle) == sorted(
            unit.name for unit in fleet
        )
        # ... and the fleet still crawls once the service recovers.
        service.explode = False
        response = scheduler.fetch_one(WorkItem("Internet outage", "US-TX", WEEK2))
        assert response.values.shape == (WEEK2.hours,)

    def test_transient_errors_are_retried_not_fatal(self, population):
        clock = SimulatedClock()
        inner = TrendsService(population, clock=clock)

        class Flaky:
            failures = 2

            def fetch(self, request, **kwargs):
                if self.failures:
                    self.failures -= 1
                    raise TransientServiceError("503: try again")
                return inner.fetch(request, **kwargs)

        fleet, scheduler = self.make_scheduler(Flaky(), 1, clock)
        response = scheduler.fetch_one(WorkItem("Internet outage", "US-TX", WEEK))
        assert response.values.shape == (WEEK.hours,)
        assert fleet[0].retries == 2  # absorbed by backoff, not dead-lettered
        assert len(scheduler.dead_letters) == 0
        assert clock() > 0  # the backoff spent virtual time
