"""Unit tests for GT sampling, anonymity rounding, and indexing."""

import numpy as np
import pytest

from repro.trends.sampling import (
    index_frame,
    privacy_round,
    sample_counts,
    sampling_standard_error,
)


class TestSampleCounts:
    def test_unbiased_estimator(self):
        """Sample proportions must be unbiased (paper §3.2 premise)."""
        rng = np.random.default_rng(0)
        volumes = np.full(2000, 500.0)
        totals = np.full(2000, 1_000_000.0)
        counts = sample_counts(rng, volumes, totals, sample_rate=0.05)
        estimate = counts.mean() / (1_000_000 * 0.05)
        assert estimate == pytest.approx(500 / 1_000_000, rel=0.05)

    def test_error_shrinks_with_sample_rate(self):
        """Larger samples -> smaller relative error (the averaging premise)."""
        rng = np.random.default_rng(1)
        volumes = np.full(3000, 200.0)
        totals = np.full(3000, 1_000_000.0)
        small = sample_counts(rng, volumes, totals, 0.01) / (1e6 * 0.01)
        large = sample_counts(rng, volumes, totals, 0.25) / (1e6 * 0.25)
        assert large.std() < small.std()

    def test_zero_volume_zero_counts(self):
        rng = np.random.default_rng(2)
        counts = sample_counts(
            rng, np.zeros(10), np.full(10, 1000.0), sample_rate=0.1
        )
        assert (counts == 0).all()

    def test_rejects_bad_rate(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            sample_counts(rng, np.ones(3), np.ones(3), 0.0)
        with pytest.raises(ValueError):
            sample_counts(rng, np.ones(3), np.ones(3), 1.5)

    def test_rejects_misaligned_arrays(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            sample_counts(rng, np.ones(3), np.ones(4), 0.1)

    def test_proportion_clipped(self):
        """Volumes above total (possible under boosts) must not crash."""
        rng = np.random.default_rng(5)
        counts = sample_counts(
            rng, np.array([2000.0]), np.array([1000.0]), sample_rate=0.5
        )
        assert counts[0] == 500  # p clipped to 1.0


class TestPrivacyRound:
    def test_zeroes_below_threshold(self):
        counts = np.array([0, 1, 2, 3, 4])
        rounded = privacy_round(counts, threshold=3)
        np.testing.assert_array_equal(rounded, [0, 0, 0, 3, 4])

    def test_threshold_zero_is_identity(self):
        counts = np.array([0, 1, 2])
        np.testing.assert_array_equal(privacy_round(counts, 0), counts)

    def test_does_not_mutate_input(self):
        counts = np.array([1, 5])
        privacy_round(counts, 3)
        np.testing.assert_array_equal(counts, [1, 5])

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            privacy_round(np.array([1]), -1)


class TestIndexFrame:
    def test_max_maps_to_100(self):
        values = index_frame(np.array([1, 2, 4]))
        np.testing.assert_array_equal(values, [25, 50, 100])

    def test_all_zero_stays_zero(self):
        values = index_frame(np.zeros(5))
        np.testing.assert_array_equal(values, np.zeros(5))

    def test_dtype_and_bounds(self):
        rng = np.random.default_rng(6)
        counts = rng.integers(0, 1000, size=200)
        values = index_frame(counts)
        assert values.dtype == np.int16
        assert values.min() >= 0
        assert values.max() == 100

    def test_proportional_indexing_with_sizes(self):
        """Equal counts over unequal sample sizes index differently."""
        counts = np.array([10, 10])
        sizes = np.array([1000, 2000])
        values = index_frame(counts, sizes)
        np.testing.assert_array_equal(values, [100, 50])

    def test_rejects_misaligned_sizes(self):
        with pytest.raises(ValueError):
            index_frame(np.array([1, 2]), np.array([1]))


class TestStandardError:
    def test_formula(self):
        assert sampling_standard_error(0.5, 100) == pytest.approx(0.05)

    def test_shrinks_with_sample_size(self):
        assert sampling_standard_error(0.1, 10_000) < sampling_standard_error(
            0.1, 100
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            sampling_standard_error(1.5, 100)
        with pytest.raises(ValueError):
            sampling_standard_error(0.5, 0)
