"""Unit tests for the simulated Trends service."""

import numpy as np
import pytest

from repro.errors import RateLimitError
from repro.timeutil import TimeWindow, utc
from repro.trends.ratelimit import RateLimitConfig, SimulatedClock
from repro.trends.records import TimeFrameRequest
from repro.trends.service import TrendsConfig, TrendsService
from repro.world.population import SearchPopulation
from repro.world.scenarios import Scenario, ScenarioConfig

STORM_WEEK = TimeWindow(utc(2021, 2, 14), utc(2021, 2, 21))
QUIET_WEEK = TimeWindow(utc(2021, 1, 4), utc(2021, 1, 11))


@pytest.fixture(scope="module")
def population():
    scenario = Scenario.build(
        ScenarioConfig(
            start=utc(2021, 1, 1), end=utc(2021, 3, 1), background_scale=0.05
        )
    )
    return SearchPopulation(scenario)


@pytest.fixture()
def service(population):
    return TrendsService(
        population,
        TrendsConfig(rate_limit=RateLimitConfig(burst=1000, refill_per_second=1000)),
        clock=SimulatedClock(),
    )


def storm_request() -> TimeFrameRequest:
    return TimeFrameRequest(term="Internet outage", geo="US-TX", window=STORM_WEEK)


class TestFetch:
    def test_response_contract(self, service):
        response = service.fetch(storm_request())
        assert response.values.shape == (168,)
        assert response.values.dtype == np.int16
        assert response.values.max() == 100  # the storm dominates its frame

    def test_same_round_is_reproducible(self, service):
        a = service.fetch(storm_request(), sample_round=3)
        b = service.fetch(storm_request(), sample_round=3)
        np.testing.assert_array_equal(a.values, b.values)

    def test_different_rounds_differ(self, service):
        """Independent samples: the paper's motivation for averaging."""
        a = service.fetch(storm_request(), sample_round=0)
        b = service.fetch(storm_request(), sample_round=1)
        assert (a.values != b.values).any()

    def test_auto_round_increments(self, service):
        a = service.fetch(storm_request())
        b = service.fetch(storm_request())
        assert a.sample_round == 0
        assert b.sample_round == 1

    def test_quiet_small_state_is_flat(self, service):
        """Privacy rounding wipes tiny volumes to zero (paper §2)."""
        response = service.fetch(
            TimeFrameRequest(term="Internet outage", geo="US-WY", window=QUIET_WEEK)
        )
        assert response.is_flat()

    def test_piecewise_normalization(self, service):
        """A quiet frame still maxes at 100: each frame is indexed
        against its own maximum, which is why stitching must rescale."""
        quiet = service.fetch(
            TimeFrameRequest(term="Internet outage", geo="US-TX", window=QUIET_WEEK)
        )
        storm = service.fetch(storm_request())
        assert quiet.values.max() in (0, 100)
        assert storm.values.max() == 100

    def test_rising_terms_reflect_storm(self, service):
        response = service.fetch(storm_request(), sample_round=0)
        from repro.core.nlp import PhraseClusterer

        clusterer = PhraseClusterer()
        concepts = {clusterer.canonicalize(t.phrase) for t in response.rising}
        assert {"Power outage", "Winter storm"} & concepts

    def test_rising_skipped_when_not_requested(self, service):
        response = service.fetch(storm_request(), include_rising=False)
        assert response.rising == ()

    def test_stats_accumulate(self, service):
        service.fetch(storm_request())
        service.fetch(storm_request(), include_rising=False)
        assert service.stats.frames_served == 2
        assert service.stats.rising_computed == 1
        assert service.stats.frames_by_geo["US-TX"] == 2


class TestRateLimiting:
    def test_limited_service_rejects(self, population):
        clock = SimulatedClock()
        service = TrendsService(
            population,
            TrendsConfig(rate_limit=RateLimitConfig(burst=2, refill_per_second=0.1)),
            clock=clock,
        )
        service.fetch(storm_request(), ip="9.9.9.9")
        service.fetch(storm_request(), ip="9.9.9.9")
        with pytest.raises(RateLimitError):
            service.fetch(storm_request(), ip="9.9.9.9")
        assert service.stats.rate_limited == 1

    def test_other_ip_unaffected(self, population):
        clock = SimulatedClock()
        service = TrendsService(
            population,
            TrendsConfig(rate_limit=RateLimitConfig(burst=1, refill_per_second=0.1)),
            clock=clock,
        )
        service.fetch(storm_request(), ip="9.9.9.9")
        service.fetch(storm_request(), ip="8.8.8.8")  # must not raise
