"""Unit tests for spike records and spike sets."""

import pytest

from repro.core.spikes import Spike, SpikeSet
from repro.errors import DetectionError
from repro.timeutil import utc


def spike(
    geo="US-TX",
    start=utc(2021, 2, 15, 10),
    peak=utc(2021, 2, 15, 12),
    end=utc(2021, 2, 16, 6),
    magnitude=80.0,
    annotations=(),
):
    return Spike(
        term="Internet outage",
        geo=geo,
        start=start,
        peak=peak,
        end=end,
        magnitude=magnitude,
        annotations=annotations,
    )


class TestSpike:
    def test_duration_inclusive(self):
        s = spike(
            start=utc(2021, 2, 15, 10), peak=utc(2021, 2, 15, 10),
            end=utc(2021, 2, 15, 10),
        )
        assert s.duration_hours == 1

    def test_storm_duration(self):
        s = spike()  # 10h on the 15th .. 06h on the 16th
        assert s.duration_hours == 21

    def test_state_from_geo(self):
        assert spike().state == "TX"

    def test_label_matches_paper_format(self):
        assert spike().label == "15 Feb. 2021-10h"

    def test_rejects_disordered_times(self):
        with pytest.raises(DetectionError):
            spike(peak=utc(2021, 2, 17, 0))

    def test_rejects_negative_magnitude(self):
        with pytest.raises(DetectionError):
            spike(magnitude=-1.0)

    def test_annotated_returns_new_spike(self):
        s = spike()
        annotated = s.annotated(("Power outage",))
        assert annotated.annotations == ("Power outage",)
        assert s.annotations == ()

    def test_has_annotation(self):
        s = spike(annotations=("Power outage", "Winter storm"))
        assert s.has_annotation({"Power outage"})
        assert not s.has_annotation({"Verizon"})

    def test_dict_roundtrip(self):
        s = spike(annotations=("Power outage",))
        assert Spike.from_dict(s.to_dict()) == s


class TestSpikeSet:
    @pytest.fixture()
    def spikes(self):
        return SpikeSet(
            [
                spike(geo="US-TX", magnitude=100.0),
                spike(
                    geo="US-CA",
                    start=utc(2020, 6, 15, 14),
                    peak=utc(2020, 6, 15, 18),
                    end=utc(2020, 6, 16, 8),
                    magnitude=60.0,
                    annotations=("T-Mobile",),
                ),
                spike(
                    geo="US-TX",
                    start=utc(2021, 1, 26, 16),
                    peak=utc(2021, 1, 26, 17),
                    end=utc(2021, 1, 26, 21),
                    magnitude=20.0,
                    annotations=("Verizon",),
                ),
            ]
        )

    def test_sorted_by_peak(self, spikes):
        peaks = [s.peak for s in spikes]
        assert peaks == sorted(peaks)

    def test_filters(self, spikes):
        assert len(spikes.in_state("TX")) == 2
        assert len(spikes.in_state("US-TX")) == 2
        assert len(spikes.in_year(2020)) == 1
        assert len(spikes.at_least_hours(20)) == 1
        assert len(spikes.at_least_hours(19)) == 2
        assert len(spikes.with_annotation({"Verizon"})) == 1

    def test_aggregates(self, spikes):
        assert spikes.durations().tolist() == [19, 6, 21]
        assert spikes.count_by_state() == {"TX": 2, "CA": 1}

    def test_top_by_duration(self, spikes):
        top = spikes.top_by_duration(2)
        assert [s.duration_hours for s in top] == [21, 19]

    def test_merge(self, spikes):
        merged = spikes.merged_with(SpikeSet([spike(geo="US-NY")]))
        assert len(merged) == 4

    def test_indexing(self, spikes):
        assert isinstance(spikes[0], Spike)
        with pytest.raises(IndexError):
            spikes[99]


class TestSimilarity:
    def test_identical_sets(self):
        a = SpikeSet([spike()])
        assert a.jaccard_similarity(a) == 1.0
        assert a.match_similarity(a) == 1.0
        assert a.weighted_match_similarity(a) == 1.0

    def test_empty_sets_similar(self):
        empty = SpikeSet([])
        assert empty.jaccard_similarity(SpikeSet([])) == 1.0
        assert empty.match_similarity(SpikeSet([])) == 1.0

    def test_disjoint_sets(self):
        a = SpikeSet([spike()])
        b = SpikeSet([spike(geo="US-CA")])
        assert a.jaccard_similarity(b) == 0.0
        assert a.match_similarity(b) == 0.0

    def test_tolerance_matches_jittered_peaks(self):
        a = SpikeSet([spike(peak=utc(2021, 2, 15, 12))])
        b = SpikeSet(
            [spike(peak=utc(2021, 2, 15, 13))]
        )  # one hour of sampling jitter
        assert a.jaccard_similarity(b) == 0.0
        assert a.match_similarity(b, tolerance_hours=2) == 1.0

    def test_tolerance_bounds(self):
        a = SpikeSet([spike(peak=utc(2021, 2, 15, 12))])
        b = SpikeSet([spike(peak=utc(2021, 2, 15, 16), end=utc(2021, 2, 16, 6))])
        assert a.match_similarity(b, tolerance_hours=2) == 0.0

    def test_weighted_similarity_ignores_blips(self):
        """A flickering magnitude-1 blip barely moves the weighted
        metric while halving the unweighted one."""
        big = spike(magnitude=100.0)
        blip = spike(
            geo="US-CA",
            start=utc(2021, 2, 1, 1),
            peak=utc(2021, 2, 1, 1),
            end=utc(2021, 2, 1, 1),
            magnitude=1.0,
        )
        a = SpikeSet([big, blip])
        b = SpikeSet([big])
        assert a.match_similarity(b) == 0.5
        assert a.weighted_match_similarity(b) > 0.95

    def test_greedy_matching_one_to_one(self):
        """Two nearby peaks in one set cannot both match a single peak."""
        a = SpikeSet(
            [
                spike(peak=utc(2021, 2, 15, 12)),
                spike(
                    peak=utc(2021, 2, 15, 13),
                    start=utc(2021, 2, 15, 13),
                    end=utc(2021, 2, 16, 6),
                ),
            ]
        )
        b = SpikeSet([spike(peak=utc(2021, 2, 15, 12))])
        # 1 matched out of union 2.
        assert a.match_similarity(b) == pytest.approx(0.5)
