"""Unit tests for the synthetic search population."""

import numpy as np
import pytest

from repro.errors import UnknownTermError
from repro.timeutil import TimeWindow, utc
from repro.world.population import SearchPopulation
from repro.world.scenarios import Scenario, ScenarioConfig
from repro.world.states import STATES


@pytest.fixture(scope="module")
def population():
    scenario = Scenario.build(
        ScenarioConfig(
            start=utc(2021, 2, 1), end=utc(2021, 3, 1), background_scale=0.1
        )
    )
    return SearchPopulation(scenario)


STORM_WEEK = TimeWindow(utc(2021, 2, 14), utc(2021, 2, 21))
QUIET_WEEK = TimeWindow(utc(2021, 2, 1), utc(2021, 2, 8))


class TestVolumes:
    def test_shape_matches_window(self, population):
        values = population.term_volume("Internet outage", "TX", STORM_WEEK)
        assert values.shape == (168,)

    def test_nonnegative(self, population):
        values = population.term_volume("Internet outage", "CA", STORM_WEEK)
        assert (values >= 0).all()

    def test_deterministic(self, population):
        a = population.term_volume("Internet outage", "TX", STORM_WEEK)
        b = population.term_volume("Internet outage", "TX", STORM_WEEK)
        np.testing.assert_array_equal(a, b)

    def test_chunking_consistency(self, population):
        """A window computed whole equals its two halves concatenated."""
        whole = population.term_volume("Internet outage", "TX", STORM_WEEK)
        first = population.term_volume(
            "Internet outage", "TX", TimeWindow(utc(2021, 2, 14), utc(2021, 2, 17))
        )
        second = population.term_volume(
            "Internet outage", "TX", TimeWindow(utc(2021, 2, 17), utc(2021, 2, 21))
        )
        np.testing.assert_allclose(whole, np.concatenate([first, second]))

    def test_unknown_term_raises(self, population):
        with pytest.raises(UnknownTermError):
            population.term_volume("Quantum Toaster", "TX", STORM_WEEK)

    def test_window_outside_span_raises(self, population):
        with pytest.raises(ValueError):
            population.term_volume(
                "Internet outage",
                "TX",
                TimeWindow(utc(2020, 1, 1), utc(2020, 1, 2)),
            )


class TestEventSignal:
    def test_storm_lifts_texas_tracker(self, population):
        storm = population.term_volume("Internet outage", "TX", STORM_WEEK)
        quiet = population.term_volume("Internet outage", "TX", QUIET_WEEK)
        assert storm.max() > 20 * quiet.mean()

    def test_storm_lifts_associated_terms(self, population):
        storm = population.term_volume("Winter storm", "TX", STORM_WEEK)
        quiet = population.term_volume("Winter storm", "TX", QUIET_WEEK)
        assert storm.max() > 5 * quiet.max()

    def test_unrelated_state_unaffected(self, population):
        hawaii = population.term_volume("Internet outage", "HI", STORM_WEEK)
        quiet = population.term_volume("Internet outage", "HI", QUIET_WEEK)
        assert hawaii.max() < 30 * max(quiet.mean(), 0.01) + 50


class TestTotalsAndProportions:
    def test_total_volume_scales_with_population(self, population):
        ca = population.total_volume("CA", QUIET_WEEK)
        wy = population.total_volume("WY", QUIET_WEEK)
        assert ca.sum() > 30 * wy.sum()

    def test_proportion_below_one(self, population):
        proportion = population.proportion("Internet outage", "TX", STORM_WEEK)
        assert (proportion < 1.0).all()
        assert (proportion >= 0.0).all()

    def test_volumes_matrix_stacks_terms(self, population):
        matrix = population.volumes_matrix(
            ("Internet outage", "Verizon"), "TX", QUIET_WEEK
        )
        assert matrix.shape == (2, 168)
        np.testing.assert_allclose(
            matrix[0], population.term_volume("Internet outage", "TX", QUIET_WEEK)
        )


class TestCaching:
    def test_cache_is_bounded(self, population):
        # One tensor pins len(TERMS) series units; touching many states
        # must keep the accounted size under the series-unit budget.
        window = TimeWindow(utc(2021, 2, 1), utc(2021, 2, 2))
        for code in ("TX", "CA", "NY", "FL", "WA"):
            for term in ("Internet outage", "Verizon", "Spectrum"):
                population.term_volume(term, code, window)
        stats = population.cache_stats()
        assert stats.size <= stats.capacity == 512

    def test_cache_eviction_keeps_size_under_capacity(self, population):
        # More states than the budget can hold: eviction must kick in
        # and the counters must reflect hits vs misses.
        window = TimeWindow(utc(2021, 2, 1), utc(2021, 2, 2))
        codes = [state.code for state in STATES[:20]]
        for code in codes:
            population.term_volume("Internet outage", code, window)
        stats = population.cache_stats()
        assert stats.size <= stats.capacity
        assert stats.misses >= len(codes)
        # A repeat visit of the most recent state is a hit.
        population.term_volume("Internet outage", codes[-1], window)
        assert population.cache_stats().hits > stats.hits

    def test_expected_peak_helper(self, population):
        peak = population.expected_peak(
            "Internet outage", "TX", utc(2021, 2, 15, 12)
        )
        assert peak > 100  # the storm's boost volume dominates
