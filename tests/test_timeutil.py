"""Unit tests for the hour-grid time utilities."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.errors import TimeGridError
from repro.timeutil import (
    DEFAULT_OVERLAP_HOURS,
    HOURS_PER_WEEK,
    TimeWindow,
    daily_frame,
    ensure_grid,
    format_spike_time,
    hour_at,
    hour_index,
    hour_range,
    span_hours,
    utc,
    weekly_frames,
)


class TestEnsureGrid:
    def test_accepts_aligned_utc(self):
        moment = utc(2021, 2, 15, 10)
        assert ensure_grid(moment) == moment

    def test_rejects_naive(self):
        with pytest.raises(TimeGridError):
            ensure_grid(datetime(2021, 2, 15, 10))

    def test_rejects_sub_hour(self):
        with pytest.raises(TimeGridError):
            ensure_grid(datetime(2021, 2, 15, 10, 30, tzinfo=timezone.utc))

    def test_converts_other_zones_to_utc(self):
        eastern = timezone(timedelta(hours=-5))
        moment = datetime(2021, 2, 15, 5, tzinfo=eastern)
        assert ensure_grid(moment) == utc(2021, 2, 15, 10)


class TestHourArithmetic:
    def test_hour_index_roundtrip(self):
        origin = utc(2020, 1, 1)
        moment = utc(2020, 1, 3, 7)
        index = hour_index(origin, moment)
        assert index == 55
        assert hour_at(origin, index) == moment

    def test_negative_index(self):
        assert hour_index(utc(2020, 1, 2), utc(2020, 1, 1)) == -24

    def test_span_hours(self):
        assert span_hours(utc(2020, 1, 1), utc(2020, 1, 8)) == 168

    def test_span_rejects_reversed(self):
        with pytest.raises(TimeGridError):
            span_hours(utc(2020, 1, 8), utc(2020, 1, 1))

    def test_hour_range_yields_every_hour(self):
        hours = list(hour_range(utc(2020, 1, 1), utc(2020, 1, 1, 5)))
        assert len(hours) == 5
        assert hours[0] == utc(2020, 1, 1)
        assert hours[-1] == utc(2020, 1, 1, 4)


class TestTimeWindow:
    def test_rejects_empty(self):
        with pytest.raises(TimeGridError):
            TimeWindow(utc(2020, 1, 1), utc(2020, 1, 1))

    def test_hours(self):
        window = TimeWindow(utc(2020, 1, 1), utc(2020, 1, 2))
        assert window.hours == 24

    def test_contains_is_half_open(self):
        window = TimeWindow(utc(2020, 1, 1), utc(2020, 1, 2))
        assert window.contains(utc(2020, 1, 1))
        assert not window.contains(utc(2020, 1, 2))

    def test_overlaps(self):
        left = TimeWindow(utc(2020, 1, 1), utc(2020, 1, 3))
        right = TimeWindow(utc(2020, 1, 2), utc(2020, 1, 4))
        disjoint = TimeWindow(utc(2020, 1, 3), utc(2020, 1, 4))
        assert left.overlaps(right)
        assert not left.overlaps(disjoint)

    def test_intersection_hours(self):
        left = TimeWindow(utc(2020, 1, 1), utc(2020, 1, 3))
        right = TimeWindow(utc(2020, 1, 2), utc(2020, 1, 4))
        assert left.intersection_hours(right) == 24
        assert right.intersection_hours(left) == 24

    def test_shift(self):
        window = TimeWindow(utc(2020, 1, 1), utc(2020, 1, 2))
        shifted = window.shift(-24)
        assert shifted.start == utc(2019, 12, 31)
        assert shifted.hours == window.hours


class TestWeeklyFrames:
    def test_short_window_is_single_frame(self):
        window = TimeWindow(utc(2020, 1, 1), utc(2020, 1, 4))
        assert weekly_frames(window) == [window]

    def test_frames_cover_window(self):
        window = TimeWindow(utc(2020, 1, 1), utc(2020, 3, 1))
        frames = weekly_frames(window)
        assert frames[0].start == window.start
        assert frames[-1].end == window.end

    def test_frames_are_at_most_a_week(self):
        window = TimeWindow(utc(2020, 1, 1), utc(2020, 6, 1))
        for frame in weekly_frames(window):
            assert frame.hours <= HOURS_PER_WEEK

    def test_consecutive_frames_overlap(self):
        window = TimeWindow(utc(2020, 1, 1), utc(2020, 6, 1))
        frames = weekly_frames(window)
        for left, right in zip(frames, frames[1:]):
            assert left.intersection_hours(right) >= DEFAULT_OVERLAP_HOURS

    def test_custom_overlap(self):
        window = TimeWindow(utc(2020, 1, 1), utc(2020, 3, 1))
        frames = weekly_frames(window, overlap_hours=72)
        for left, right in zip(frames[:-1], frames[1:]):
            assert left.intersection_hours(right) >= 72

    def test_no_gap_between_frames(self):
        window = TimeWindow(utc(2020, 1, 1), utc(2021, 1, 1))
        frames = weekly_frames(window)
        for left, right in zip(frames, frames[1:]):
            assert right.start < left.end

    def test_invalid_overlap_rejected(self):
        window = TimeWindow(utc(2020, 1, 1), utc(2020, 3, 1))
        with pytest.raises(TimeGridError):
            weekly_frames(window, overlap_hours=0)
        with pytest.raises(TimeGridError):
            weekly_frames(window, overlap_hours=HOURS_PER_WEEK)


class TestDailyFrame:
    def test_covers_the_utc_day(self):
        frame = daily_frame(utc(2021, 2, 15, 13))
        assert frame.start == utc(2021, 2, 15)
        assert frame.hours == 24

    def test_midnight_belongs_to_its_day(self):
        frame = daily_frame(utc(2021, 2, 15))
        assert frame.start == utc(2021, 2, 15)


class TestFormatting:
    def test_format_spike_time_matches_paper_style(self):
        assert format_spike_time(utc(2021, 2, 15, 10)) == "15 Feb. 2021-10h"

    def test_format_pads_day_and_hour(self):
        assert format_spike_time(utc(2020, 6, 1, 4)) == "01 Jun. 2020-04h"
