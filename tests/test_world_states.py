"""Unit tests for the state registry."""

import pytest
from zoneinfo import ZoneInfo

from repro.errors import UnknownGeoError
from repro.world.states import (
    ALL_CODES,
    CODES_BY_POPULATION,
    STATES,
    get_state,
    is_known_geo,
    total_population,
)


class TestRegistry:
    def test_fifty_one_geographies(self):
        assert len(STATES) == 51  # 50 states + DC, the paper's geo set

    def test_codes_unique(self):
        assert len(set(ALL_CODES)) == 51

    def test_lookup_by_code_and_geo(self):
        assert get_state("TX").name == "Texas"
        assert get_state("US-TX") is get_state("TX")

    def test_unknown_geo_raises(self):
        with pytest.raises(UnknownGeoError):
            get_state("US-ZZ")

    def test_is_known_geo(self):
        assert is_known_geo("CA")
        assert is_known_geo("US-CA")
        assert not is_known_geo("PR")

    def test_geo_format(self):
        assert get_state("NY").geo == "US-NY"


class TestDemographics:
    def test_population_ordering(self):
        assert CODES_BY_POPULATION[0] == "CA"
        assert CODES_BY_POPULATION[1] == "TX"

    def test_total_population_is_us_scale(self):
        assert 320_000_000 < total_population() < 340_000_000

    def test_all_populations_positive(self):
        assert all(state.population > 0 for state in STATES)


class TestTimezones:
    def test_every_state_has_valid_zone(self):
        for state in STATES:
            assert isinstance(state.tzinfo, ZoneInfo)

    def test_expected_zones(self):
        assert get_state("CA").tz_name == "America/Los_Angeles"
        assert get_state("TX").tz_name == "America/Chicago"
        assert get_state("NY").tz_name == "America/New_York"
        assert get_state("HI").tz_name == "Pacific/Honolulu"

    def test_arizona_no_dst(self):
        # Arizona must not follow DST (distinct from Denver).
        assert get_state("AZ").tz_name == "America/Phoenix"
