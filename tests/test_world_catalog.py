"""Unit tests for the search-term catalog."""

import pytest

from repro.errors import UnknownTermError
from repro.world.catalog import (
    HEAVY_HITTERS,
    INTERNET_OUTAGE,
    POWER_TERMS,
    TERMS,
    Category,
    get_term,
    is_heavy_hitter,
    is_power_term,
    resolve_phrase,
    terms_in_category,
)


class TestCatalogStructure:
    def test_tracker_is_internet_outage(self):
        assert INTERNET_OUTAGE.name == "Internet outage"
        assert INTERNET_OUTAGE.category is Category.TRACKER

    def test_names_unique(self):
        names = [term.name for term in TERMS]
        assert len(names) == len(set(names))

    def test_lookup(self):
        assert get_term("Verizon").category is Category.ISP

    def test_unknown_term_raises(self):
        with pytest.raises(UnknownTermError):
            get_term("Carrier Pigeon Networks")

    def test_every_category_populated(self):
        for category in Category:
            assert terms_in_category(category), category

    def test_variants_lowercase_queries(self):
        # Raw variants model typed queries; they should not collide
        # across terms, or phrase resolution becomes ambiguous.
        seen = {}
        for term in TERMS:
            for variant in term.variants:
                assert variant not in seen, f"{variant} in {term.name} and {seen.get(variant)}"
                seen[variant] = term.name


class TestPhraseResolution:
    def test_resolves_exact_variant(self):
        assert resolve_phrase("is verizon down").name == "Verizon"

    def test_resolution_is_case_insensitive(self):
        assert resolve_phrase("Spectrum Outage").name == "Spectrum"

    def test_resolves_canonical_name(self):
        assert resolve_phrase("Power outage").name == "Power outage"

    def test_unknown_phrase_returns_none(self):
        assert resolve_phrase("llama grooming tips") is None


class TestHeavyHitters:
    def test_papers_heavy_hitters_present(self):
        # §3.4 lists these explicitly.
        for name in (
            "Power outage",
            "Xfinity",
            "Spectrum",
            "Comcast",
            "AT&T",
            "Cox Communications",
            "Verizon",
            "Electric power",
        ):
            assert is_heavy_hitter(name)

    def test_heavy_hitters_are_known_terms(self):
        for name in HEAVY_HITTERS:
            assert get_term(name) is not None

    def test_power_terms(self):
        assert is_power_term("Power outage")
        assert is_power_term("Electric power")
        assert not is_power_term("Verizon")
        assert POWER_TERMS <= HEAVY_HITTERS
