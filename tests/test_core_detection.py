"""Unit tests for the prominence-walk spike detector."""

import numpy as np
import pytest

from repro.core.detection import (
    DetectionConfig,
    detect_bounds,
    detect_spikes,
    walk_backward,
    walk_forward,
)
from repro.core.series import HourlyTimeline
from repro.errors import DetectionError
from repro.timeutil import utc


def bounds(values, **config):
    cfg = DetectionConfig(**config) if config else None
    return detect_bounds(np.asarray(values, dtype=float), cfg)


class TestWalks:
    def test_forward_includes_the_half_drop_block(self):
        values = np.array([0, 10.0, 8.0, 3.0, 3.0, 0])
        claimed = np.zeros(6, dtype=bool)
        # 8 -> 3 is the below-half "ending point"; the 3 belongs to the
        # spike, and the following 3 (no further free-fall) does not.
        assert walk_forward(values, 1, claimed, 0.5) == 3

    def test_forward_stops_at_zero(self):
        values = np.array([0, 10.0, 9.0, 8.0, 0.0, 5.0])
        claimed = np.zeros(6, dtype=bool)
        assert walk_forward(values, 1, claimed, 0.5) == 3

    def test_forward_stops_at_claimed(self):
        values = np.array([0, 10.0, 9.0, 8.0, 7.0])
        claimed = np.array([False, False, False, True, True])
        assert walk_forward(values, 1, claimed, 0.5) == 2

    def test_forward_runs_to_series_end(self):
        values = np.array([10.0, 9.0, 8.0])
        claimed = np.zeros(3, dtype=bool)
        assert walk_forward(values, 0, claimed, 0.5) == 2

    def test_backward_stops_at_zero(self):
        values = np.array([5.0, 0.0, 3.0, 10.0])
        claimed = np.zeros(4, dtype=bool)
        assert walk_backward(values, 3, claimed) == 2

    def test_backward_stops_at_claimed(self):
        values = np.array([5.0, 4.0, 3.0, 10.0])
        claimed = np.array([True, False, False, False])
        assert walk_backward(values, 3, claimed) == 1

    def test_backward_runs_to_series_start(self):
        values = np.array([4.0, 3.0, 10.0])
        claimed = np.zeros(3, dtype=bool)
        assert walk_backward(values, 2, claimed) == 0


class TestDetectBounds:
    def test_single_spike(self):
        found = bounds([0, 0, 2, 10, 4, 0, 0])
        assert len(found) == 1
        spike = found[0]
        assert (spike.start, spike.peak, spike.end) == (2, 3, 4)
        assert spike.duration_hours == 3

    def test_cliff_fully_claimed(self):
        # A sharp decay (each block below half the previous) is one
        # spike, not a chain of phantom residues.
        found = bounds([0, 100, 30, 9, 2, 0])
        assert len(found) == 1
        assert found[0].end == 4

    def test_flat_series_no_spikes(self):
        assert bounds(np.zeros(10)) == []

    def test_descending_magnitude_order(self):
        found = bounds([0, 5, 0, 50, 0, 20, 0])
        peaks = [b.peak for b in found]
        assert peaks == [3, 5, 1]

    def test_successive_peaks_not_recounted(self):
        """A double-peaked surge with no half-drop between peaks is one
        spike (the paper's recounting guard)."""
        found = bounds([0, 10, 8, 9, 7, 0])
        assert len(found) == 1
        assert found[0].duration_hours == 4

    def test_sharp_valley_splits_spikes(self):
        found = bounds([0, 10, 2, 9, 0])  # 10 -> 2 is a half-drop
        assert len(found) == 2

    def test_spikes_disjoint(self):
        values = np.random.default_rng(5).random(200) * np.where(
            np.random.default_rng(6).random(200) < 0.3, 10, 0
        )
        found = bounds(values)
        claimed = np.zeros(200, dtype=bool)
        for spike in found:
            assert not claimed[spike.start : spike.end + 1].any()
            claimed[spike.start : spike.end + 1] = True

    def test_min_peak_floor(self):
        found = bounds([0, 0.5, 0, 5, 0], min_peak=1.0)
        assert len(found) == 1
        assert found[0].peak == 3

    def test_every_positive_peak_by_default(self):
        found = bounds([0, 0.5, 0, 5, 0])
        assert len(found) == 2

    def test_adjacent_spikes_share_no_blocks(self):
        # Second spike's backward walk must stop at the first's end.
        found = bounds([0, 3, 8, 4, 30, 10, 0])
        assert len(found) >= 1
        first = found[0]
        assert first.peak == 4
        if len(found) > 1:
            assert found[1].end < first.start or found[1].start > first.end

    def test_rejects_2d(self):
        with pytest.raises(DetectionError):
            detect_bounds(np.zeros((2, 2)))

    def test_rejects_non_finite(self):
        with pytest.raises(DetectionError):
            detect_bounds(np.array([1.0, np.inf]))

    def test_empty_series(self):
        assert detect_bounds(np.array([])) == []

    def test_plateau_is_one_spike(self):
        found = bounds([0, 7, 7, 7, 0])
        assert len(found) == 1
        assert found[0].duration_hours == 3


class TestDetectionConfig:
    def test_rejects_bad_half_ratio(self):
        with pytest.raises(DetectionError):
            DetectionConfig(half_ratio=0.0)
        with pytest.raises(DetectionError):
            DetectionConfig(half_ratio=1.0)

    def test_rejects_negative_min_peak(self):
        with pytest.raises(DetectionError):
            DetectionConfig(min_peak=-1.0)

    def test_half_ratio_sweep_changes_sensitivity(self):
        values = [0, 10.0, 6.0, 3.5, 0]
        # At 0.5: 6 -> 3.5 stays (ratio .58); at 0.7 the spike ends sooner.
        loose = bounds(values, half_ratio=0.5)[0]
        strict = bounds(values, half_ratio=0.7)[0]
        assert strict.duration_hours <= loose.duration_hours


class TestDetectSpikes:
    def test_wall_clock_metadata(self):
        timeline = HourlyTimeline(
            term="Internet outage",
            geo="US-TX",
            start=utc(2021, 2, 15),
            values=np.array([0, 0, 2, 10, 4, 0], dtype=float),
        )
        spikes = detect_spikes(timeline)
        assert len(spikes) == 1
        spike = spikes[0]
        assert spike.start == utc(2021, 2, 15, 2)
        assert spike.peak == utc(2021, 2, 15, 3)
        assert spike.end == utc(2021, 2, 15, 4)
        assert spike.magnitude == 10.0
        assert spike.magnitude_rank == 1

    def test_ranks_are_one_based_by_magnitude(self):
        timeline = HourlyTimeline(
            term="Internet outage",
            geo="US-TX",
            start=utc(2021, 2, 15),
            values=np.array([0, 5, 0, 50, 0, 20, 0], dtype=float),
        )
        spikes = detect_spikes(timeline)
        assert [s.magnitude_rank for s in spikes] == [1, 2, 3]
        assert [s.magnitude for s in spikes] == [50.0, 20.0, 5.0]
