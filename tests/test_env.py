"""Tests for the one-stop environment wiring."""


from repro import ALL_GEOS, STUDY_END, STUDY_START, make_environment, utc
from repro.core.pipeline import StudyResult


class TestWiring:
    def test_all_geos(self):
        assert len(ALL_GEOS) == 51
        assert "US-TX" in ALL_GEOS

    def test_study_window_constants(self):
        assert STUDY_START == utc(2020, 1, 1)
        assert STUDY_END == utc(2022, 1, 1)

    def test_environment_components_share_world(self, small_env):
        assert small_env.service.population is small_env.population
        assert small_env.population.scenario is small_env.scenario

    def test_sift_uses_collection_manager(self, small_env):
        assert small_env.sift.source is small_env.manager

    def test_window_matches_config(self, small_env):
        assert small_env.window.start == small_env.config.start
        assert small_env.window.end == small_env.config.end

    def test_deterministic_rebuild(self):
        a = make_environment(
            background_scale=0.1, start=utc(2021, 1, 1), end=utc(2021, 2, 1)
        )
        b = make_environment(
            background_scale=0.1, start=utc(2021, 1, 1), end=utc(2021, 2, 1)
        )
        ra = a.sift.analyze_state("US-WY", a.window)
        rb = b.sift.analyze_state("US-WY", b.window)
        assert ra.spikes.peak_signature() == rb.spikes.peak_signature()


class TestStudyExecution:
    def test_mini_study_is_study_result(self, mini_study):
        assert isinstance(mini_study, StudyResult)
        assert set(mini_study.states) == {"US-TX", "US-CA", "US-OK", "US-WY"}

    def test_spikes_annotated(self, mini_study):
        annotated = [s for s in mini_study.spikes if s.annotations]
        assert annotated  # the annotation stage ran

    def test_outages_cover_spikes(self, mini_study):
        grouped = sum(len(outage.spikes) for outage in mini_study.outages)
        assert grouped == mini_study.spike_count

    def test_crawl_went_through_database(self, small_env, mini_study):
        assert small_env.manager.frames_stored > 0
        assert small_env.service.stats.frames_served > 0

    def test_virtual_time_advanced_not_wall_time(self, small_env):
        # The crawl slept virtually (rate limits), never really.
        assert small_env.clock() >= 0.0
