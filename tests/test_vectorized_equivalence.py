"""Byte-identity of the vectorized hot path vs the frozen scalar reference.

The tensor/batched implementations in :mod:`repro.world.population`,
:mod:`repro.world.behavior`, :mod:`repro.rand`, and
:mod:`repro.trends.rising` promise *bit-identical* outputs to the
original per-term / per-hour scalar code (preserved verbatim in
:mod:`repro._reference`).  These tests hold them to it: every assertion
here is exact equality, never ``allclose``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._reference import (
    ReferencePopulation,
    reference_fetch,
    reference_local_diurnal,
    reference_rising_terms,
    reference_stable_key,
    reference_variant_phrase,
)
from repro.rand import (
    hashed_normal,
    hashed_normal_keys,
    hashed_uniform,
    hashed_uniform_keys,
    hashed_uniform_scalar,
    stable_key,
    stable_key_cached,
    stable_key_from,
    substream,
)
from repro.timeutil import TimeWindow, utc, weekly_frames
from repro.trends.ratelimit import RateLimitConfig
from repro.trends.records import TimeFrameRequest
from repro.trends.rising import RisingConfig, _variant_phrase, rising_terms
from repro.trends.service import TrendsConfig, TrendsService
from repro.world.behavior import local_diurnal
from repro.world.catalog import TERMS
from repro.world.population import SearchPopulation
from repro.world.scenarios import Scenario, ScenarioConfig
from repro.world.states import STATES

#: Zones with distinct DST behaviour: Eastern/Central/Mountain/Pacific,
#: Arizona (no DST), Hawaii and Alaska (offset oddballs).
TZ_DIVERSE_CODES = ("NY", "TX", "CO", "CA", "AZ", "HI", "AK")

#: Windows straddling the 2021 US DST transitions plus plain edges.
DST_WINDOWS = (
    TimeWindow(utc(2021, 3, 13), utc(2021, 3, 16)),  # spring forward
    TimeWindow(utc(2021, 11, 6), utc(2021, 11, 9)),  # fall back
    TimeWindow(utc(2021, 3, 14, 7), utc(2021, 3, 14, 8)),  # 1-hour window
    TimeWindow(utc(2021, 1, 1), utc(2021, 1, 2)),
    TimeWindow(utc(2021, 1, 1), utc(2022, 1, 1)),  # full year, both shifts
)


# -- rand primitives --------------------------------------------------------


def test_stable_key_matches_reference_short_and_long():
    cases = [
        (),
        ("",),
        ("a",),
        (0,),
        (-1, "geo", 3.5),
        ("rising-phrase", "Internet outage", "US-TX", "2021-02-15T00:00:00+00:00"),
        ("y" * 190,),  # below the numpy-fold threshold
        ("y" * 191,),  # exactly at the threshold (191 chars + separator)
        ("y" * 4096,),  # far above it
        ("x" * 250, 7, "z" * 300),
    ]
    for parts in cases:
        assert stable_key(*parts) == reference_stable_key(*parts), parts


def test_stable_key_fuzz_matches_reference():
    rng = np.random.default_rng(13)
    for _ in range(200):
        count = int(rng.integers(1, 4))
        parts = []
        for _ in range(count):
            kind = int(rng.integers(0, 3))
            if kind == 0:
                parts.append(int(rng.integers(-(10**9), 10**9)))
            elif kind == 1:
                length = int(rng.integers(0, 400))
                parts.append("".join(chr(int(c)) for c in rng.integers(32, 127, length)))
            else:
                parts.append(float(rng.normal()))
        assert stable_key(*parts) == reference_stable_key(*parts), parts


def test_stable_key_prefix_chaining():
    base = stable_key("frame", ("t", "US-TX", "a", "b"))
    for sample_round in range(5):
        assert stable_key_from(base, sample_round) == stable_key(
            "frame", ("t", "US-TX", "a", "b"), sample_round
        )
    assert stable_key_cached("frame", "x") == stable_key("frame", "x")


def test_hashed_uniform_scalar_matches_array_roundtrip():
    rng = np.random.default_rng(29)
    for _ in range(100):
        key = int(rng.integers(0, 2**64, dtype=np.uint64))
        index = int(rng.integers(0, 10**6))
        expected = hashed_uniform(key, np.array([index], dtype=np.uint64))[0]
        assert hashed_uniform_scalar(key, index) == expected


def test_hashed_keys_batch_rows_match_per_key_calls():
    rng = np.random.default_rng(31)
    keys = rng.integers(0, 2**64, 8, dtype=np.uint64)
    indices = np.arange(64)
    uniform = hashed_uniform_keys(keys, indices)
    normal = hashed_normal_keys(keys, indices)
    for row, key in enumerate(keys):
        np.testing.assert_array_equal(uniform[row], hashed_uniform(int(key), indices))
        np.testing.assert_array_equal(normal[row], hashed_normal(int(key), indices))


# -- diurnal curves ---------------------------------------------------------


@pytest.mark.parametrize("window", DST_WINDOWS, ids=lambda w: w.start.isoformat())
def test_local_diurnal_matches_reference_across_zones(window):
    for code in TZ_DIVERSE_CODES:
        np.testing.assert_array_equal(
            local_diurnal(code, window),
            reference_local_diurnal(code, window),
            err_msg=code,
        )


def test_local_diurnal_matches_reference_all_states():
    window = TimeWindow(utc(2021, 3, 13), utc(2021, 3, 15))
    for state in STATES:
        np.testing.assert_array_equal(
            local_diurnal(state.code, window),
            reference_local_diurnal(state.code, window),
            err_msg=state.code,
        )


# -- population tensors -----------------------------------------------------


@pytest.fixture(scope="module")
def scenario() -> Scenario:
    # Spans the 2021 spring-forward transition so the tensor path is
    # exercised across a DST boundary, storm events included.
    return Scenario.build(
        ScenarioConfig(
            start=utc(2021, 1, 1), end=utc(2021, 4, 1), background_scale=0.3
        )
    )


@pytest.fixture(scope="module", params=[7, 20221026], ids=["seed7", "seed20221026"])
def populations(request, scenario) -> tuple[SearchPopulation, ReferencePopulation]:
    seed = request.param
    return (
        SearchPopulation(scenario, noise_seed=seed),
        ReferencePopulation(scenario, noise_seed=seed),
    )


POP_WINDOWS = (
    TimeWindow(utc(2021, 1, 1), utc(2021, 4, 1)),  # the whole span
    TimeWindow(utc(2021, 2, 14), utc(2021, 2, 21)),  # storm week
    TimeWindow(utc(2021, 3, 13), utc(2021, 3, 16)),  # DST transition
    TimeWindow(utc(2021, 1, 1), utc(2021, 1, 1, 1)),  # leading edge, 1 hour
    TimeWindow(utc(2021, 3, 31, 23), utc(2021, 4, 1)),  # trailing edge
)


def test_term_volume_matches_reference(populations):
    population, reference = populations
    for code in ("TX", "CA", "AZ", "HI", "NY"):
        for window in POP_WINDOWS:
            for term in TERMS:
                np.testing.assert_array_equal(
                    population.term_volume(term.name, code, window),
                    reference.term_volume(term.name, code, window),
                    err_msg=f"{term.name}/{code}/{window.start}",
                )


def test_total_volume_and_matrix_match_reference(populations):
    population, reference = populations
    names = tuple(term.name for term in TERMS[:5])
    for code in ("TX", "AZ", "NY"):
        for window in POP_WINDOWS:
            np.testing.assert_array_equal(
                population.total_volume(code, window),
                reference.total_volume(code, window),
            )
            np.testing.assert_array_equal(
                population.volumes_matrix(names, code, window),
                reference.volumes_matrix(names, code, window),
            )


def test_window_sums_match_scalar_sums(populations):
    population, reference = populations
    window = TimeWindow(utc(2021, 2, 14), utc(2021, 2, 21))
    sums = population.term_window_sums("TX", window)
    for row, term in enumerate(TERMS):
        assert sums[row] == reference.term_volume(term.name, "TX", window).sum()
    assert population.total_window_sum("TX", window) == float(
        reference.total_volume("TX", window).sum()
    )


# -- rising suggestions -----------------------------------------------------


def test_variant_phrase_matches_reference():
    for term in TERMS:
        key = stable_key("rising-phrase", term.name, "US-TX", "2021-02-15")
        assert _variant_phrase(term.name, term.variants, key) == (
            reference_variant_phrase(term.name, term.variants, key)
        )


def test_rising_terms_match_reference(populations):
    population, reference = populations
    config = RisingConfig()
    frames = weekly_frames(TimeWindow(utc(2021, 1, 8), utc(2021, 3, 19)))
    checked = 0
    for geo in ("US-TX", "US-CA", "US-AZ"):
        for frame in frames:
            request = TimeFrameRequest("Internet outage", geo, frame)
            for seed in (99, 1234):
                got = rising_terms(
                    population,
                    request,
                    substream(seed, "rising", request.cache_key, 0),
                    0.03,
                    config,
                )
                want = reference_rising_terms(
                    reference,
                    request,
                    substream(seed, "rising", request.cache_key, 0),
                    0.03,
                    config,
                )
                assert got == want, (geo, frame.start, seed)
                checked += 1
    assert checked and any(
        rising_terms(
            population,
            TimeFrameRequest("Internet outage", "US-TX", frame),
            substream(99, "x"),
            0.03,
        )
        for frame in frames
    ), "rising stayed empty everywhere - the equivalence check was vacuous"


def test_rising_consumes_identical_rng_state(populations):
    """The batched draw must leave the generator exactly where the
    scalar per-term interleave left it - draws happen for *all*
    candidates, before any visibility filtering."""
    population, reference = populations
    frame = TimeWindow(utc(2021, 2, 12), utc(2021, 2, 19))
    request = TimeFrameRequest("Internet outage", "US-TX", frame)
    rng_a = substream(99, "probe")
    rng_b = substream(99, "probe")
    rising_terms(population, request, rng_a, 0.03)
    reference_rising_terms(reference, request, rng_b, 0.03)
    assert rng_a.integers(0, 2**63) == rng_b.integers(0, 2**63)


# -- full service fetch -----------------------------------------------------


def test_fetch_matches_reference_end_to_end(populations):
    population, reference = populations
    service = TrendsService(
        population,
        TrendsConfig(
            rate_limit=RateLimitConfig(burst=10**9, refill_per_second=10**9)
        ),
    )
    frames = weekly_frames(TimeWindow(utc(2021, 1, 8), utc(2021, 3, 5)))
    for geo in ("US-TX", "US-HI"):
        for frame in frames:
            request = TimeFrameRequest("Internet outage", geo, frame)
            for sample_round in range(3):
                got = service.fetch(request, sample_round=sample_round)
                want = reference_fetch(reference, request, sample_round)
                np.testing.assert_array_equal(got.values, want.values)
                assert got.rising == want.rising
