"""Unit tests for the retrying Trends client."""

import pytest

from repro.errors import CollectionError
from repro.timeutil import TimeWindow, utc
from repro.trends.client import RetryPolicy, TrendsClient
from repro.trends.ratelimit import RateLimitConfig, SimulatedClock
from repro.trends.service import TrendsConfig, TrendsService
from repro.world.population import SearchPopulation
from repro.world.scenarios import Scenario, ScenarioConfig

WEEK = TimeWindow(utc(2021, 1, 4), utc(2021, 1, 11))


@pytest.fixture(scope="module")
def population():
    scenario = Scenario.build(
        ScenarioConfig(
            start=utc(2021, 1, 1), end=utc(2021, 2, 1), background_scale=0.0
        )
    )
    return SearchPopulation(scenario)


def make_pair(population, burst=2, refill=1.0):
    clock = SimulatedClock()
    service = TrendsService(
        population,
        TrendsConfig(
            rate_limit=RateLimitConfig(burst=burst, refill_per_second=refill)
        ),
        clock=clock,
    )
    client = TrendsClient(service, ip="198.18.0.1", sleep=clock.sleep)
    return clock, service, client


class TestRetryPolicy:
    def test_delay_honors_retry_after(self):
        policy = RetryPolicy(jitter=0.0)
        assert policy.delay(0, retry_after=10.0, jitter_unit=0.5) == 10.0

    def test_delay_backs_off_exponentially(self):
        policy = RetryPolicy(jitter=0.0, backoff_base=2.0)
        assert policy.delay(3, retry_after=0.0, jitter_unit=0.5) == 8.0

    def test_delay_capped(self):
        policy = RetryPolicy(jitter=0.0, max_backoff=30.0)
        assert policy.delay(50, retry_after=0.0, jitter_unit=0.5) == 30.0

    def test_jitter_bounds(self):
        policy = RetryPolicy(jitter=0.25)
        low = policy.delay(0, retry_after=10.0, jitter_unit=0.0)
        high = policy.delay(0, retry_after=10.0, jitter_unit=1.0)
        assert low == pytest.approx(7.5)
        assert high == pytest.approx(12.5)


class TestClient:
    def test_fetch_counts(self, population):
        _, _, client = make_pair(population, burst=10)
        client.interest_over_time("Internet outage", "US-TX", WEEK)
        assert client.fetches == 1
        assert client.retries == 0

    def test_retries_through_rate_limit(self, population):
        clock, service, client = make_pair(population, burst=2, refill=1.0)
        for _ in range(5):
            client.interest_over_time(
                "Internet outage", "US-TX", WEEK, include_rising=False
            )
        assert client.fetches == 5
        assert client.retries >= 3
        assert clock() > 0  # the client actually waited (virtually)

    def test_gives_up_eventually(self, population):
        clock = SimulatedClock()
        service = TrendsService(
            population,
            TrendsConfig(
                rate_limit=RateLimitConfig(burst=1, refill_per_second=0.000001)
            ),
            clock=clock,
        )
        # A sleeper that doesn't advance time: the bucket never refills.
        client = TrendsClient(
            service,
            ip="198.18.0.2",
            sleep=lambda seconds: None,
            policy=RetryPolicy(max_attempts=3),
        )
        client.interest_over_time("Internet outage", "US-TX", WEEK)
        with pytest.raises(CollectionError):
            client.interest_over_time("Internet outage", "US-TX", WEEK)

    def test_rising_queries_helper(self, population):
        _, _, client = make_pair(population, burst=10)
        rising = client.rising_queries(
            "Internet outage",
            "US-TX",
            TimeWindow(utc(2021, 1, 11), utc(2021, 1, 18)),
        )
        assert isinstance(rising, tuple)
