"""Unit tests for ground-truth outage events."""

import pytest

from repro.errors import ConfigurationError, UnknownGeoError
from repro.timeutil import TimeWindow, utc
from repro.world.events import (
    Cause,
    NewsRecord,
    OutageEvent,
    StateImpact,
    uniform_impacts,
)


def make_event(**overrides) -> OutageEvent:
    defaults = dict(
        event_id="evt-1",
        name="test event",
        cause=Cause.ISP,
        impacts=(StateImpact("TX", utc(2021, 2, 15, 10), 5, 3.0),),
        terms=("Verizon",),
    )
    defaults.update(overrides)
    return OutageEvent(**defaults)


class TestStateImpact:
    def test_window_spans_interest(self):
        impact = StateImpact("TX", utc(2021, 2, 15, 10), 5, 3.0)
        assert impact.window.start == utc(2021, 2, 15, 10)
        assert impact.window.hours == 5

    def test_lag_shifts_onset(self):
        impact = StateImpact("CA", utc(2021, 10, 4, 15), 4, 2.0, lag_hours=3)
        assert impact.onset == utc(2021, 10, 4, 18)

    def test_rejects_unknown_state(self):
        with pytest.raises(UnknownGeoError):
            StateImpact("ZZ", utc(2021, 1, 1), 1, 1.0)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ConfigurationError):
            StateImpact("TX", utc(2021, 1, 1), 0, 1.0)

    def test_rejects_nonpositive_intensity(self):
        with pytest.raises(ConfigurationError):
            StateImpact("TX", utc(2021, 1, 1), 1, 0.0)

    def test_rejects_negative_lag(self):
        with pytest.raises(ConfigurationError):
            StateImpact("TX", utc(2021, 1, 1), 1, 1.0, lag_hours=-1)


class TestOutageEvent:
    def test_footprint_and_states(self):
        event = make_event(
            impacts=uniform_impacts(("TX", "OK", "LA"), utc(2021, 2, 15, 10), 5, 3.0)
        )
        assert event.footprint == 3
        assert set(event.states) == {"TX", "OK", "LA"}

    def test_rejects_duplicate_states(self):
        impacts = (
            StateImpact("TX", utc(2021, 1, 1), 1, 1.0),
            StateImpact("TX", utc(2021, 1, 2), 1, 1.0),
        )
        with pytest.raises(ConfigurationError):
            make_event(impacts=impacts)

    def test_rejects_empty_impacts(self):
        with pytest.raises(ConfigurationError):
            make_event(impacts=())

    def test_start_end_cover_lagged_impacts(self):
        impacts = (
            StateImpact("TX", utc(2021, 1, 1, 0), 2, 1.0),
            StateImpact("OK", utc(2021, 1, 1, 0), 4, 1.0, lag_hours=6),
        )
        event = make_event(impacts=impacts)
        assert event.start == utc(2021, 1, 1, 0)
        assert event.end == utc(2021, 1, 1, 10)

    def test_impact_lookup(self):
        event = make_event()
        assert event.impact_on("TX") is not None
        assert event.impact_on("CA") is None

    def test_overlaps_window(self):
        event = make_event()
        inside = TimeWindow(utc(2021, 2, 15), utc(2021, 2, 16))
        outside = TimeWindow(utc(2021, 3, 1), utc(2021, 3, 2))
        assert event.overlaps(inside)
        assert not event.overlaps(outside)


class TestAntVisibility:
    @pytest.mark.parametrize(
        "cause,visible",
        [
            (Cause.ISP, True),
            (Cause.POWER_WEATHER, True),
            (Cause.POWER_GRID, True),
            (Cause.OTHER, True),
            (Cause.MOBILE, False),  # the T-Mobile case
            (Cause.CLOUD, False),  # the Akamai case
            (Cause.APPLICATION, False),  # the Youtube case
        ],
    )
    def test_network_visibility_by_cause(self, cause, visible):
        assert make_event(cause=cause).network_visible is visible

    def test_power_relatedness(self):
        assert Cause.POWER_WEATHER.is_power_related
        assert Cause.POWER_GRID.is_power_related
        assert not Cause.ISP.is_power_related


class TestHelpers:
    def test_uniform_impacts_with_lags(self):
        impacts = uniform_impacts(
            ("CA", "NV"), utc(2021, 1, 1), 3, 2.0, lag_hours={"NV": 2}
        )
        by_state = {impact.state: impact for impact in impacts}
        assert by_state["CA"].lag_hours == 0
        assert by_state["NV"].lag_hours == 2

    def test_news_record(self):
        event = make_event(news=NewsRecord("Outage hits Texas", "Example Wire"))
        assert event.news.source == "Example Wire"
