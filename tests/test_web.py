"""Tests for the web interface (routing logic + a live HTTP roundtrip)."""

import json
import urllib.request

import pytest

from repro.web import SiftWebApp, serve


@pytest.fixture(scope="module")
def app(mini_study):
    return SiftWebApp(mini_study)


class TestRouting:
    def test_index_html(self, app):
        status, content_type, body = app.handle_path("/")
        assert status == 200
        assert content_type.startswith("text/html")
        assert "SIFT" in body

    def test_geos(self, app):
        status, _, body = app.handle_path("/api/geos")
        assert status == 200
        geos = json.loads(body)
        assert "US-TX" in geos

    def test_timeline(self, app):
        status, _, body = app.handle_path("/api/timeline?geo=US-TX")
        assert status == 200
        payload = json.loads(body)
        assert payload["geo"] == "US-TX"
        assert payload["hours"] == len(payload["values"])

    def test_timeline_window(self, app):
        status, _, body = app.handle_path(
            "/api/timeline?geo=US-TX"
            "&start=2021-02-14T00:00:00&end=2021-02-21T00:00:00"
        )
        assert status == 200
        assert json.loads(body)["hours"] == 168

    def test_spikes(self, app):
        status, _, body = app.handle_path("/api/spikes?geo=US-TX&min_hours=5")
        assert status == 200
        payload = json.loads(body)
        assert payload["count"] == len(payload["spikes"])
        assert all(s["geo"] == "US-TX" for s in payload["spikes"])

    def test_outages(self, app):
        status, _, body = app.handle_path("/api/outages?min_states=2")
        assert status == 200
        payload = json.loads(body)
        assert all(o["footprint"] >= 2 for o in payload["outages"])

    def test_missing_geo_is_400(self, app):
        status, _, body = app.handle_path("/api/timeline")
        assert status == 400
        assert "geo" in json.loads(body)["error"]

    def test_unknown_geo_is_400(self, app):
        status, _, _ = app.handle_path("/api/timeline?geo=US-ZZ")
        assert status == 400

    def test_unknown_path_is_404(self, app):
        status, _, _ = app.handle_path("/api/nonsense")
        assert status == 404

    def test_bad_parameter_is_400(self, app):
        status, _, _ = app.handle_path("/api/spikes?geo=US-TX&min_hours=soon")
        assert status == 400


class TestLiveServer:
    def test_http_roundtrip(self, mini_study):
        server, _thread = serve(mini_study, port=0)
        try:
            host, port = server.server_address[:2]
            with urllib.request.urlopen(
                f"http://{host}:{port}/api/geos", timeout=5
            ) as response:
                assert response.status == 200
                geos = json.loads(response.read())
                assert "US-TX" in geos
        finally:
            server.shutdown()
