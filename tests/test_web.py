"""Tests for the web interface (routing logic + live HTTP roundtrips)."""

import gzip
import http.client
import json
import urllib.request

import pytest

from repro.web import SiftWebApp, serve


@pytest.fixture(scope="module")
def app(mini_study):
    return SiftWebApp(mini_study)


class TestRouting:
    def test_index_html(self, app):
        status, content_type, body = app.handle_path("/")
        assert status == 200
        assert content_type.startswith("text/html")
        assert "SIFT" in body

    def test_geos(self, app):
        status, _, body = app.handle_path("/api/geos")
        assert status == 200
        geos = json.loads(body)
        assert "US-TX" in geos

    def test_timeline(self, app):
        status, _, body = app.handle_path("/api/timeline?geo=US-TX")
        assert status == 200
        payload = json.loads(body)
        assert payload["geo"] == "US-TX"
        assert payload["hours"] == len(payload["values"])

    def test_timeline_window(self, app):
        status, _, body = app.handle_path(
            "/api/timeline?geo=US-TX"
            "&start=2021-02-14T00:00:00&end=2021-02-21T00:00:00"
        )
        assert status == 200
        assert json.loads(body)["hours"] == 168

    def test_timeline_aggregates_match_values(self, app):
        _, _, body = app.handle_path(
            "/api/timeline?geo=US-TX"
            "&start=2021-02-14T00:00:00&end=2021-02-21T00:00:00"
        )
        payload = json.loads(body)
        values = payload["values"]
        assert payload["peak"] == pytest.approx(max(values), abs=1e-3)
        assert payload["mean"] == pytest.approx(
            sum(values) / len(values), abs=1e-2
        )
        assert payload["nonzero_hours"] == sum(1 for v in values if v > 0)

    def test_timeline_window_out_of_range_is_400(self, app):
        status, _, _ = app.handle_path(
            "/api/timeline?geo=US-TX&end=2030-01-01T00:00:00"
        )
        assert status == 400

    def test_spikes(self, app):
        status, _, body = app.handle_path("/api/spikes?geo=US-TX&min_hours=5")
        assert status == 200
        payload = json.loads(body)
        assert payload["count"] == len(payload["spikes"])
        assert all(s["geo"] == "US-TX" for s in payload["spikes"])

    def test_spikes_filter_matches_study(self, app, mini_study):
        _, _, body = app.handle_path("/api/spikes?geo=US-TX&min_hours=3")
        payload = json.loads(body)
        expected = [
            spike.to_dict()
            for spike in mini_study.spikes.in_state("US-TX")
            if spike.duration_hours >= 3
        ]
        assert payload["spikes"] == expected

    def test_outages(self, app):
        status, _, body = app.handle_path("/api/outages?min_states=2")
        assert status == 200
        payload = json.loads(body)
        assert all(o["footprint"] >= 2 for o in payload["outages"])

    def test_outages_chronological_and_complete(self, app, mini_study):
        _, _, body = app.handle_path("/api/outages")
        payload = json.loads(body)
        assert payload["count"] == len(mini_study.outages)
        assert [o["label"] for o in payload["outages"]] == [
            outage.label for outage in mini_study.outages
        ]

    def test_summary(self, app, mini_study):
        status, _, body = app.handle_path("/api/summary")
        assert status == 200
        payload = json.loads(body)
        assert payload["spike_count"] == mini_study.spike_count
        assert payload["outage_count"] == len(mini_study.outages)
        assert payload["fingerprint"] == mini_study.fingerprint()

    def test_missing_geo_is_400(self, app):
        status, _, body = app.handle_path("/api/timeline")
        assert status == 400
        assert "geo" in json.loads(body)["error"]

    def test_unknown_geo_is_400(self, app):
        status, _, _ = app.handle_path("/api/timeline?geo=US-ZZ")
        assert status == 400

    def test_unknown_path_is_404(self, app):
        status, _, _ = app.handle_path("/api/nonsense")
        assert status == 404

    def test_bad_parameter_is_400(self, app):
        status, _, _ = app.handle_path("/api/spikes?geo=US-TX&min_hours=soon")
        assert status == 400

    def test_duplicated_parameter_is_400(self, app):
        status, _, body = app.handle_path("/api/timeline?geo=US-TX&geo=US-CA")
        assert status == 400
        assert "duplicated" in json.loads(body)["error"]

    def test_unknown_parameter_is_400(self, app):
        status, _, body = app.handle_path("/api/outages?bogus=1")
        assert status == 400
        assert "bogus" in json.loads(body)["error"]

    def test_runtime_reports_reconstruction_backend(self, app, mini_study):
        status, _, body = app.handle_path("/api/runtime")
        assert status == 200
        reconstruction = json.loads(body)["reconstruction"]
        assert reconstruction["stitcher"] == "overlap_ratio"
        assert reconstruction["averager"] == "mean"
        per_geo = reconstruction["per_geo"]
        assert set(per_geo) == set(mini_study.states)
        for geo, summary in per_geo.items():
            report = mini_study.states[geo].averaging.stitch_report
            assert summary["frames"] == report.frames >= 1
            assert summary["carried_ratios"] == report.carried_ratios
            assert summary["carried_positions"] == list(report.carried_positions)
            assert summary["ratio_spread"] >= 1.0


class TestEncoding:
    def test_compact_by_default(self, app):
        _, _, body = app.handle_path("/api/outages")
        assert "\n" not in body
        assert '": ' not in body

    def test_pretty_opt_in(self, app):
        _, _, compact = app.handle_path("/api/outages")
        _, _, pretty = app.handle_path("/api/outages?pretty=1")
        assert "\n" in pretty
        assert json.loads(pretty) == json.loads(compact)

    def test_gzip_negotiated(self, app):
        identity = app.handle_request("/api/timeline?geo=US-TX")
        zipped = app.handle_request(
            "/api/timeline?geo=US-TX", headers={"Accept-Encoding": "gzip, br"}
        )
        assert zipped.header("Content-Encoding") == "gzip"
        assert gzip.decompress(zipped.body) == identity.body
        assert zipped.header("ETag") != identity.header("ETag")

    def test_small_bodies_skip_gzip(self, app):
        response = app.handle_request(
            "/api/geos", headers={"Accept-Encoding": "gzip"}
        )
        assert response.header("Content-Encoding") is None


class TestLiveServer:
    @pytest.fixture(scope="class")
    def server(self, mini_study):
        server, _thread = serve(mini_study, port=0)
        yield server
        server.shutdown()

    def _connection(self, server):
        host, port = server.server_address[:2]
        return http.client.HTTPConnection(host, port, timeout=5)

    def test_http_roundtrip(self, server):
        host, port = server.server_address[:2]
        with urllib.request.urlopen(
            f"http://{host}:{port}/api/geos", timeout=5
        ) as response:
            assert response.status == 200
            geos = json.loads(response.read())
            assert "US-TX" in geos

    def test_content_length_on_success_and_errors(self, server):
        connection = self._connection(server)
        for path, expected_status in (
            ("/api/geos", 200),
            ("/api/nonsense", 404),
            ("/api/timeline", 400),
        ):
            connection.request("GET", path)
            response = connection.getresponse()
            body = response.read()
            assert response.status == expected_status
            assert int(response.headers["Content-Length"]) == len(body)
            if expected_status != 200:
                assert response.headers["Content-Type"] == "application/json"
                assert "error" in json.loads(body)
        connection.close()

    def test_head_matches_get(self, server):
        connection = self._connection(server)
        connection.request("GET", "/api/timeline?geo=US-TX")
        get_response = connection.getresponse()
        get_body = get_response.read()
        connection.request("HEAD", "/api/timeline?geo=US-TX")
        head_response = connection.getresponse()
        head_body = head_response.read()
        assert head_response.status == 200
        assert head_body == b""
        assert int(head_response.headers["Content-Length"]) == len(get_body)
        assert head_response.headers["ETag"] == get_response.headers["ETag"]
        connection.close()

    def test_etag_roundtrip_over_http(self, server):
        connection = self._connection(server)
        connection.request("GET", "/api/outages")
        first = connection.getresponse()
        body = first.read()
        etag = first.headers["ETag"]
        assert etag and body
        connection.request("GET", "/api/outages", headers={"If-None-Match": etag})
        second = connection.getresponse()
        assert second.status == 304
        assert second.read() == b""
        assert second.headers["ETag"] == etag
        connection.close()

    def test_gzip_over_http(self, server):
        connection = self._connection(server)
        connection.request("GET", "/api/timeline?geo=US-TX")
        plain = connection.getresponse().read()
        connection.request(
            "GET",
            "/api/timeline?geo=US-TX",
            headers={"Accept-Encoding": "gzip"},
        )
        response = connection.getresponse()
        assert response.headers["Content-Encoding"] == "gzip"
        assert gzip.decompress(response.read()) == plain
        connection.close()
