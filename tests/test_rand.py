"""Unit tests for counter-based deterministic randomness."""

import numpy as np

from repro.rand import hashed_normal, hashed_uniform, stable_key, substream


class TestStableKey:
    def test_deterministic(self):
        assert stable_key("a", 1, "b") == stable_key("a", 1, "b")

    def test_sensitive_to_order(self):
        assert stable_key("a", "b") != stable_key("b", "a")

    def test_sensitive_to_boundaries(self):
        # ("ab", "c") must differ from ("a", "bc")
        assert stable_key("ab", "c") != stable_key("a", "bc")

    def test_fits_in_64_bits(self):
        assert 0 <= stable_key("anything", 123) < 2**64


class TestHashedUniform:
    def test_pure_function_of_inputs(self):
        indices = np.arange(100, dtype=np.uint64)
        left = hashed_uniform(42, indices)
        right = hashed_uniform(42, indices)
        np.testing.assert_array_equal(left, right)

    def test_chunking_invariance(self):
        """Computing a window in pieces must agree with one shot."""
        indices = np.arange(1000, dtype=np.uint64)
        whole = hashed_uniform(7, indices)
        pieces = np.concatenate(
            [hashed_uniform(7, indices[:300]), hashed_uniform(7, indices[300:])]
        )
        np.testing.assert_array_equal(whole, pieces)

    def test_in_unit_interval_exclusive(self):
        values = hashed_uniform(1, np.arange(10_000, dtype=np.uint64))
        assert values.min() > 0.0
        assert values.max() < 1.0

    def test_different_keys_decorrelate(self):
        indices = np.arange(10_000, dtype=np.uint64)
        a = hashed_uniform(1, indices)
        b = hashed_uniform(2, indices)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.05

    def test_different_salts_decorrelate(self):
        indices = np.arange(10_000, dtype=np.uint64)
        a = hashed_uniform(1, indices, salt=0)
        b = hashed_uniform(1, indices, salt=1)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.05

    def test_roughly_uniform(self):
        values = hashed_uniform(3, np.arange(50_000, dtype=np.uint64))
        histogram, _ = np.histogram(values, bins=10, range=(0, 1))
        assert histogram.min() > 4500
        assert histogram.max() < 5500


class TestHashedNormal:
    def test_moments(self):
        values = hashed_normal(11, np.arange(100_000, dtype=np.uint64))
        assert abs(values.mean()) < 0.02
        assert abs(values.std() - 1.0) < 0.02

    def test_deterministic(self):
        indices = np.arange(64, dtype=np.uint64)
        np.testing.assert_array_equal(
            hashed_normal(5, indices), hashed_normal(5, indices)
        )

    def test_finite(self):
        values = hashed_normal(9, np.arange(100_000, dtype=np.uint64))
        assert np.isfinite(values).all()


class TestSubstream:
    def test_same_name_same_stream(self):
        a = substream(1, "alpha").random(5)
        b = substream(1, "alpha").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_names_differ(self):
        a = substream(1, "alpha").random(5)
        b = substream(1, "beta").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = substream(1, "alpha").random(5)
        b = substream(2, "alpha").random(5)
        assert not np.array_equal(a, b)
