"""Unit tests for the complaint-based (Downdetector) baseline."""

import numpy as np
import pytest

from repro.complaints import (
    ComplaintStream,
    Downdetector,
    DowndetectorConfig,
    detect_incidents,
    tracked_services,
)
from repro.errors import ConfigurationError, UnknownTermError
from repro.timeutil import TimeWindow, utc
from repro.world.events import Cause, OutageEvent, StateImpact
from repro.world.scenarios import Scenario, ScenarioConfig


def lab_scenario(events=()) -> Scenario:
    config = ScenarioConfig(
        start=utc(2021, 4, 1),
        end=utc(2021, 5, 1),
        background_scale=0.0,
        include_headline_events=False,
    )
    return Scenario(config, tuple(events))


def verizon_event(intensity=12.0, hours=6):
    return OutageEvent(
        event_id="lab-verizon",
        name="Verizon outage",
        cause=Cause.ISP,
        impacts=(
            StateImpact("NY", utc(2021, 4, 10, 15), hours, intensity),
            StateImpact("NJ", utc(2021, 4, 10, 15), hours, intensity * 0.7),
        ),
        terms=("Verizon",),
    )


class TestComplaintStream:
    def test_tracked_services_cover_service_categories(self):
        services = tracked_services()
        assert "Verizon" in services
        assert "Fastly" in services
        assert "Facebook" in services
        assert "Power outage" not in services  # causes have no page

    def test_counts_shape_and_type(self):
        stream = ComplaintStream(lab_scenario())
        counts = stream.counts("Verizon")
        assert counts.shape == (stream.window.hours,)
        assert (counts >= 0).all()

    def test_unknown_service_rejected(self):
        stream = ComplaintStream(lab_scenario())
        with pytest.raises(UnknownTermError):
            stream.counts("Carrier Pigeon Networks")

    def test_event_raises_complaints_for_named_service(self):
        stream = ComplaintStream(lab_scenario([verizon_event()]))
        window = TimeWindow(utc(2021, 4, 10), utc(2021, 4, 11))
        quiet = TimeWindow(utc(2021, 4, 3), utc(2021, 4, 4))
        assert stream.counts("Verizon", window).max() > (
            5 * stream.counts("Verizon", quiet).max()
        )

    def test_other_services_unaffected(self):
        stream = ComplaintStream(lab_scenario([verizon_event()]))
        window = TimeWindow(utc(2021, 4, 10), utc(2021, 4, 11))
        quiet = TimeWindow(utc(2021, 4, 3), utc(2021, 4, 4))
        assert stream.counts("Comcast", window).max() < (
            3 * stream.counts("Comcast", quiet).max() + 10
        )

    def test_complaints_aggregate_across_states(self):
        """No geography: NY and NJ users land on the same counter."""
        both = ComplaintStream(lab_scenario([verizon_event()]))
        single_event = verizon_event()
        single = ComplaintStream(
            lab_scenario(
                [
                    OutageEvent(
                        event_id="lab-verizon-ny",
                        name="NY only",
                        cause=Cause.ISP,
                        impacts=(single_event.impacts[0],),
                        terms=("Verizon",),
                    )
                ]
            )
        )
        window = TimeWindow(utc(2021, 4, 10), utc(2021, 4, 11))
        assert both.counts("Verizon", window).max() > single.counts(
            "Verizon", window
        ).max()

    def test_deterministic(self):
        scenario = lab_scenario([verizon_event()])
        a = ComplaintStream(scenario).counts("Verizon")
        b = ComplaintStream(scenario).counts("Verizon")
        np.testing.assert_array_equal(a, b)


class TestDowndetector:
    def test_detects_the_outage(self):
        stream = ComplaintStream(lab_scenario([verizon_event()]))
        incidents = detect_incidents(stream, "Verizon")
        assert incidents
        hit = incidents[0]
        assert hit.start.date().isoformat() == "2021-04-10"
        assert hit.duration_hours >= 2

    def test_quiet_service_no_incidents(self):
        stream = ComplaintStream(lab_scenario([verizon_event()]))
        assert detect_incidents(stream, "Netflix") == []

    def test_weak_event_below_threshold(self):
        stream = ComplaintStream(lab_scenario([verizon_event(intensity=0.2, hours=1)]))
        assert detect_incidents(stream, "Verizon") == []

    def test_all_incidents_sorted(self):
        stream = ComplaintStream(lab_scenario([verizon_event()]))
        portal = Downdetector(stream)
        incidents = portal.all_incidents()
        starts = [incident.start for incident in incidents]
        assert starts == sorted(starts)

    def test_incident_overlapping(self):
        stream = ComplaintStream(lab_scenario([verizon_event()]))
        portal = Downdetector(stream)
        window = TimeWindow(utc(2021, 4, 10, 12), utc(2021, 4, 11))
        assert portal.incident_overlapping("Verizon", window) is not None
        assert portal.incident_overlapping("Netflix", window) is None

    def test_incidents_have_no_geography(self):
        """The structural limitation: an Incident carries a service and
        times, never a state."""
        stream = ComplaintStream(lab_scenario([verizon_event()]))
        incident = detect_incidents(stream, "Verizon")[0]
        assert not hasattr(incident, "state")
        assert not hasattr(incident, "geo")

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            DowndetectorConfig(baseline_hours=0)
        with pytest.raises(ConfigurationError):
            DowndetectorConfig(threshold_ratio=1.0)
        with pytest.raises(ConfigurationError):
            DowndetectorConfig(min_hours=0)
