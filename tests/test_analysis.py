"""Unit tests for the evaluation analytics (figures/tables as functions)."""

from datetime import timedelta

import pytest

from repro.analysis import (
    daily_distribution,
    duration_cdf,
    footprint_cdf,
    long_lasting_ratio,
    long_spike_share,
    monthly_power_long_spikes,
    most_extensive_table,
    most_impactful,
    power_annotated,
    power_share_of_long_spikes,
    state_cdf,
    top_power_outages_by_state,
    yearly_counts,
)
from repro.core.area import Outage
from repro.core.spikes import Spike, SpikeSet
from repro.timeutil import utc


def spike(geo="US-TX", peak=utc(2021, 2, 15, 12), duration=3, annotations=(), magnitude=50.0):
    return Spike(
        term="Internet outage",
        geo=geo,
        start=peak,
        peak=peak,
        end=peak + timedelta(hours=duration - 1),
        magnitude=magnitude,
        annotations=annotations,
    )


@pytest.fixture()
def spikes():
    items = []
    # Texas hosts 4 spikes, California 2, Wyoming 1.
    items.append(spike("US-TX", utc(2021, 2, 15, 12), 45, ("Power outage", "Winter storm")))
    items.append(spike("US-TX", utc(2021, 1, 26, 16), 6, ("Verizon",)))
    items.append(spike("US-TX", utc(2020, 3, 2, 10), 1))
    items.append(spike("US-TX", utc(2020, 7, 4, 10), 2))
    items.append(spike("US-CA", utc(2020, 9, 6, 18), 18, ("Power outage", "Heat wave")))
    items.append(spike("US-CA", utc(2021, 6, 8, 9), 2, ("Fastly",)))
    items.append(spike("US-WY", utc(2020, 5, 1, 12), 1))
    return SpikeSet(items)


class TestStateCdf:
    def test_ranking(self, spikes):
        cdf = state_cdf(spikes)
        assert cdf.states[0] == "TX"
        assert cdf.counts[0] == 4

    def test_cumulative_reaches_one(self, spikes):
        cdf = state_cdf(spikes)
        assert cdf.cumulative[-1] == pytest.approx(1.0)

    def test_share_of_top(self, spikes):
        cdf = state_cdf(spikes)
        assert cdf.share_of_top(1) == pytest.approx(4 / 7)
        assert cdf.share_of_top(2) == pytest.approx(6 / 7)
        assert cdf.share_of_top(100) == pytest.approx(1.0)
        assert cdf.share_of_top(0) == 0.0


class TestDurationCdf:
    def test_fraction_at_least(self, spikes):
        cdf = duration_cdf(spikes)
        assert cdf.fraction_at_least(1) == pytest.approx(1.0)
        assert cdf.fraction_at_least(3) == pytest.approx(3 / 7)
        assert cdf.fraction_at_least(46) == pytest.approx(0.0)

    def test_empty(self):
        cdf = duration_cdf(SpikeSet([]))
        assert cdf.hours.size == 0


class TestImpactTables:
    def test_most_impactful_ordering(self, spikes):
        rows = most_impactful(spikes, count=3)
        assert [row.duration_hours for row in rows] == [45, 18, 6]
        assert rows[0].state == "TX"
        assert rows[0].outage == "Power outage"

    def test_label_style(self, spikes):
        rows = most_impactful(spikes, count=1)
        assert rows[0].label == "15 Feb. 2021-12h"

    def test_unannotated_row(self, spikes):
        rows = most_impactful(spikes, count=7)
        assert any(row.outage == "(unannotated)" for row in rows)

    def test_yearly_counts(self, spikes):
        assert yearly_counts(spikes) == {2020: 4, 2021: 3}

    def test_long_lasting_ratio(self, spikes):
        # 2020 has one >=5h spike (CA 18h), 2021 has two (45h, 6h).
        assert long_lasting_ratio(spikes) == pytest.approx(0.5)


class TestDaily:
    def test_fractions_sum_to_one(self, spikes):
        dist = daily_distribution(spikes)
        assert dist.fractions.sum() == pytest.approx(1.0)

    def test_local_time_weekday(self):
        # 03:00 UTC Saturday is Friday evening in California.
        dist = daily_distribution(
            SpikeSet([spike("US-CA", utc(2021, 6, 5, 3), 1)])
        )
        assert dist.counts[4] == 1  # Friday
        assert dist.counts[5] == 0

    def test_weekend_dip_metric(self):
        items = [
            spike("US-TX", utc(2021, 3, 1, 18) + timedelta(days=i), 1)
            for i in range(5)  # Mon..Fri
        ]
        dist = daily_distribution(SpikeSet(items))
        assert dist.weekend_dip == float("inf")


class TestAreaStats:
    @pytest.fixture()
    def outages(self, spikes):
        groups = [
            Outage(spikes=tuple(spikes.in_state("TX"))),
            Outage(spikes=tuple(spikes.in_state("CA"))),
            Outage(spikes=tuple(spikes.in_state("WY"))),
        ]
        return groups

    def test_footprint_cdf(self, outages):
        cdf = footprint_cdf(outages)
        assert cdf.fraction_at_least(1) == pytest.approx(1.0)
        assert cdf.fraction_at_least(2) == pytest.approx(0.0)

    def test_most_extensive_table(self, outages):
        rows = most_extensive_table(outages, count=2)
        assert all(row.footprint == 1 for row in rows)
        assert rows[0].name != ""

    def test_empty_cdf(self):
        cdf = footprint_cdf([])
        assert cdf.fraction_at_least(10) == 1.0  # vacuous: no outages below


class TestContextStats:
    def test_power_annotated_filter(self, spikes):
        power = power_annotated(spikes)
        assert len(power) == 2
        assert all(s.has_annotation({"Power outage", "Electric power"}) for s in power)

    def test_power_share_of_long(self, spikes):
        # >=5h spikes: TX 45h (power), TX 6h (Verizon), CA 18h (power).
        assert power_share_of_long_spikes(spikes) == pytest.approx(2 / 3)

    def test_long_spike_share(self, spikes):
        assert long_spike_share(spikes) == pytest.approx(3 / 7)

    def test_monthly_power_long(self, spikes):
        monthly = monthly_power_long_spikes(spikes)
        assert monthly == {(2020, 9): 1, (2021, 2): 1}

    def test_top_power_by_state_one_row_per_state(self, spikes):
        rows = top_power_outages_by_state(spikes)
        states = [row.state for row in rows]
        assert len(states) == len(set(states))
        assert rows[0].duration_hours == 45

    def test_cause_hint_prefers_weather(self, spikes):
        rows = top_power_outages_by_state(spikes)
        assert rows[0].cause_hint == "Winter storm"
        assert rows[1].cause_hint == "Heat wave"

    def test_empty_set(self):
        empty = SpikeSet([])
        assert power_share_of_long_spikes(empty) == 0.0
        assert long_spike_share(empty) == 0.0
        assert monthly_power_long_spikes(empty) == {}
