"""Chaos soaks over the fault-injecting Trends service.

Every test here runs on virtual time (:class:`SimulatedClock`) — a
soak that injects minutes of timeouts and blackouts finishes in well
under a second of wall clock.  The properties proved:

* every named fault profile completes the study, in serial and with
  four analysis workers;
* chaos runs are bit-reproducible: ``(profile, seed)`` determines the
  injected faults, the fault report, and the study output exactly;
* when nothing is dead-lettered the spike set is *identical* to the
  fault-free golden run — retries and reassignment fully absorb the
  injected faults;
* every injected fault is observed exactly once by a client retry
  (exactly-once accounting between injector and crawl);
* per-IP blackouts trip the circuit breaker within its failure
  threshold, work is reassigned, and the breaker recovers through
  half-open probes once the IP comes back;
* dead letters are recorded exactly once per work item even under
  concurrent single-flight callers, and the pipeline degrades
  gracefully (bounded frame loss, progress events) instead of dying.

``CHAOS_SEED`` in the environment re-runs the soaks under a different
fault schedule (the CI matrix does this); every property is seed-
independent.
"""

import json
import os
import signal
import threading
import time

import pytest

from repro.collection.breaker import BreakerConfig
from repro.collection.database import CollectionDatabase
from repro.collection.fetchers import WorkItem, build_fleet
from repro.collection.scheduler import CollectionScheduler
from repro.core import SiftConfig
from repro.core.averaging import AveragingConfig
from repro.core.progress import CrawlStats, FaultStats, FramesDropped, ProgressLog
from repro.errors import FrameDeadLettered, TransientServiceError
from repro.runtime.study import StudyRuntime
from repro.timeutil import TimeWindow, utc
from repro.trends.faults import PROFILES, FaultProfile
from repro.trends.ratelimit import SimulatedClock
from repro.web.app import SiftWebApp

#: Overridable by the CI chaos-smoke matrix; every assertion below is
#: a property of *any* seed, not of one blessed schedule.
SEED = int(os.environ.get("CHAOS_SEED", "7"))
GEOS = ("US-TX", "US-CA")
START, END = utc(2021, 1, 1), utc(2021, 2, 1)
SIFT = SiftConfig(annotate=False)
PROFILE_NAMES = tuple(sorted(PROFILES))
WEEK = TimeWindow(utc(2021, 1, 4), utc(2021, 1, 11))


@pytest.fixture(autouse=True)
def _hang_guard():
    """Fail loudly instead of hanging if virtual time ever regresses.

    A scheduling bug under chaos shows up as a deadlocked lease or an
    endless retry loop; without a guard that reads as a frozen test
    run.  (CI additionally runs this file under pytest-timeout.)
    """
    if not hasattr(signal, "SIGALRM") or threading.current_thread() is not threading.main_thread():
        yield
        return

    def _expired(signum, frame):
        raise RuntimeError("chaos test exceeded the 120 s hang guard")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(120)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def run_chaos(profile, seed=SEED, workers=1, fetchers=4, sift=SIFT, progress=None):
    """One small study under the given fault profile; returns (study, report)."""
    runtime = StudyRuntime.build(
        background_scale=0.3,
        start=START,
        end=END,
        fetcher_count=fetchers,
        max_workers=workers,
        checkpoint=False,
        sift=sift,
        faults=profile,
        fault_seed=seed,
        progress=progress,
    )
    try:
        study = runtime.run_study(GEOS)
        return study, runtime.fault_report()
    finally:
        runtime.close()


def spike_dicts(study) -> list[dict]:
    return [spike.to_dict() for spike in study.spikes]


@pytest.fixture(scope="module")
def golden_spikes():
    """The fault-free study output every absorbed-chaos run must match."""
    study, report = run_chaos(None)
    assert report is None  # no injector configured at all
    return spike_dicts(study)


class TestChaosSoak:
    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("profile", PROFILE_NAMES)
    def test_every_profile_completes_and_matches_golden(
        self, profile, workers, golden_spikes
    ):
        """Absorbed faults leave no trace on the study output."""
        study, report = run_chaos(profile, workers=workers)
        assert report is not None
        assert report.profile == profile
        assert report.seed == SEED
        assert report.dead_letters == 0  # these profiles are absorbable
        assert spike_dicts(study) == golden_spikes

    @pytest.mark.parametrize("profile", PROFILE_NAMES)
    def test_chaos_runs_are_bit_reproducible(self, profile):
        """Same (profile, seed) ⇒ identical faults, report, and spikes."""
        first_study, first_report = run_chaos(profile)
        second_study, second_report = run_chaos(profile)
        assert first_report.to_dict() == second_report.to_dict()
        assert spike_dicts(first_study) == spike_dicts(second_study)

    def test_parallel_spikes_match_serial(self):
        """Four analysis workers cannot perturb the detected spikes."""
        serial, _ = run_chaos("hostile", workers=1)
        parallel, parallel_report = run_chaos("hostile", workers=4)
        assert spike_dicts(parallel) == spike_dicts(serial)
        assert parallel_report.dead_letters == 0

    def test_seed_changes_the_injection_schedule(self):
        _, first = run_chaos("hostile", seed=SEED)
        _, second = run_chaos("hostile", seed=SEED + 1)
        assert first.to_dict() != second.to_dict()

    def test_none_profile_is_transparent(self):
        """The wrapper with the null profile injects exactly nothing."""
        _, report = run_chaos("none")
        assert report.total_injected == 0
        assert report.retries == 0
        assert report.dead_letters == 0
        assert report.breaker_opened == 0

    def test_chaos_spends_no_real_time_sleeping(self, monkeypatch):
        """Timeouts, backoff, and cooldowns all ride the virtual clock."""

        def _real_sleep_is_a_bug(seconds):
            raise AssertionError(f"real time.sleep({seconds!r}) during a chaos soak")

        monkeypatch.setattr(time, "sleep", _real_sleep_is_a_bug)
        _, report = run_chaos("hostile")
        assert report.total_injected > 0


class TestExactlyOnceAccounting:
    """Every injected fault surfaces as exactly one observed retry cause."""

    @pytest.mark.parametrize("profile", PROFILE_NAMES)
    def test_observed_retries_match_injected_faults(self, profile):
        _, report = run_chaos(profile)
        injected, observed = dict(report.injected), dict(report.observed)
        # Blackout rejections surface to the client as 503-style errors.
        assert observed.get("TransientServiceError", 0) == (
            injected["transient"] + injected["blackout"]
        )
        assert observed.get("RequestTimeout", 0) == injected["timeout"]
        assert observed.get("TruncatedFrameError", 0) == injected["truncated"]
        assert observed.get("DegradedFrameError", 0) == injected["degraded"]
        # A quota reset drains the bucket, so the very request that
        # triggered it is rate-limited at least once.
        assert observed.get("RateLimitError", 0) >= injected["quota_reset"]
        # Nothing is double-counted and nothing vanishes.
        assert sum(observed.values()) == report.retries


class TestBreakerShedsLoad:
    THRESHOLD = BreakerConfig().failure_threshold

    def test_dark_ips_stop_receiving_requests(self):
        """A blacked-out IP sees at most threshold + probe requests."""
        study, report = run_chaos("blackout")
        assert report.injected["blackout"] > 0
        assert report.breaker_opened >= 1
        assert report.blackout_rejections  # at least one IP went dark
        for ip, rejected in report.blackout_rejections.items():
            # The breaker opens after THRESHOLD consecutive failures;
            # each later hit is a single half-open probe.
            assert rejected <= self.THRESHOLD + report.breaker_half_opened, ip
        # The rest of the fleet absorbed the reassigned work.
        assert report.dead_letters == 0
        assert study.spike_count > 0

    def test_breaker_recovers_once_the_blackout_lifts(self, golden_spikes):
        """With a single unit the crawl *must* ride out the blackout:
        open, wait out the cooldown on virtual time, half-open probe,
        close, finish — and still produce the golden spikes."""
        study, report = run_chaos("blackout", fetchers=1)
        assert report.breaker_opened >= 1
        assert report.breaker_half_opened >= 1
        assert report.breaker_closed >= 1  # a probe succeeded: recovery
        for rejected in report.blackout_rejections.values():
            assert rejected <= self.THRESHOLD + report.breaker_half_opened
        assert report.dead_letters == 0
        assert spike_dicts(study) == golden_spikes


class _AlwaysDown:
    """A service whose first caller blocks on a gate, then everyone 503s."""

    def __init__(self, gate: threading.Event) -> None:
        self.gate = gate
        self.calls = 0
        self._lock = threading.Lock()

    def fetch(self, request, *, ip, sample_round=None, include_rising=True):
        with self._lock:
            self.calls += 1
            first = self.calls == 1
        if first:
            self.gate.wait(timeout=30)
        raise TransientServiceError("503: backend unavailable")


class TestDeadLetters:
    def test_dead_letter_recorded_exactly_once_across_threads(self):
        """Concurrent callers of a doomed item share one DLQ record."""
        gate = threading.Event()
        service = _AlwaysDown(gate)
        clock = SimulatedClock()
        fleet = build_fleet(service, 2, sleep=clock.sleep, clock=clock)
        scheduler = CollectionScheduler(fleet, CollectionDatabase())
        item = WorkItem("Internet outage", "US-TX", WEEK)

        failures: list[FrameDeadLettered] = []
        failures_lock = threading.Lock()

        def crawl():
            try:
                scheduler.fetch_one(item)
            except FrameDeadLettered as error:
                with failures_lock:
                    failures.append(error)

        owner = threading.Thread(target=crawl)
        owner.start()
        deadline = time.monotonic() + 10
        while service.calls == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        assert service.calls == 1  # the owner is parked on the gate
        waiters = [threading.Thread(target=crawl) for _ in range(7)]
        for thread in waiters:
            thread.start()
        time.sleep(0.2)  # let every waiter join the single flight
        gate.set()
        owner.join(timeout=30)
        for thread in waiters:
            thread.join(timeout=30)

        assert len(failures) == 8  # every caller saw the dead letter
        assert len(scheduler.dead_letters) == 1  # ... recorded exactly once
        (entry,) = scheduler.dead_letters.entries()
        assert entry.item == item

    def test_pipeline_survives_dead_letters_with_bounded_loss(self):
        """An unabsorbable profile degrades the study, never kills it.

        The profile and seed here are a tuned fixture (not CHAOS_SEED):
        transient_rate=0.8 is hot enough that a few frames exhaust the
        retry budget on every unit and dead-letter, while the averaging
        layer's missing-frame tolerance keeps each round alive.
        """
        brutal = FaultProfile(name="brutal", transient_rate=0.8)
        sift = SiftConfig(
            annotate=False,
            averaging=AveragingConfig(max_missing_fraction=0.4),
        )
        log = ProgressLog()
        study, report = run_chaos(brutal, seed=7, sift=sift, progress=log)

        assert report.dead_letters > 0  # the chaos was not absorbable
        missing = sum(
            len(state.averaging.missing_frames) for state in study.states.values()
        )
        assert missing == report.dead_letters  # one MissingFrame per DLQ record
        assert study.spike_count > 0  # detection still works on partial data

        dropped_events = log.of_type(FramesDropped)
        assert sum(event.dropped for event in dropped_events) == report.dead_letters
        crawl_events = log.of_type(CrawlStats)
        assert sum(event.dead_lettered for event in crawl_events) == report.dead_letters
        fault_events = log.of_type(FaultStats)
        assert fault_events, "chaos runs must surface FaultStats progress events"
        assert fault_events[-1].dead_letters == report.dead_letters
        assert fault_events[-1].profile == "brutal"


class TestRuntimeTelemetry:
    def test_web_runtime_endpoint_reports_chaos_accounting(self):
        study, report = run_chaos("hostile")
        app = SiftWebApp(study, fault_report=report)
        status, content_type, body = app.handle_path("/api/runtime")
        assert status == 200
        payload = json.loads(body)
        assert payload["faults"]["profile"] == "hostile"
        assert payload["faults"]["seed"] == SEED
        assert payload["faults"]["dead_letters"] == 0
        assert payload["faults"]["retries"] == report.retries

    def test_faultless_runtime_payload_has_no_faults(self):
        study, report = run_chaos(None)
        assert report is None
        app = SiftWebApp(study)
        _, _, body = app.handle_path("/api/runtime")
        assert json.loads(body)["faults"] is None
