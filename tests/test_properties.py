"""Property-based tests (hypothesis) on core invariants."""

from datetime import timedelta

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.detection import detect_bounds
from repro.core.nlp import phrase_similarity, tokenize
from repro.core.spikes import Spike, SpikeSet
from repro.core.stitching import estimate_ratio, stitch_frames
from repro.errors import (
    CircuitOpenError,
    ErrorClass,
    FrameCrawlError,
    FrameDeadLettered,
    RateLimitError,
    ReproError,
    TransientServiceError,
    classify_error_type,
)
from repro.timeutil import TimeWindow, utc, weekly_frames
from repro.trends.client import RetryPolicy
from repro.trends.ratelimit import RateLimitConfig, SimulatedClock, TokenBucketLimiter
from repro.trends.records import TimeFrameRequest, TimeFrameResponse
from repro.trends.sampling import index_frame, privacy_round

# --------------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------------

series_values = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=300),
    elements=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)

count_arrays = arrays(
    dtype=np.int64,
    shape=st.integers(min_value=1, max_value=200),
    elements=st.integers(min_value=0, max_value=10_000),
)


# --------------------------------------------------------------------------
# Indexing / privacy invariants
# --------------------------------------------------------------------------


class TestSamplingProperties:
    @given(counts=count_arrays)
    def test_index_frame_bounds(self, counts):
        values = index_frame(counts)
        assert values.min() >= 0
        assert values.max() <= 100

    @given(counts=count_arrays)
    def test_index_frame_max_is_100_when_signal(self, counts):
        values = index_frame(counts)
        if counts.max() > 0:
            assert values.max() == 100
        else:
            assert values.max() == 0

    @given(counts=count_arrays)
    def test_index_frame_monotone(self, counts):
        """Indexing preserves the ordering of data points."""
        values = index_frame(counts)
        order_before = np.argsort(counts, kind="stable")
        assert (np.diff(values[order_before]) >= 0).all()

    @given(counts=count_arrays, threshold=st.integers(min_value=0, max_value=50))
    def test_privacy_round_idempotent(self, counts, threshold):
        once = privacy_round(counts, threshold)
        twice = privacy_round(once, threshold)
        np.testing.assert_array_equal(once, twice)

    @given(counts=count_arrays, threshold=st.integers(min_value=0, max_value=50))
    def test_privacy_round_only_zeroes(self, counts, threshold):
        rounded = privacy_round(counts, threshold)
        changed = rounded != counts
        assert (rounded[changed] == 0).all()
        assert (rounded[~changed] == counts[~changed]).all()


# --------------------------------------------------------------------------
# Detection invariants
# --------------------------------------------------------------------------


class TestDetectionProperties:
    @given(values=series_values)
    def test_bounds_ordered_and_in_range(self, values):
        for bound in detect_bounds(values):
            assert 0 <= bound.start <= bound.peak <= bound.end < values.size

    @given(values=series_values)
    def test_spikes_pairwise_disjoint(self, values):
        claimed = np.zeros(values.size, dtype=bool)
        for bound in detect_bounds(values):
            assert not claimed[bound.start : bound.end + 1].any()
            claimed[bound.start : bound.end + 1] = True

    @given(values=series_values)
    def test_peak_is_block_maximum(self, values):
        for bound in detect_bounds(values):
            block = values[bound.start : bound.end + 1]
            assert values[bound.peak] == block.max()

    @given(values=series_values)
    def test_magnitudes_descending(self, values):
        peaks = [values[b.peak] for b in detect_bounds(values)]
        assert peaks == sorted(peaks, reverse=True)

    @given(values=series_values)
    def test_every_positive_hour_claimed_by_default(self, values):
        """With min_peak=0 every strictly-positive block belongs to
        exactly one spike (nothing positive is left over)."""
        claimed = np.zeros(values.size, dtype=bool)
        for bound in detect_bounds(values):
            claimed[bound.start : bound.end + 1] = True
        assert claimed[values > 0].all()

    @given(values=series_values, scale=st.floats(min_value=0.01, max_value=100.0))
    def test_scale_invariance(self, values, scale):
        """Detection must not depend on the global scale (the stitched
        series' absolute units are arbitrary)."""
        # Keep positives representable after scaling (denormals would
        # underflow to zero, changing the signal itself).
        values = np.where(values > 0, np.maximum(values, 1e-3), 0.0)
        original = detect_bounds(values)
        scaled = detect_bounds(values * scale)
        assert [(b.start, b.peak, b.end) for b in original] == [
            (b.start, b.peak, b.end) for b in scaled
        ]

    @given(values=series_values)
    def test_durations_positive(self, values):
        for bound in detect_bounds(values):
            assert bound.duration_hours >= 1


# --------------------------------------------------------------------------
# Stitching invariants
# --------------------------------------------------------------------------


def _frames_from_signal(signal: np.ndarray, frame_hours: int = 72, overlap: int = 24):
    start = utc(2021, 1, 1)
    responses = []
    position = 0
    step = frame_hours - overlap
    while position + frame_hours <= signal.size:
        window = TimeWindow(
            start + timedelta(hours=position),
            start + timedelta(hours=position + frame_hours),
        )
        request = TimeFrameRequest(term="Internet outage", geo="US-TX", window=window)
        responses.append(
            TimeFrameResponse(
                request=request,
                values=index_frame(signal[position : position + frame_hours]),
                rising=(),
                sample_round=0,
            )
        )
        position += step
    if position - step + frame_hours < signal.size:
        window = TimeWindow(
            start + timedelta(hours=signal.size - frame_hours),
            start + timedelta(hours=signal.size),
        )
        request = TimeFrameRequest(term="Internet outage", geo="US-TX", window=window)
        responses.append(
            TimeFrameResponse(
                request=request,
                values=index_frame(signal[-frame_hours:]),
                rising=(),
                sample_round=0,
            )
        )
    return responses


signals = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=144, max_value=400),
    elements=st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
)


class TestStitchingProperties:
    @settings(max_examples=40)
    @given(signal=signals)
    def test_output_length_and_bounds(self, signal):
        frames = _frames_from_signal(signal)
        timeline, _ = stitch_frames(frames)
        assert len(timeline) == signal.size
        assert timeline.values.min() >= 0
        if timeline.peak_value > 0:
            assert timeline.peak_value == pytest.approx(100.0)

    @settings(max_examples=40)
    @given(signal=signals)
    def test_true_zeros_stay_zero(self, signal):
        """Hours the service reported as zero stay exactly zero after
        stitching (values may *gain* zeros via integer indexing of tiny
        fractions, but never lose them)."""
        frames = _frames_from_signal(signal)
        timeline, _ = stitch_frames(frames)
        assert (timeline.values[signal == 0] == 0).all()

    @settings(max_examples=40)
    @given(
        overlap_left=arrays(
            dtype=np.float64,
            shape=24,
            elements=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        ),
        scale=st.floats(min_value=0.02, max_value=50.0),
    )
    def test_estimate_ratio_recovers_scale(self, overlap_left, scale):
        """For same-shape overlaps the estimate approximates the true
        scale (up to smoothing) and always lands within the clamp."""
        ratio = estimate_ratio(overlap_left, overlap_left * scale)
        if ratio is None:
            assert overlap_left.sum() == 0
        else:
            assert 0.01 <= ratio <= 100.0
            if overlap_left.sum() > 100 and overlap_left.sum() * scale > 100:
                # Enough mass on both sides for the +1 smoothing to be
                # negligible.
                assert ratio == pytest.approx(1.0 / scale, rel=0.25)


import pytest  # noqa: E402  (used inside hypothesis bodies)


# --------------------------------------------------------------------------
# Weekly partitioning invariants
# --------------------------------------------------------------------------


class TestWeeklyFrameProperties:
    @given(
        days=st.integers(min_value=8, max_value=800),
        overlap=st.integers(min_value=1, max_value=167),
    )
    def test_cover_and_overlap(self, days, overlap):
        window = TimeWindow(utc(2020, 1, 1), utc(2020, 1, 1) + timedelta(days=days))
        frames = weekly_frames(window, overlap_hours=overlap)
        assert frames[0].start == window.start
        assert frames[-1].end == window.end
        for left, right in zip(frames, frames[1:]):
            assert left.intersection_hours(right) >= 1
            assert right.start > left.start  # strictly advancing
        for frame in frames:
            assert frame.hours <= 168


# --------------------------------------------------------------------------
# Rate limiter invariants
# --------------------------------------------------------------------------


class TestRateLimiterProperties:
    @settings(max_examples=30)
    @given(
        burst=st.integers(min_value=1, max_value=20),
        refill=st.floats(min_value=0.1, max_value=10.0),
        gaps=st.lists(
            st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=60
        ),
    )
    def test_never_exceeds_token_budget(self, burst, refill, gaps):
        """Granted requests can never exceed burst + refill * elapsed."""
        clock = SimulatedClock()
        limiter = TokenBucketLimiter(
            RateLimitConfig(burst=burst, refill_per_second=refill), clock=clock
        )
        granted = 0
        for gap in gaps:
            clock.advance(gap)
            if limiter.try_acquire("ip"):
                granted += 1
        budget = burst + refill * clock() + 1e-6
        assert granted <= budget


# --------------------------------------------------------------------------
# NLP invariants
# --------------------------------------------------------------------------


class TestNlpProperties:
    @given(phrase=st.text(min_size=0, max_size=60))
    def test_similarity_bounded_and_symmetric(self, phrase):
        other = "internet outage"
        score = phrase_similarity(phrase, other)
        assert 0.0 <= score <= 1.0 + 1e-9
        assert score == pytest.approx(phrase_similarity(other, phrase))

    @given(phrase=st.text(alphabet=st.characters(categories=("Ll", "Zs")), max_size=60))
    def test_tokenize_never_crashes(self, phrase):
        tokens = tokenize(phrase)
        assert isinstance(tokens, tuple)


# --------------------------------------------------------------------------
# SpikeSet similarity invariants
# --------------------------------------------------------------------------

spike_lists = st.lists(
    st.tuples(
        st.sampled_from(["US-TX", "US-CA", "US-NY"]),
        st.integers(min_value=0, max_value=200),  # peak hour offset
        st.floats(min_value=0.5, max_value=100.0),  # magnitude
    ),
    max_size=15,
)


def _build_set(raw) -> SpikeSet:
    spikes = []
    seen = set()
    for geo, offset, magnitude in raw:
        if (geo, offset) in seen:
            continue
        seen.add((geo, offset))
        peak = utc(2021, 1, 1) + timedelta(hours=offset)
        spikes.append(
            Spike(
                term="Internet outage",
                geo=geo,
                start=peak,
                peak=peak,
                end=peak,
                magnitude=magnitude,
            )
        )
    return SpikeSet(spikes)


class TestSimilarityProperties:
    @given(raw=spike_lists)
    def test_self_similarity_is_one(self, raw):
        spikes = _build_set(raw)
        assert spikes.match_similarity(spikes) == pytest.approx(1.0)
        assert spikes.weighted_match_similarity(spikes) == pytest.approx(1.0)

    @given(left=spike_lists, right=spike_lists)
    def test_similarity_bounded_and_symmetric(self, left, right):
        a, b = _build_set(left), _build_set(right)
        forward = a.match_similarity(b)
        backward = b.match_similarity(a)
        assert 0.0 <= forward <= 1.0
        assert forward == pytest.approx(backward)

    @given(left=spike_lists, right=spike_lists)
    def test_weighted_similarity_bounded(self, left, right):
        a, b = _build_set(left), _build_set(right)
        assert 0.0 <= a.weighted_match_similarity(b) <= 1.0 + 1e-9


# --------------------------------------------------------------------------
# Retry policy invariants
# --------------------------------------------------------------------------

retry_policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=16),
    backoff_base=st.floats(min_value=1.0, max_value=4.0, allow_nan=False),
    max_backoff=st.floats(min_value=1.0, max_value=600.0, allow_nan=False),
    jitter=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
)

_EPS = 1e-9


class TestRetryPolicyProperties:
    @given(
        policy=retry_policies,
        attempt=st.integers(min_value=0, max_value=30),
        retry_after=st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        unit=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_delay_is_bounded_by_cap_and_hint(self, policy, attempt, retry_after, unit):
        """No delay exceeds max(hint, max_backoff) plus full jitter."""
        delay = policy.delay(attempt, retry_after, unit)
        ceiling = max(retry_after, policy.max_backoff) * (1.0 + policy.jitter)
        assert 0.0 <= delay <= ceiling * (1.0 + _EPS)

    @given(
        policy=retry_policies,
        attempt=st.integers(min_value=0, max_value=30),
        retry_after=st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        unit=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_jitter_stays_within_the_band(self, policy, attempt, retry_after, unit):
        """The jittered delay lands within +-jitter of the base delay."""
        delay = policy.delay(attempt, retry_after, unit)
        base = max(retry_after, min(policy.backoff_base**attempt, policy.max_backoff))
        assert base * (1.0 - policy.jitter) - _EPS <= delay
        assert delay <= base * (1.0 + policy.jitter) + _EPS

    @given(
        policy=retry_policies,
        attempt=st.integers(min_value=0, max_value=30),
        retry_after=st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        unit=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_retry_after_hint_is_honored(self, policy, attempt, retry_after, unit):
        """A server's retry-after floor survives jitter."""
        delay = policy.delay(attempt, retry_after, unit)
        assert delay >= retry_after * (1.0 - policy.jitter) - _EPS

    @given(
        policy=retry_policies,
        unit=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_backoff_is_monotone_up_to_the_cap(self, policy, unit):
        """At a fixed jitter draw, delays never shrink between attempts."""
        delays = [policy.delay(attempt, 0.0, unit) for attempt in range(12)]
        assert all(a <= b + _EPS for a, b in zip(delays, delays[1:]))


# --------------------------------------------------------------------------
# Error-classifier totality
# --------------------------------------------------------------------------


def _all_repro_error_types() -> list[type]:
    """Every ReproError subclass reachable from the imported hierarchy."""
    seen: set[type] = set()
    stack: list[type] = [ReproError]
    while stack:
        cls = stack.pop()
        if cls in seen:
            continue
        seen.add(cls)
        stack.extend(cls.__subclasses__())
    return sorted(seen, key=lambda cls: cls.__name__)


class TestClassifierTotality:
    @given(error_type=st.sampled_from(_all_repro_error_types()))
    def test_every_error_type_classifies(self, error_type):
        assert isinstance(classify_error_type(error_type), ErrorClass)

    @given(error_type=st.sampled_from(_all_repro_error_types()))
    def test_transients_never_classify_as_fatal(self, error_type):
        """The retryable branches of the hierarchy stay retryable."""
        verdict = classify_error_type(error_type)
        if issubclass(error_type, RateLimitError):
            assert verdict is ErrorClass.RATE_LIMITED
        elif issubclass(error_type, (TransientServiceError, CircuitOpenError)):
            assert verdict is ErrorClass.RETRYABLE

    def test_dead_letters_and_crawl_failures_are_fatal(self):
        """Budget-exhausted errors must not re-enter the retry loop."""
        assert classify_error_type(FrameCrawlError) is ErrorClass.FATAL
        assert classify_error_type(FrameDeadLettered) is ErrorClass.FATAL

    def test_unknown_subclasses_default_to_fatal(self):
        """A fault type the classifier has never seen fails safe."""

        class NovelError(ReproError):
            pass

        assert classify_error_type(NovelError) is ErrorClass.FATAL
