"""Tests for CSV/JSON study export."""

import csv
import json

import pytest

from repro.analysis import export_study


@pytest.fixture(scope="module")
def exported(mini_study, tmp_path_factory):
    directory = tmp_path_factory.mktemp("export")
    files = export_study(mini_study, directory)
    return directory, files


class TestExport:
    def test_all_artifacts_written(self, exported):
        directory, files = exported
        names = {path.name for path in files}
        for expected in (
            "fig3_states.csv",
            "fig3_durations.csv",
            "fig4_daily.csv",
            "fig5_footprints.csv",
            "fig6_monthly.csv",
            "table1.csv",
            "table2.csv",
            "table3.csv",
            "summary.json",
        ):
            assert expected in names
        assert "fig1_tx.csv" in names  # one timeline per studied geo

    def test_timeline_rows_match_series(self, exported, mini_study):
        directory, _ = exported
        with (directory / "fig1_tx.csv").open() as handle:
            rows = list(csv.DictReader(handle))
        timeline = mini_study.states["US-TX"].timeline
        assert len(rows) == len(timeline)
        assert float(rows[0]["value"]) == pytest.approx(
            float(timeline.values[0]), abs=1e-3
        )

    def test_summary_is_valid_json(self, exported, mini_study):
        directory, _ = exported
        summary = json.loads((directory / "summary.json").read_text())
        assert summary["spikes"] == mini_study.spike_count
        assert 0 <= summary["top10_state_share"] <= 1

    def test_csv_headers(self, exported):
        directory, _ = exported
        with (directory / "table1.csv").open() as handle:
            header = next(csv.reader(handle))
        assert header == ["spike_time", "state", "duration_hours", "annotations"]

    def test_export_is_idempotent(self, exported, mini_study):
        directory, files = exported
        again = export_study(mini_study, directory)
        assert {p.name for p in again} == {p.name for p in files}
