"""Replay every archived fuzzer counterexample through the live pipeline.

Each fixture under ``tests/fixtures/scenarios/`` is a minimal world the
fuzzer once shrunk out of a silent detection loss, frozen together with
the full per-impact outcome it produced.  Parity — not improvement — is
the contract: if a pipeline change alters any archived outcome (even
for the better), regenerate the fixture deliberately with::

    PYTHONPATH=src python - <<'EOF'
    from pathlib import Path
    from repro.world.foundry import (
        FuzzFinding, archive_finding, detection_outcomes, load_fixture,
    )
    for path in sorted(Path("tests/fixtures/scenarios").glob("*.json")):
        f = load_fixture(path)
        outcomes = detection_outcomes(f.spec, f.seed)
        archive_finding(
            FuzzFinding(f.spec, f.seed, f.min_intensity, outcomes),
            path.parent,
        )
    EOF

so the diff shows exactly which archived worlds changed behavior.
"""

from pathlib import Path

import pytest

from repro.world.foundry import load_fixtures, replay_fixture
from repro.world.foundry.fuzzer import FIXTURE_FORMAT

FIXTURE_DIR = Path(__file__).parent / "fixtures" / "scenarios"
FIXTURES = load_fixtures(FIXTURE_DIR)


def test_archive_is_populated():
    """The fuzzer's past finds are a permanent part of the suite."""
    assert len(FIXTURES) >= 1


@pytest.mark.parametrize(
    "fixture", FIXTURES, ids=[fixture.path.stem for fixture in FIXTURES]
)
def test_archived_world_replays_to_parity(fixture):
    expected, actual = replay_fixture(fixture)
    assert actual == expected, (
        f"{fixture.path.name}: detection outcomes diverged from the "
        f"archived run (seed {fixture.seed}). If the change is an "
        "intended improvement, regenerate the fixture (see module "
        "docstring) so the diff records it."
    )


@pytest.mark.parametrize(
    "fixture", FIXTURES, ids=[fixture.path.stem for fixture in FIXTURES]
)
def test_archived_fixture_documents_a_real_loss(fixture):
    """Every fixture must still describe a silent loss, not noise."""
    losses = [
        outcome
        for outcome in fixture.expected
        if not outcome["detected"]
        and outcome["intensity"] >= fixture.min_intensity
    ]
    assert losses, f"{fixture.path.name} archives no silent loss"


def test_fixture_files_declare_the_current_format():
    import json

    for path in sorted(FIXTURE_DIR.glob("*.json")):
        payload = json.loads(path.read_text())
        assert payload["format"] == FIXTURE_FORMAT, path.name
