"""Unit tests for phrase clustering (the word-vector substitute)."""

import pytest

from repro.core.nlp import (
    PhraseClusterer,
    phrase_similarity,
    token_overlap,
    tokenize,
    trigrams,
)


class TestTokenize:
    def test_strips_stop_words(self):
        assert tokenize("is verizon down") == ("verizon",)

    def test_keeps_content_words(self):
        assert tokenize("spectrum internet outage") == ("spectrum", "internet")

    def test_all_stopwords_phrase_keeps_tokens(self):
        # "is it down" is all stop words except "it"; never return ().
        assert tokenize("is down") != ()

    def test_punctuation_ignored(self):
        assert tokenize("at&t outage!") == ("at&t",)

    def test_case_insensitive(self):
        assert tokenize("VERIZON Outage") == ("verizon",)


class TestSimilarity:
    def test_paraphrases_close(self):
        """The paper's example: <is Verizon down> ~ <Verizon outage>."""
        assert phrase_similarity("is verizon down", "verizon outage") > 0.5

    def test_unrelated_far(self):
        assert phrase_similarity("verizon outage", "heat wave") < 0.2

    def test_symmetry(self):
        a = phrase_similarity("xfinity down", "comcast xfinity outage")
        b = phrase_similarity("comcast xfinity outage", "xfinity down")
        assert a == pytest.approx(b)

    def test_identity(self):
        assert phrase_similarity("power outage", "power outage") == pytest.approx(1.0)

    def test_misspelling_caught_by_trigrams(self):
        # Token overlap is zero ("tmobile" vs "t"/"mobile"); the trigram
        # channel must still carry the match.
        assert phrase_similarity("tmobile outage", "t-mobile outage") > 0.35

    def test_misspelled_variant_clusters_correctly(self):
        assert PhraseClusterer().canonicalize("tmobile outage") == "T-Mobile"

    def test_token_overlap_bounds(self):
        assert token_overlap(("a", "b"), ("b", "c")) == pytest.approx(1 / 3)
        assert token_overlap((), ("a",)) == 0.0

    def test_trigrams_multiset(self):
        grams = trigrams("abc")
        assert sum(grams.values()) > 0


class TestPhraseClusterer:
    @pytest.fixture(scope="class")
    def clusterer(self):
        return PhraseClusterer()

    def test_canonicalizes_variants(self, clusterer):
        assert clusterer.canonicalize("is verizon down") == "Verizon"
        assert clusterer.canonicalize("verizon outage") == "Verizon"
        assert clusterer.canonicalize("san jose power outage") == "Power outage"

    def test_unknown_phrase_is_its_own_cluster(self, clusterer):
        novel = "zebra migration patterns"
        assert clusterer.canonicalize(novel) == novel

    def test_cluster_groups(self, clusterer):
        clusters = clusterer.cluster(
            ["is verizon down", "verizon outage", "xfinity down"]
        )
        assert set(clusters["Verizon"]) == {"is verizon down", "verizon outage"}
        assert clusters["Xfinity"] == ["xfinity down"]

    def test_match_reports_similarity(self, clusterer):
        match = clusterer.match("spectrum internet outage")
        assert match.concept == "Spectrum"
        assert match.similarity > 0.5

    def test_custom_vocabulary(self):
        clusterer = PhraseClusterer(
            vocabulary={"Starlink": ("starlink", "starlink outage")},
            threshold=0.4,
        )
        assert clusterer.canonicalize("starlink down") == "Starlink"

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            PhraseClusterer(threshold=0.0)

    def test_catalog_variants_all_resolve(self, clusterer):
        """Every raw variant the world can emit must cluster back onto
        its own topic — the end-to-end guarantee annotation relies on."""
        from repro.world.catalog import TERMS

        failures = []
        for term in TERMS:
            for variant in term.variants:
                concept = clusterer.canonicalize(variant)
                if concept != term.name:
                    failures.append((variant, concept, term.name))
        assert not failures, failures
