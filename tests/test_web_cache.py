"""Cache semantics of the serving layer.

The acceptance bar for the response cache: caching must never change a
body (byte-identical on vs off), conditional requests must revalidate
through strong ETags, the LRU must hold its bound, and installing a new
study snapshot must invalidate everything.
"""

import json

import pytest

from repro.core.progress import ServingStats, SnapshotInstalled
from repro.web import QueryIndex, SiftWebApp

#: One path per endpoint, plus filter/window variants.
ENDPOINT_PATHS = (
    "/",
    "/?geo=US-CA",
    "/api/geos",
    "/api/summary",
    "/api/timeline?geo=US-TX",
    "/api/timeline?geo=US-TX&start=2021-02-01T00:00:00&end=2021-02-08T00:00:00",
    "/api/spikes?geo=US-TX",
    "/api/spikes?geo=US-TX&min_hours=4",
    "/api/outages",
    "/api/outages?min_states=2",
    "/api/outages?pretty=1",
)


@pytest.fixture(scope="module")
def cached_app(mini_study):
    return SiftWebApp(mini_study, cache_size=256, caching=True, preload=True)


@pytest.fixture(scope="module")
def uncached_app(mini_study):
    return SiftWebApp(mini_study, caching=False, preload=False)


class TestByteIdentity:
    @pytest.mark.parametrize("path", ENDPOINT_PATHS)
    def test_cached_equals_uncached(self, cached_app, uncached_app, path):
        warm = cached_app.handle_request(path)
        cold = uncached_app.handle_request(path)
        assert warm.status == cold.status == 200
        assert warm.body == cold.body
        assert warm.content_type == cold.content_type
        # And a repeat served from the cache is still the same bytes.
        repeat = cached_app.handle_request(path)
        assert repeat.body == warm.body

    def test_gzip_identical_cached_vs_uncached(self, cached_app, uncached_app):
        headers = {"Accept-Encoding": "gzip"}
        warm = cached_app.handle_request("/api/timeline?geo=US-CA", headers=headers)
        cold = uncached_app.handle_request(
            "/api/timeline?geo=US-CA", headers=headers
        )
        assert warm.header("Content-Encoding") == "gzip"
        assert warm.body == cold.body


class TestCanonicalization:
    def test_equivalent_filters_share_an_entry(self, mini_study):
        app = SiftWebApp(mini_study, preload=False)
        app.handle_request("/api/spikes?geo=US-TX&min_hours=500")
        entries = len(app.cache)
        # A different spelling selecting the same (empty) spike set must
        # hit the same canonicalized entry, not mint a new one.
        response = app.handle_request("/api/spikes?geo=US-TX&min_hours=999")
        assert len(app.cache) == entries
        assert response.header("X-Cache") == "hit"

    def test_explicit_full_window_is_the_default_entry(self, mini_study):
        app = SiftWebApp(mini_study, preload=False)
        default = app.handle_request("/api/timeline?geo=US-TX")
        window = json.loads(default.body)
        explicit = app.handle_request(
            f"/api/timeline?geo=US-TX&start={window['start'][:19]}"
        )
        assert explicit.header("X-Cache") == "hit"
        assert explicit.body == default.body


class TestEtagLifecycle:
    def test_304_roundtrip(self, cached_app):
        first = cached_app.handle_request("/api/outages")
        etag = first.header("ETag")
        revalidated = cached_app.handle_request(
            "/api/outages", headers={"If-None-Match": etag}
        )
        assert revalidated.status == 304
        assert revalidated.body == b""
        assert revalidated.header("ETag") == etag
        stale = cached_app.handle_request(
            "/api/outages", headers={"If-None-Match": '"bogus"'}
        )
        assert stale.status == 200
        assert stale.body == first.body

    def test_wildcard_and_list_matching(self, cached_app):
        first = cached_app.handle_request("/api/geos")
        etag = first.header("ETag")
        assert (
            cached_app.handle_request(
                "/api/geos", headers={"If-None-Match": f'"other", {etag}'}
            ).status
            == 304
        )
        assert (
            cached_app.handle_request(
                "/api/geos", headers={"If-None-Match": "*"}
            ).status
            == 304
        )

    def test_etag_carries_snapshot_version(self, cached_app):
        etag = cached_app.handle_request("/api/geos").header("ETag")
        assert etag.startswith(f'"s{cached_app.snapshot_version}-')


class TestLruBound:
    def test_eviction_bound_holds(self, mini_study):
        app = SiftWebApp(mini_study, cache_size=4, preload=False)
        for day in range(1, 21):
            app.handle_request(
                f"/api/timeline?geo=US-TX&start=2021-01-{day:02d}T00:00:00"
                f"&end=2021-02-{day:02d}T00:00:00"
            )
        assert len(app.cache) <= 4
        assert app.cache.evictions >= 16
        stats = app.serving_stats()
        assert stats.entries <= 4
        assert stats.evictions == app.cache.evictions

    def test_lru_keeps_the_hot_entry(self, mini_study):
        app = SiftWebApp(mini_study, cache_size=2, preload=False)
        hot = "/api/outages"
        app.handle_request(hot)
        for min_states in (2, 3, 4):
            app.handle_request(f"/api/outages?min_states={min_states}")
            app.handle_request(hot)  # touch: keeps it most-recently-used
        assert app.handle_request(hot).header("X-Cache") == "hit"


class TestSnapshotInvalidation:
    def test_install_invalidates_and_reversions(self, small_env, mini_study):
        events = []
        app = SiftWebApp(mini_study, progress=events.append)
        before = app.handle_request("/api/geos")
        etag_before = before.header("ETag")
        assert app.snapshot_version == 1

        replacement = small_env.run_study(geos=("US-TX",))
        app.install_study(replacement)
        assert app.snapshot_version == 2
        after = app.handle_request("/api/geos")
        assert json.loads(after.body) == ["US-TX"]
        assert after.header("ETag") != etag_before
        # The old validator no longer revalidates: clients refetch.
        conditional = app.handle_request(
            "/api/geos", headers={"If-None-Match": etag_before}
        )
        assert conditional.status == 200
        installs = [e for e in events if isinstance(e, SnapshotInstalled)]
        assert [e.snapshot for e in installs] == [1, 2]
        assert installs[0].fingerprint != installs[1].fingerprint

    def test_stats_reset_on_install(self, small_env, mini_study):
        app = SiftWebApp(mini_study, preload=False)
        for _ in range(3):
            app.handle_request("/api/outages")
        assert app.cache.hits > 0
        app.install_study(small_env.run_study(geos=("US-TX",)))
        stats = app.serving_stats()
        assert stats.hits == 0 and stats.misses == 0 and stats.requests == 0


class TestTelemetry:
    def test_runtime_endpoint_reports_serving_stats(self, mini_study):
        app = SiftWebApp(mini_study, preload=False)
        app.handle_request("/api/outages")
        app.handle_request("/api/outages")
        status, _, body = app.handle_path("/api/runtime")
        assert status == 200
        serving = json.loads(body)["serving"]
        assert serving["hits"] == 1
        assert serving["misses"] == 1
        assert serving["bytes_saved"] > 0
        assert serving["p50_handle_ms"] <= serving["p99_handle_ms"]

    def test_runtime_responses_are_never_cached(self, cached_app):
        response = cached_app.handle_request("/api/runtime")
        assert response.header("Cache-Control") == "no-store"
        assert response.header("ETag") is None

    def test_periodic_stats_event(self, mini_study):
        events = []
        app = SiftWebApp(
            mini_study, preload=False, progress=events.append, stats_interval=5
        )
        for _ in range(5):
            app.handle_request("/api/geos")
        stats = [e for e in events if isinstance(e, ServingStats)]
        assert stats and stats[-1].requests == 5

    def test_preload_makes_first_requests_hits(self, mini_study):
        app = SiftWebApp(mini_study, preload=True)
        assert app.serving_stats().preloaded > 0
        first = app.handle_request("/api/timeline?geo=US-TX")
        assert first.header("X-Cache") == "hit"


class TestQueryIndexAggregates:
    def test_prefix_sums_match_numpy(self, mini_study):
        index = QueryIndex(mini_study)
        column = index.column("US-TX")
        values = mini_study.states["US-TX"].timeline.values
        for lo, hi in ((0, len(values)), (5, 6), (100, 731), (0, 1), (717, 888)):
            assert column.window_sum(lo, hi) == pytest.approx(
                float(values[lo:hi].sum()), rel=1e-9, abs=1e-6
            )
            assert column.window_peak(lo, hi) == pytest.approx(
                float(values[lo:hi].max()), rel=1e-12
            )
            assert column.window_nonzero(lo, hi) == int(
                (values[lo:hi] > 0).sum()
            )

    def test_cuts_match_bruteforce(self, mini_study):
        index = QueryIndex(mini_study)
        table = index.spike_table("US-TX")
        spikes = list(mini_study.spikes.in_state("US-TX"))
        for min_hours in range(0, 12):
            expected = [
                s.to_dict() for s in spikes if s.duration_hours >= min_hours
            ]
            cut = table.cut(min_hours)
            assert cut == len(expected)
            assert table.select(cut) == expected
        outages = index.outages
        for min_states in range(0, 8):
            expected = [
                row for row in outages.rows if row["footprint"] >= min_states
            ]
            cut = outages.cut(min_states)
            assert cut == len(expected)
            assert outages.select(cut) == expected
