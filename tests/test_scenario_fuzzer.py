"""Tests for the adversarial scenario fuzzer and its fixture archive.

The CI chaos matrix also runs this file with ``FUZZ_SEED`` varied, so
the bounded ``hunt`` smoke below explores a different slice of the
probe space per lane.
"""

import os
from datetime import timedelta

from hypothesis import given, settings

from repro.timeutil import ensure_grid
from repro.world.foundry import (
    EVAL_SEED,
    FuzzFinding,
    archive_finding,
    detection_outcomes,
    hunt,
    load_fixture,
    load_fixtures,
    replay_fixture,
)
from repro.world.foundry.fuzzer import SILENT_LOSS_INTENSITY, probe_specs

FUZZ_SEED = int(os.environ.get("FUZZ_SEED", "0"))


class TestProbeStrategy:
    @given(spec=probe_specs())
    @settings(max_examples=20, deadline=None, database=None)
    def test_probe_specs_compile_to_valid_worlds(self, spec):
        scenario = spec.compile(EVAL_SEED)
        assert scenario.events, "a probe world must contain its outage"
        intensities = []
        for event in scenario.events:
            for impact in event.impacts:
                ensure_grid(impact.onset)
                assert spec.start <= impact.onset < spec.end
                intensities.append(impact.intensity)
        # The primary probe outage is always strong enough that a miss
        # counts as a silent loss (its echo may be weaker by design).
        assert max(intensities) >= SILENT_LOSS_INTENSITY
        assert spec.end - spec.start <= timedelta(days=21)

    @given(spec=probe_specs())
    @settings(max_examples=5, deadline=None, database=None)
    def test_outcomes_are_deterministic(self, spec):
        assert detection_outcomes(spec) == detection_outcomes(spec)


class TestHunt:
    def test_bounded_hunt_smoke(self):
        """A short adversarial search must finish and stay coherent.

        Finding a counterexample is not guaranteed at this budget; what
        is guaranteed is that a hit comes back shrunk, evaluated, and
        with the losses it claims.
        """
        finding = hunt(seed=FUZZ_SEED, max_examples=30)
        if finding is None:
            return
        assert finding.losses, "a finding must carry its silent losses"
        assert finding.seed == EVAL_SEED
        for loss in finding.losses:
            assert loss["detected"] is False
            assert loss["intensity"] >= finding.min_intensity
        # The shrunk spec must reproduce on a fresh evaluation.
        assert detection_outcomes(finding.spec, finding.seed) == finding.outcomes

    def test_known_seed_finds_and_reproduces(self):
        """Seed 0 at a moderate budget reliably surfaces a loss."""
        finding = hunt(seed=0, max_examples=150)
        assert finding is not None
        assert finding.losses


class TestFixtureArchive:
    def _finding(self) -> FuzzFinding:
        fixtures = load_fixtures_dir()
        fixture = fixtures[0]
        return FuzzFinding(
            spec=fixture.spec,
            seed=fixture.seed,
            min_intensity=fixture.min_intensity,
            outcomes=fixture.expected,
        )

    def test_archive_round_trip(self, tmp_path):
        finding = self._finding()
        path = archive_finding(finding, tmp_path)
        fixture = load_fixture(path)
        assert fixture.spec == finding.spec
        assert fixture.seed == finding.seed
        assert fixture.expected == finding.outcomes

    def test_archiving_is_idempotent(self, tmp_path):
        finding = self._finding()
        first = archive_finding(finding, tmp_path)
        second = archive_finding(finding, tmp_path)
        assert first == second
        assert len(load_fixtures(tmp_path)) == 1

    def test_replay_of_fresh_archive_is_parity(self, tmp_path):
        finding = self._finding()
        fixture = load_fixture(archive_finding(finding, tmp_path))
        expected, actual = replay_fixture(fixture)
        assert expected == actual

    def test_missing_directory_is_empty(self, tmp_path):
        assert load_fixtures(tmp_path / "absent") == ()


def load_fixtures_dir():
    from pathlib import Path

    directory = Path(__file__).parent / "fixtures" / "scenarios"
    fixtures = load_fixtures(directory)
    assert fixtures, "the committed fixture archive must not be empty"
    return fixtures
