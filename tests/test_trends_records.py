"""Unit tests for Trends request/response records."""

import numpy as np
import pytest

from repro.errors import TrendsRequestError
from repro.timeutil import TimeWindow, utc
from repro.trends.records import (
    BREAKOUT_WEIGHT,
    RisingTerm,
    TimeFrameRequest,
    TimeFrameResponse,
)

WEEK = TimeWindow(utc(2021, 2, 14), utc(2021, 2, 21))


def make_request(**overrides) -> TimeFrameRequest:
    defaults = dict(term="Internet outage", geo="US-TX", window=WEEK)
    defaults.update(overrides)
    return TimeFrameRequest(**defaults)


class TestTimeFrameRequest:
    def test_valid_request(self):
        request = make_request()
        assert request.window.hours == 168

    def test_rejects_empty_term(self):
        with pytest.raises(TrendsRequestError):
            make_request(term="   ")

    def test_rejects_unknown_geo(self):
        with pytest.raises(TrendsRequestError):
            make_request(geo="US-XX")

    def test_rejects_over_week_hourly_frame(self):
        """GT limits hourly data to one-week frames (paper §2)."""
        with pytest.raises(TrendsRequestError):
            make_request(window=TimeWindow(utc(2021, 2, 1), utc(2021, 2, 10)))

    def test_accepts_daily_frame(self):
        request = make_request(
            window=TimeWindow(utc(2021, 2, 15), utc(2021, 2, 16))
        )
        assert request.window.hours == 24

    def test_cache_key_identity(self):
        assert make_request().cache_key == make_request().cache_key
        other = make_request(geo="US-CA")
        assert other.cache_key != make_request().cache_key


class TestRisingTerm:
    def test_breakout_threshold(self):
        assert RisingTerm("verizon outage", BREAKOUT_WEIGHT).breakout
        assert not RisingTerm("verizon outage", 120).breakout

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(TrendsRequestError):
            RisingTerm("verizon outage", 0)


class TestTimeFrameResponse:
    def test_valid_response(self):
        response = TimeFrameResponse(
            request=make_request(),
            values=np.zeros(168, dtype=np.int16),
            rising=(),
            sample_round=0,
        )
        assert response.is_flat()

    def test_rejects_wrong_shape(self):
        with pytest.raises(TrendsRequestError):
            TimeFrameResponse(
                request=make_request(),
                values=np.zeros(100, dtype=np.int16),
                rising=(),
                sample_round=0,
            )

    def test_rejects_out_of_range_values(self):
        values = np.zeros(168, dtype=np.int16)
        values[0] = 101
        with pytest.raises(TrendsRequestError):
            TimeFrameResponse(
                request=make_request(), values=values, rising=(), sample_round=0
            )

    def test_is_flat_detects_signal(self):
        values = np.zeros(168, dtype=np.int16)
        values[10] = 100
        response = TimeFrameResponse(
            request=make_request(), values=values, rising=(), sample_round=0
        )
        assert not response.is_flat()
