"""End-to-end golden regression: a fixed-seed study, frozen to JSON.

The committed fixture (``tests/golden/study_small.json``) pins the
*entire* pipeline output for one small deployment — detected spikes
with annotations, the grouped outage/impact summary, heavy hitters,
and per-state timeline checksums.  Any change to sampling, stitching,
averaging, detection, grouping, or annotation shows up as a readable
JSON diff here before it can silently shift the paper's numbers.

After an *intentional* behaviour change, regenerate with::

    PYTHONPATH=src REGEN_GOLDEN=1 python -m pytest tests/test_golden_study.py
"""

import json
import os
from pathlib import Path

from repro.runtime.study import StudyRuntime
from repro.timeutil import utc

GOLDEN_PATH = Path(__file__).parent / "golden" / "study_small.json"
GEOS = ("US-TX", "US-WY")


def build_study_payload() -> dict:
    """The canonical serialization of the fixed-seed small study."""
    runtime = StudyRuntime.build(
        background_scale=0.3,
        start=utc(2021, 1, 1),
        end=utc(2021, 3, 1),
        checkpoint=False,
    )
    try:
        study = runtime.run_study(GEOS)
    finally:
        runtime.close()
    return {
        "window": [study.window.start.isoformat(), study.window.end.isoformat()],
        "geos": sorted(study.states),
        "spike_count": study.spike_count,
        "spikes": [spike.to_dict() for spike in study.spikes],
        "outages": [
            {
                "label": outage.label,
                "states": sorted(outage.states),
                "footprint": outage.footprint,
                "max_duration_hours": outage.max_duration_hours,
                "annotations": list(outage.annotations),
            }
            for outage in study.outages
        ],
        "heavy_hitters": list(study.heavy_hitters),
        "states": {
            geo: {
                "spike_count": len(result.spikes),
                "timeline_hours": len(result.timeline),
                "timeline_checksum": round(float(result.timeline.values.sum()), 6),
                "rounds_used": result.averaging.rounds_used,
            }
            for geo, result in sorted(study.states.items())
        },
    }


def test_study_matches_golden_fixture():
    actual = build_study_payload()
    if os.environ.get("REGEN_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(actual, indent=1, sort_keys=True) + "\n")
    expected = json.loads(GOLDEN_PATH.read_text())
    assert actual == expected, (
        "study output diverged from tests/golden/study_small.json; if the "
        "change is intentional, regenerate with REGEN_GOLDEN=1"
    )
