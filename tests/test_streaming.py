"""Streamed-equals-batch: the correctness bar of the watch loop.

The :class:`~repro.streaming.daemon.StudyDaemon` claims byte-identity
with batch SIFT — not just at the end of the stream, but at *every*
tick: the streamed study after tick ``t`` must equal a batch
``run_study`` restricted to the prefix window ``[start, frames[t].end)``
(DESIGN.md §12).  The tests here prove that claim across stitcher
backends and executors, prove a killed daemon resumes from the columnar
store without refetching a single frame, and soak the tick loop under
injected faults: a tick that dies mid-crawl retries without
double-feeding any stitcher.
"""

from __future__ import annotations

import pytest

from repro.core import SiftConfig
from repro.core.averaging import AveragingConfig
from repro.core.detection import DetectionConfig
from repro.errors import CheckpointMismatchError, ConfigurationError
from repro.runtime.study import StudyRuntime
from repro.streaming import StreamConfig
from repro.timeutil import utc

GEOS = ("US-TX", "US-CA", "US-OK")
START, END = utc(2021, 1, 1), utc(2021, 2, 7)  # six weekly ticks
ROUNDS = 2
SEED = 11


def build_runtime(
    stitcher: str = "overlap_ratio",
    workers: int = 1,
    executor: str = "auto",
    faults=None,
    fault_seed: int = 7,
    store: str | None = None,
):
    """A small deployment with the fixed round count streaming needs."""
    return StudyRuntime.build(
        background_scale=0.3,
        seed=SEED,
        start=START,
        end=END,
        max_workers=workers,
        executor=executor,
        sift=SiftConfig(
            annotate=False,
            stitcher=stitcher,
            averaging=AveragingConfig(min_rounds=ROUNDS, max_rounds=ROUNDS),
        ),
        checkpoint=False,
        store=store,
        faults=faults,
        fault_seed=fault_seed,
    )


def spike_dicts(study) -> list[dict]:
    return [spike.to_dict() for spike in study.spikes]


class TestPrefixParity:
    """Every prefix tick equals batch restricted to that window."""

    @pytest.mark.parametrize("stitcher", ["overlap_ratio", "calibrated"])
    @pytest.mark.parametrize(
        "workers,executor", [(1, "serial"), (3, "thread")]
    )
    def test_streamed_prefix_equals_batch(self, stitcher, workers, executor):
        runtime = build_runtime(
            stitcher=stitcher, workers=workers, executor=executor
        )
        daemon = runtime.stream_daemon(GEOS)
        while not daemon.done:
            result = daemon.tick()
            # Every second tick (and always the final one) pays for a
            # batch study over the same prefix; the crawl cache makes
            # the comparison runs cheap.
            if result.tick % 2 == 0 and result.tick != daemon.total_ticks - 1:
                continue
            batch = runtime.sift.run_study(
                GEOS, daemon.prefix_window(result.tick)
            )
            assert result.fingerprint == batch.fingerprint(), (
                f"tick {result.tick}: streamed prefix diverged from batch "
                f"({stitcher}, {executor})"
            )
        streamed = daemon.snapshot_study()
        batch = runtime.sift.run_study(GEOS, runtime.window)
        assert streamed.fingerprint() == batch.fingerprint()
        assert spike_dicts(streamed) == spike_dicts(batch)

    def test_tick_results_are_cumulative(self):
        runtime = build_runtime()
        daemon = runtime.stream_daemon(GEOS)
        counts = []
        while not daemon.done:
            counts.append(daemon.tick().spike_count)
        assert counts[-1] == len(daemon.snapshot_study().spikes)
        assert daemon.ticks_done == daemon.total_ticks


class TestConfigGuards:
    """Configurations that cannot stream fail loudly at construction."""

    def test_nonzero_min_peak_is_rejected(self):
        runtime = StudyRuntime.build(
            start=START,
            end=END,
            sift=SiftConfig(
                annotate=False,
                detection=DetectionConfig(min_peak=5.0),
                averaging=AveragingConfig(min_rounds=1, max_rounds=1),
            ),
            checkpoint=False,
        )
        with pytest.raises(ConfigurationError, match="min_peak"):
            runtime.stream_daemon(GEOS)

    def test_adaptive_rounds_are_rejected(self):
        runtime = StudyRuntime.build(
            start=START,
            end=END,
            sift=SiftConfig(
                annotate=False,
                averaging=AveragingConfig(min_rounds=1, max_rounds=3),
            ),
            checkpoint=False,
        )
        with pytest.raises(ConfigurationError, match="fixed fetch-round"):
            runtime.stream_daemon(GEOS)

    def test_explicit_stream_rounds_override_adaptive(self):
        runtime = StudyRuntime.build(
            start=START,
            end=END,
            sift=SiftConfig(
                annotate=False,
                averaging=AveragingConfig(min_rounds=1, max_rounds=3),
            ),
            checkpoint=False,
        )
        daemon = runtime.stream_daemon(GEOS, stream=StreamConfig(rounds=2))
        assert daemon.rounds == 2


class _CountingSource:
    """Delegating wrapper that counts interest_over_time calls."""

    def __init__(self, inner):
        self._inner = inner
        self.calls = 0

    def interest_over_time(self, *args, **kwargs):
        self.calls += 1
        return self._inner.interest_over_time(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestResume:
    """A killed daemon resumes from the store with zero refetch."""

    def test_resume_skips_completed_ticks_and_refetches_nothing(
        self, tmp_path
    ):
        store_dir = str(tmp_path / "stream-store")
        first = build_runtime(store=store_dir)
        daemon = first.stream_daemon(GEOS)
        total = daemon.total_ticks
        for _ in range(3):
            daemon.tick()

        second = build_runtime(store=store_dir)
        counter = _CountingSource(second.sift.source)
        second.sift.source = counter
        resumed = second.stream_daemon(GEOS)
        assert resumed.ticks_done == 3
        # Resume rebuilds per-geo state from the columnar checkpoint —
        # stitcher scalars, spike bounds, raw series — not from refetch.
        assert counter.calls == 0
        while not resumed.done:
            resumed.tick()
        # Only the remaining ticks hit the source.
        assert counter.calls == (total - 3) * len(GEOS) * ROUNDS

        batch = build_runtime().run_study(GEOS)
        assert resumed.snapshot_study().fingerprint() == batch.fingerprint()

    def test_resumed_snapshot_matches_prefix_batch(self, tmp_path):
        store_dir = str(tmp_path / "stream-store")
        first = build_runtime(store=store_dir)
        daemon = first.stream_daemon(GEOS)
        for _ in range(2):
            daemon.tick()
        expected = daemon.snapshot_study().fingerprint()

        resumed = build_runtime(store=store_dir).stream_daemon(GEOS)
        assert resumed.snapshot_study().fingerprint() == expected

    def test_checkpoint_from_other_stitcher_is_rejected(self, tmp_path):
        store_dir = str(tmp_path / "stream-store")
        daemon = build_runtime(store=store_dir).stream_daemon(GEOS)
        daemon.tick()
        with pytest.raises(CheckpointMismatchError):
            build_runtime(stitcher="calibrated", store=store_dir).stream_daemon(
                GEOS
            )

    def test_window_mismatch_starts_fresh(self, tmp_path):
        store_dir = str(tmp_path / "stream-store")
        daemon = build_runtime(store=store_dir).stream_daemon(GEOS)
        daemon.tick()
        other = StudyRuntime.build(
            background_scale=0.3,
            seed=SEED,
            start=START,
            end=utc(2021, 1, 31),
            sift=SiftConfig(
                annotate=False,
                averaging=AveragingConfig(min_rounds=ROUNDS, max_rounds=ROUNDS),
            ),
            checkpoint=False,
            store=store_dir,
        )
        fresh = other.stream_daemon(GEOS)
        assert fresh.ticks_done == 0


class _ExplodingSource:
    """Blows up on the Nth fetch, once; then delegates cleanly."""

    def __init__(self, inner, explode_at: int):
        self._inner = inner
        self._explode_at = explode_at
        self.calls = 0

    def interest_over_time(self, *args, **kwargs):
        self.calls += 1
        if self.calls == self._explode_at:
            raise RuntimeError("injected mid-tick crash")
        return self._inner.interest_over_time(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestChaos:
    """Fault-absorbing retries leave no trace on the streamed study."""

    @pytest.mark.parametrize("profile", ["transient", "timeouts"])
    def test_absorbed_faults_keep_byte_identity(self, profile):
        runtime = build_runtime(faults=profile)
        daemon = runtime.stream_daemon(GEOS)
        while not daemon.done:
            daemon.tick()
        report = runtime.fault_report()
        assert report is not None
        assert report.total_injected > 0
        assert report.dead_letters == 0  # these profiles are absorbable
        clean = build_runtime().run_study(GEOS)
        assert daemon.snapshot_study().fingerprint() == clean.fingerprint()

    def test_failed_tick_retries_without_double_feeding(self):
        runtime = build_runtime()
        # Explode mid-tick: after the first geo's rounds completed but
        # before the tick could finish — the already-fed geo must be
        # skipped by the retry, not folded twice.
        bomb = _ExplodingSource(runtime.sift.source, explode_at=ROUNDS + 1)
        runtime.sift.source = bomb
        daemon = runtime.stream_daemon(GEOS)
        with pytest.raises(RuntimeError, match="injected mid-tick crash"):
            daemon.tick()
        assert daemon.ticks_done == 0  # the tick did not commit
        result = daemon.tick()  # retry succeeds
        assert result.tick == 0
        while not daemon.done:
            daemon.tick()
        batch = build_runtime().run_study(GEOS)
        assert daemon.snapshot_study().fingerprint() == batch.fingerprint()
