"""End-to-end integration tests: pipeline findings vs ground truth.

These tests run the complete system — world, Trends service, fetcher
fleet, stitching, averaging, detection, annotation, grouping — and
check that the paper's *anchor facts* come out the other side.
"""

import pytest

from repro import make_environment, utc
from repro.ant import AntDataset, CrossValidationConfig, trace_spike


class TestTexasWinterStorm:
    """The paper's flagship anchor: Table 1 row 1 and Fig. 1."""

    def test_storm_spike_detected(self, tx_result):
        top = tx_result.spikes.top_by_duration(1)[0]
        assert top.start.date().isoformat() == "2021-02-15"
        assert top.start.hour == pytest.approx(10, abs=3)

    def test_storm_duration_close_to_paper(self, tx_result):
        """Paper: 45 hours."""
        top = tx_result.spikes.top_by_duration(1)[0]
        assert 38 <= top.duration_hours <= 55

    def test_storm_is_magnitude_rank_one(self, tx_result):
        top = tx_result.spikes.top_by_duration(1)[0]
        assert top.magnitude_rank == 1
        assert top.magnitude == pytest.approx(100.0, abs=1.0)

    def test_averaging_converged_within_six_rounds(self, tx_result):
        assert tx_result.averaging.rounds_used <= 6
        assert tx_result.averaging.converged

    def test_timeline_covers_window(self, tx_result, small_window):
        assert tx_result.timeline.window == small_window


class TestVerizonAnchor:
    """Fig. 1's second circle: the 26 Jan 2021 Verizon outage."""

    def test_verizon_spike_in_texas(self, tx_result):
        day = [
            spike
            for spike in tx_result.spikes
            if spike.peak.date().isoformat() == "2021-01-26"
        ]
        assert day, "Verizon outage day has no spike in TX"

    def test_storm_outranks_verizon(self, tx_result):
        """Fig. 1: the storm's magnitude and duration dominate."""
        storm = tx_result.spikes.top_by_duration(1)[0]
        verizon = [
            spike
            for spike in tx_result.spikes
            if spike.peak.date().isoformat() == "2021-01-26"
        ][0]
        assert storm.magnitude > verizon.magnitude
        assert storm.duration_hours > verizon.duration_hours


class TestStudyLevelFindings:
    def test_annotation_finds_power_outage_on_storm(self, mini_study):
        storm = mini_study.spikes.in_state("TX").top_by_duration(1)[0]
        assert storm.has_annotation({"Power outage", "Electric power", "Winter storm"})

    def test_verizon_outage_is_multi_state(self, mini_study):
        """The Verizon event spans many states; within our 4-geography
        study it must still group TX with at least one other state."""
        verizon_outages = [
            outage
            for outage in mini_study.outages
            if outage.start.date().isoformat() == "2021-01-26"
            and outage.footprint >= 2
        ]
        assert verizon_outages

    def test_heavy_hitters_contain_power_outage(self, mini_study):
        assert "Power outage" in mini_study.heavy_hitters

    def test_suggestion_stats_populated(self, mini_study):
        distinct, total = mini_study.suggestion_stats
        assert 0 < distinct <= total


class TestCrossValidation:
    @pytest.fixture(scope="class")
    def ant(self, small_scenario):
        return AntDataset.build(small_scenario)

    def test_ant_confirms_storm(self, ant, tx_result):
        storm = tx_result.spikes.top_by_duration(1)[0]
        # The two-month test scenario is storm-season-dense, so the
        # state background is unusually high; a 2x excess still marks a
        # clear confirmation.
        result = trace_spike(
            ant, storm, CrossValidationConfig(background_ratio=2.0)
        )
        assert result.confirmed
        assert result.blocks_down > result.expected_background


class TestCollectionAccounting:
    def test_frames_crawled_once_per_request(self, small_env):
        """Cache discipline: the DB holds exactly what the service served."""
        assert small_env.manager.frames_stored == (
            small_env.service.stats.frames_served
        )

    def test_workload_spread_over_fleet(self, small_env):
        per_fetcher = small_env.manager.database.frames_by_fetcher()
        assert len(per_fetcher) == small_env.config.fetcher_count
        counts = sorted(per_fetcher.values())
        assert counts[0] > 0
        assert counts[-1] - counts[0] <= 1  # least-loaded balancing


class TestDeterminism:
    def test_identical_environments_identical_studies(self):
        window_start = utc(2021, 2, 1)
        window_end = utc(2021, 3, 1)
        results = []
        for _ in range(2):
            env = make_environment(
                background_scale=0.1, start=window_start, end=window_end
            )
            study = env.run_study(geos=("US-TX", "US-WY"))
            results.append(study)
        a, b = results
        assert a.spike_count == b.spike_count
        assert a.spikes.peak_signature() == b.spikes.peak_signature()
        assert [s.annotations for s in a.spikes] == [s.annotations for s in b.spikes]
