"""Tests for the scenario foundry: DSL, families, pack, and grid safety."""

from datetime import timedelta

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.timeutil import ensure_grid, utc
from repro.world.behavior import term_baseline_per_hour
from repro.world.foundry import (
    FAMILY_KINDS,
    DstSpanning,
    EventFamily,
    ExplicitOutage,
    ScenarioSpec,
    SharpOutage,
    dst_transitions,
    family_from_dict,
    scenario_pack,
)
from repro.world.foundry.spec import draw_local_onset, draw_onset
from repro.world.scenarios import Scenario, ScenarioConfig
from repro.world.states import STATES, WORLD_REGIONS, get_state

import numpy as np

START = utc(2021, 3, 1)
END = utc(2021, 3, 20)


def simple_spec(**overrides) -> ScenarioSpec:
    fields = {
        "name": "lab",
        "start": START,
        "end": END,
        "geos": ("US-TX", "US-CA"),
        "families": (SharpOutage(occurrences=2),),
    }
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestFamilyRegistry:
    def test_every_shipped_family_registers(self):
        expected = {
            "cascading_cdn", "bgp_leak", "slow_brownout", "sharp_outage",
            "correlated_power_network", "offshore_diurnal", "night_trough",
            "flapping", "explicit", "dst_spanning",
        }
        assert expected <= set(FAMILY_KINDS)

    def test_duplicate_kind_rejected(self):
        with pytest.raises(TypeError, match="duplicate family kind"):
            class Impostor(EventFamily):  # noqa: F841
                kind = "sharp_outage"

    def test_missing_kind_rejected(self):
        with pytest.raises(TypeError, match="non-empty kind"):
            class Nameless(EventFamily):  # noqa: F841
                pass

    def test_family_round_trip(self):
        family = SharpOutage(occurrences=3, intensity=(14.0, 18.0))
        rebuilt = family_from_dict(family.to_dict())
        assert rebuilt == family

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown event-family"):
            family_from_dict({"kind": "nope"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="does not accept"):
            family_from_dict({"kind": "sharp_outage", "bogus": 1})


class TestScenarioSpec:
    def test_rejects_backwards_window(self):
        with pytest.raises(ConfigurationError, match="end must follow"):
            simple_spec(start=END, end=START)

    def test_rejects_empty_geos(self):
        with pytest.raises(ConfigurationError, match="no geographies"):
            simple_spec(geos=())

    def test_rejects_world_that_generates_nothing(self):
        with pytest.raises(ConfigurationError, match="generates nothing"):
            simple_spec(families=(), background_scale=0.0)

    def test_codes_strip_us_prefix_and_keep_world_codes(self):
        spec = simple_spec(geos=("US-TX", "GB"))
        assert spec.codes == ("TX", "GB")

    def test_compile_is_deterministic(self):
        spec = simple_spec()
        first = spec.compile(99)
        second = spec.compile(99)
        assert first.events == second.events

    def test_different_seeds_differ(self):
        spec = simple_spec()
        assert spec.compile(1).events != spec.compile(2).events

    def test_serialization_round_trip_compiles_identically(self):
        spec = simple_spec(geos=("US-TX", "GB", "LK"))
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.compile(7).events == spec.compile(7).events

    def test_events_sorted_and_namespaced(self):
        spec = simple_spec(
            families=(SharpOutage(occurrences=2), SharpOutage(occurrences=2))
        )
        scenario = spec.compile(5)
        starts = [event.start for event in scenario.events]
        assert starts == sorted(starts)
        prefixes = {event.event_id.split("-")[0] for event in scenario.events}
        assert prefixes == {"fy00", "fy01"}

    def test_generated_world_is_byte_reproducible(self):
        """(spec, seed) pins the full study output, not just the events."""
        from repro.world.foundry.fuzzer import run_probe

        spec = ScenarioSpec(
            name="repro-check",
            start=START,
            end=START + timedelta(days=7),
            geos=("US-WY",),
            families=(
                ExplicitOutage(
                    day_offset=2, hour=14, duration_hours=3, intensity=9.0
                ),
            ),
        )
        assert run_probe(spec, 42).fingerprint() == run_probe(spec, 42).fingerprint()


class TestScenarioPack:
    def test_pack_has_enough_families(self):
        pack = scenario_pack()
        assert len(pack) >= 8
        assert set(scenario_pack(smoke=True)) == set(pack)

    def test_smoke_pack_is_smaller(self):
        full = scenario_pack()
        smoke = scenario_pack(smoke=True)
        for name in full:
            assert smoke[name].window.hours <= full[name].window.hours

    def test_every_family_produces_impacts(self):
        for name, spec in scenario_pack(smoke=True).items():
            scenario = spec.compile(11)
            assert scenario.total_impacts > 0, name

    def test_all_pack_impacts_are_grid_aligned(self):
        for name, spec in scenario_pack().items():
            scenario = spec.compile(3)
            window = spec.window
            for event in scenario.events:
                for impact in event.impacts:
                    ensure_grid(impact.onset)
                    assert window.start <= impact.onset < window.end, name

    def test_offshore_family_uses_world_geos(self):
        spec = scenario_pack()["offshore_diurnal"]
        codes = set(spec.codes)
        assert codes & {region.code for region in WORLD_REGIONS}


class TestWorldRegions:
    def test_world_codes_do_not_collide_with_states(self):
        state_codes = {state.code for state in STATES}
        assert not state_codes & {region.code for region in WORLD_REGIONS}

    def test_world_geo_is_bare_code(self):
        assert get_state("GB").geo == "GB"
        assert get_state("US-TX").geo == "US-TX"

    def test_homed_terms_are_silent_in_us(self):
        # The home_geos gate is what keeps the US world bit-identical.
        assert term_baseline_per_hour("BT", "TX") == 0.0
        assert term_baseline_per_hour("BT", "GB") > 0.0

    def test_us_terms_reach_world_regions(self):
        assert term_baseline_per_hour("Internet outage", "JP") > 0.0


class TestDstHelpers:
    def test_finds_2021_spring_forward(self):
        window = simple_spec().window  # spans 2021-03-14
        transitions = dst_transitions("TX", window)
        assert utc(2021, 3, 14, 8) in transitions  # 2am CST -> 3am CDT

    def test_fixed_offset_zone_has_none(self):
        assert dst_transitions("JP", simple_spec().window) == ()

    def test_dst_spanning_family_straddles_transition(self):
        spec = ScenarioSpec(
            name="dst",
            start=START,
            end=END,
            geos=("US-TX",),
            families=(DstSpanning(lead_hours=(4, 8), duration_hours=(10, 14)),),
        )
        scenario = spec.compile(13)
        (event,) = scenario.events
        pivot = utc(2021, 3, 14, 8)
        assert event.start <= pivot <= event.end


class TestGridProperties:
    """Satellite: off-grid windows must be impossible by construction."""

    @given(
        scale=st.floats(
            min_value=0.0, max_value=1e-5, allow_nan=False, allow_infinity=False
        ),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_tiny_background_scale_stays_on_grid(self, scale, seed):
        scenario = Scenario.build(
            ScenarioConfig(
                start=START,
                end=START + timedelta(days=10),
                seed=seed,
                background_scale=scale,
                include_headline_events=False,
            )
        )
        for event in scenario.events:
            for impact in event.impacts:
                ensure_grid(impact.onset)

    @given(
        code=st.sampled_from(("TX", "NY", "CA", "GB", "LK", "AU")),
        lead=st.integers(min_value=0, max_value=12),
        duration=st.integers(min_value=2, max_value=20),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_dst_transition_starts_stay_on_grid(self, code, lead, duration, seed):
        geo = get_state(code).geo
        spec = ScenarioSpec(
            name="dst-prop",
            start=utc(2021, 3, 1),
            end=utc(2021, 4, 5),  # spans US *and* EU/AU transitions
            geos=(geo,),
            families=(
                DstSpanning(
                    lead_hours=(lead, lead), duration_hours=(duration, duration)
                ),
            ),
        )
        scenario = spec.compile(seed)
        for event in scenario.events:
            ensure_grid(event.start)
            for impact in event.impacts:
                ensure_grid(impact.onset)
                assert spec.start <= impact.onset < spec.end

    @given(
        code=st.sampled_from(("TX", "GB", "LK")),
        lo=st.integers(min_value=0, max_value=22),
        span=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_local_onsets_stay_on_grid_even_in_half_hour_zones(
        self, code, lo, span, seed
    ):
        rng = np.random.default_rng(seed)
        window = simple_spec().window
        onset = draw_local_onset(
            rng, window, code, (lo, min(23, lo + span)), margin_hours=3
        )
        ensure_grid(onset)
        assert window.start <= onset < window.end

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_draw_onset_respects_margin(self, seed):
        rng = np.random.default_rng(seed)
        window = simple_spec().window
        onset = draw_onset(rng, window, margin_hours=3)
        ensure_grid(onset)
        assert onset <= window.end - timedelta(hours=4)
