"""Unit tests for the scenario generator."""

import pytest

from repro.errors import ConfigurationError
from repro.timeutil import utc
from repro.world.catalog import get_term
from repro.world.events import Cause
from repro.world.scenarios import Scenario, ScenarioConfig, headline_events
from repro.world.states import get_state


class TestHeadlineEvents:
    @pytest.fixture(scope="class")
    def events(self):
        return {event.event_id: event for event in headline_events()}

    def test_texas_winter_storm_matches_table1(self, events):
        storm = events["hl-tx-winter-storm"]
        impact = storm.impact_on("TX")
        assert impact.start == utc(2021, 2, 15, 10)
        assert impact.interest_hours == 45
        assert storm.cause is Cause.POWER_WEATHER
        assert "Power outage" in storm.terms

    def test_akamai_footprint_matches_table2(self, events):
        assert events["hl-akamai"].footprint == 34

    def test_table2_footprints_ordered_like_paper(self, events):
        footprints = {
            "hl-akamai": 34,
            "hl-cloudflare": 30,
            "hl-verizon": 27,
            "hl-youtube": 27,
            "hl-aws": 26,
            "hl-comcast-nationwide": 25,
            "hl-centurylink-bgp": 24,
        }
        for event_id, expected in footprints.items():
            assert events[event_id].footprint == expected, event_id

    def test_facebook_covers_every_state_with_lags(self, events):
        facebook = events["hl-facebook"]
        assert facebook.footprint == 51
        lagged = [impact for impact in facebook.impacts if impact.lag_hours > 0]
        assert len(lagged) == 22  # paper: 22 states spiked late

    def test_tmobile_is_mobile_and_ant_invisible(self, events):
        tmobile = events["hl-tmobile"]
        assert tmobile.cause is Cause.MOBILE
        assert not tmobile.network_visible

    def test_all_terms_exist_in_catalog(self, events):
        for event in events.values():
            for term in event.terms:
                assert get_term(term) is not None

    def test_all_have_news_records(self, events):
        assert all(event.news is not None for event in events.values())

    def test_table3_power_events_present(self, events):
        for event_id in (
            "hl-ca-heatwave",
            "hl-mi-storm",
            "hl-wa-storm",
            "hl-co-powerline",
            "hl-oh-storm",
            "hl-ky-tornado",
        ):
            assert events[event_id].cause.is_power_related, event_id


class TestScenarioConfig:
    def test_rejects_reversed_window(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(start=utc(2021, 1, 1), end=utc(2020, 1, 1))

    def test_rejects_absurd_scale(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(background_scale=10.0)


class TestScenarioBuild:
    @pytest.fixture(scope="class")
    def scenario(self):
        return Scenario.build(
            ScenarioConfig(
                start=utc(2021, 1, 1), end=utc(2021, 4, 1), background_scale=0.2
            )
        )

    def test_deterministic(self, scenario):
        again = Scenario.build(scenario.config)
        assert [e.event_id for e in again.events] == [
            e.event_id for e in scenario.events
        ]

    def test_events_sorted_by_start(self, scenario):
        starts = [event.start for event in scenario.events]
        assert starts == sorted(starts)

    def test_all_events_overlap_window(self, scenario):
        for event in scenario.events:
            assert event.overlaps(scenario.window)

    def test_headline_events_filtered_by_window(self, scenario):
        ids = {event.event_id for event in scenario.events}
        assert "hl-tx-winter-storm" in ids  # Feb 2021: inside
        assert "hl-tmobile" not in ids  # Jun 2020: outside

    def test_state_index(self, scenario):
        for event in scenario.events_in_state("TX"):
            assert "TX" in event.states

    def test_zero_scale_keeps_only_headliners(self):
        scenario = Scenario.build(
            ScenarioConfig(
                start=utc(2021, 1, 1), end=utc(2021, 4, 1), background_scale=0.0
            )
        )
        assert all(event.event_id.startswith("hl-") for event in scenario.events)

    def test_impacts_reference_known_states(self, scenario):
        for event in scenario.events:
            for code in event.states:
                assert get_state(code) is not None


class TestBackgroundCalibration:
    """Distributional checks on a moderately-sized background draw."""

    @pytest.fixture(scope="class")
    def scenario(self):
        return Scenario.build(ScenarioConfig(background_scale=0.25))

    def test_event_volume_scales(self, scenario):
        # 16/day * 0.25 * ~730 days, +- Poisson noise and clusters.
        background = [e for e in scenario.events if not e.event_id.startswith("hl-")]
        assert 2500 < len(background) < 4000

    def test_most_events_single_state(self, scenario):
        single = sum(1 for event in scenario.events if event.footprint == 1)
        assert single / len(scenario.events) > 0.6

    def test_broad_events_exist(self, scenario):
        broad = [event for event in scenario.events if event.footprint >= 10]
        assert broad
        for event in broad:
            assert event.cause in (
                Cause.ISP,
                Cause.MOBILE,
                Cause.CLOUD,
                Cause.APPLICATION,
                Cause.OTHER,
            )

    def test_long_events_mostly_power(self, scenario):
        long_events = [
            event
            for event in scenario.events
            if event.footprint < 10 and event.max_interest_hours >= 5
        ]
        power = [event for event in long_events if event.cause.is_power_related]
        assert len(power) / len(long_events) > 0.6

    def test_power_clusters_shape_fig6(self, scenario):
        """CA Aug/Sep 2020 and TX Jan/Feb 2021 must be outlier months."""

        def long_power_in(state: str, year: int, months: tuple[int, ...]) -> int:
            return sum(
                1
                for event in scenario.events
                if event.cause.is_power_related
                and event.impact_on(state) is not None
                and event.impact_on(state).interest_hours >= 5
                and event.start.year == year
                and event.start.month in months
            )

        ca_peak = long_power_in("CA", 2020, (8, 9))
        ca_quiet = long_power_in("CA", 2020, (2, 3))
        tx_peak = long_power_in("TX", 2021, (1, 2))
        tx_quiet = long_power_in("TX", 2021, (5, 6))
        assert ca_peak > 3 * max(ca_quiet, 1)
        assert tx_peak > 3 * max(tx_quiet, 1)

    def test_weekday_rate_exceeds_weekend(self, scenario):
        weekday = sum(1 for e in scenario.events if e.start.weekday() < 5)
        weekend = sum(1 for e in scenario.events if e.start.weekday() >= 5)
        assert weekday / 5 > weekend / 2

    def test_terms_match_cause(self, scenario):
        for event in scenario.events[:500]:
            if event.cause.is_power_related:
                assert "Power outage" in event.terms
