"""Unit tests for iterative re-fetch averaging."""

import numpy as np
import pytest

from repro.core.averaging import AveragingConfig, average_until_convergence
from repro.errors import ConvergenceError
from repro.timeutil import TimeWindow, utc
from repro.trends.records import TimeFrameRequest, TimeFrameResponse
from repro.trends.sampling import index_frame

HOURS = 168


def noisy_round_factory(truth: np.ndarray, noise: float, seed: int = 0):
    """fetch_round callable adding per-round sampling-style noise."""

    def fetch_round(round_index: int):
        rng = np.random.default_rng(seed + round_index)
        sampled = np.maximum(truth + rng.normal(0, noise, truth.size), 0)
        sampled[truth == 0] = 0.0  # privacy zeros are sticky
        window = TimeWindow(utc(2021, 1, 1), utc(2021, 1, 8))
        request = TimeFrameRequest(
            term="Internet outage", geo="US-TX", window=window
        )
        return [
            TimeFrameResponse(
                request=request,
                values=index_frame(sampled),
                rising=(),
                sample_round=round_index,
            )
        ]

    return fetch_round


@pytest.fixture()
def truth():
    values = np.zeros(HOURS)
    values[40] = 30.0
    values[41] = 80.0
    values[42] = 50.0
    values[100] = 25.0
    return values


class TestConfig:
    def test_rejects_bad_round_budget(self):
        with pytest.raises(ConvergenceError):
            AveragingConfig(min_rounds=0)
        with pytest.raises(ConvergenceError):
            AveragingConfig(min_rounds=5, max_rounds=2)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConvergenceError):
            AveragingConfig(similarity_threshold=0.0)
        with pytest.raises(ConvergenceError):
            AveragingConfig(similarity_threshold=1.5)


class TestConvergence:
    def test_clean_signal_converges_fast(self, truth):
        result = average_until_convergence(
            noisy_round_factory(truth, noise=0.5),
            AveragingConfig(min_rounds=2, max_rounds=6),
        )
        assert result.converged
        assert result.rounds_used <= 4
        assert len(result.spikes) == 2

    def test_noisy_signal_uses_more_rounds(self, truth):
        quiet = average_until_convergence(
            noisy_round_factory(truth, noise=0.5),
            AveragingConfig(min_rounds=2, max_rounds=8),
        )
        noisy = average_until_convergence(
            noisy_round_factory(truth, noise=12.0),
            AveragingConfig(min_rounds=2, max_rounds=8),
        )
        assert noisy.rounds_used >= quiet.rounds_used

    def test_averaging_reduces_error(self, truth):
        """The averaged series must be closer to truth than round one."""
        fetch = noisy_round_factory(truth, noise=8.0)
        single = fetch(0)[0].values.astype(float)
        single = single / single.max() * 100
        result = average_until_convergence(
            fetch, AveragingConfig(min_rounds=6, max_rounds=6)
        )
        averaged = result.timeline.values
        normalized_truth = truth / truth.max() * 100
        assert np.abs(averaged - normalized_truth).mean() < (
            np.abs(single - normalized_truth).mean()
        )

    @staticmethod
    def moving_target_rounds(round_index: int):
        """A pathological source whose spike moves every round."""
        values = np.zeros(HOURS)
        values[20 + 30 * round_index] = 50.0
        window = TimeWindow(utc(2021, 1, 1), utc(2021, 1, 8))
        request = TimeFrameRequest(
            term="Internet outage", geo="US-TX", window=window
        )
        return [
            TimeFrameResponse(
                request=request,
                values=index_frame(values),
                rising=(),
                sample_round=round_index,
            )
        ]

    def test_strict_mode_raises_without_convergence(self):
        with pytest.raises(ConvergenceError):
            average_until_convergence(
                self.moving_target_rounds,
                AveragingConfig(
                    min_rounds=2,
                    max_rounds=3,
                    similarity_threshold=0.99,
                    strict=True,
                ),
            )

    def test_best_effort_without_convergence(self):
        result = average_until_convergence(
            self.moving_target_rounds,
            AveragingConfig(min_rounds=2, max_rounds=3, similarity_threshold=0.99),
        )
        assert not result.converged
        assert result.rounds_used == 3

    def test_similarity_history_recorded(self, truth):
        result = average_until_convergence(
            noisy_round_factory(truth, noise=5.0),
            AveragingConfig(min_rounds=3, max_rounds=6),
        )
        assert len(result.similarity_history) == result.rounds_used - 1
        assert all(0 <= s <= 1 for s in result.similarity_history)

    def test_empty_round_raises(self):
        with pytest.raises(ConvergenceError):
            average_until_convergence(lambda k: [])

    def test_changing_frame_count_raises(self, truth):
        good = noisy_round_factory(truth, 1.0)

        def flaky(round_index):
            responses = good(round_index)
            return responses if round_index == 0 else responses + responses

        with pytest.raises(ConvergenceError):
            average_until_convergence(flaky)

    def test_quantize_option(self, truth):
        result = average_until_convergence(
            noisy_round_factory(truth, noise=0.5),
            AveragingConfig(min_rounds=2, max_rounds=4, quantize=True),
        )
        assert np.allclose(result.timeline.values, np.round(result.timeline.values))
