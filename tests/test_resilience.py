"""Self-healing under process chaos: the supervisor's correctness bar.

The :class:`~repro.streaming.supervisor.DaemonSupervisor` claims that a
watch loop killed mid-tick, wedged past its watchdog, or fed corrupted
checkpoints heals without changing a single byte of the result: the
final study fingerprint must equal an uninterrupted batch run, damaged
geo partitions must be quarantined and re-crawled exactly once, and the
serving layer must keep answering (degraded, never down) throughout.
The soaks here are seeded — `(profile, seed)` replays bit-exactly — so
every assertion is about *the* run, not a lucky one.
"""

from __future__ import annotations

import os

import pytest

from repro.core import SiftConfig
from repro.core.averaging import AveragingConfig
from repro.core.progress import (
    GeoRecrawled,
    HealthChanged,
    Heartbeat,
    PartitionQuarantined,
    ProgressLog,
    TickRestarted,
)
from repro.errors import (
    ConfigurationError,
    ErrorClass,
    SupervisorHalted,
    TickCrashError,
    WatchdogTimeout,
    classify_error,
)
from repro.runtime.study import StudyRuntime
from repro.store import ColumnarStore
from repro.streaming import (
    PROCESS_PROFILES,
    ChaoticFrameSource,
    ProcessChaos,
    ProcessFaultProfile,
    SupervisorConfig,
    Watchdog,
    damage_stream_column,
)
from repro.timeutil import utc
from repro.trends.ratelimit import SimulatedClock
from repro.web.app import SiftWebApp

GEOS = ("US-TX", "US-CA", "US-OK")
START, END = utc(2021, 1, 1), utc(2021, 2, 7)  # six weekly ticks
ROUNDS = 2
SEED = 11

#: The canonical soak: crash + stall + corruption rates low enough that
#: every incident recovers within the six-tick stream; seed 8 was chosen
#: because its replay injects at least one crash and one corruption,
#: quarantines at least one geography, and ends back at ``healthy``.
SOAK_PROFILE = ProcessFaultProfile(
    name="soak",
    crash_rate=0.06,
    stall_rate=0.03,
    stall_seconds=600.0,
    corrupt_rate=0.35,
)
SOAK_SEED = 8
SOAK_CONFIG = SupervisorConfig(watchdog_seconds=500.0, max_restarts=10)


def build_runtime(
    stitcher: str = "overlap_ratio",
    store: str | None = None,
    database: str = ":memory:",
    progress=None,
):
    return StudyRuntime.build(
        background_scale=0.3,
        seed=SEED,
        start=START,
        end=END,
        database=database,
        sift=SiftConfig(
            annotate=False,
            stitcher=stitcher,
            averaging=AveragingConfig(min_rounds=ROUNDS, max_rounds=ROUNDS),
        ),
        checkpoint=False,
        store=store,
        progress=progress,
    )


def batch_fingerprint(stitcher: str = "overlap_ratio") -> str:
    return build_runtime(stitcher=stitcher).run_study(GEOS).fingerprint()


class TestChaosSoak:
    """Kill it, corrupt it, wedge it: the study must not change."""

    @pytest.mark.parametrize("stitcher", ["overlap_ratio", "calibrated"])
    @pytest.mark.parametrize("database", [":memory:", "file"])
    def test_soak_recovers_byte_identical(self, tmp_path, stitcher, database):
        db = (
            str(tmp_path / "collection.sqlite")
            if database == "file"
            else ":memory:"
        )
        log = ProgressLog()
        runtime = build_runtime(
            stitcher=stitcher,
            store=str(tmp_path / "store"),
            database=db,
            progress=log,
        )
        chaos = ProcessChaos(SOAK_PROFILE, seed=SOAK_SEED)
        supervisor = runtime.supervise(GEOS, config=SOAK_CONFIG, chaos=chaos)
        final = supervisor.run()

        # The acceptance bar: daemon died mid-tick, a partition was
        # corrupted, and none of it left a trace in the result.
        injected = chaos.injection_counts()
        assert injected["crash"] >= 1
        assert injected["truncate"] + injected["bitflip"] >= 1
        assert supervisor.restarts >= 1
        assert supervisor.quarantined
        assert supervisor.state.value == "healthy"
        assert final.fingerprint() == batch_fingerprint(stitcher)

        # Health was an explicit journey, not a flag: degraded on the
        # first failure, healthy again after the recovery streak.
        transitions = [
            (event.previous, event.state)
            for event in log.of_type(HealthChanged)
        ]
        assert ("healthy", "degraded") in transitions
        assert ("degraded", "healthy") in transitions
        assert supervisor.recovery_log
        for incident in supervisor.recovery_log:
            assert incident["recovered_tick"] >= incident["tick"]
            assert incident["virtual_seconds"] > 0

    def test_quarantined_geos_recrawled_exactly_once(self, tmp_path):
        log = ProgressLog()
        runtime = build_runtime(store=str(tmp_path / "store"), progress=log)
        chaos = ProcessChaos(SOAK_PROFILE, seed=SOAK_SEED)
        supervisor = runtime.supervise(GEOS, config=SOAK_CONFIG, chaos=chaos)
        supervisor.run()

        quarantines = log.of_type(PartitionQuarantined)
        recrawls = log.of_type(GeoRecrawled)
        assert {event.geo for event in quarantines} == set(
            supervisor.quarantined
        )
        # One re-crawl per quarantine incident — never zero (the data
        # was lost) and never repeated (the re-crawl checkpoints
        # immediately, so a later restart restores instead).
        assert sorted(event.geo for event in recrawls) == sorted(
            supervisor.quarantined
        )
        for event in recrawls:
            assert event.ticks >= 1

    def test_soak_replays_bit_exactly(self, tmp_path):
        fingerprints = []
        for attempt in ("a", "b"):
            runtime = build_runtime(store=str(tmp_path / f"store-{attempt}"))
            chaos = ProcessChaos(SOAK_PROFILE, seed=SOAK_SEED)
            supervisor = runtime.supervise(
                GEOS, config=SOAK_CONFIG, chaos=chaos
            )
            final = supervisor.run()
            fingerprints.append(
                (
                    final.fingerprint(),
                    supervisor.restarts,
                    tuple(supervisor.quarantined),
                    tuple(sorted(chaos.injection_counts().items())),
                )
            )
        assert fingerprints[0] == fingerprints[1]

    def test_storeless_supervisor_retries_in_memory(self):
        runtime = build_runtime()
        chaos = ProcessChaos(
            ProcessFaultProfile(name="crashy", crash_rate=0.12), seed=3
        )
        supervisor = runtime.supervise(GEOS, config=SOAK_CONFIG, chaos=chaos)
        final = supervisor.run()
        assert chaos.injection_counts()["crash"] >= 1
        assert supervisor.restarts >= 1
        assert final.fingerprint() == batch_fingerprint()


class TestFailurePolicy:
    """Restart budget, backoff geometry, halt semantics."""

    def test_restart_budget_exhaustion_halts(self, tmp_path):
        log = ProgressLog()
        runtime = build_runtime(store=str(tmp_path / "store"), progress=log)
        # Every fetch crashes: the first tick can never complete.
        chaos = ProcessChaos(
            ProcessFaultProfile(name="doom", crash_rate=0.999), seed=1
        )
        supervisor = runtime.supervise(
            GEOS,
            config=SupervisorConfig(watchdog_seconds=500.0, max_restarts=3),
            chaos=chaos,
        )
        with pytest.raises(SupervisorHalted) as exc:
            supervisor.run()
        assert supervisor.state.value == "halted"
        assert exc.value.restarts == 3
        # Halting is itself fatal: the supervisor refuses further ticks.
        with pytest.raises(SupervisorHalted):
            supervisor.tick()
        restarts = log.of_type(TickRestarted)
        assert [event.attempt for event in restarts] == [1, 2, 3]
        assert all(event.error_class == "retryable" for event in restarts)

    def test_backoff_grows_and_is_deterministic(self, tmp_path):
        log = ProgressLog()
        runtime = build_runtime(store=str(tmp_path / "store"), progress=log)
        chaos = ProcessChaos(
            ProcessFaultProfile(name="doom", crash_rate=0.999), seed=1
        )
        config = SupervisorConfig(
            watchdog_seconds=500.0,
            max_restarts=4,
            backoff_base=2.0,
            backoff_factor=2.0,
            backoff_cap=600.0,
        )
        supervisor = runtime.supervise(GEOS, config=config, chaos=chaos)
        with pytest.raises(SupervisorHalted):
            supervisor.run()
        backoffs = [e.backoff_seconds for e in log.of_type(TickRestarted)]
        assert len(backoffs) == 4
        # Jitter scales each step into [0.5, 1.0] x the exponential curve.
        for attempt, backoff in enumerate(backoffs, start=1):
            ceiling = min(600.0, 2.0 * 2.0 ** (attempt - 1))
            assert ceiling * 0.5 <= backoff <= ceiling
        # The virtual clock paid for every wait.
        assert float(runtime.clock()) >= sum(backoffs)

    def test_watchdog_timeout_is_retryable_and_restarts(self, tmp_path):
        log = ProgressLog()
        runtime = build_runtime(store=str(tmp_path / "store"), progress=log)
        # One long stall early on: the 300s watchdog trips, the restart
        # redraws (new attempt) and the stream completes.
        chaos = ProcessChaos(
            ProcessFaultProfile(
                name="wedge", stall_rate=0.04, stall_seconds=900.0
            ),
            seed=5,
        )
        supervisor = runtime.supervise(
            GEOS,
            config=SupervisorConfig(watchdog_seconds=300.0, max_restarts=10),
            chaos=chaos,
        )
        final = supervisor.run()
        assert chaos.injection_counts()["stall"] >= 1
        assert any(
            "WatchdogTimeout" in event.error
            for event in log.of_type(TickRestarted)
        )
        assert final.fingerprint() == batch_fingerprint()

    def test_watchdog_unit(self):
        clock = SimulatedClock()
        dog = Watchdog(clock, deadline_seconds=10.0)
        dog.check()  # unarmed: never fires
        dog.arm()
        clock.sleep(9.0)
        dog.check()
        clock.sleep(2.0)
        assert dog.expired()
        with pytest.raises(WatchdogTimeout) as exc:
            dog.check()
        assert exc.value.elapsed_seconds == pytest.approx(11.0)
        dog.disarm()
        dog.check()
        with pytest.raises(ConfigurationError):
            Watchdog(clock, deadline_seconds=0.0)

    def test_error_classification(self):
        assert classify_error(TickCrashError("boom")) is ErrorClass.RETRYABLE
        assert (
            classify_error(WatchdogTimeout(12.0, 10.0))
            is ErrorClass.RETRYABLE
        )
        assert classify_error(SupervisorHalted("done")) is ErrorClass.FATAL

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SupervisorConfig(max_restarts=0)
        with pytest.raises(ConfigurationError):
            SupervisorConfig(watchdog_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            SupervisorConfig(backoff_cap=1.0, backoff_base=2.0)
        with pytest.raises(ConfigurationError):
            ProcessFaultProfile(crash_rate=0.7, stall_rate=0.5)
        with pytest.raises(ConfigurationError):
            ProcessFaultProfile(kinds=("melt",))


class TestChaosDeterminism:
    """Fault draws depend on request identity, never arrival order."""

    def test_fetch_fault_independent_of_order(self):
        from repro.timeutil import TimeWindow

        window = TimeWindow(START, utc(2021, 1, 8))
        identities = [
            ("internet down", geo, window, r)
            for geo in GEOS
            for r in range(ROUNDS)
        ]
        forward = ProcessChaos(PROCESS_PROFILES["havoc"], seed=21)
        backward = ProcessChaos(PROCESS_PROFILES["havoc"], seed=21)
        faults_fwd = {
            identity: forward.fetch_fault(*identity)
            for identity in identities
        }
        faults_bwd = {
            identity: backward.fetch_fault(*identity)
            for identity in reversed(identities)
        }
        assert faults_fwd == faults_bwd

    def test_retried_fetch_redraws(self):
        from repro.timeutil import TimeWindow

        window = TimeWindow(START, utc(2021, 1, 8))
        chaos = ProcessChaos(
            ProcessFaultProfile(name="x", crash_rate=0.5), seed=2
        )
        draws = [
            chaos.fetch_fault("internet down", "US-TX", window, 0)
            for _ in range(32)
        ]
        # Same identity, increasing attempt counter: both outcomes occur.
        assert "crash" in draws
        assert None in draws

    def test_chaotic_source_delegates(self):
        runtime = build_runtime()
        chaos = ProcessChaos(PROCESS_PROFILES["none"], seed=1)
        wrapped = ChaoticFrameSource(runtime.sift.source, chaos)
        assert wrapped.report() is not None


class TestStoreIntegrity:
    """Digests, quarantine, tmp sweep: crash-only, never crash-corrupt."""

    def _seeded_store(self, tmp_path) -> tuple[str, str]:
        store_dir = str(tmp_path / "store")
        runtime = build_runtime(store=store_dir)
        daemon = runtime.stream_daemon(GEOS)
        daemon.tick()
        daemon.tick()
        return store_dir, runtime.config.sift.stitcher

    def test_verify_clean_store(self, tmp_path):
        store_dir, stitcher = self._seeded_store(tmp_path)
        verification = ColumnarStore(store_dir, stitcher=stitcher).verify()
        assert verification.clean
        assert verification.checked >= len(GEOS)
        assert not verification.damaged_geos()

    @pytest.mark.parametrize(
        "kind,expected",
        [("truncate", "truncated"), ("bitflip", "digest-mismatch")],
    )
    def test_verify_detects_damage(self, tmp_path, kind, expected):
        store_dir, stitcher = self._seeded_store(tmp_path)
        store = ColumnarStore(store_dir, stitcher=stitcher)
        assert damage_stream_column(store, "US-CA", kind, seed=4, tick=1)
        verification = store.verify()
        assert not verification.clean
        assert verification.damaged_geos() == ("US-CA",)
        assert any(item.kind == expected for item in verification.damage)
        # Detection without quarantine leaves the files in place.
        assert os.path.exists(
            os.path.join(store_dir, "series", "US-CA.stream.npy")
        )

    def test_quarantine_moves_both_partition_halves(self, tmp_path):
        store_dir, stitcher = self._seeded_store(tmp_path)
        store = ColumnarStore(store_dir, stitcher=stitcher)
        damage_stream_column(store, "US-CA", "bitflip", seed=4, tick=1)
        verification = store.verify(quarantine=True)
        assert verification.quarantined == ("US-CA",)
        series = os.path.join(store_dir, "series")
        # A damaged stream column condemns the study column too: resume
        # needs a consistent pair, half-trusted is untrusted.
        assert os.path.exists(
            os.path.join(series, "US-CA.stream.npy.quarantine")
        )
        assert not os.path.exists(os.path.join(series, "US-CA.stream.npy"))
        assert not os.path.exists(os.path.join(series, "US-CA.npy"))
        # The quarantine marker survives reopening and the state shrank
        # to the intact geographies.
        reopened = ColumnarStore(store_dir, stitcher=stitcher)
        state = reopened.load_stream()
        assert "US-CA" in state.get("quarantined", {})
        assert "US-CA" not in state["geos"]
        assert reopened.verify().clean

    def test_sweep_removes_stale_tmp_files(self, tmp_path):
        store_dir, stitcher = self._seeded_store(tmp_path)
        orphan = os.path.join(store_dir, "series", "US-XX.npy.tmp")
        with open(orphan, "wb") as handle:
            handle.write(b"torn write")
        reopened = ColumnarStore(store_dir, stitcher=stitcher)
        assert reopened.swept == ("series/US-XX.npy.tmp",)
        assert not os.path.exists(orphan)

    def test_manifest_entries_carry_digests(self, tmp_path):
        store_dir, stitcher = self._seeded_store(tmp_path)
        store = ColumnarStore(store_dir, stitcher=stitcher)
        manifest = store._read_manifest()
        for geo, entry in manifest["stream_columns"].items():
            assert len(entry["digest"]) == 64
            assert entry["bytes"] > 0


class TestDegradedServing:
    """/healthz, /readyz, admission shedding, staleness, stream gaps."""

    def _serving_study(self):
        return build_runtime().run_study(GEOS)

    def test_health_probes_follow_supervisor_state(self):
        import json

        health = {"state": "healthy", "ticks_done": 4, "restarts": 0}
        app = SiftWebApp(self._serving_study(), health_source=lambda: health)
        assert app.handle_request("/healthz").status == 200
        assert app.handle_request("/readyz").status == 200
        health["state"] = "degraded"
        # Degraded stays ready: stale reads are served deliberately.
        assert app.handle_request("/healthz").status == 200
        assert app.handle_request("/readyz").status == 200
        health["state"] = "halted"
        assert app.handle_request("/healthz").status == 200
        response = app.handle_request("/readyz")
        assert response.status == 503
        payload = json.loads(response.body)
        assert payload["status"] == "halted"
        assert payload["health"]["state"] == "halted"
        assert response.header("Cache-Control") == "no-store"

    def test_probes_without_supervisor(self):
        app = SiftWebApp(self._serving_study())
        assert app.handle_request("/healthz").status == 200
        assert app.handle_request("/readyz").status == 200

    def test_admission_sheds_beyond_bound(self):
        app = SiftWebApp(self._serving_study(), max_inflight=2)
        # Simulate two requests parked in flight.
        app._inflight = 2
        shed = app.handle_request("/api/geos")
        assert shed.status == 503
        assert shed.header("Retry-After") == "1"
        assert shed.header("Cache-Control") == "no-store"
        # Probes are exempt: health must answer when nothing else can.
        assert app.handle_request("/healthz").status == 200
        assert app.handle_request("/readyz").status == 200
        app._inflight = 0
        assert app.handle_request("/api/geos").status == 200
        stats = app.serving_stats()
        assert stats.shed == 1
        # Shedding is deliberate, not an error.
        assert stats.errors == 0

    def test_admission_releases_slots(self):
        app = SiftWebApp(self._serving_study(), max_inflight=1)
        for _ in range(5):
            assert app.handle_request("/api/geos").status == 200
        assert app._inflight == 0
        assert app.serving_stats().shed == 0

    def test_staleness_field_tracks_install_tick(self):
        import json

        health = {"state": "degraded", "ticks_done": 5, "restarts": 2}
        app = SiftWebApp(self._serving_study(), health_source=lambda: health)
        app.install_study(self._serving_study(), stream_tick=2)
        payload = json.loads(app.handle_request("/api/runtime").body)
        staleness = payload["staleness"]
        assert staleness["installed_tick"] == 2
        assert staleness["serving_stale"] is True
        assert staleness["ticks_behind"] == 2  # ticks 3 and 4 not served
        health["state"] = "healthy"
        payload = json.loads(app.handle_request("/api/runtime").body)
        assert payload["staleness"]["serving_stale"] is False
        assert payload["health"]["state"] == "healthy"

    def test_stream_gap_detection(self):
        class Event:
            def __init__(self, n: int) -> None:
                self.n = n

            def to_dict(self) -> dict:
                return {"type": "Synthetic", "n": self.n}

        app = SiftWebApp(self._serving_study(), stream_buffer=4)
        # install_study published seq 1; six more overflow the ring.
        app.publish_stream_events([Event(i) for i in range(6)])
        stale = app._stream_payload({"since": "1"})
        assert stale["gap"] is True
        fresh = app._stream_payload({"since": str(stale["next_since"])})
        assert fresh["gap"] is False
        cold = app._stream_payload({})
        assert cold["gap"] is False

    def test_heartbeats_reach_the_stream_feed(self, tmp_path):
        runtime = build_runtime(store=str(tmp_path / "store"))
        supervisor = runtime.supervise(GEOS, config=SOAK_CONFIG)
        supervisor.tick()
        app = SiftWebApp(
            supervisor.daemon.snapshot_study(),
            health_source=supervisor.health_payload,
        )
        supervisor.attach_app(app)
        supervisor.run()
        payload = app._stream_payload({})
        beats = [
            event
            for event in payload["events"]
            if event["type"] == "Heartbeat"
        ]
        assert beats
        assert beats[-1]["health"] == "healthy"
        assert beats[-1]["ticks_done"] == supervisor.total_ticks


class TestSupervisedServingAvailability:
    """Reads never fail during restarts: stale-while-degraded, end to end."""

    def test_reads_survive_a_chaos_soak(self, tmp_path):
        runtime = build_runtime(store=str(tmp_path / "store"))
        chaos = ProcessChaos(SOAK_PROFILE, seed=SOAK_SEED)
        supervisor = runtime.supervise(GEOS, config=SOAK_CONFIG, chaos=chaos)
        supervisor.tick()
        app = SiftWebApp(
            supervisor.daemon.snapshot_study(),
            health_source=supervisor.health_payload,
        )
        supervisor.attach_app(app)
        statuses = []
        probe_paths = (
            "/api/geos",
            "/api/summary",
            "/api/timeline?geo=US-TX",
            "/api/runtime",
            "/healthz",
        )
        while not supervisor.done:
            supervisor.tick()
            statuses.extend(
                app.handle_request(path).status for path in probe_paths
            )
        final = supervisor.finalize()
        assert supervisor.restarts >= 1
        # Every read during the soak answered 200 — degraded means
        # stale, never down, and no unexpected 5xx ever escaped.
        assert set(statuses) == {200}
        assert final.fingerprint() == batch_fingerprint()
        # After the final tick the app converged on the full study.
        assert app.index.fingerprint == final.fingerprint()


class TestHeartbeatEvents:
    """Heartbeat cadence honours the configured interval."""

    def test_heartbeat_every_other_tick(self, tmp_path):
        log = ProgressLog()
        runtime = build_runtime(store=str(tmp_path / "store"), progress=log)
        supervisor = runtime.supervise(
            GEOS,
            config=SupervisorConfig(
                watchdog_seconds=500.0, heartbeat_every=2
            ),
        )
        supervisor.run()
        beats = log.of_type(Heartbeat)
        assert [event.ticks_done for event in beats] == [2, 4, 6]

    def test_heartbeat_disabled(self, tmp_path):
        log = ProgressLog()
        runtime = build_runtime(store=str(tmp_path / "store"), progress=log)
        supervisor = runtime.supervise(
            GEOS,
            config=SupervisorConfig(
                watchdog_seconds=500.0, heartbeat_every=0
            ),
        )
        supervisor.run()
        assert not log.of_type(Heartbeat)
