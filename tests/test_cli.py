"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.scale == 0.05
        assert args.command == "simulate"

    def test_detect_options(self):
        args = build_parser().parse_args(
            ["detect", "--geo", "US-CA", "--top", "3", "--scale", "0.01"]
        )
        assert args.geo == "US-CA"
        assert args.top == 3

    def test_study_accepts_geo_list(self):
        args = build_parser().parse_args(["study", "US-TX", "US-CA"])
        assert args.geos == ["US-TX", "US-CA"]

    def test_scenarios_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios"])

    def test_scenarios_generate_defaults(self):
        from repro.world.foundry import PACK_SEED

        args = build_parser().parse_args(["scenarios", "generate"])
        assert args.command == "scenarios"
        assert args.seed == PACK_SEED
        assert args.families == []
        assert not args.smoke

    def test_scenarios_score_accepts_backends(self):
        args = build_parser().parse_args(
            ["scenarios", "score", "sharp_outage", "--averager", "noise_aware"]
        )
        assert args.families == ["sharp_outage"]
        assert args.averager == "noise_aware"


class TestCommands:
    def test_simulate_prints_summary(self, capsys):
        assert main(["simulate", "--scale", "0.02"]) == 0
        output = capsys.readouterr().out
        assert "events" in output
        assert "isp" in output

    def test_detect_prints_spike_table(self, capsys):
        code = main(
            ["detect", "--geo", "US-WY", "--scale", "0.02", "--top", "3"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "spike time" in output
        assert "US-WY" in output

    def test_study_prints_headline_stats(self, capsys):
        code = main(["study", "--scale", "0.02", "US-WY", "US-VT"])
        assert code == 0
        output = capsys.readouterr().out
        assert "spikes" in output
        assert "top-10-state share" in output

    def test_report_prints_table1(self, capsys):
        code = main(["report", "--scale", "0.02", "US-WY", "US-VT"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Table 1" in output

    def test_scenarios_generate_lists_events(self, capsys):
        code = main(["scenarios", "generate", "sharp_outage", "--smoke"])
        assert code == 0
        output = capsys.readouterr().out
        assert "sharp_outage" in output
        assert "event" in output

    def test_scenarios_generate_json(self, capsys):
        import json

        code = main(["scenarios", "generate", "flapping", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["flapping"]["families"][0]["kind"] == "flapping"

    def test_scenarios_generate_rejects_unknown_family(self, capsys):
        with pytest.raises(SystemExit, match="unknown families"):
            main(["scenarios", "generate", "nope"])

    def test_scenarios_score_prints_quality_table(self, capsys):
        code = main(["scenarios", "score", "sharp_outage", "--smoke"])
        assert code == 0
        output = capsys.readouterr().out
        assert "recall>=5" in output
        assert "sharp_outage" in output

    def test_scenarios_score_from_fixture_spec(self, capsys):
        import pathlib

        fixture = sorted(
            (pathlib.Path(__file__).parent / "fixtures" / "scenarios").glob(
                "*.json"
            )
        )[0]
        code = main(["scenarios", "score", "--spec", str(fixture)])
        assert code == 0
        assert "fuzz-probe" in capsys.readouterr().out
