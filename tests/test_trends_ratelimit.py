"""Unit tests for the token-bucket rate limiter and simulated clock."""

import pytest

from repro.errors import ConfigurationError, RateLimitError
from repro.trends.ratelimit import (
    RateLimitConfig,
    SimulatedClock,
    TokenBucketLimiter,
)


@pytest.fixture()
def clock():
    return SimulatedClock()


@pytest.fixture()
def limiter(clock):
    return TokenBucketLimiter(
        RateLimitConfig(burst=5, refill_per_second=1.0), clock=clock
    )


class TestConfig:
    def test_rejects_nonpositive_burst(self):
        with pytest.raises(ConfigurationError):
            RateLimitConfig(burst=0)

    def test_rejects_nonpositive_refill(self):
        with pytest.raises(ConfigurationError):
            RateLimitConfig(refill_per_second=0)


class TestTokenBucket:
    def test_burst_then_reject(self, limiter):
        for _ in range(5):
            assert limiter.try_acquire("1.1.1.1")
        assert not limiter.try_acquire("1.1.1.1")
        assert limiter.rejections == 1

    def test_acquire_raises_with_retry_hint(self, limiter):
        for _ in range(5):
            limiter.acquire("1.1.1.1")
        with pytest.raises(RateLimitError) as excinfo:
            limiter.acquire("1.1.1.1")
        assert 0 < excinfo.value.retry_after <= 1.0
        assert excinfo.value.ip == "1.1.1.1"

    def test_refill_restores_budget(self, limiter, clock):
        for _ in range(5):
            limiter.acquire("1.1.1.1")
        clock.advance(2.0)
        assert limiter.try_acquire("1.1.1.1")
        assert limiter.try_acquire("1.1.1.1")
        assert not limiter.try_acquire("1.1.1.1")

    def test_refill_caps_at_burst(self, limiter, clock):
        clock.advance(1_000.0)
        for _ in range(5):
            assert limiter.try_acquire("1.1.1.1")
        assert not limiter.try_acquire("1.1.1.1")

    def test_ips_are_independent(self, limiter):
        """Separate IPs get separate buckets — the property the paper's
        fetcher-unit design exploits."""
        for _ in range(5):
            limiter.acquire("1.1.1.1")
        assert limiter.try_acquire("2.2.2.2")

    def test_retry_after_zero_when_tokens_available(self, limiter):
        assert limiter.retry_after("3.3.3.3") == 0.0

    def test_tokens_available(self, limiter):
        assert limiter.tokens_available("4.4.4.4") == pytest.approx(5.0)
        limiter.acquire("4.4.4.4")
        assert limiter.tokens_available("4.4.4.4") == pytest.approx(4.0)


class TestSimulatedClock:
    def test_starts_at_zero(self, clock):
        assert clock() == 0.0

    def test_advance(self, clock):
        clock.advance(3.5)
        assert clock() == 3.5

    def test_sleep_is_advance(self, clock):
        clock.sleep(2.0)
        assert clock() == 2.0

    def test_rejects_rewind(self, clock):
        with pytest.raises(ValueError):
            clock.advance(-1.0)
