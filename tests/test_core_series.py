"""Unit tests for the continuous hourly timeline."""

import numpy as np
import pytest

from repro.core.series import HourlyTimeline
from repro.errors import DetectionError
from repro.timeutil import TimeWindow, utc


def make_timeline(values, start=utc(2021, 1, 1)) -> HourlyTimeline:
    return HourlyTimeline(
        term="Internet outage",
        geo="US-TX",
        start=start,
        values=np.asarray(values, dtype=np.float64),
    )


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(DetectionError):
            make_timeline([])

    def test_rejects_negative(self):
        with pytest.raises(DetectionError):
            make_timeline([1.0, -0.5])

    def test_rejects_nan(self):
        with pytest.raises(DetectionError):
            make_timeline([1.0, float("nan")])

    def test_rejects_2d(self):
        with pytest.raises(DetectionError):
            make_timeline([[1.0], [2.0]])


class TestGeometry:
    def test_len_and_window(self):
        timeline = make_timeline(np.ones(48))
        assert len(timeline) == 48
        assert timeline.window == TimeWindow(utc(2021, 1, 1), utc(2021, 1, 3))

    def test_time_index_roundtrip(self):
        timeline = make_timeline(np.ones(48))
        moment = utc(2021, 1, 2, 5)
        assert timeline.time_at(timeline.index_of(moment)) == moment

    def test_time_at_bounds(self):
        timeline = make_timeline(np.ones(4))
        with pytest.raises(IndexError):
            timeline.time_at(4)
        with pytest.raises(IndexError):
            timeline.time_at(-1)

    def test_index_of_outside_raises(self):
        timeline = make_timeline(np.ones(4))
        with pytest.raises(IndexError):
            timeline.index_of(utc(2021, 1, 2))


class TestTransformations:
    def test_slice(self):
        timeline = make_timeline(np.arange(72, dtype=float))
        window = TimeWindow(utc(2021, 1, 2), utc(2021, 1, 3))
        sliced = timeline.slice(window)
        assert len(sliced) == 24
        assert sliced.values[0] == 24.0
        assert sliced.start == window.start

    def test_slice_outside_raises(self):
        timeline = make_timeline(np.ones(24))
        with pytest.raises(IndexError):
            timeline.slice(TimeWindow(utc(2021, 1, 1), utc(2021, 1, 3)))

    def test_renormalized(self):
        timeline = make_timeline([1.0, 2.0, 4.0])
        scaled = timeline.renormalized()
        np.testing.assert_allclose(scaled.values, [25.0, 50.0, 100.0])

    def test_renormalized_flat_is_noop(self):
        timeline = make_timeline(np.zeros(5))
        np.testing.assert_array_equal(timeline.renormalized().values, np.zeros(5))

    def test_slice_copies(self):
        timeline = make_timeline(np.ones(24))
        sliced = timeline.slice(TimeWindow(utc(2021, 1, 1), utc(2021, 1, 1, 4)))
        sliced.values[0] = 99.0
        assert timeline.values[0] == 1.0


class TestSummaries:
    def test_peak_and_nonzero(self):
        timeline = make_timeline([0.0, 5.0, 0.0, 2.0])
        assert timeline.peak_value == 5.0
        assert timeline.nonzero_hours == 2

    def test_describe_mentions_term_and_geo(self):
        text = make_timeline(np.ones(3)).describe()
        assert "Internet outage" in text
        assert "US-TX" in text
