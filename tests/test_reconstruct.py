"""Tests for the pluggable reconstruction backends.

Three contracts are guarded here:

* **bit-identity** — the default ``overlap_ratio``/``mean`` backend is
  the pre-strategy pipeline, byte for byte: a frozen copy of the
  original batch stitching loop lives in this file and every stitcher
  output is compared against it;
* **the incremental contract** — for every registered stitcher,
  ``feed()``-ing frames one at a time equals batch stitching of the
  same prefix (hypothesis-checked), which is what lets a streaming
  stitcher slot in behind the same interface;
* **diagnostics** — carried positions mark exactly the non-estimated
  ratios and are excluded from ``ratio_spread``.
"""

from __future__ import annotations

from datetime import timedelta

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.averaging import AveragingConfig, average_until_convergence
from repro.core.reconstruct import (
    AVERAGERS,
    STITCHERS,
    CalibratedStitcher,
    MeanAverager,
    NoiseAwareAverager,
    OverlapRatioStitcher,
    VarianceWeightedAccumulator,
    averager_names,
    make_averager,
    make_stitcher,
    stitcher_factory,
    stitcher_names,
)
from repro.core.series import HourlyTimeline
from repro.core.stitching import StitchReport, estimate_ratio, stitch_frames
from repro.errors import ConfigurationError, ConvergenceError, StitchingError
from repro.timeutil import TimeWindow, hour_index, utc
from repro.trends.records import TimeFrameRequest, TimeFrameResponse
from repro.trends.sampling import index_frame

# --------------------------------------------------------------------------
# Frame helpers (mirrors test_core_stitching)
# --------------------------------------------------------------------------


def _hours(count: int) -> timedelta:
    return timedelta(hours=count)


def frame(start, values, geo="US-TX", term="Internet outage"):
    values = np.asarray(values)
    window = TimeWindow(start, start + _hours(len(values)))
    request = TimeFrameRequest(term=term, geo=geo, window=window)
    return TimeFrameResponse(
        request=request, values=index_frame(values), rising=(), sample_round=0
    )


def make_signal(hours: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    signal = np.where(rng.random(hours) < 0.3, rng.integers(3, 8, hours), 0).astype(
        float
    )
    signal[hours // 4] = 60.0
    signal[hours // 2] = 120.0
    return signal


def split_into_frames(signal: np.ndarray, frame_hours: int, overlap: int):
    start = utc(2021, 1, 1)
    frames = []
    position = 0
    while position + frame_hours < signal.size:
        frames.append(
            frame(start + _hours(position), signal[position : position + frame_hours])
        )
        position += frame_hours - overlap
    frames.append(
        frame(start + _hours(signal.size - frame_hours), signal[-frame_hours:])
    )
    return frames


#: Random sparse signals split into weekly frames with a day's overlap.
signals = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=200, max_value=500),
    elements=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)


def _legacy_stitch_frames(responses, renormalize=True):
    """Frozen copy of the pre-strategy batch loop (bit-identity oracle).

    Verbatim from ``repro.core.stitching.stitch_frames`` before the
    strategy refactor; do not modify — the default backend must keep
    matching it byte for byte.
    """
    if not responses:
        raise StitchingError("no frames to stitch")
    first = responses[0]
    term = first.request.term
    geo = first.request.geo
    for response in responses[1:]:
        if response.request.term != term or response.request.geo != geo:
            raise StitchingError(
                "cannot stitch frames of different terms or geographies"
            )
    series = responses[0].values.astype(np.float64)
    origin = first.window.start
    ratios = []
    carried = 0
    last_ratio = 1.0
    for previous, current in zip(responses, responses[1:]):
        offset = hour_index(origin, current.window.start)
        if offset < 0 or offset > series.size:
            raise StitchingError("not contiguous")
        overlap = series.size - offset
        if overlap <= 0:
            raise StitchingError("no overlap")
        if overlap >= current.values.size:
            ratios.append(last_ratio)
            continue
        current_values = current.values.astype(np.float64)
        ratio = estimate_ratio(series[offset:], current_values[:overlap])
        if ratio is None:
            ratio = 1.0
            carried += 1
        else:
            last_ratio = ratio
        ratios.append(ratio)
        series = np.concatenate([series, current_values[overlap:] * ratio])
    timeline = HourlyTimeline(term=term, geo=geo, start=origin, values=series)
    if renormalize:
        timeline = timeline.renormalized()
    return timeline, (len(responses), carried, tuple(ratios))


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------


class TestRegistry:
    def test_names_cover_the_backends(self):
        assert stitcher_names() == ("calibrated", "overlap_ratio")
        assert averager_names() == ("mean", "noise_aware")

    def test_factories_build_fresh_instances(self):
        assert isinstance(make_stitcher("overlap_ratio"), OverlapRatioStitcher)
        assert isinstance(make_stitcher("calibrated"), CalibratedStitcher)
        assert isinstance(make_averager("mean"), MeanAverager)
        assert isinstance(make_averager("noise_aware"), NoiseAwareAverager)
        factory = stitcher_factory("overlap_ratio")
        assert factory() is not factory()

    def test_unknown_names_rejected(self):
        with pytest.raises(ConfigurationError):
            make_stitcher("bogus")
        with pytest.raises(ConfigurationError):
            make_averager("bogus")
        with pytest.raises(ConfigurationError):
            stitcher_factory("bogus")

    def test_params_pass_through(self):
        stitcher = make_stitcher("calibrated", min_anchor_hours=5)
        assert stitcher.params() == {"min_anchor_hours": 5}
        averager = make_averager("noise_aware", epsilon=2.0)
        assert averager.params() == {"epsilon": 2.0}

    def test_bad_params_rejected(self):
        with pytest.raises(StitchingError):
            CalibratedStitcher(min_anchor_hours=0)
        with pytest.raises(ConvergenceError):
            NoiseAwareAverager(epsilon=0.0)


# --------------------------------------------------------------------------
# Bit-identity of the default backend
# --------------------------------------------------------------------------


class TestDefaultBackendBitIdentity:
    def test_stitch_frames_matches_frozen_legacy_loop(self):
        frames = split_into_frames(make_signal(600, seed=3), 168, 48)
        timeline, report = stitch_frames(frames)
        legacy_timeline, (frames_n, carried, ratios) = _legacy_stitch_frames(frames)
        assert timeline.values.tobytes() == legacy_timeline.values.tobytes()
        assert (report.frames, report.carried_ratios, report.ratios) == (
            frames_n,
            carried,
            ratios,
        )

    @given(signal=signals)
    @settings(max_examples=30, deadline=None)
    def test_legacy_identity_holds_for_arbitrary_signals(self, signal):
        frames = split_into_frames(signal, 168, 24)
        timeline, report = stitch_frames(frames)
        legacy_timeline, (_, carried, ratios) = _legacy_stitch_frames(frames)
        assert timeline.values.tobytes() == legacy_timeline.values.tobytes()
        assert report.ratios == ratios
        assert report.carried_ratios == carried

    def test_mean_averager_is_average_until_convergence(self):
        truth = np.zeros(300)
        truth[40] = 30.0
        truth[140] = 80.0

        def fetch_round(round_index):
            rng = np.random.default_rng(100 + round_index)
            sampled = np.maximum(truth + rng.normal(0, 6.0, truth.size), 0)
            sampled[truth == 0] = 0.0
            return split_into_frames(sampled, 168, 24)

        config = AveragingConfig(min_rounds=2, max_rounds=5)
        legacy = average_until_convergence(fetch_round, config)
        strategic = MeanAverager().average(
            fetch_round, config, stitcher_factory=OverlapRatioStitcher
        )
        assert (
            legacy.timeline.values.tobytes() == strategic.timeline.values.tobytes()
        )
        assert legacy.rounds_used == strategic.rounds_used
        assert legacy.similarity_history == strategic.similarity_history
        assert [s.to_dict() for s in legacy.spikes] == [
            s.to_dict() for s in strategic.spikes
        ]
        assert strategic.stitcher == "overlap_ratio"
        assert strategic.averager == "mean"


# --------------------------------------------------------------------------
# The incremental feed()/finalize() contract — every registered stitcher
# --------------------------------------------------------------------------


@pytest.mark.parametrize("name", stitcher_names())
class TestIncrementalContract:
    @given(signal=signals)
    @settings(max_examples=15, deadline=None)
    def test_incremental_equals_batch_at_every_prefix(self, name, signal):
        """finalize() after k feeds == a fresh stitcher fed the k-prefix."""
        frames = split_into_frames(signal, 168, 24)
        incremental = STITCHERS[name]()
        for count, response in enumerate(frames, start=1):
            incremental.feed(response)
            batch = STITCHERS[name]()
            for prefix_response in frames[:count]:
                batch.feed(prefix_response)
            live_timeline, live_report = incremental.finalize()
            batch_timeline, batch_report = batch.finalize()
            assert (
                live_timeline.values.tobytes() == batch_timeline.values.tobytes()
            )
            assert live_report == batch_report

    @given(signal=signals)
    @settings(max_examples=15, deadline=None)
    def test_order_deterministic(self, name, signal):
        """Two instances fed the same frames agree byte for byte, and
        finalize() is repeatable (non-destructive)."""
        frames = split_into_frames(signal, 168, 24)
        first, second = STITCHERS[name](), STITCHERS[name]()
        for response in frames:
            first.feed(response)
            second.feed(response)
        timeline_a, report_a = first.finalize()
        timeline_b, report_b = second.finalize()
        assert timeline_a.values.tobytes() == timeline_b.values.tobytes()
        assert report_a == report_b
        again, report_again = first.finalize()
        assert again.values.tobytes() == timeline_a.values.tobytes()
        assert report_again == report_a

    def test_finalize_without_frames_raises(self, name):
        with pytest.raises(StitchingError):
            STITCHERS[name]().finalize()

    def test_mixed_geo_rejected(self, name):
        stitcher = STITCHERS[name]()
        stitcher.feed(frame(utc(2021, 1, 1), make_signal(168)))
        with pytest.raises(StitchingError):
            stitcher.feed(frame(utc(2021, 1, 7), make_signal(168), geo="US-CA"))

    def test_disjoint_frames_rejected(self, name):
        stitcher = STITCHERS[name]()
        stitcher.feed(frame(utc(2021, 1, 1), make_signal(168)))
        with pytest.raises(StitchingError):
            stitcher.feed(frame(utc(2021, 2, 1), make_signal(168)))

    def test_recovers_relative_spike_heights(self, name):
        """Every backend must do stitching's actual job: the 120-spike
        reads about twice the 60-spike across frame boundaries."""
        signal = make_signal(600)
        frames = split_into_frames(signal, 168, 48)
        stitcher = STITCHERS[name]()
        for response in frames:
            stitcher.feed(response)
        timeline, report = stitcher.finalize()
        measured = timeline.values[300] / timeline.values[150]
        assert measured == pytest.approx(2.0, rel=0.35)
        assert report.frames == len(frames)


# --------------------------------------------------------------------------
# CalibratedStitcher specifics
# --------------------------------------------------------------------------


class TestCalibratedStitcher:
    def test_recovers_known_scale_exactly(self):
        """Two noiseless renditions of the same overlap differing by a
        known scale: the log-space anchor estimate recovers it."""
        signal = np.full(300, 10.0)  # a baseline anchor through the overlap
        signal[20] = 40.0
        signal[180] = 80.0
        frames = split_into_frames(signal, 168, 48)
        stitcher = CalibratedStitcher()
        for response in frames:
            stitcher.feed(response)
        timeline, _ = stitcher.finalize()
        assert timeline.values[180] / timeline.values[20] == pytest.approx(
            2.0, rel=0.2
        )

    def test_privacy_zeros_survive(self):
        signal = make_signal(400)
        frames = split_into_frames(signal, 168, 48)
        stitcher = CalibratedStitcher()
        for response in frames:
            stitcher.feed(response)
        timeline, _ = stitcher.finalize()
        # Blending only touches hours positive in both renditions, so
        # an hour the series had at zero stays at zero.
        assert not np.any(timeline.values[signal == 0] > 0)

    def test_quiet_overlap_falls_back_to_sum_estimate(self):
        """Below min_anchor_hours shared-signal hours, the calibrated
        ratio degrades to the overlap-sum estimator, not to garbage."""
        values = np.zeros(168)
        values[10] = 50.0  # signal only outside the overlap
        a = frame(utc(2021, 1, 1), values)
        tail = np.zeros(168)
        tail[150] = 25.0
        b = frame(utc(2021, 1, 7), tail)
        calibrated = CalibratedStitcher()
        default = OverlapRatioStitcher()
        for stitcher in (calibrated, default):
            stitcher.feed(a)
            stitcher.feed(b)
        _, calibrated_report = calibrated.finalize()
        _, default_report = default.finalize()
        assert calibrated_report.ratios == default_report.ratios

    def test_silent_overlap_carries_neutral_ratio(self):
        zero = np.zeros(168)
        frames = [frame(utc(2021, 1, 1), zero), frame(utc(2021, 1, 7), zero)]
        stitcher = CalibratedStitcher()
        for response in frames:
            stitcher.feed(response)
        _, report = stitcher.finalize()
        assert report.carried_ratios == 1
        assert report.carried_positions == (0,)


# --------------------------------------------------------------------------
# NoiseAwareAverager specifics
# --------------------------------------------------------------------------


class TestNoiseAwareAverager:
    def _entries(self, values: np.ndarray):
        return [frame(utc(2021, 1, 1), values)]

    def test_two_rounds_match_flat_mean(self):
        """With fewer than three rounds there is no outlier evidence;
        the weighted merge must equal the flat mean."""
        truth = np.zeros(168)
        truth[50] = 60.0
        noise_aware = NoiseAwareAverager().make_accumulator(self._entries(truth))
        mean = MeanAverager().make_accumulator(self._entries(truth))
        rng = np.random.default_rng(5)
        for _ in range(2):
            sampled = np.maximum(truth + rng.normal(0, 5, truth.size), 0)
            entries = self._entries(sampled)
            noise_aware.fold(entries)
            mean.fold(entries)
        assert np.array_equal(
            noise_aware.to_responses()[0].values, mean.to_responses()[0].values
        )

    def test_outlier_round_downweighted(self):
        """Four faithful rounds plus one wildly-off round: the weighted
        merge lands closer to truth than the flat mean."""
        truth = np.zeros(168)
        truth[50] = 60.0
        truth[90] = 30.0
        rng = np.random.default_rng(11)
        rounds = [
            np.maximum(truth + rng.normal(0, 1.0, truth.size), 0) for _ in range(4)
        ]
        outlier = truth + rng.uniform(20, 40, truth.size)  # garbage rendition
        rounds.append(outlier)

        weighted = VarianceWeightedAccumulator(self._entries(truth), epsilon=0.5)
        flat = MeanAverager().make_accumulator(self._entries(truth))
        for sampled in rounds:
            weighted.fold(self._entries(sampled))
            flat.fold(self._entries(sampled))
        normalized_truth = 100.0 * truth / truth.max()
        weighted_error = np.abs(
            weighted.to_responses()[0].values - normalized_truth
        ).mean()
        flat_error = np.abs(flat.to_responses()[0].values - normalized_truth).mean()
        assert weighted_error < flat_error

    def test_round_shape_guards_match_mean_backend(self):
        truth = np.zeros(168)
        accumulator = NoiseAwareAverager().make_accumulator(self._entries(truth))
        with pytest.raises(ConvergenceError):
            accumulator.fold(self._entries(truth) * 2)
        with pytest.raises(ConvergenceError):
            accumulator.fold([frame(utc(2021, 1, 1), np.zeros(100))])

    def test_full_loop_converges(self):
        truth = np.zeros(300)
        truth[40] = 30.0
        truth[141] = 80.0

        def fetch_round(round_index):
            rng = np.random.default_rng(200 + round_index)
            sampled = np.maximum(truth + rng.normal(0, 4.0, truth.size), 0)
            sampled[truth == 0] = 0.0
            return split_into_frames(sampled, 168, 24)

        result = NoiseAwareAverager().average(
            fetch_round, AveragingConfig(min_rounds=2, max_rounds=8)
        )
        assert result.converged
        assert result.averager == "noise_aware"
        assert result.stitcher == "overlap_ratio"


# --------------------------------------------------------------------------
# StitchReport diagnostics (carried positions vs ratio_spread)
# --------------------------------------------------------------------------


class TestStitchReportDiagnostics:
    def test_carried_positions_mark_silent_overlaps(self):
        loud = np.zeros(168)
        loud[10] = 40.0
        quiet = np.zeros(168)
        frames = [
            frame(utc(2021, 1, 1), loud),  # signal in frame 1
            frame(utc(2021, 1, 7), quiet),  # silent overlap with frame 1? no:
        ]
        # frame 1's tail (the overlap) is zero and frame 2 is zero, so
        # the ratio is carried.
        timeline, report = stitch_frames(frames)
        assert report.carried_ratios == 1
        assert report.carried_positions == (0,)
        assert report.ratios == (1.0,)

    def test_ratio_spread_excludes_carried(self):
        report = StitchReport(
            frames=4,
            carried_ratios=1,
            ratios=(4.0, 1.0, 5.0),
            carried_positions=(1,),
        )
        assert report.ratio_spread == pytest.approx(5.0 / 4.0)
        # The pre-fix spread would have been 5.0 (masking drift).

    def test_all_carried_spread_is_neutral(self):
        report = StitchReport(
            frames=2, carried_ratios=1, ratios=(1.0,), carried_positions=(0,)
        )
        assert report.ratio_spread == 1.0

    def test_roundtrip_through_dict(self):
        report = StitchReport(
            frames=3,
            carried_ratios=1,
            ratios=(2.0, 1.0),
            carried_positions=(1,),
        )
        payload = report.to_dict()
        assert payload["ratio_spread"] == report.ratio_spread
        assert StitchReport.from_dict(payload) == report

    def test_contained_frame_repeat_is_carried_position(self):
        signal = make_signal(200)
        outer = frame(utc(2021, 1, 1), signal[:168])
        inner = frame(utc(2021, 1, 2), signal[24:96])  # fully contained
        _, report = stitch_frames([outer, inner])
        assert report.carried_positions == (0,)
        assert report.carried_ratios == 0  # count semantics unchanged


# --------------------------------------------------------------------------
# Backend choice threaded through the pipeline
# --------------------------------------------------------------------------


class TestPipelineIntegration:
    def test_sift_rejects_unknown_backends(self):
        from repro.core.pipeline import Sift, SiftConfig

        with pytest.raises(ConfigurationError):
            Sift(source=None, config=SiftConfig(stitcher="bogus"))
        with pytest.raises(ConfigurationError):
            Sift(source=None, config=SiftConfig(averager="bogus"))

    @pytest.mark.parametrize("stitcher", stitcher_names())
    @pytest.mark.parametrize("averager", averager_names())
    def test_every_backend_combination_runs_end_to_end(
        self, stitcher, averager, small_population
    ):
        from repro.core.pipeline import SiftConfig
        from repro.runtime import StudyRuntime

        runtime = StudyRuntime.build(
            population=small_population,
            sift=SiftConfig(
                stitcher=stitcher,
                averager=averager,
                averaging=AveragingConfig(min_rounds=2, max_rounds=3),
                annotate=False,
            ),
            checkpoint=False,
        )
        result = runtime.analyze_state("US-WY")
        assert result.averaging.stitcher == stitcher
        assert result.averaging.averager == averager
        assert len(result.timeline) > 0

    def test_default_backend_study_is_byte_identical_at_any_worker_count(
        self, small_population
    ):
        """The acceptance bar: an explicitly-selected default backend
        reproduces the implicit default byte for byte, serial or not."""
        from repro.core.pipeline import SiftConfig
        from repro.runtime import StudyRuntime

        config = AveragingConfig(min_rounds=2, max_rounds=3)
        geos = ("US-TX", "US-WY")

        def run(workers: int, explicit: bool):
            runtime = StudyRuntime.build(
                population=small_population,
                sift=(
                    SiftConfig(
                        stitcher="overlap_ratio",
                        averager="mean",
                        averaging=config,
                        annotate=False,
                    )
                    if explicit
                    else SiftConfig(averaging=config, annotate=False)
                ),
                max_workers=workers,
                checkpoint=False,
            )
            return runtime.run_study(geos=geos)

        reference = run(workers=1, explicit=False)
        for workers, explicit in ((1, True), (3, True)):
            study = run(workers=workers, explicit=explicit)
            assert study.fingerprint() == reference.fingerprint()
            for geo in geos:
                assert (
                    study.states[geo].timeline.values.tobytes()
                    == reference.states[geo].timeline.values.tobytes()
                )

    def test_alternate_backend_changes_the_name_not_the_contract(
        self, small_population
    ):
        from repro.core.pipeline import SiftConfig
        from repro.runtime import StudyRuntime

        runtime = StudyRuntime.build(
            population=small_population,
            sift=SiftConfig(
                stitcher="calibrated",
                averager="noise_aware",
                averaging=AveragingConfig(min_rounds=2, max_rounds=3),
                annotate=False,
            ),
            checkpoint=False,
        )
        study = runtime.run_study(geos=("US-WY",))
        averaging = study.states["US-WY"].averaging
        assert averaging.stitcher == "calibrated"
        assert averaging.averager == "noise_aware"
        assert study.states["US-WY"].timeline.peak_value == pytest.approx(100.0)


# --------------------------------------------------------------------------
# Averager registry coverage
# --------------------------------------------------------------------------


class TestAveragerRegistry:
    def test_every_registered_averager_satisfies_the_loop(self):
        truth = np.zeros(300)
        truth[100] = 70.0

        def fetch_round(round_index):
            rng = np.random.default_rng(300 + round_index)
            sampled = np.maximum(truth + rng.normal(0, 2.0, truth.size), 0)
            sampled[truth == 0] = 0.0
            return split_into_frames(sampled, 168, 24)

        for name, cls in AVERAGERS.items():
            result = cls().average(
                fetch_round, AveragingConfig(min_rounds=2, max_rounds=4)
            )
            assert result.averager == name
            assert result.rounds_used >= 2
