"""Unit tests for the ANT active-probing substrate."""

from datetime import timedelta

import pytest

from repro.ant.blocks import BlockUniverseConfig, blocks_by_state, build_universe
from repro.ant.compare import (
    CrossValidationConfig,
    cross_validate,
    expected_background_blocks,
    trace_spike,
)
from repro.ant.dataset import AntDataset
from repro.ant.probing import (
    PROBE_ROUND_MINUTES,
    ProbingConfig,
    affected_fraction,
    block_down_intervals,
    merge_intervals,
    probe_block,
    quantize_to_rounds,
    DownInterval,
)
from repro.core.spikes import Spike
from repro.errors import ConfigurationError
from repro.timeutil import TimeWindow, utc
from repro.world.events import Cause, OutageEvent, StateImpact
from repro.world.scenarios import Scenario, ScenarioConfig


@pytest.fixture(scope="module")
def universe():
    return build_universe(BlockUniverseConfig(blocks_per_million=4.0))


@pytest.fixture(scope="module")
def scenario():
    return Scenario.build(
        ScenarioConfig(
            start=utc(2021, 1, 1), end=utc(2021, 4, 1), background_scale=0.1
        )
    )


@pytest.fixture(scope="module")
def dataset(scenario):
    return AntDataset.build(scenario)


class TestBlocks:
    def test_counts_scale_with_population(self, universe):
        by_state = blocks_by_state(universe, geolocated=False)
        assert len(by_state["CA"]) > 20 * len(by_state["WY"])

    def test_every_state_has_a_block(self, universe):
        by_state = blocks_by_state(universe, geolocated=False)
        assert len(by_state) == 51

    def test_geolocation_mostly_correct(self, universe):
        wrong = sum(
            1 for block in universe if block.state != block.geolocated_state
        )
        assert 0 < wrong / len(universe) < 0.1

    def test_deterministic(self):
        config = BlockUniverseConfig(blocks_per_million=2.0)
        assert build_universe(config) == build_universe(config)

    def test_prefixes_unique(self, universe):
        prefixes = [block.prefix for block in universe]
        assert len(set(prefixes)) == len(prefixes)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            BlockUniverseConfig(blocks_per_million=0)
        with pytest.raises(ConfigurationError):
            BlockUniverseConfig(geolocation_error_rate=1.0)


class TestProbing:
    def power_event(self, intensity=40.0, hours=10):
        return OutageEvent(
            event_id="evt-power",
            name="big power outage",
            cause=Cause.POWER_WEATHER,
            impacts=(StateImpact("TX", utc(2021, 2, 15, 10), hours, intensity),),
            terms=("Power outage",),
        )

    def test_affected_fraction_by_cause(self):
        config = ProbingConfig()
        power = self.power_event()
        assert affected_fraction(power, 45.0, config) == pytest.approx(0.95)
        assert affected_fraction(power, 9.0, config) == pytest.approx(0.2)
        cloud = OutageEvent(
            event_id="evt-cloud",
            name="cdn outage",
            cause=Cause.CLOUD,
            impacts=(StateImpact("TX", utc(2021, 2, 15, 10), 2, 9.0),),
            terms=("Fastly",),
        )
        assert affected_fraction(cloud, 9.0, config) == 0.0

    def test_quantize_to_rounds(self):
        begin = utc(2021, 2, 15, 10)
        start, end = quantize_to_rounds(begin, begin + timedelta(minutes=25))
        assert start <= begin < start + timedelta(minutes=11)
        minutes = (end - start).total_seconds() / 60
        assert minutes % 11 == 0
        assert end >= begin + timedelta(minutes=25)

    def test_quantize_uses_a_global_grid(self):
        from repro.ant.probing import PROBE_EPOCH
        start, _ = quantize_to_rounds(
            utc(2021, 2, 15, 10), utc(2021, 2, 15, 11)
        )
        assert ((start - PROBE_EPOCH).total_seconds() / 60) % 11 == 0

    def test_merge_intervals(self):
        a = DownInterval(1, utc(2021, 1, 1, 0), utc(2021, 1, 1, 5), "e1")
        b = DownInterval(1, utc(2021, 1, 1, 3), utc(2021, 1, 1, 8), "e2")
        c = DownInterval(1, utc(2021, 1, 2, 0), utc(2021, 1, 2, 1), "e3")
        merged = merge_intervals([c, b, a])
        assert len(merged) == 2
        assert merged[0].end == utc(2021, 1, 1, 8)

    def test_probe_block_sees_power_event(self, scenario, universe):
        tx_blocks = blocks_by_state(universe, geolocated=False)["TX"]
        window = TimeWindow(utc(2021, 2, 15), utc(2021, 2, 18))
        down_rounds = 0
        for block in tx_blocks:
            up = probe_block(block, window, scenario)
            assert up.shape == (window.hours * 60 // PROBE_ROUND_MINUTES,)
            down_rounds += int((~up).sum())
        assert down_rounds > 0  # the winter storm darkens Texan blocks

    def test_mobile_event_invisible(self, universe):
        """A mobile-carrier outage must never take a block down."""
        event = OutageEvent(
            event_id="evt-mobile",
            name="mobile outage",
            cause=Cause.MOBILE,
            impacts=(StateImpact("CA", utc(2021, 2, 1, 10), 19, 12.0),),
            terms=("T-Mobile",),
        )
        scenario = Scenario(
            ScenarioConfig(
                start=utc(2021, 1, 1), end=utc(2021, 3, 1), background_scale=0.0,
                include_headline_events=False,
            ),
            (event,),
        )
        for block in blocks_by_state(universe, geolocated=False)["CA"][:50]:
            assert block_down_intervals(block, scenario) == []

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ProbingConfig(min_down_rounds=0)
        with pytest.raises(ConfigurationError):
            ProbingConfig(max_affected_fraction=0.0)


class TestDataset:
    def test_build_produces_records(self, dataset):
        assert len(dataset) > 0

    def test_records_sorted(self, dataset):
        starts = [record.start for record in dataset.records]
        assert starts == sorted(starts)

    def test_storm_blocks_down_in_texas(self, dataset):
        window = TimeWindow(utc(2021, 2, 15), utc(2021, 2, 18))
        assert dataset.distinct_blocks_down("TX", window) > 50

    def test_in_state_accepts_geo_prefix(self, dataset):
        assert dataset.in_state("US-TX") == dataset.in_state("TX")

    def test_overlapping_respects_window(self, dataset):
        quiet = TimeWindow(utc(2021, 3, 25), utc(2021, 3, 26))
        busy = TimeWindow(utc(2021, 2, 15), utc(2021, 2, 18))
        assert len(dataset.overlapping("TX", busy)) > len(
            dataset.overlapping("TX", quiet)
        )

    def test_durations_quantized(self, dataset):
        for record in dataset.records[:200]:
            minutes = round(record.duration_hours * 60)
            assert minutes % PROBE_ROUND_MINUTES == 0


class TestCrossValidation:
    def make_spike(self, state, start, end):
        return Spike(
            term="Internet outage",
            geo=f"US-{state}",
            start=start,
            peak=start,
            end=end,
            magnitude=60.0,
        )

    def test_power_confirmed_mobile_missed(self, dataset):
        storm = self.make_spike("TX", utc(2021, 2, 15, 10), utc(2021, 2, 17, 6))
        assert trace_spike(dataset, storm).confirmed

    def test_background_estimate_positive(self, dataset):
        assert expected_background_blocks(dataset, "TX", 24.0) > 0

    def test_background_estimate_empty_state(self, dataset):
        assert expected_background_blocks(dataset, "ZZ", 24.0) == 0.0

    def test_report_aggregates(self, dataset):
        spikes = [
            self.make_spike("TX", utc(2021, 2, 15, 10), utc(2021, 2, 17, 6)),
            self.make_spike("WY", utc(2021, 3, 20, 3), utc(2021, 3, 20, 5)),
        ]
        report = cross_validate(dataset, spikes)
        assert len(report.results) == 2
        assert 0.0 <= report.confirmation_rate <= 1.0
        assert len(report.confirmed) + len(report.missed) == 2

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CrossValidationConfig(min_blocks=0)
        with pytest.raises(ConfigurationError):
            CrossValidationConfig(background_ratio=0.5)
        with pytest.raises(ConfigurationError):
            CrossValidationConfig(slack_hours=-1)
