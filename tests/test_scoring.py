"""Tests for the shared detection-quality scoring module."""

from datetime import timedelta

import pytest

from repro.analysis.scoring import (
    GroupedOutageQuality,
    detection_delays,
    score_grouped_outages,
    score_spikes,
    score_study,
)
from repro.analysis.validation import validate_study
from repro.core.area import Outage
from repro.core.spikes import Spike, SpikeSet
from repro.timeutil import utc
from repro.world.events import Cause, OutageEvent, StateImpact
from repro.world.scenarios import Scenario, ScenarioConfig


def lab_scenario(events) -> Scenario:
    config = ScenarioConfig(
        start=utc(2021, 4, 1),
        end=utc(2021, 5, 1),
        background_scale=0.0,
        include_headline_events=False,
    )
    return Scenario(config, tuple(events))


def event(states=("TX",), hour=12, hours=5, intensity=10.0, event_id="lab-1"):
    return OutageEvent(
        event_id=event_id,
        name="lab event",
        cause=Cause.ISP,
        impacts=tuple(
            StateImpact(state, utc(2021, 4, 10, hour), hours, intensity)
            for state in states
        ),
        terms=("Verizon",),
    )


def spike(state="TX", start_hour=12, duration=5, magnitude=50.0):
    start = utc(2021, 4, 10, start_hour)
    return Spike(
        term="Internet outage",
        geo=f"US-{state}",
        start=start,
        peak=start + timedelta(hours=min(1, duration - 1)),
        end=start + timedelta(hours=duration - 1),
        magnitude=magnitude,
    )


class TestDetectionDelays:
    def test_late_spike_measures_positive_delay(self):
        report = validate_study(
            SpikeSet([spike(start_hour=14)]), lab_scenario([event(hour=12)])
        )
        assert detection_delays(report).tolist() == [2.0]

    def test_early_spike_clips_to_zero(self):
        # The walk can open a spike on the pre-onset shoulder; that is a
        # zero-delay detection, not negative latency.
        report = validate_study(
            SpikeSet([spike(start_hour=11)]), lab_scenario([event(hour=12)])
        )
        assert detection_delays(report).tolist() == [0.0]

    def test_missed_impacts_contribute_nothing(self):
        report = validate_study(SpikeSet([]), lab_scenario([event()]))
        assert detection_delays(report).size == 0


class TestScoreSpikes:
    def test_perfect_detection(self):
        quality = score_spikes(SpikeSet([spike()]), lab_scenario([event()]))
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.recall_strong == 1.0
        assert quality.mean_detection_delay_hours == 0.0
        assert quality.total_spikes == 1
        assert quality.total_impacts == 1

    def test_strong_recall_ignores_weak_misses(self):
        strong = event(intensity=20.0, event_id="lab-strong")
        weak = event(states=("CA",), intensity=1.8, event_id="lab-weak")
        quality = score_spikes(
            SpikeSet([spike()]), lab_scenario([strong, weak])
        )
        assert quality.recall == pytest.approx(0.5)
        assert quality.recall_strong == 1.0
        assert quality.detected_strong == 1
        assert quality.total_strong == 1

    def test_no_strong_impacts_means_vacuous_strong_recall(self):
        weak = event(intensity=1.8)
        quality = score_spikes(SpikeSet([]), lab_scenario([weak]))
        assert quality.recall_strong == 1.0
        assert quality.total_strong == 0
        assert quality.recall == 0.0

    def test_states_filter_drops_unstudied_impacts(self):
        two_states = event(states=("TX", "CA"))
        quality = score_spikes(
            SpikeSet([spike()]), lab_scenario([two_states]), states={"TX"}
        )
        assert quality.total_impacts == 1
        assert quality.recall == 1.0

    def test_duration_error_propagates(self):
        quality = score_spikes(
            SpikeSet([spike(duration=8)]), lab_scenario([event(hours=5)])
        )
        assert quality.mean_abs_duration_error_hours == pytest.approx(3.0)

    def test_to_dict_rounds(self):
        payload = score_spikes(
            SpikeSet([spike()]), lab_scenario([event()])
        ).to_dict()
        assert payload["precision"] == 1.0
        assert payload["total_spikes"] == 1


def grouped(states, start_hour=12, magnitude=50.0):
    return Outage(
        spikes=tuple(
            spike(state=state, start_hour=start_hour, magnitude=magnitude)
            for state in states
        )
    )


class TestScoreGroupedOutages:
    def test_recovered_multistate_event(self):
        truth = event(states=("TX", "CA", "NY"))
        quality = score_grouped_outages(
            [grouped(("TX", "CA", "NY"))], lab_scenario([truth])
        )
        assert quality == GroupedOutageQuality(
            precision=1.0, recall=1.0, f1=1.0,
            matched=1, truth_events=1, predicted_outages=1,
        )

    def test_small_footprints_do_not_count(self):
        truth = event(states=("TX", "CA"))  # below the footprint bar
        quality = score_grouped_outages(
            [grouped(("TX", "CA"))], lab_scenario([truth]), min_footprint=3
        )
        assert quality.truth_events == 0
        assert quality.predicted_outages == 0
        assert quality.f1 == 1.0  # vacuously perfect

    def test_spurious_group_hurts_precision(self):
        truth = event(states=("TX", "CA", "NY"))
        predictions = [
            grouped(("TX", "CA", "NY")),
            grouped(("WY", "VT", "ME"), start_hour=2),
        ]
        quality = score_grouped_outages(predictions, lab_scenario([truth]))
        assert quality.precision == pytest.approx(0.5)
        assert quality.recall == 1.0

    def test_peak_outside_slack_does_not_match(self):
        truth = event(states=("TX", "CA", "NY"), hour=1, hours=2)
        late = grouped(("TX", "CA", "NY"), start_hour=20)
        quality = score_grouped_outages([late], lab_scenario([truth]))
        assert quality.matched == 0

    def test_needs_two_shared_states(self):
        truth = event(states=("TX", "CA", "NY"))
        disjoint = grouped(("TX", "WY", "VT"))  # only one shared state
        quality = score_grouped_outages([disjoint], lab_scenario([truth]))
        assert quality.matched == 0

    def test_states_filter_shrinks_truth_footprint(self):
        truth = event(states=("TX", "CA", "NY", "FL"))
        quality = score_grouped_outages(
            [], lab_scenario([truth]), states={"TX", "CA"}
        )
        # Only two of the impacts were studied: below the footprint bar.
        assert quality.truth_events == 0


class TestScoreStudy:
    def test_bundles_both_views_on_a_real_study(self, small_env, mini_study):
        score = score_study(mini_study, small_env.scenario)
        # The studied-states filter must confine the ground truth to the
        # four mini geos; the pipeline recovers their strong impacts.
        assert score.spikes.recall_strong > 0.8
        assert 0.0 <= score.spikes.precision <= 1.0
        payload = score.to_dict()
        assert set(payload) == {"spikes", "outages"}
        assert payload["spikes"]["total_impacts"] < small_env.scenario.total_impacts
