"""Shared fixtures: a small but complete simulated deployment.

Session-scoped fixtures build one compact world (first months of 2021,
containing the Texas winter storm and the Verizon East Coast outage)
and run the pipeline over it once; the many tests that only *read*
results share that work.  Tests that need mutation or special
configurations build their own throwaway environments.
"""

from __future__ import annotations

import pytest

from repro import make_environment, utc
from repro.ant import AntDataset
from repro.core import SiftConfig
from repro.timeutil import TimeWindow
from repro.world import Scenario, ScenarioConfig, SearchPopulation

WINDOW_START = utc(2021, 1, 1)
WINDOW_END = utc(2021, 3, 1)

#: Geographies covered by the shared mini study: a huge state with the
#: storm, a huge quiet-ish state, a storm-adjacent state, a tiny state.
MINI_GEOS = ("US-TX", "US-CA", "US-OK", "US-WY")


@pytest.fixture(scope="session")
def small_env():
    """Two months around the Texas winter storm, moderate background."""
    return make_environment(
        background_scale=0.3, start=WINDOW_START, end=WINDOW_END
    )


@pytest.fixture(scope="session")
def small_window(small_env) -> TimeWindow:
    return small_env.window


@pytest.fixture(scope="session")
def tx_result(small_env):
    """Full single-geography pipeline result for Texas."""
    return small_env.sift.analyze_state("US-TX", small_env.window)


@pytest.fixture(scope="session")
def mini_study(small_env):
    """A small multi-geography study (annotated, grouped)."""
    return small_env.run_study(geos=MINI_GEOS)


@pytest.fixture(scope="session")
def small_scenario() -> Scenario:
    return Scenario.build(
        ScenarioConfig(
            start=WINDOW_START, end=WINDOW_END, background_scale=0.3
        )
    )


@pytest.fixture(scope="session")
def small_population(small_scenario) -> SearchPopulation:
    return SearchPopulation(small_scenario)


@pytest.fixture(scope="session")
def small_ant(small_scenario) -> AntDataset:
    return AntDataset.build(small_scenario)


@pytest.fixture()
def fast_sift_config() -> SiftConfig:
    """Single-round, unannotated config for tests probing one stage."""
    from repro.core import AveragingConfig

    return SiftConfig(
        averaging=AveragingConfig(max_rounds=1, min_rounds=1),
        annotate=False,
    )
