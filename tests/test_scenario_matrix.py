"""Backend x scenario-family matrix: nothing strong is silently lost.

Every registered (stitcher, averager) pair runs one reduced-scale world
per foundry family, and every ground-truth impact that should be
unambiguously detectable must surface as a spike.  This is the
guarantee the scenario-pack benchmark enforces with floors, asserted
here per backend so a new reconstruction strategy cannot regress a
family the default backend handles.
"""

import itertools

import pytest

from repro.core.reconstruct import averager_names, stitcher_names
from repro.world.foundry import PACK_SEED, scenario_pack, score_pack_family

BACKENDS = sorted(itertools.product(stitcher_names(), averager_names()))
SMOKE_PACK = scenario_pack(smoke=True)


@pytest.mark.parametrize(
    "stitcher,averager", BACKENDS, ids=["/".join(pair) for pair in BACKENDS]
)
@pytest.mark.parametrize("family", sorted(SMOKE_PACK))
def test_no_strong_impact_silently_dropped(family, stitcher, averager):
    spec = SMOKE_PACK[family]
    score = score_pack_family(
        spec, PACK_SEED, stitcher=stitcher, averager=averager
    )
    quality = score.spikes
    assert quality.total_impacts > 0
    if quality.total_strong:
        assert quality.recall_strong == 1.0, (
            f"{family} via {stitcher}/{averager} lost "
            f"{quality.total_strong - quality.detected_strong} of "
            f"{quality.total_strong} strong ground-truth impacts"
        )
    else:
        # Families tuned below the strong threshold (slow brownouts)
        # must still be fully recovered — they are the whole point.
        assert quality.recall == 1.0, (
            f"{family} via {stitcher}/{averager} missed weak impacts"
        )
