"""Tests for the runtime layer: executors, checkpoints, parallel studies.

The contract under test is the one the paper's deployment needs:

* a seeded study is identical serial or parallel (determinism);
* the collection layer crawls each frame exactly once, however many
  workers race for it (politeness under rate limiting);
* a file-backed study survives interrupts and resumes completed
  geographies without recrawling a single frame (durability).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.collection import CollectionDatabase, CollectionManager, WorkItem
from repro.core import ContextConfig, RisingCache, SiftConfig
from repro.core.progress import (
    CacheStats,
    CheckpointHit,
    CrawlStats,
    GeoFinished,
    GeoStarted,
    ProgressLog,
    StudyFinished,
    StudyStarted,
    text_listener,
)
from repro.errors import CheckpointMismatchError, ConfigurationError, DatabaseError
from repro.runtime import (
    ProcessPoolStudyExecutor,
    SerialExecutor,
    StudyRuntime,
    ThreadPoolStudyExecutor,
    make_executor,
)
from repro.timeutil import TimeWindow, utc, weekly_frames
from repro.trends.ratelimit import RateLimitConfig, SimulatedClock
from repro.trends.records import RisingTerm, TimeFrameRequest, TimeFrameResponse
from repro.trends.service import TrendsConfig, TrendsService
from repro.world.population import SearchPopulation
from repro.world.scenarios import Scenario, ScenarioConfig

from tests.conftest import MINI_GEOS, WINDOW_END, WINDOW_START


def build_runtime(**kwargs) -> StudyRuntime:
    """A compact deployment over the shared test window."""
    kwargs.setdefault("background_scale", 0.3)
    kwargs.setdefault("start", WINDOW_START)
    kwargs.setdefault("end", WINDOW_END)
    return StudyRuntime.build(**kwargs)


def spike_dicts(study) -> list[dict]:
    return [spike.to_dict() for spike in study.spikes]


class TestExecutors:
    def test_make_executor_serial_for_one(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(4), ThreadPoolStudyExecutor)

    def test_thread_pool_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ThreadPoolStudyExecutor(0)

    def test_negative_workers_raise_everywhere(self):
        # make_executor used to silently fall back to serial for
        # negative counts while the pool constructors raised.
        for kind in ("auto", "serial", "thread", "process"):
            with pytest.raises(ConfigurationError):
                make_executor(-3, kind)
        with pytest.raises(ConfigurationError):
            ThreadPoolStudyExecutor(-3)
        with pytest.raises(ConfigurationError):
            ProcessPoolStudyExecutor(-3)

    def test_explicit_kinds_map_to_executors(self):
        assert isinstance(make_executor(4, "serial"), SerialExecutor)
        assert isinstance(make_executor(4, "thread"), ThreadPoolStudyExecutor)
        assert isinstance(make_executor(4, "process"), ProcessPoolStudyExecutor)
        assert make_executor(4, "process").max_workers == 4
        with pytest.raises(ConfigurationError):
            make_executor(4, "fibers")

    def test_unbound_process_executor_refuses_to_shard(self):
        executor = ProcessPoolStudyExecutor(2)
        assert executor.shards_study
        with pytest.raises(ConfigurationError, match="not bound"):
            executor.run_sharded_study(
                None, ("US-TX",), TimeWindow(WINDOW_START, WINDOW_END)
            )

    def test_map_preserves_input_order(self):
        barrier = threading.Barrier(4)

        def slow_identity(item: int) -> int:
            barrier.wait(timeout=5)  # force genuine concurrency
            return item

        result = ThreadPoolStudyExecutor(4).map(slow_identity, [3, 1, 4, 1])
        assert result == [3, 1, 4, 1]

    def test_map_propagates_failures(self):
        def explode(item: int) -> int:
            raise ValueError(f"boom {item}")

        with pytest.raises(ValueError, match="boom"):
            ThreadPoolStudyExecutor(2).map(explode, [1, 2, 3])


class TestParallelDeterminism:
    def test_parallel_study_equals_serial_spike_for_spike(self):
        serial = build_runtime(max_workers=1).run_study(geos=MINI_GEOS)
        parallel = build_runtime(max_workers=4).run_study(geos=MINI_GEOS)

        assert spike_dicts(parallel) == spike_dicts(serial)
        assert parallel.heavy_hitters == serial.heavy_hitters
        assert parallel.suggestion_stats == serial.suggestion_stats
        assert [o.label for o in parallel.outages] == [
            o.label for o in serial.outages
        ]
        for geo in MINI_GEOS:
            assert np.array_equal(
                parallel.states[geo].timeline.values,
                serial.states[geo].timeline.values,
            )

    def test_heavy_hitters_is_sorted_tuple_even_without_seeds(self):
        config = SiftConfig(context=ContextConfig(seed_heavy_hitters=frozenset()))
        study = build_runtime(sift=config).run_study(geos=("US-WY",))
        assert isinstance(study.heavy_hitters, tuple)
        assert list(study.heavy_hitters) == sorted(study.heavy_hitters)


def build_collection(fetchers: int = 4):
    """A bare service + manager over a tiny quiet world."""
    scenario = Scenario.build(
        ScenarioConfig(
            start=utc(2021, 1, 1), end=utc(2021, 3, 1), background_scale=0.0
        )
    )
    clock = SimulatedClock()
    service = TrendsService(
        SearchPopulation(scenario),
        TrendsConfig(
            rate_limit=RateLimitConfig(burst=10_000, refill_per_second=1000)
        ),
        clock=clock,
    )
    manager = CollectionManager(service, sleep=clock.sleep, fetcher_count=fetchers)
    return service, manager


def build_workload(weeks_until=utc(2021, 2, 26)) -> list[WorkItem]:
    window = TimeWindow(utc(2021, 1, 1), weeks_until)
    return [
        WorkItem("Internet outage", geo, frame, include_rising=False)
        for geo in ("US-TX", "US-CA", "US-NY")
        for frame in weekly_frames(window)
    ]


class TestExactlyOnceCrawling:
    def test_parallel_execute_crawls_each_frame_once(self):
        service, manager = build_collection(fetchers=8)
        workload = build_workload()
        report = manager.prefetch(workload * 3, max_workers=8)

        assert service.stats.frames_served == len(workload)
        assert report.fetched == len(workload)
        assert report.served_from_cache == 2 * len(workload)
        assert report.requested == 3 * len(workload)

    def test_concurrent_fetch_one_is_single_flighted(self):
        service, manager = build_collection(fetchers=4)
        item = build_workload()[0]
        responses = []
        errors = []

        def hit() -> None:
            try:
                responses.append(
                    manager.interest_over_time(
                        item.term, item.geo, item.window, sample_round=0,
                        include_rising=False,
                    )
                )
            except Exception as error:  # pragma: no cover - failure detail
                errors.append(error)

        threads = [threading.Thread(target=hit) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)

        assert not errors
        assert len(responses) == 8
        assert service.stats.frames_served == 1
        first = responses[0]
        assert all(np.array_equal(r.values, first.values) for r in responses)

    def test_wall_clock_throughput_reported(self):
        _, manager = build_collection()
        report = manager.prefetch(build_workload(), max_workers=4)
        assert report.elapsed_seconds > 0.0
        assert report.frames_per_second > 0.0
        lifetime = manager.report()
        assert lifetime.fetched == report.fetched


class TestDatabaseConcurrency:
    @staticmethod
    def make_response(geo: str, week: TimeWindow, sample_round: int):
        request = TimeFrameRequest("Internet outage", geo, week)
        values = np.zeros(week.hours, dtype=np.int16)
        values[week.hours // 2] = 100
        return TimeFrameResponse(
            request=request,
            values=values,
            rising=(RisingTerm("power outage", 120),),
            sample_round=sample_round,
        )

    def test_file_database_survives_concurrent_writers(self, tmp_path):
        database = CollectionDatabase(str(tmp_path / "frames.db"))
        weeks = weekly_frames(TimeWindow(utc(2021, 1, 1), utc(2021, 2, 26)))
        geos = ("US-TX", "US-CA", "US-NY", "US-FL")
        errors = []

        def writer(geo: str, rounds: int) -> None:
            try:
                for sample_round in range(rounds):
                    for week in weeks:
                        database.store_frame(
                            self.make_response(geo, week, sample_round),
                            fetched_by=f"writer-{geo}",
                        )
            except Exception as error:  # pragma: no cover - failure detail
                errors.append(error)

        # Two threads per geo: concurrent writers of the same rows must
        # serialize onto WAL instead of colliding.
        threads = [
            threading.Thread(target=writer, args=(geo, 2))
            for geo in geos
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)

        assert not errors
        # INSERT OR REPLACE keys on (term, geo, window, round): duplicate
        # writers collapse onto one row per distinct frame.
        assert database.frame_count() == len(geos) * len(weeks) * 2
        loaded = database.load_frame(
            "Internet outage", "US-TX", weeks[0], sample_round=1
        )
        assert loaded is not None
        assert loaded.values.max() == 100
        database.close()

    def test_memory_database_shared_across_threads(self):
        database = CollectionDatabase()
        week = weekly_frames(TimeWindow(utc(2021, 1, 1), utc(2021, 1, 15)))[0]

        def write() -> None:
            database.store_frame(
                self.make_response("US-TX", week, 0), fetched_by="writer"
            )

        thread = threading.Thread(target=write)
        thread.start()
        thread.join(timeout=10)
        assert database.frame_count() == 1


class _InterruptAfter:
    """A progress listener that kills the study after N finished geos."""

    def __init__(self, geo_limit: int) -> None:
        self.geo_limit = geo_limit
        self.finished: list[str] = []

    def __call__(self, event) -> None:
        if isinstance(event, GeoFinished):
            self.finished.append(event.geo)
            if len(self.finished) >= self.geo_limit:
                raise KeyboardInterrupt("simulated operator interrupt")


class TestResume:
    #: Annotation disabled: the resumed run must need *zero* requests
    #: for completed geographies, daily rising frames included.
    config = SiftConfig(annotate=False)

    def test_interrupted_study_resumes_without_recrawling(self, tmp_path):
        db_path = str(tmp_path / "study.db")
        interrupter = _InterruptAfter(geo_limit=2)
        first = build_runtime(
            database=db_path, sift=self.config, progress=interrupter
        )
        with pytest.raises(KeyboardInterrupt):
            first.run_study(geos=MINI_GEOS)
        first.close()
        completed = tuple(interrupter.finished)
        assert len(completed) == 2

        resumed_runtime = build_runtime(database=db_path, sift=self.config)
        study = resumed_runtime.run_study(geos=MINI_GEOS)

        assert study.resumed_geos == completed
        # The completed geographies never touched the service again.
        for geo in completed:
            assert resumed_runtime.service.stats.frames_by_geo[geo] == 0
        report = resumed_runtime.report()
        assert report.fetched > 0  # the remaining geographies did crawl

        fresh = build_runtime(sift=self.config).run_study(geos=MINI_GEOS)
        assert spike_dicts(study) == spike_dicts(fresh)
        for geo in MINI_GEOS:
            assert np.array_equal(
                study.states[geo].timeline.values,
                fresh.states[geo].timeline.values,
            )

    def test_second_run_resumes_every_geo_with_zero_fetches(self, tmp_path):
        db_path = str(tmp_path / "study.db")
        build_runtime(database=db_path, sift=self.config).run_study(geos=MINI_GEOS)

        rerun = build_runtime(database=db_path, sift=self.config)
        study = rerun.run_study(geos=MINI_GEOS)

        assert study.resumed_geos == MINI_GEOS
        assert rerun.service.stats.frames_served == 0
        assert rerun.report().fetched == 0
        assert rerun.completed_geos() == tuple(sorted(MINI_GEOS))

    def test_checkpoint_ignores_mismatched_window(self, tmp_path):
        db_path = str(tmp_path / "study.db")
        build_runtime(database=db_path, sift=self.config).run_study(geos=("US-WY",))

        other = build_runtime(
            database=db_path,
            sift=self.config,
            end=utc(2021, 2, 1),  # different study window, same file
        )
        study = other.run_study(geos=("US-WY",))
        # The stale checkpoint is ignored (the geography re-analyzes,
        # reusing raw frames from the shared frames table where windows
        # overlap), and the result carries the new window.
        assert study.resumed_geos == ()
        assert other.report().requested > 0
        assert study.window.end == utc(2021, 2, 1)

    def test_memory_runtime_does_not_resume_across_instances(self):
        first = build_runtime(sift=self.config)
        first.run_study(geos=("US-WY",))
        second = build_runtime(sift=self.config)
        study = second.run_study(geos=("US-WY",))
        assert study.resumed_geos == ()


class TestCheckpointBackends:
    """Resume refuses a reconstruction-backend mismatch (DESIGN.md §9).

    A window mismatch re-analyzes silently; a backend mismatch raises,
    because mixing timelines stitched under different calibration
    semantics would silently corrupt the study.
    """

    config = SiftConfig(annotate=False)

    def test_mismatched_stitcher_is_refused(self, tmp_path):
        db_path = str(tmp_path / "study.db")
        build_runtime(database=db_path, sift=self.config).run_study(geos=("US-WY",))

        other = build_runtime(
            database=db_path,
            sift=SiftConfig(annotate=False, stitcher="calibrated"),
        )
        with pytest.raises(CheckpointMismatchError, match="overlap_ratio"):
            other.run_study(geos=("US-WY",))

    def test_mismatched_averager_is_refused(self, tmp_path):
        db_path = str(tmp_path / "study.db")
        build_runtime(
            database=db_path,
            sift=SiftConfig(annotate=False, averager="noise_aware"),
        ).run_study(geos=("US-WY",))

        other = build_runtime(database=db_path, sift=self.config)
        with pytest.raises(CheckpointMismatchError, match="noise_aware"):
            other.run_study(geos=("US-WY",))

    def test_matching_alternate_backend_resumes(self, tmp_path):
        db_path = str(tmp_path / "study.db")
        alternate = SiftConfig(
            annotate=False, stitcher="calibrated", averager="noise_aware"
        )
        build_runtime(database=db_path, sift=alternate).run_study(geos=("US-WY",))

        rerun = build_runtime(database=db_path, sift=alternate)
        study = rerun.run_study(geos=("US-WY",))
        assert study.resumed_geos == ("US-WY",)
        assert rerun.report().fetched == 0
        restored = study.states["US-WY"].averaging
        assert restored.stitcher == "calibrated"
        assert restored.averager == "noise_aware"

    def test_stitch_report_roundtrips_through_checkpoint(self, tmp_path):
        db_path = str(tmp_path / "study.db")
        first = build_runtime(database=db_path, sift=self.config)
        fresh = first.run_study(geos=("US-WY",))
        saved = fresh.states["US-WY"].averaging.stitch_report

        rerun = build_runtime(database=db_path, sift=self.config)
        resumed = rerun.run_study(geos=("US-WY",))
        restored = resumed.states["US-WY"].averaging.stitch_report
        assert restored == saved
        assert restored.ratio_spread == saved.ratio_spread

    def test_legacy_checkpoint_without_backend_keys_is_default(self, tmp_path):
        """Checkpoints written before backends existed load as the
        default backend — and are refused by any alternate."""
        db_path = str(tmp_path / "study.db")
        runtime = build_runtime(database=db_path, sift=self.config)
        runtime.run_study(geos=("US-WY",))
        # Strip the backend keys, simulating a pre-backend database.
        meta = runtime.database.load_series_meta(self.config.term, "US-WY")
        for key in ("stitcher", "averager", "stitch_report"):
            meta.pop(key, None)
        spikes = runtime.database.load_spikes(term=self.config.term, geo="US-WY")
        start, values = runtime.database.load_series(self.config.term, "US-WY")
        runtime.database.store_checkpoint(
            self.config.term, "US-WY", start, values, meta, list(spikes)
        )
        runtime.close()

        default_rerun = build_runtime(database=db_path, sift=self.config)
        study = default_rerun.run_study(geos=("US-WY",))
        assert study.resumed_geos == ("US-WY",)
        restored = study.states["US-WY"].averaging
        assert (restored.stitcher, restored.averager) == ("overlap_ratio", "mean")
        assert restored.stitch_report.frames == 0  # no report recorded

        alternate = build_runtime(
            database=db_path,
            sift=SiftConfig(annotate=False, averager="noise_aware"),
        )
        with pytest.raises(CheckpointMismatchError):
            alternate.run_study(geos=("US-WY",))


class TestRisingCache:
    def test_lru_eviction_respects_capacity(self):
        cache = RisingCache(capacity=2)
        day = utc(2021, 1, 1)
        cache.put(("US-TX", day), ())
        cache.put(("US-CA", day), ())
        assert cache.get(("US-TX", day)) is not None  # refresh TX
        cache.put(("US-NY", day), ())  # evicts CA, the LRU entry
        assert len(cache) == 2
        assert cache.get(("US-CA", day)) is None
        assert cache.get(("US-TX", day)) is not None

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RisingCache(capacity=0)

    def test_stats_event_reports_hits_and_misses(self):
        cache = RisingCache(capacity=8)
        day = utc(2021, 1, 1)
        cache.get(("US-TX", day))
        cache.put(("US-TX", day), ())
        cache.get(("US-TX", day))
        stats = cache.stats()
        assert isinstance(stats, CacheStats)
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)


class TestProgressEvents:
    def test_study_emits_structured_sequence(self):
        log = ProgressLog()
        runtime = build_runtime(progress=log)
        runtime.run_study(geos=("US-WY", "US-OK"))

        events = log.events()
        assert isinstance(events[0], StudyStarted)
        assert isinstance(events[-1], StudyFinished)
        started = [e.geo for e in log.of_type(GeoStarted)]
        finished = [e.geo for e in log.of_type(GeoFinished)]
        assert sorted(started) == ["US-OK", "US-WY"]
        assert sorted(finished) == ["US-OK", "US-WY"]
        crawl = log.of_type(CrawlStats)
        assert len(crawl) == 1
        assert crawl[0].fetched > 0
        assert crawl[0].frames_per_second > 0
        assert log.of_type(CacheStats)[0].misses > 0

    def test_resume_emits_checkpoint_hits(self, tmp_path):
        db_path = str(tmp_path / "study.db")
        config = SiftConfig(annotate=False)
        build_runtime(database=db_path, sift=config).run_study(geos=("US-WY",))

        log = ProgressLog()
        rerun = build_runtime(database=db_path, sift=config, progress=log)
        rerun.run_study(geos=("US-WY",))

        hits = log.of_type(CheckpointHit)
        assert [hit.geo for hit in hits] == ["US-WY"]
        finished = log.of_type(GeoFinished)
        assert finished[0].from_checkpoint is True

    def test_event_dicts_are_json_safe(self):
        event = StudyStarted(
            geos=("US-TX",), window=TimeWindow(utc(2021, 1, 1), utc(2021, 2, 1))
        )
        payload = event.to_dict()
        assert payload["type"] == "StudyStarted"
        assert payload["geos"] == ["US-TX"]
        assert payload["window"]["start"] == "2021-01-01T00:00:00+00:00"
        assert "1 geographies" in payload["message"]

    def test_text_listener_renders_lines(self):
        lines: list[str] = []
        listener = text_listener(lines.append)
        listener(GeoStarted(geo="US-TX", index=0, total=4))
        assert lines == ["analyzing US-TX (1/4)"]


class TestStudyRuntimeWiring:
    def test_build_wires_shared_database(self):
        runtime = build_runtime()
        assert runtime.manager.database is runtime.database
        assert runtime.sift.checkpoint is runtime.checkpoint
        assert runtime.checkpoint is not None
        assert runtime.checkpoint.database is runtime.database

    def test_checkpoint_disabled(self):
        runtime = build_runtime(checkpoint=False)
        assert runtime.checkpoint is None
        assert runtime.completed_geos() == ()

    def test_context_manager_closes_database(self, tmp_path):
        with build_runtime(database=str(tmp_path / "study.db")) as runtime:
            runtime.analyze_state("US-WY")
        with pytest.raises(DatabaseError):
            runtime.database.frame_count()

    def test_scenario_injection_defaults_window(self):
        scenario = Scenario.build(
            ScenarioConfig(
                start=utc(2021, 4, 1), end=utc(2021, 5, 1), background_scale=0.0
            )
        )
        runtime = StudyRuntime.build(scenario=scenario)
        assert runtime.window == scenario.window
        assert runtime.scenario is scenario


class TestResumeUnderFaults:
    """Checkpoint durability composes with chaos (the fault injector).

    An interrupted chaos run must resume exactly like a fault-free one:
    completed geographies never touch the service again, and because the
    fault schedule is keyed by request identity (not arrival order), the
    resumed study lands on the same spikes as an uninterrupted run under
    the same ``(profile, seed)``.
    """

    config = SiftConfig(annotate=False)
    chaos = dict(faults="transient", fault_seed=11)

    def test_interrupted_chaos_run_resumes_without_refetching(self, tmp_path):
        db_path = str(tmp_path / "study.db")
        interrupter = _InterruptAfter(geo_limit=2)
        first = build_runtime(
            database=db_path, sift=self.config, progress=interrupter, **self.chaos
        )
        with pytest.raises(KeyboardInterrupt):
            first.run_study(geos=MINI_GEOS)
        assert first.fault_report().total_injected > 0  # chaos fired pre-interrupt
        first.close()
        completed = tuple(interrupter.finished)
        assert len(completed) == 2

        resumed = build_runtime(database=db_path, sift=self.config, **self.chaos)
        study = resumed.run_study(geos=MINI_GEOS)
        assert study.resumed_geos == completed
        # Zero refetches: the checkpointed geographies are served from
        # the database, faults and all.
        for geo in completed:
            assert resumed.service.stats.frames_by_geo[geo] == 0
        assert resumed.report().fetched > 0  # the rest did crawl
        assert resumed.fault_report().dead_letters == 0

        fresh = build_runtime(sift=self.config, **self.chaos)
        uninterrupted = fresh.run_study(geos=MINI_GEOS)
        assert spike_dicts(study) == spike_dicts(uninterrupted)
        for geo in MINI_GEOS:
            assert np.array_equal(
                study.states[geo].timeline.values,
                uninterrupted.states[geo].timeline.values,
            )
