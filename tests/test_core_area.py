"""Unit tests for concurrent-spike grouping into outages."""

import pytest

from repro.core.area import (
    AreaConfig,
    Outage,
    footprint_distribution,
    group_outages,
    most_extensive,
)
from repro.core.spikes import Spike, SpikeSet
from repro.errors import ConfigurationError
from repro.timeutil import utc


def spike(geo, peak, magnitude=50.0, annotations=(), duration=3):
    from datetime import timedelta

    return Spike(
        term="Internet outage",
        geo=geo,
        start=peak,
        peak=peak,
        end=peak + timedelta(hours=duration - 1),
        magnitude=magnitude,
        annotations=annotations,
    )


class TestGrouping:
    def test_concurrent_spikes_group(self):
        spikes = [
            spike("US-TX", utc(2021, 1, 26, 16)),
            spike("US-NY", utc(2021, 1, 26, 16)),
            spike("US-NJ", utc(2021, 1, 26, 17)),
        ]
        outages = group_outages(SpikeSet(spikes))
        assert len(outages) == 1
        assert outages[0].footprint == 3

    def test_distant_spikes_split(self):
        spikes = [
            spike("US-TX", utc(2021, 1, 26, 16)),
            spike("US-NY", utc(2021, 1, 27, 16)),
        ]
        outages = group_outages(SpikeSet(spikes))
        assert len(outages) == 2

    def test_same_state_concurrent_counts_once(self):
        spikes = [
            spike("US-TX", utc(2021, 1, 26, 16)),
            spike("US-TX", utc(2021, 1, 26, 17)),
        ]
        outages = group_outages(SpikeSet(spikes))
        assert len(outages) == 1
        assert outages[0].footprint == 1

    def test_window_zero_requires_same_hour(self):
        spikes = [
            spike("US-TX", utc(2021, 1, 26, 16)),
            spike("US-NY", utc(2021, 1, 26, 17)),
        ]
        outages = group_outages(SpikeSet(spikes), AreaConfig(window_hours=0))
        assert len(outages) == 2

    def test_grouping_is_anchor_based_not_transitive(self):
        """A lagged wave (the paper's Facebook case) must not chain into
        the prompt wave: membership is measured from the group anchor."""
        spikes = [
            spike("US-TX", utc(2021, 1, 26, 16)),
            spike("US-NY", utc(2021, 1, 26, 17)),
            spike("US-CA", utc(2021, 1, 26, 18)),
        ]
        outages = group_outages(SpikeSet(spikes), AreaConfig(window_hours=1))
        assert [o.footprint for o in outages] == [2, 1]

    def test_empty(self):
        assert group_outages(SpikeSet([])) == []

    def test_chronological_order(self):
        spikes = [
            spike("US-CA", utc(2021, 3, 1, 12)),
            spike("US-TX", utc(2021, 1, 1, 12)),
        ]
        outages = group_outages(SpikeSet(spikes))
        assert outages[0].start < outages[1].start

    def test_negative_window_rejected(self):
        with pytest.raises(ConfigurationError):
            AreaConfig(window_hours=-1)


class TestOutage:
    def test_requires_spikes(self):
        with pytest.raises(ConfigurationError):
            Outage(spikes=())

    def test_peak_is_strongest_member(self):
        outage = Outage(
            spikes=(
                spike("US-TX", utc(2021, 1, 26, 16), magnitude=30.0),
                spike("US-NY", utc(2021, 1, 26, 17), magnitude=90.0),
            )
        )
        assert outage.peak == utc(2021, 1, 26, 17)

    def test_max_duration(self):
        outage = Outage(
            spikes=(
                spike("US-TX", utc(2021, 1, 26, 16), duration=2),
                spike("US-NY", utc(2021, 1, 26, 17), duration=9),
            )
        )
        assert outage.max_duration_hours == 9

    def test_annotations_merged_by_frequency(self):
        outage = Outage(
            spikes=(
                spike("US-TX", utc(2021, 1, 26, 16), annotations=("Verizon", "AT&T")),
                spike("US-NY", utc(2021, 1, 26, 16), annotations=("Verizon",)),
                spike("US-NJ", utc(2021, 1, 26, 17), annotations=("Comcast",)),
            )
        )
        assert outage.annotations[0] == "Verizon"

    def test_label(self):
        outage = Outage(spikes=(spike("US-TX", utc(2021, 7, 22, 14)),))
        assert outage.label == "22 Jul. 2021-14h"


class TestRankings:
    @pytest.fixture()
    def outages(self):
        national = Outage(
            spikes=tuple(
                spike(f"US-{code}", utc(2021, 7, 22, 14))
                for code in ("CA", "TX", "NY", "FL", "CO")
            )
        )
        regional = Outage(
            spikes=tuple(
                spike(f"US-{code}", utc(2021, 2, 15, 12)) for code in ("TX", "OK")
            )
        )
        local = Outage(spikes=(spike("US-MI", utc(2021, 8, 11, 9)),))
        return [national, regional, local]

    def test_most_extensive(self, outages):
        top = most_extensive(outages, 2)
        assert [o.footprint for o in top] == [5, 2]

    def test_footprint_distribution(self, outages):
        assert footprint_distribution(outages) == {1: 1, 2: 1, 5: 1}
