"""Tests for the process-sharded study executor.

The contract: a study run on geography-sharded worker processes is
**byte-identical** to the same study run serially or on threads, at any
worker count; shard partitions merge deterministically into the parent
stores; resume works across executor switches with zero refetches; and
the workers' structured progress (including per-shard wall-clock and
peak RSS) reaches the parent listener.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import SiftConfig
from repro.core.progress import GeoFinished, ProgressLog, ShardStats
from repro.runtime import StudyRuntime
from repro.runtime.shard import database_partition

from tests.conftest import MINI_GEOS, WINDOW_END, WINDOW_START


def build_runtime(**kwargs) -> StudyRuntime:
    kwargs.setdefault("background_scale", 0.3)
    kwargs.setdefault("start", WINDOW_START)
    kwargs.setdefault("end", WINDOW_END)
    return StudyRuntime.build(**kwargs)


def spike_dicts(study) -> list[dict]:
    return [spike.to_dict() for spike in study.spikes]


class TestProcessDeterminism:
    @pytest.fixture(scope="class")
    def serial_study(self):
        return build_runtime(max_workers=1).run_study(geos=MINI_GEOS)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_process_study_identical_to_serial(self, serial_study, workers):
        study = build_runtime(
            max_workers=workers, executor="process"
        ).run_study(geos=MINI_GEOS)
        assert study.fingerprint() == serial_study.fingerprint()
        assert spike_dicts(study) == spike_dicts(serial_study)
        for geo in MINI_GEOS:
            assert (
                study.states[geo].timeline.values.tobytes()
                == serial_study.states[geo].timeline.values.tobytes()
            )

    def test_thread_study_identical_to_process(self, serial_study):
        threaded = build_runtime(
            max_workers=2, executor="thread"
        ).run_study(geos=MINI_GEOS)
        sharded = build_runtime(
            max_workers=2, executor="process"
        ).run_study(geos=MINI_GEOS)
        assert (
            threaded.fingerprint()
            == sharded.fingerprint()
            == serial_study.fingerprint()
        )
        assert threaded.heavy_hitters == sharded.heavy_hitters
        assert threaded.suggestion_stats == sharded.suggestion_stats


class TestShardPartitions:
    config = SiftConfig(annotate=False)

    def test_partitions_merge_into_main_database(self, tmp_path):
        db = str(tmp_path / "study.sqlite3")
        runtime = build_runtime(
            max_workers=2, executor="process", database=db, sift=self.config
        )
        study = runtime.run_study(geos=MINI_GEOS)
        assert len(study.states) == len(MINI_GEOS)
        # The workers' crawl accounting reaches the parent report.
        assert runtime.report().fetched > 0
        # Every geography's checkpoint landed in the *main* database...
        assert set(runtime.database.series_geos("Internet outage")) == set(
            MINI_GEOS
        )
        runtime.close()
        # ...and the shard partition files are gone.
        for shard in range(2):
            assert not os.path.exists(database_partition(db, shard))
        leftovers = [
            name for name in os.listdir(tmp_path) if ".shard" in name
        ]
        assert leftovers == []

    def test_merged_database_equals_serial_database(self, tmp_path):
        serial_db = str(tmp_path / "serial.sqlite3")
        sharded_db = str(tmp_path / "sharded.sqlite3")
        serial = build_runtime(database=serial_db, sift=self.config)
        serial.run_study(geos=MINI_GEOS)
        sharded = build_runtime(
            max_workers=4, executor="process", database=sharded_db,
            sift=self.config,
        )
        sharded.run_study(geos=MINI_GEOS)
        for geo in MINI_GEOS:
            lhs = serial.database.load_series("Internet outage", geo)
            rhs = sharded.database.load_series("Internet outage", geo)
            assert lhs is not None and rhs is not None
            assert lhs[0] == rhs[0]
            assert np.array_equal(lhs[1], rhs[1])
        serial.close()
        sharded.close()


class TestResumeAcrossExecutors:
    config = SiftConfig(annotate=False)

    def test_zero_refetch_resume_after_executor_switch(self, tmp_path):
        db = str(tmp_path / "study.sqlite3")
        first = build_runtime(database=db, sift=self.config)
        fresh = first.run_study(geos=MINI_GEOS)
        assert first.report().requested > 0
        first.close()

        resumed = build_runtime(
            max_workers=2, executor="process", database=db, sift=self.config
        )
        study = resumed.run_study(geos=MINI_GEOS)
        assert resumed.report().requested == 0
        assert study.resumed_geos == MINI_GEOS
        for geo in MINI_GEOS:
            assert (
                study.states[geo].timeline.values.tobytes()
                == fresh.states[geo].timeline.values.tobytes()
            )
        resumed.close()

    def test_partial_checkpoint_only_crawls_missing_geos(self, tmp_path):
        db = str(tmp_path / "study.sqlite3")
        first = build_runtime(database=db, sift=self.config)
        first.run_study(geos=MINI_GEOS[:2])
        first.close()

        log = ProgressLog()
        second = build_runtime(
            max_workers=2, executor="process", database=db,
            sift=self.config, progress=log,
        )
        study = second.run_study(geos=MINI_GEOS)
        assert study.resumed_geos == MINI_GEOS[:2]
        # The crawl happened inside the worker processes; their
        # accounting arrives as forwarded CrawlStats events AND is
        # folded into the parent's lifetime report.
        from repro.core.progress import CrawlStats

        worker_requested = sum(
            event.requested for event in log.of_type(CrawlStats)
        )
        assert worker_requested > 0
        assert second.report().requested == worker_requested
        assert set(study.states) == set(MINI_GEOS)
        second.close()


class TestShardProgress:
    def test_worker_events_reach_the_parent_listener(self):
        log = ProgressLog()
        runtime = build_runtime(
            max_workers=2, executor="process", progress=log,
            sift=SiftConfig(annotate=False),
        )
        runtime.run_study(geos=MINI_GEOS)
        finished = {event.geo for event in log.of_type(GeoFinished)}
        assert finished == set(MINI_GEOS)
        shards = log.of_type(ShardStats)
        assert {event.shard for event in shards} == {0, 1}
        for event in shards:
            assert event.executor == "process"
            assert event.worker_count == 2
            assert event.elapsed_seconds > 0
            # RSS comes from resource.getrusage; non-negative always,
            # positive wherever the resource module exists.
            assert event.peak_rss_kb >= 0

    def test_serial_run_reports_its_own_shard_stats(self):
        log = ProgressLog()
        runtime = build_runtime(progress=log, sift=SiftConfig(annotate=False))
        runtime.run_study(geos=MINI_GEOS[:2])
        shards = log.of_type(ShardStats)
        assert len(shards) == 1
        assert shards[0].executor == "serial"
        assert shards[0].geo_count == 2


class TestExecutionTelemetry:
    def test_api_runtime_reports_execution_and_shards(self):
        from repro.web import SiftWebApp
        import json

        log = ProgressLog()
        runtime = build_runtime(
            max_workers=2, executor="process", progress=log,
            sift=SiftConfig(annotate=False),
        )
        study = runtime.run_study(geos=MINI_GEOS)
        app = SiftWebApp(
            study, progress_log=log, execution=runtime.execution_info()
        )
        status, _type, body = app.handle_path("/api/runtime")
        assert status == 200
        execution = json.loads(body)["execution"]
        assert execution["executor"] == "process"
        assert execution["max_workers"] == 2
        shard_rows = execution["shards"]
        assert {row["shard"] for row in shard_rows} == {0, 1}
        assert all(row["peak_rss_kb"] >= 0 for row in shard_rows)
