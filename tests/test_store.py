"""Tests for the partitioned columnar series store.

The store is the second study-checkpoint format (the sqlite tables are
the first); the contract is exact interop: checkpoints roundtrip
between formats byte-for-byte, resume behaves identically from either,
and the serving layer loads a stored study **zero-copy** through
memory-mapped ``.npy`` columns.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.collection import CollectionDatabase
from repro.core import SiftConfig
from repro.errors import CheckpointMismatchError, DatabaseError
from repro.runtime import StudyRuntime
from repro.store import MANIFEST, ColumnarStore
from repro.timeutil import TimeWindow, utc

from tests.conftest import MINI_GEOS, WINDOW_END, WINDOW_START

WINDOW = TimeWindow(WINDOW_START, WINDOW_END)
NO_ANNOTATE = SiftConfig(annotate=False)


def build_runtime(**kwargs) -> StudyRuntime:
    kwargs.setdefault("background_scale", 0.3)
    kwargs.setdefault("start", WINDOW_START)
    kwargs.setdefault("end", WINDOW_END)
    return StudyRuntime.build(**kwargs)


@pytest.fixture
def store_dir(tmp_path) -> str:
    return str(tmp_path / "store")


class TestCheckpointRoundtrip:
    def test_save_load_roundtrip(self, store_dir, tx_result):
        store = ColumnarStore(store_dir)
        store.save_state(tx_result, WINDOW)
        loaded = store.load_state("US-TX", WINDOW)
        assert loaded is not None
        assert np.array_equal(loaded.timeline.values, tx_result.timeline.values)
        assert [s.to_dict() for s in loaded.spikes] == [
            s.to_dict() for s in tx_result.spikes
        ]
        assert loaded.averaging.rounds_used == tx_result.averaging.rounds_used
        assert (
            loaded.averaging.stitch_report.to_dict()
            == tx_result.averaging.stitch_report.to_dict()
        )

    def test_loaded_series_is_memory_mapped(self, store_dir, tx_result):
        store = ColumnarStore(store_dir)
        store.save_state(tx_result, WINDOW)
        loaded = store.load_state("US-TX", WINDOW)
        assert isinstance(loaded.timeline.values, np.memmap)

    def test_window_mismatch_returns_none(self, store_dir, tx_result):
        store = ColumnarStore(store_dir)
        store.save_state(tx_result, WINDOW)
        other = TimeWindow(utc(2020, 1, 1), utc(2020, 3, 1))
        assert store.load_state("US-TX", other) is None
        assert store.completed_geos(other) == ()
        assert store.completed_geos(WINDOW) == ("US-TX",)

    def test_backend_mismatch_is_refused(self, store_dir, tx_result):
        ColumnarStore(store_dir).save_state(tx_result, WINDOW)
        mismatched = ColumnarStore(store_dir, stitcher="calibrated")
        with pytest.raises(CheckpointMismatchError, match="stitcher"):
            mismatched.load_state("US-TX", WINDOW)

    def test_unknown_geo_is_none(self, store_dir):
        assert ColumnarStore(store_dir).load_state("US-XX", WINDOW) is None

    def test_foreign_manifest_is_refused(self, store_dir):
        store = ColumnarStore(store_dir)
        with open(os.path.join(store_dir, MANIFEST), "w") as handle:
            json.dump({"format": "something-else/9"}, handle)
        with pytest.raises(DatabaseError, match="manifest"):
            store.load_state("US-TX", WINDOW)


class TestSqliteInterop:
    def test_columnar_and_sqlite_roundtrip_byte_identical(self, tmp_path):
        db_path = str(tmp_path / "study.sqlite3")
        runtime = build_runtime(database=db_path, sift=NO_ANNOTATE)
        fresh = runtime.run_study(geos=MINI_GEOS)

        store = ColumnarStore(str(tmp_path / "store"))
        imported = store.import_database(runtime.database)
        assert set(imported) == set(MINI_GEOS)
        runtime.close()

        exported_path = str(tmp_path / "exported.sqlite3")
        exported_db = CollectionDatabase(exported_path)
        store.export_database(exported_db)
        exported_db.close()

        resumed = build_runtime(database=exported_path, sift=NO_ANNOTATE)
        study = resumed.run_study(geos=MINI_GEOS)
        assert resumed.report().requested == 0
        for geo in MINI_GEOS:
            assert (
                study.states[geo].timeline.values.tobytes()
                == fresh.states[geo].timeline.values.tobytes()
            )
        resumed.close()

    def test_resume_from_columnar_store_is_zero_refetch(self, tmp_path):
        store_dir = str(tmp_path / "store")
        first = build_runtime(store=store_dir, sift=NO_ANNOTATE)
        first.run_study(geos=MINI_GEOS)
        assert first.report().requested > 0
        first.close()

        second = build_runtime(
            store=store_dir, max_workers=2, executor="process",
            sift=NO_ANNOTATE,
        )
        study = second.run_study(geos=MINI_GEOS)
        assert second.report().requested == 0
        assert study.resumed_geos == MINI_GEOS
        second.close()


class TestStudyPersistence:
    def test_store_serves_the_study_with_original_fingerprint(self, tmp_path):
        store_dir = str(tmp_path / "store")
        runtime = build_runtime(
            store=store_dir, max_workers=2, executor="process"
        )
        study = runtime.run_study(geos=MINI_GEOS)
        runtime.close()

        loaded = ColumnarStore(store_dir).load_study()
        assert loaded.fingerprint() == study.fingerprint()
        assert loaded.heavy_hitters == study.heavy_hitters
        assert loaded.suggestion_stats == study.suggestion_stats
        assert [o.label for o in loaded.outages] == [
            o.label for o in study.outages
        ]

    def test_save_annotated_overwrites_manifest_spikes(self, tmp_path):
        store_dir = str(tmp_path / "store")
        runtime = build_runtime(store=store_dir)  # annotation on
        study = runtime.run_study(geos=("US-TX",))
        runtime.close()
        loaded = ColumnarStore(store_dir).load_state("US-TX", WINDOW)
        annotated = [s.to_dict() for s in study.spikes.in_state("US-TX")]
        assert [s.to_dict() for s in loaded.spikes] == annotated

    def test_empty_store_refuses_to_load_a_study(self, tmp_path):
        with pytest.raises(DatabaseError, match="no geographies"):
            ColumnarStore(str(tmp_path / "empty")).load_study()


class TestZeroCopyServing:
    def test_query_index_from_store_serves_identical_payloads(self, tmp_path):
        from repro.web.index import QueryIndex

        store_dir = str(tmp_path / "store")
        runtime = build_runtime(
            store=store_dir, max_workers=2, executor="process"
        )
        study = runtime.run_study(geos=MINI_GEOS)
        runtime.close()

        live = QueryIndex(study)
        stored = QueryIndex.from_store(ColumnarStore(store_dir))
        assert stored.fingerprint == live.fingerprint
        for geo in MINI_GEOS:
            hours = live.column(geo).hours
            assert stored.timeline_payload(geo, 0, hours) == (
                live.timeline_payload(geo, 0, hours)
            )
            cut = live.spike_table(geo).cut(1)
            assert stored.spikes_payload(geo, cut) == live.spikes_payload(geo, cut)
        assert stored.summary_payload() == live.summary_payload()

    def test_from_store_columns_alias_the_mmap(self, tmp_path):
        from repro.web.index import QueryIndex

        store_dir = str(tmp_path / "store")
        runtime = build_runtime(store=store_dir, sift=NO_ANNOTATE)
        runtime.run_study(geos=("US-TX",))
        runtime.close()

        index = QueryIndex.from_store(ColumnarStore(store_dir))
        # GeoColumn must not have copied the memory-mapped series.
        assert isinstance(index.column("US-TX")._values, np.memmap)
