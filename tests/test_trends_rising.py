"""Unit tests for rising-suggestion computation."""

import numpy as np
import pytest

from repro.timeutil import TimeWindow, utc
from repro.trends.records import BREAKOUT_WEIGHT, TimeFrameRequest
from repro.trends.rising import RisingConfig, rising_terms
from repro.world.catalog import resolve_phrase
from repro.world.population import SearchPopulation
from repro.world.scenarios import Scenario, ScenarioConfig

STORM_WEEK = TimeWindow(utc(2021, 2, 14), utc(2021, 2, 21))
FIRST_WEEK = TimeWindow(utc(2021, 1, 1), utc(2021, 1, 8))


@pytest.fixture(scope="module")
def population():
    scenario = Scenario.build(
        ScenarioConfig(
            start=utc(2021, 1, 1), end=utc(2021, 3, 1), background_scale=0.0
        )
    )
    return SearchPopulation(scenario)


def compute(population, window, geo="US-TX", **config_overrides):
    request = TimeFrameRequest(term="Internet outage", geo=geo, window=window)
    rng = np.random.default_rng(7)
    config = RisingConfig(**config_overrides) if config_overrides else None
    return rising_terms(population, request, rng, sample_rate=0.03, config=config)


class TestRisingTerms:
    def test_storm_terms_rise_in_texas(self, population):
        rising = compute(population, STORM_WEEK)
        concepts = {resolve_phrase(term.phrase) for term in rising}
        names = {term.name for term in concepts if term is not None}
        assert "Power outage" in names
        assert "Winter storm" in names

    def test_weights_sorted_descending(self, population):
        rising = compute(population, STORM_WEEK)
        weights = [term.weight for term in rising]
        assert weights == sorted(weights, reverse=True)

    def test_requested_term_never_suggested(self, population):
        rising = compute(population, STORM_WEEK)
        for term in rising:
            resolved = resolve_phrase(term.phrase)
            assert resolved is None or resolved.name != "Internet outage"

    def test_first_window_has_no_suggestions(self, population):
        """No preceding period to compare against -> empty, not an error."""
        assert compute(population, FIRST_WEEK) == ()

    def test_quiet_state_quiet_week_mostly_empty(self, population):
        rising = compute(
            population,
            TimeWindow(utc(2021, 1, 18), utc(2021, 1, 25)),
            geo="US-WY",
        )
        # Tiny states rarely clear the anonymity threshold, so only a
        # handful of random correlations (the paper's term) survive.
        assert len(rising) <= 8

    def test_top_k_respected(self, population):
        rising = compute(population, STORM_WEEK, top_k=2, min_weight=1)
        assert len(rising) <= 2

    def test_weights_capped_at_breakout(self, population):
        rising = compute(population, STORM_WEEK)
        assert all(term.weight <= BREAKOUT_WEIGHT for term in rising)

    def test_min_weight_filters(self, population):
        loose = compute(population, STORM_WEEK, min_weight=1)
        strict = compute(population, STORM_WEEK, min_weight=400)
        assert len(strict) <= len(loose)
        assert all(term.weight >= 400 for term in strict)

    def test_phrases_are_raw_queries(self, population):
        """At least some suggestions surface as typed variants, not
        canonical names — the clustering stage's raison d'etre."""
        rising = compute(population, STORM_WEEK, min_weight=1)
        assert any(term.phrase != term.phrase.title() for term in rising)
