"""Failure-injection and degenerate-input tests across the stack."""


from repro.collection import CollectionManager
from repro.core import AveragingConfig, Sift, SiftConfig
from repro.core.area import group_outages
from repro.core.spikes import SpikeSet
from repro.timeutil import utc
from repro.trends import (
    RateLimitConfig,
    SimulatedClock,
    TrendsConfig,
    TrendsService,
)
from repro.web import SiftWebApp
from repro.world import Scenario, ScenarioConfig, SearchPopulation


def build_sift(scenario, trends_config=None, sift_config=None):
    population = SearchPopulation(scenario)
    clock = SimulatedClock()
    service = TrendsService(
        population,
        trends_config
        or TrendsConfig(
            rate_limit=RateLimitConfig(burst=10_000, refill_per_second=10_000)
        ),
        clock=clock,
    )
    manager = CollectionManager(service, sleep=clock.sleep, fetcher_count=2)
    return Sift(manager, sift_config or SiftConfig())


def empty_world(threshold=50):
    """A world with no events and a brutal anonymity threshold."""
    scenario = Scenario.build(
        ScenarioConfig(
            start=utc(2021, 6, 1),
            end=utc(2021, 7, 1),
            background_scale=0.0,
            include_headline_events=False,
        )
    )
    config = TrendsConfig(
        privacy_threshold=threshold,
        rate_limit=RateLimitConfig(burst=10_000, refill_per_second=10_000),
    )
    return scenario, config


class TestSilentWorld:
    def test_study_with_zero_signal(self):
        scenario, config = empty_world()
        sift = build_sift(scenario, config)
        study = sift.run_study(geos=("US-TX", "US-WY"), window=scenario.window)
        assert study.spike_count == 0
        assert study.outages == []
        assert study.suggestion_stats == (0, 0)

    def test_web_app_over_empty_study(self):
        scenario, config = empty_world()
        sift = build_sift(scenario, config)
        study = sift.run_study(geos=("US-WY",), window=scenario.window)
        app = SiftWebApp(study)
        status, _, _ = app.handle_path("/")
        assert status == 200
        status, _, body = app.handle_path("/api/spikes?geo=US-WY")
        assert status == 200
        assert '"count":0' in body

    def test_group_outages_empty(self):
        assert group_outages(SpikeSet([])) == []


class TestDegenerateConfigurations:
    def test_single_round_crawl(self):
        """A one-shot crawl (no averaging) still yields a study."""
        scenario = Scenario.build(
            ScenarioConfig(
                start=utc(2021, 2, 1), end=utc(2021, 3, 1), background_scale=0.1
            )
        )
        sift = build_sift(
            scenario,
            sift_config=SiftConfig(
                averaging=AveragingConfig(min_rounds=1, max_rounds=1),
                annotate=False,
            ),
        )
        result = sift.analyze_state("US-TX", scenario.window)
        assert result.averaging.rounds_used == 1
        assert not result.averaging.converged  # one round can't converge
        assert len(result.spikes) > 0

    def test_window_shorter_than_a_week(self):
        """A sub-week study is a single frame: no stitching at all."""
        scenario = Scenario.build(
            ScenarioConfig(
                start=utc(2021, 2, 14), end=utc(2021, 2, 17), background_scale=0.0
            )
        )
        sift = build_sift(scenario)
        result = sift.analyze_state("US-TX", scenario.window)
        assert len(result.timeline) == 72
        assert result.averaging.stitch_report.frames == 1

    def test_dense_data_with_zero_privacy_threshold(self):
        """Threshold 0 floods the series with nonzero hours; the
        pipeline must survive (durations inflate, nothing crashes)."""
        scenario = Scenario.build(
            ScenarioConfig(
                start=utc(2021, 2, 1), end=utc(2021, 2, 15), background_scale=0.1
            )
        )
        config = TrendsConfig(
            privacy_threshold=0,
            rate_limit=RateLimitConfig(burst=10_000, refill_per_second=10_000),
        )
        sift = build_sift(scenario, config)
        result = sift.analyze_state("US-CA", scenario.window)
        assert result.timeline.nonzero_hours > 200
        assert len(result.spikes) >= 1


class TestStarvedCollection:
    def test_single_fetcher_tight_budget_completes(self):
        """One IP against a near-empty token bucket: slow but correct."""
        scenario = Scenario.build(
            ScenarioConfig(
                start=utc(2021, 2, 1), end=utc(2021, 2, 15), background_scale=0.0
            )
        )
        population = SearchPopulation(scenario)
        clock = SimulatedClock()
        service = TrendsService(
            population,
            TrendsConfig(
                rate_limit=RateLimitConfig(burst=2, refill_per_second=0.5)
            ),
            clock=clock,
        )
        manager = CollectionManager(service, sleep=clock.sleep, fetcher_count=1)
        sift = Sift(manager, SiftConfig(annotate=False))
        result = sift.analyze_state("US-TX", scenario.window)
        assert result.timeline is not None
        assert clock() > 0  # the crawl had to wait out the limiter
