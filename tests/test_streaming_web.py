"""Delta snapshot installs: the serving side of the watch loop.

A streamed tick must leave the serving layer indistinguishable from a
full rebuild — same columns, same rows, same bytes — while doing
strictly less work: columns extend in place, untouched cache entries
survive with their ETags, and the ``/api/stream`` ring carries every
published spike.  Also the regression guard for the in-place
:class:`~repro.web.index.GeoColumn` append: the formerly partial last
128-hour block must recompute its maximum over its full extent, not
freeze the stale partial one.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import SiftConfig
from repro.core.averaging import AveragingConfig
from repro.core.series import HourlyTimeline
from repro.runtime.study import StudyRuntime
from repro.timeutil import TimeWindow, utc
from repro.web import QueryIndex, SiftWebApp
from repro.web.index import _BLOCK, GeoColumn

GEOS = ("US-TX", "US-CA", "US-OK")
START, END = utc(2021, 1, 1), utc(2021, 2, 7)
ROUNDS = 2


def build_runtime():
    return StudyRuntime.build(
        background_scale=0.3,
        seed=11,
        start=START,
        end=END,
        sift=SiftConfig(
            annotate=False,
            averaging=AveragingConfig(min_rounds=ROUNDS, max_rounds=ROUNDS),
        ),
        checkpoint=False,
    )


def make_column(values: np.ndarray) -> GeoColumn:
    return GeoColumn(
        HourlyTimeline(
            term="Internet outage",
            geo="US-TX",
            start=START,
            values=np.asarray(values, dtype=np.float64),
        )
    )


class TestGeoColumnAppend:
    """In-place growth must match a fresh column bit for bit."""

    @pytest.mark.parametrize(
        "initial,tail",
        [
            # The regression shape: a partial last block whose tallest
            # value arrives in the block's *remainder* after an append —
            # a frozen partial maximum would under-report window peaks.
            (200, 150),
            # Append lands entirely inside the still-partial block.
            (130, 60),
            # Block-aligned initial length (no partial block to heal).
            (_BLOCK * 2, 100),
            # Tiny column growing past its first block boundary.
            (5, _BLOCK * 2 + 7),
        ],
    )
    def test_append_equals_fresh_column(self, initial, tail):
        rng = np.random.default_rng(7)
        values = rng.uniform(0.0, 50.0, initial + tail)
        # Put the global maximum inside the appended range, within the
        # block that was partial before the append.
        values[initial + min(tail, _BLOCK - initial % _BLOCK) // 2] = 99.0
        grown = make_column(values[:initial])
        grown.append(values[initial:])
        fresh = make_column(values)
        assert grown.hours == fresh.hours
        np.testing.assert_array_equal(grown._values, fresh._values)
        # Prefix sums continue from the last entry instead of re-summing
        # from hour zero, so they match a one-shot cumsum only up to
        # float associativity; served means round to 3 decimals.
        np.testing.assert_allclose(grown._prefix, fresh._prefix, rtol=1e-12)
        np.testing.assert_array_equal(grown._nonzero, fresh._nonzero)
        np.testing.assert_array_equal(grown._block_max, fresh._block_max)

    def test_window_peak_sees_spike_in_healed_partial_block(self):
        # 200 hours: block 1 (hours 128..255) is partial.  The append
        # drops a tall spike at hour 230 — inside block 1's remainder —
        # and grows the column far enough that block 1 becomes an
        # *interior* block of wide window queries (answered from
        # _block_max alone, the path a stale maximum would corrupt).
        values = np.ones(200)
        column = make_column(values)
        tail = np.ones(3 * _BLOCK)
        tail[30] = 77.0  # absolute hour 230, inside block 1
        column.append(tail)
        lo, hi = 0, column.hours
        assert column.window_peak(lo, hi) == 77.0
        # A window whose edges avoid block 1 entirely still sees it.
        assert column.window_peak(64, 5 * _BLOCK) == 77.0
        # Windows strictly before the appended range are untouched.
        assert column.window_peak(0, 200) == 1.0

    def test_repeated_appends_accumulate(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(0.0, 10.0, 1000)
        column = make_column(values[:100])
        offset = 100
        for size in (1, 27, _BLOCK, 300, 472):
            column.append(values[offset : offset + size])
            offset += size
        fresh = make_column(values)
        np.testing.assert_array_equal(column._block_max, fresh._block_max)
        for lo, hi in [(0, 1000), (50, 950), (128, 256), (700, 701)]:
            assert column.window_peak(lo, hi) == float(values[lo:hi].max())
            assert column.window_sum(lo, hi) == pytest.approx(
                float(values[lo:hi].sum())
            )


def run_streamed_app():
    """Drive a full stream with delta installs; return (daemon, app)."""
    runtime = build_runtime()
    daemon = runtime.stream_daemon(GEOS)
    daemon.tick()
    app = SiftWebApp(daemon.snapshot_study())
    daemon.app = app
    while not daemon.done:
        daemon.tick()
    return daemon, app


@pytest.fixture(scope="module")
def streamed():
    return run_streamed_app()


class TestDeltaInstallEquivalence:
    """Delta installs end byte-identical to a fresh full install."""

    def test_index_matches_fresh_install(self, streamed):
        daemon, app = streamed
        fresh = QueryIndex(daemon.snapshot_study())
        assert app.index.fingerprint == fresh.fingerprint
        assert app.index.geos == fresh.geos
        for geo in GEOS:
            grown = app.index.column(geo)
            rebuilt = fresh.column(geo)
            assert grown.hours == rebuilt.hours
            np.testing.assert_array_equal(grown._values, rebuilt._values)
            # Continued prefix sums match a fresh cumsum only up to
            # float associativity (see TestGeoColumnAppend).
            np.testing.assert_allclose(grown._prefix, rebuilt._prefix, rtol=1e-12)
            np.testing.assert_array_equal(grown._block_max, rebuilt._block_max)
            assert app.index.spike_table(geo).rows == fresh.spike_table(geo).rows
        assert app.index.outages.rows == fresh.outages.rows

    def test_served_bytes_match_fresh_app(self, streamed):
        daemon, app = streamed
        fresh_app = SiftWebApp(daemon.snapshot_study())
        for path in (
            "/api/summary",
            "/api/timeline?geo=US-TX",
            "/api/spikes?geo=US-CA",
            "/api/outages",
        ):
            assert (
                app.handle_request(path).body
                == fresh_app.handle_request(path).body
            )


class TestDeltaCacheRetention:
    """Only entries the tick touched are evicted."""

    def test_prefix_window_entry_survives_a_tick(self):
        runtime = build_runtime()
        daemon = runtime.stream_daemon(GEOS)
        daemon.tick()
        daemon.tick()
        app = SiftWebApp(daemon.snapshot_study())
        daemon.app = app
        # A timeline window entirely inside the already-served prefix.
        prefix_path = (
            "/api/timeline?geo=US-TX"
            "&start=2021-01-02T00:00:00&end=2021-01-06T00:00:00"
        )
        full_path = "/api/timeline?geo=US-TX"
        prefix_etag = app.handle_request(prefix_path).header("ETag")
        full_etag = app.handle_request(full_path).header("ETag")
        daemon.tick()
        # The prefix entry was retained: same cached bytes, same ETag —
        # a conditional request still revalidates to 304.
        revalidated = app.handle_request(
            prefix_path, headers={"If-None-Match": prefix_etag}
        )
        assert revalidated.status == 304
        # The unbounded window reaches into the appended hours: evicted.
        after = app.handle_request(full_path)
        assert after.header("ETag") != full_etag
        assert json.loads(after.body)["hours"] > 0

    def test_study_wide_payloads_are_evicted(self):
        runtime = build_runtime()
        daemon = runtime.stream_daemon(GEOS)
        daemon.tick()
        app = SiftWebApp(daemon.snapshot_study())
        daemon.app = app
        before = app.handle_request("/api/summary")
        daemon.tick()
        after = app.handle_request("/api/summary")
        assert after.header("ETag") != before.header("ETag")
        assert (
            json.loads(after.body)["window"]["end"]
            != json.loads(before.body)["window"]["end"]
        )


class TestStreamFeed:
    """The /api/stream ring carries the install and publish events."""

    def test_feed_reports_installs_and_spikes(self, streamed):
        daemon, app = streamed
        payload = json.loads(app.handle_request("/api/stream").body)
        events = payload["events"]
        assert payload["next_since"] == max(event["seq"] for event in events)
        kinds = {event["type"] for event in events}
        assert "DeltaInstalled" in kinds
        assert "SpikePublished" in kinds
        installs = [e for e in events if e["type"] == "DeltaInstalled"]
        # One delta install per tick after the bootstrap install.
        assert len(installs) == daemon.total_ticks - 1
        assert [e["tick"] for e in installs] == sorted(
            e["tick"] for e in installs
        )
        published = [e for e in events if e["type"] == "SpikePublished"]
        assert all(e["geo"].startswith("US-") for e in published)

    def test_since_filters_and_timeout_returns_promptly(self, streamed):
        _, app = streamed
        first = json.loads(app.handle_request("/api/stream").body)
        cursor = first["next_since"]
        empty = json.loads(
            app.handle_request(f"/api/stream?since={cursor}&timeout=0").body
        )
        assert empty["events"] == []
        assert empty["next_since"] == cursor
        middle = first["events"][len(first["events"]) // 2]["seq"]
        tail = json.loads(
            app.handle_request(f"/api/stream?since={middle}").body
        )
        assert all(event["seq"] > middle for event in tail["events"])
        assert len(tail["events"]) == sum(
            1 for event in first["events"] if event["seq"] > middle
        )
