"""Unit tests for context annotation (heavy hitters, ranking)."""

import pytest

from repro.core.context import (
    ContextConfig,
    HeavyHitterAnalyzer,
    SpikeAnnotator,
    rank_suggestions,
)
from repro.core.nlp import PhraseClusterer
from repro.core.spikes import Spike
from repro.errors import ConfigurationError
from repro.timeutil import utc
from repro.trends.records import RisingTerm


def spike(geo="US-TX"):
    return Spike(
        term="Internet outage",
        geo=geo,
        start=utc(2021, 2, 15, 10),
        peak=utc(2021, 2, 15, 12),
        end=utc(2021, 2, 16, 6),
        magnitude=90.0,
    )


class TestConfig:
    def test_rejects_bad_max_annotations(self):
        with pytest.raises(ConfigurationError):
            ContextConfig(max_annotations=0)

    def test_rejects_bad_coverage(self):
        with pytest.raises(ConfigurationError):
            ContextConfig(heavy_hitter_coverage=1.0)


class TestHeavyHitterAnalyzer:
    def test_head_covers_half(self):
        analyzer = HeavyHitterAnalyzer()
        # "Power outage" appears 6 times out of 10 suggestions total.
        for _ in range(6):
            analyzer.add(["Power outage"])
        analyzer.add(["Verizon", "Comcast", "AT&T", "Fastly"])
        heavy = analyzer.heavy_hitters(coverage=0.5)
        assert heavy == ("Power outage",)

    def test_coverage_grows_head(self):
        analyzer = HeavyHitterAnalyzer()
        analyzer.add(["a"] * 5 + ["b"] * 3 + ["c"] * 2)
        assert analyzer.heavy_hitters(0.5) == ("a",)
        assert analyzer.heavy_hitters(0.8) == ("a", "b")

    def test_empty(self):
        assert HeavyHitterAnalyzer().heavy_hitters(0.5) == ()

    def test_stats(self):
        analyzer = HeavyHitterAnalyzer()
        analyzer.add(["a", "b"])
        analyzer.add(["a"])
        assert analyzer.total_suggestions == 3
        assert analyzer.distinct_terms == 2
        assert analyzer.frequency("a") == 2
        assert analyzer.spikes_seen == 2

    def test_invalid_coverage(self):
        with pytest.raises(ConfigurationError):
            HeavyHitterAnalyzer().heavy_hitters(0.0)


class TestRankSuggestions:
    @pytest.fixture(scope="class")
    def clusterer(self):
        return PhraseClusterer()

    def test_variants_merge_weights(self, clusterer):
        rising = [
            RisingTerm("is verizon down", 100),
            RisingTerm("verizon outage", 150),
        ]
        ranked = rank_suggestions(rising, clusterer, frozenset())
        assert len(ranked) == 1
        assert ranked[0].concept == "Verizon"
        assert ranked[0].weight == 250

    def test_weight_ordering(self, clusterer):
        rising = [
            RisingTerm("fastly down", 80),
            RisingTerm("netflix down", 300),
        ]
        ranked = rank_suggestions(rising, clusterer, frozenset())
        assert [item.concept for item in ranked] == ["Netflix", "Fastly"]

    def test_heavy_hitters_promoted(self, clusterer):
        """Paper §3.4: heavy-hitters outrank heavier-weighted noise."""
        rising = [
            RisingTerm("netflix down", 900),
            RisingTerm("power outage", 100),
        ]
        ranked = rank_suggestions(rising, clusterer, frozenset({"Power outage"}))
        assert ranked[0].concept == "Power outage"
        assert ranked[0].is_heavy_hitter

    def test_empty(self, clusterer):
        assert rank_suggestions([], clusterer, frozenset()) == []


class TestSpikeAnnotator:
    def make_annotator(self, rising_by_geo, **config):
        fetches = []

        def fetch(geo, peak):
            fetches.append((geo, peak))
            return rising_by_geo.get(geo, ())

        annotator = SpikeAnnotator(
            fetch_rising=fetch,
            config=ContextConfig(**config) if config else None,
        )
        annotator.fetch_count = lambda: len(fetches)  # test hook
        return annotator

    def test_annotate_attaches_top_concepts(self):
        annotator = self.make_annotator(
            {
                "US-TX": (
                    RisingTerm("power outage", 5000),
                    RisingTerm("winter storm", 900),
                    RisingTerm("att outage", 400),
                    RisingTerm("netflix down", 100),
                )
            }
        )
        annotated = annotator.annotate(spike())
        assert annotated.annotations[0] == "Power outage"
        assert len(annotated.annotations) == 4  # default max_annotations

    def test_annotate_all_fetches_once_per_spike(self):
        annotator = self.make_annotator(
            {"US-TX": (RisingTerm("power outage", 100),)}
        )
        annotator.annotate_all([spike(), spike()], two_pass=True)
        assert annotator.fetch_count() == 2

    def test_two_pass_discovers_heavy_hitters(self):
        """A term dominating the suggestion mass must become heavy and
        therefore outrank higher-weighted one-off suggestions."""
        rising = (
            RisingTerm("frontier outage", 200),  # frequent but light
            RisingTerm("netflix down", 900),  # heavy weight, also frequent
        )
        annotator = self.make_annotator({"US-TX": rising})
        batch = [spike() for _ in range(5)]
        annotated = annotator.annotate_all(batch, two_pass=True)
        assert "Frontier" in annotator.heavy_hitters
        assert annotated[0].annotations  # ranked without error

    def test_empty_rising_yields_no_annotations(self):
        annotator = self.make_annotator({})
        annotated = annotator.annotate(spike())
        assert annotated.annotations == ()

    def test_max_annotations_respected(self):
        rising = tuple(
            RisingTerm(phrase, 100 + i)
            for i, phrase in enumerate(
                ["power outage", "winter storm", "att outage", "verizon outage"]
            )
        )
        annotator = self.make_annotator({"US-TX": rising}, max_annotations=2)
        annotated = annotator.annotate(spike())
        assert len(annotated.annotations) == 2
