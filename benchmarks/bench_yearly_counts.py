"""Section 1 / 4.1 text statistics: yearly spike counts and the
long-lasting-spike imbalance.

Paper: 25 494 spikes in 2020 vs 23 695 in 2021 (similar), but 50% more
long-lasting (>= 5 h) spikes in 2020 — driven by the California
wildfire season versus the (single) Texas storm cluster.
"""

from repro.analysis import (
    long_lasting_ratio,
    paper_vs_measured,
    yearly_counts,
)


def test_yearly_spike_counts(study, benchmark, emit):
    counts = benchmark(yearly_counts, study.spikes)
    ratio = long_lasting_ratio(study.spikes)
    emit(
        paper_vs_measured(
            [
                ("total spikes", "49 189 (paper scale)", study.spike_count),
                ("2020 spikes", "25 494 (paper scale)", counts[2020]),
                ("2021 spikes", "23 695 (paper scale)", counts[2021]),
                (
                    "2020/2021 count ratio",
                    f"{25494 / 23695:.2f}",
                    f"{counts[2020] / max(counts[2021], 1):.2f}",
                ),
                ("long (>=5h) 2020/2021 ratio", "~1.5", f"{ratio:.2f}"),
            ],
            title="Yearly statistics",
        ),
    )
    # Years are similar in volume.  At reduced scales the sampled-event
    # counts carry Poisson noise, so the band is generous; at paper
    # scale the ratio lands near the paper's 1.08.
    assert 0.6 <= counts[2020] / max(counts[2021], 1) <= 1.6
    # The long-spike population is small at reduced scales, so this
    # ratio is the noisiest statistic in the harness (paper-scale runs
    # land near 1.0-1.2; the paper reports ~1.5).
    assert ratio > 0.55
