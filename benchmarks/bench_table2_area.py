"""Table 2: the most extensive spikes by geographical footprint.

Paper anchors: the Akamai DNS outage tops the table (34 states), and
neither the Akamai nor the Youtube outage can be traced in the ANT
data — the affected services were unavailable yet ping-responsive.
"""

from repro.analysis import most_extensive_table, paper_vs_measured, render_table
from repro.ant import CrossValidationConfig, trace_spike
from repro.core.area import most_extensive


def test_table2_most_extensive(study, ant_dataset, benchmark, emit):
    rows = benchmark(most_extensive_table, study.outages, 9)
    table = render_table(
        ("spike time", "states", "outage (top annotation)"),
        [(r.label, r.footprint, r.name) for r in rows],
        title="Table 2 - most extensive outages by footprint",
    )

    def traced(date: str, state: str):
        candidates = [
            spike
            for spike in study.spikes.in_state(state)
            if spike.start.date().isoformat() == date
        ]
        if not candidates:
            return None
        best = max(candidates, key=lambda s: s.magnitude)
        # Tracing a *nationwide* outage demands a sizable block
        # footprint; a handful of coincidentally-dark blocks is not the
        # event being traced.
        config = CrossValidationConfig(min_blocks=8)
        return trace_spike(ant_dataset, best, config).confirmed

    akamai_ny = traced("2021-07-22", "NY")  # NY: no concurrent power event
    youtube_ny = traced("2020-11-11", "NY")
    top_names = {row.name for row in rows}
    emit(
        table,
        paper_vs_measured(
            [
                ("largest footprint", "34 states (Akamai)", rows[0].footprint),
                (
                    "broad events found",
                    "Akamai/Cloudflare/Facebook/Verizon/...",
                    ", ".join(sorted(top_names)[:5]),
                ),
                ("Akamai traced in ANT (NY)", "no (DNS outage)", akamai_ny),
                ("Youtube traced in ANT (NY)", "no (app outage)", youtube_ny),
            ]
        ),
    )
    assert rows[0].footprint >= 25
    assert akamai_ny is False
    assert youtube_ny is False
    # the Facebook lagged wave must NOT inflate the top footprint to 51
    assert max(outage.footprint for outage in most_extensive(study.outages, 1)) < 45
