"""Scenario-pack quality: per-family scoring of generated worlds.

The scenario foundry (DESIGN.md §11) compiles nine frozen
:class:`~repro.world.foundry.ScenarioSpec` families — cascading CDN
waves, BGP-leak partial reachability, slow brownouts, sharp outages,
correlated power+network events, non-US diurnal structure, night-trough
onsets, flapping recurrence, and DST-spanning windows — into ground
truth the unmodified pipeline must recover.  This bench runs every
registered ``(stitcher, averager)`` backend pair over every family and
writes ``BENCH_scenarios.json`` (layout in :mod:`benchmarks.perf`):
per family, spike precision, recall (all and strong impacts), mean
detection delay, and grouped-outage F1 against the generated truth.

``--check`` enforces the per-family floors below on the default
backend.  Every metric is a property of a seeded scenario — never of
the machine — so the floors are portable across CI hardware by
construction, and they hold at both smoke and full scale.

The JSON slots: ``baseline`` holds the default backend
(``overlap_ratio``/``mean``), ``current`` the best alternate across the
pack, so ``speedup`` reads as alternate-vs-default per metric (note
``*_delay_h`` improves *downward*).

Usage::

    PYTHONPATH=src python benchmarks/bench_scenario_pack.py
        [--smoke]   # halved window and occurrence counts (CI job)
        [--check]   # fail when the default backend drops below any
                    # per-family floor
        [--write]   # persist BENCH_scenarios.json even for smoke
"""

from __future__ import annotations

import argparse
import itertools
import sys

from repro.core.reconstruct import (
    DEFAULT_AVERAGER,
    DEFAULT_STITCHER,
    averager_names,
    stitcher_names,
)
from repro.world.foundry import PACK_SEED, scenario_pack, score_pack_family

try:  # runnable both as a script and under the benchmarks package
    from perf import write_bench
except ImportError:  # pragma: no cover
    from benchmarks.perf import write_bench

BENCH_NAME = "scenarios"
DEFAULT_BACKEND = f"{DEFAULT_STITCHER}/{DEFAULT_AVERAGER}"

#: Per-family floors for ``--check``, applied to the default backend.
#: ``recall_strong`` is the headline guarantee: no unambiguously
#: detectable (intensity >= 5) ground-truth impact may be lost.
#: Precision floors are calibrated per family because the families
#: deliberately span different privacy-blip regimes (a JP/GB-scale
#: geography runs at the paper's ~1.3 spikes/state/day, so most spikes
#: are blips by design); delay ceilings catch detection drifting late.
FAMILY_FLOORS: dict[str, dict[str, float]] = {
    "cascading_cdn": {
        "recall_strong": 1.0, "precision": 0.12,
        "max_delay_h": 1.0, "grouped_f1": 0.5,
    },
    "bgp_leak": {
        "recall_strong": 1.0, "precision": 0.12,
        "max_delay_h": 1.0, "grouped_f1": 0.6,
    },
    "slow_brownout": {
        # Brownout intensities sit below the strong threshold on
        # purpose; recall over *all* impacts is the meaningful bar, and
        # the long delay ceiling reflects the slow interest ramp.
        "recall": 1.0, "precision": 0.08, "max_delay_h": 8.0,
    },
    "sharp_outage": {
        "recall_strong": 1.0, "precision": 0.35, "max_delay_h": 0.5,
    },
    "correlated_power_network": {
        "recall_strong": 1.0, "precision": 0.10, "max_delay_h": 1.0,
    },
    "offshore_diurnal": {
        "recall_strong": 1.0, "precision": 0.005, "max_delay_h": 1.0,
    },
    "night_trough": {
        "recall_strong": 1.0, "precision": 0.04, "max_delay_h": 1.0,
    },
    "flapping": {
        "recall_strong": 1.0, "precision": 0.25, "max_delay_h": 3.0,
    },
    "dst_spanning": {
        "recall_strong": 1.0, "precision": 0.03, "max_delay_h": 1.0,
    },
}


def backend_combos() -> list[tuple[str, str]]:
    """Every registered (stitcher, averager) pair, default first."""
    return sorted(
        itertools.product(stitcher_names(), averager_names()),
        key=lambda pair: pair != (DEFAULT_STITCHER, DEFAULT_AVERAGER),
    )


def family_metrics(score) -> dict:
    """One family's scorecard as the flat metrics the floors read."""
    spikes = score.spikes
    outages = score.outages
    return {
        "precision": round(spikes.precision, 4),
        "recall": round(spikes.recall, 4),
        "recall_strong": round(spikes.recall_strong, 4),
        "delay_h": round(spikes.mean_detection_delay_hours, 4),
        "grouped_f1": round(outages.f1, 4),
        "spikes": spikes.total_spikes,
        "impacts": spikes.total_impacts,
    }


def run_bench(smoke: bool) -> dict[str, dict[str, dict]]:
    """Sweep every backend over every family.

    Returns ``{"stitcher/averager": {family: metrics}}``.
    """
    pack = scenario_pack(smoke=smoke)
    results: dict[str, dict[str, dict]] = {}
    for stitcher, averager in backend_combos():
        per_family: dict[str, dict] = {}
        for name, spec in pack.items():
            score = score_pack_family(
                spec, PACK_SEED, stitcher=stitcher, averager=averager
            )
            per_family[name] = family_metrics(score)
        results[f"{stitcher}/{averager}"] = per_family
    return results


def flatten(per_family: dict[str, dict]) -> dict:
    """One backend's per-family metrics as flat ``write_bench`` keys."""
    flat: dict = {}
    for family, metrics in per_family.items():
        for key in ("precision", "recall", "recall_strong", "delay_h", "grouped_f1"):
            flat[f"{family}_{key}"] = metrics[key]
    return flat


def best_alternate(results: dict[str, dict[str, dict]]) -> str:
    """The strongest non-default backend across the whole pack."""

    def pack_key(name: str) -> tuple[float, float, float]:
        rows = results[name].values()
        return (
            sum(row["recall_strong"] for row in rows),
            sum(row["grouped_f1"] for row in rows),
            sum(row["precision"] for row in rows),
        )

    alternates = [name for name in results if name != DEFAULT_BACKEND]
    return max(alternates, key=pack_key)


def check_floors(results: dict[str, dict[str, dict]]) -> int:
    """Apply the per-family floors; return a process exit code."""
    failed = False
    default = results[DEFAULT_BACKEND]
    for family, floors in FAMILY_FLOORS.items():
        metrics = default[family]
        for key, bound in floors.items():
            if key == "max_delay_h":
                value, ok = metrics["delay_h"], metrics["delay_h"] <= bound
                bar = f"ceiling {bound:g}"
            else:
                value, ok = metrics[key], metrics[key] >= bound
                bar = f"floor {bound:g}"
            failed = failed or not ok
            verdict = "ok" if ok else "REGRESSION"
            print(f"check: {family} {key} {value:.3f} ({bar}) -> {verdict}")
    return 1 if failed else 0


def print_results(results: dict[str, dict[str, dict]]) -> None:
    for backend, per_family in results.items():
        marker = " (default)" if backend == DEFAULT_BACKEND else ""
        print(f"-- {backend}{marker} --")
        for family, metrics in per_family.items():
            line = ", ".join(f"{key}={value}" for key, value in metrics.items())
            print(f"{family}: {line}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="halved pack scale (CI job)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail when the default backend drops below any per-family floor",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="persist results even for a smoke run (CI artifact upload)",
    )
    args = parser.parse_args(argv)

    results = run_bench(smoke=args.smoke)
    print_results(results)
    exit_code = check_floors(results) if args.check else 0

    # Smoke runs only persist on request: the committed numbers come
    # from the full pack, but CI uploads its fresh measurements.
    if args.write or not args.smoke:
        champion = best_alternate(results)
        default_flat = flatten(results[DEFAULT_BACKEND])
        champion_flat = flatten(results[champion])
        pack = scenario_pack(smoke=args.smoke)
        extra = {
            "smoke": args.smoke,
            "backends": results,
            "default_backend": DEFAULT_BACKEND,
            "best_alternate": champion,
            "note": "baseline = default backend, current = best alternate "
            "across the pack; *_delay_h improves downward",
            "workload": {
                "pack_seed": PACK_SEED,
                "families": {
                    name: {
                        "window": [
                            spec.start.isoformat(),
                            spec.end.isoformat(),
                        ],
                        "geos": list(spec.geos),
                        "events": len(spec.compile(PACK_SEED).events),
                        "impacts": spec.compile(PACK_SEED).total_impacts,
                    }
                    for name, spec in pack.items()
                },
            },
        }
        write_bench(BENCH_NAME, default_flat, as_baseline=True, extra=extra)
        write_bench(BENCH_NAME, champion_flat)
        print(f"wrote BENCH_{BENCH_NAME}.json")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
