"""Figure 4: daily distribution of all spikes.

The paper's horizontal-bar figure showing fewer outages on weekends
(conjectured: less service-side human error on Saturday/Sunday).
"""

from repro.analysis import daily_distribution, paper_vs_measured, render_bars


def test_fig4_daily_distribution(study, benchmark, emit):
    dist = benchmark(daily_distribution, study.spikes)
    labels = [name for name, _ in dist.as_rows()]
    values = [fraction for _, fraction in dist.as_rows()]
    emit(
        render_bars(
            labels, values, title="Fig. 4 - daily distribution of all spikes"
        ),
        paper_vs_measured(
            [
                ("weekday day share", "~15%", f"{dist.weekday_mean:.1%}"),
                ("weekend day share", "~12.5%", f"{dist.weekend_mean:.1%}"),
                ("weekday/weekend ratio", "> 1", f"{dist.weekend_dip:.2f}"),
            ]
        ),
    )
    assert dist.weekend_dip > 1.0
    assert abs(dist.fractions.sum() - 1.0) < 1e-9
