"""Cross-validation of SIFT spikes against the ANT data set (§4 / §6).

The paper's qualitative finding, quantified over the whole study: ANT
confirms network-level outages (power, fixed-line ISP) but misses what
users still experience as "the Internet is down" — mobile-carrier,
DNS/CDN, and application failures.
"""

from repro.analysis import paper_vs_measured, render_table
from repro.ant import cross_validate
from repro.world.events import Cause


def test_cross_validation_by_cause(study, environment, ant_dataset, benchmark, emit):
    # Take the most impactful spikes and attribute each to its
    # ground-truth event (by state/time overlap) for a per-cause view.
    top = study.spikes.top_by_duration(300)
    report = benchmark.pedantic(
        cross_validate, args=(ant_dataset, top), rounds=1, iterations=1
    )

    from repro.timeutil import TimeWindow

    per_cause: dict[str, list[bool]] = {}
    for result in report.results:
        spike = result.spike
        window = TimeWindow(spike.start, spike.end)
        events = [
            event
            for event in environment.scenario.events_in_state(spike.state)
            if event.impact_on(spike.state).window.overlaps(window)
        ]
        if not events:
            continue
        event = max(events, key=lambda e: e.impact_on(spike.state).intensity)
        per_cause.setdefault(event.cause.value, []).append(result.confirmed)

    rows = [
        (
            cause,
            len(outcomes),
            f"{sum(outcomes) / len(outcomes):.0%}",
        )
        for cause, outcomes in sorted(per_cause.items())
    ]
    visible = [
        confirmed
        for cause, outcomes in per_cause.items()
        for confirmed in outcomes
        if Cause(cause).is_power_related or cause == "isp"
    ]
    invisible = [
        confirmed
        for cause, outcomes in per_cause.items()
        for confirmed in outcomes
        if cause in ("mobile", "cloud", "application")
    ]
    visible_rate = sum(visible) / len(visible) if visible else 0.0
    invisible_rate = sum(invisible) / len(invisible) if invisible else 0.0
    emit(
        render_table(
            ("ground-truth cause", "top spikes", "ANT confirmation rate"),
            rows,
            title="Cross-validation: ANT confirmation by cause",
        ),
        paper_vs_measured(
            [
                ("power/ISP spikes confirmed", "mostly", f"{visible_rate:.0%}"),
                (
                    "mobile/cloud/app spikes confirmed",
                    "mostly missed (T-Mobile, Akamai, Youtube)",
                    f"{invisible_rate:.0%}",
                ),
            ]
        ),
    )
    assert visible_rate > invisible_rate + 0.3
