"""Implementation benchmark: fetcher-fleet scaling under rate limits.

Two angles on the paper's collection module:

* **Virtual time** — GT's per-IP rate limiting bottlenecks a single
  crawler; spreading the workload over fetcher units behind separate
  IPs restores throughput.  Measured on the simulated clock, where the
  only cost is rate-limit backoff.
* **Wall clock** — with network round-trips simulated as real latency,
  parallel dispatch through the scheduler's fetcher leases overlaps
  the waits.  Serial vs. parallel crawls of the same workload for
  fleets of 1/2/4/8 units; four workers must be at least twice as fast
  as one.
"""

import time

from repro.analysis import render_table
from repro.collection import CollectionManager, WorkItem
from repro.timeutil import utc, weekly_frames, TimeWindow
from repro.trends.ratelimit import RateLimitConfig, SimulatedClock
from repro.trends.service import TrendsConfig, TrendsService
from repro.world.population import SearchPopulation
from repro.world.scenarios import Scenario, ScenarioConfig


def build_population() -> SearchPopulation:
    scenario = Scenario.build(
        ScenarioConfig(
            start=utc(2021, 1, 1), end=utc(2021, 3, 1), background_scale=0.0
        )
    )
    return SearchPopulation(scenario)


def build_workload(geos: tuple[str, ...]) -> list[WorkItem]:
    window = TimeWindow(utc(2021, 1, 1), utc(2021, 2, 26))
    return [
        WorkItem("Internet outage", geo, frame, include_rising=False)
        for geo in geos
        for frame in weekly_frames(window)
    ]


def crawl_time(population, fetchers: int) -> tuple[float, int]:
    clock = SimulatedClock()
    service = TrendsService(
        population,
        TrendsConfig(rate_limit=RateLimitConfig(burst=5, refill_per_second=0.5)),
        clock=clock,
    )
    manager = CollectionManager(service, sleep=clock.sleep, fetcher_count=fetchers)
    workload = build_workload(("US-TX", "US-CA", "US-NY", "US-FL"))
    report = manager.prefetch(workload)
    return clock(), report.fetched


def wall_clock_crawl(population, fetchers: int, max_workers: int, latency: float):
    """Crawl a fresh workload with simulated per-request round-trips."""
    service = TrendsService(
        population,
        TrendsConfig(
            rate_limit=RateLimitConfig(burst=100_000, refill_per_second=1e6)
        ),
    )
    manager = CollectionManager(
        service, sleep=time.sleep, fetcher_count=fetchers, latency=latency
    )
    workload = build_workload(
        ("US-TX", "US-CA", "US-NY", "US-FL", "US-WA", "US-IL", "US-GA", "US-OH")
    )
    return manager.prefetch(workload, max_workers=max_workers)


def test_fleet_scaling(benchmark, emit):
    population = build_population()
    rows = []
    times = {}
    for fetchers in (1, 2, 4, 8):
        virtual, fetched = crawl_time(population, fetchers)
        times[fetchers] = virtual
        rows.append((fetchers, fetched, f"{virtual:.0f}s"))

    benchmark.pedantic(
        crawl_time, args=(population, 4), rounds=1, iterations=1
    )
    emit(
        render_table(
            ("fetcher units", "frames crawled", "virtual crawl time"),
            rows,
            title="Collection: fleet scaling under per-IP rate limiting",
        ),
    )
    # More IPs -> proportionally less time stuck in rate-limit backoff.
    assert times[4] < times[1] / 2
    assert times[8] <= times[4]


def test_parallel_dispatch_speedup(benchmark, emit):
    population = build_population()
    latency = 0.008
    rows = []
    elapsed = {}
    for fleet in (1, 2, 4, 8):
        report = wall_clock_crawl(population, fleet, max_workers=fleet, latency=latency)
        elapsed[fleet] = report.elapsed_seconds
        rows.append(
            (
                fleet,
                report.fetched,
                f"{report.elapsed_seconds:.2f}s",
                f"{report.frames_per_second:.0f}",
                f"{elapsed[1] / report.elapsed_seconds:.1f}x",
            )
        )

    benchmark.pedantic(
        wall_clock_crawl,
        args=(population, 4, 4, latency),
        rounds=1,
        iterations=1,
    )
    emit(
        render_table(
            ("workers", "frames crawled", "wall clock", "frames/s", "speedup"),
            rows,
            title="Collection: serial vs. parallel dispatch "
            f"({latency * 1000:.0f} ms simulated round-trip)",
        ),
    )
    # Overlapped round-trips: four workers at least halve the crawl.
    assert elapsed[4] < elapsed[1] / 2
