"""Implementation benchmark: fetcher-fleet scaling under rate limits.

The paper's collection module exists because GT's IP-based rate
limiting bottlenecks a single crawler; spreading the workload over
fetcher units behind separate IPs restores throughput.  This benchmark
crawls a fixed workload with fleets of 1/2/4/8 units against a tightly
rate-limited service and reports the virtual crawl time.
"""

from repro.analysis import render_table
from repro.collection import CollectionManager, WorkItem
from repro.timeutil import utc, weekly_frames, TimeWindow
from repro.trends.ratelimit import RateLimitConfig, SimulatedClock
from repro.trends.service import TrendsConfig, TrendsService
from repro.world.population import SearchPopulation
from repro.world.scenarios import Scenario, ScenarioConfig


def crawl_time(population, fetchers: int) -> tuple[float, int]:
    clock = SimulatedClock()
    service = TrendsService(
        population,
        TrendsConfig(rate_limit=RateLimitConfig(burst=5, refill_per_second=0.5)),
        clock=clock,
    )
    manager = CollectionManager(service, sleep=clock.sleep, fetcher_count=fetchers)
    window = TimeWindow(utc(2021, 1, 1), utc(2021, 2, 26))
    workload = [
        WorkItem("Internet outage", geo, frame, include_rising=False)
        for geo in ("US-TX", "US-CA", "US-NY", "US-FL")
        for frame in weekly_frames(window)
    ]
    report = manager.prefetch(workload)
    return clock(), report.fetched


def test_fleet_scaling(benchmark, emit):
    scenario = Scenario.build(
        ScenarioConfig(
            start=utc(2021, 1, 1), end=utc(2021, 3, 1), background_scale=0.0
        )
    )
    population = SearchPopulation(scenario)
    rows = []
    times = {}
    for fetchers in (1, 2, 4, 8):
        virtual, fetched = crawl_time(population, fetchers)
        times[fetchers] = virtual
        rows.append((fetchers, fetched, f"{virtual:.0f}s"))

    benchmark.pedantic(
        crawl_time, args=(population, 4), rounds=1, iterations=1
    )
    emit(
        render_table(
            ("fetcher units", "frames crawled", "virtual crawl time"),
            rows,
            title="Collection: fleet scaling under per-IP rate limiting",
        ),
    )
    # More IPs -> proportionally less time stuck in rate-limit backoff.
    assert times[4] < times[1] / 2
    assert times[8] <= times[4]
