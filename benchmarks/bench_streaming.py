"""Streaming perf bench: per-tick latency and end-to-end time-to-detect.

The batch pipeline re-crawls, re-stitches and re-detects the whole
study to incorporate one new week of data; the streaming daemon
(DESIGN.md §12) pays only for the newest frame, a bounded tail
re-stitch, and a delta snapshot install.  This bench measures both
sides of that trade and writes them to ``BENCH_streaming.json``:

* ``tick_latency_*_ms`` — wall-clock of one daemon tick (crawl the
  newest frame for every geography, fold, feed, tail re-walk, delta
  install into a live web app), sampled late in the stream where the
  incremental advantage matters (>75% of the window ingested), plus
  the crawl-free ``tick_process_*_ms`` variant;
* ``rebuild_latency_*_ms`` — what the same update costs as a full
  rebuild: a batch ``run_study`` over the identical prefix window plus
  a whole-index ``install_study``.  The rebuild runs against the
  daemon's own collection layer, so its crawl is **cache-hot** — the
  comparison charges the rebuild nothing for refetching a hundred
  weeks of history, which is the conservative direction;
* ``speedup_incremental_vs_rebuild`` — the smallest rebuild/tick ratio
  across the sampled late ticks (the committed floor: >=10x on the
  paper-shape workload, >=3x for the CI smoke slice).  Both sides are
  measured crawl-free: the cache-hot rebuild pays (almost) nothing to
  fetch, so the incremental side's cold crawl of the newest frame —
  a cost *any* strategy pays exactly once per new week — is
  subtracted (``TickResult.fetch_seconds``) to keep the ratio about
  processing, not about who fetched first;
* ``time_to_detect_*_h`` — end-to-end detection lag in simulated
  hours: from a ground-truth impact's onset to the end of the weekly
  frame whose tick first *published* a matching spike.  This includes
  the structural lag of weekly frames — it is the latency a live
  operator would actually see;
* ``final_fingerprint_*`` — the correctness bar: after the final tick
  the streamed study must be byte-identical to the batch study.

Usage::

    PYTHONPATH=src python benchmarks/bench_streaming.py [--smoke]
        [--as-baseline]   # record the pre-change numbers
        [--check]         # fail when the speedup floor or the
                          # fingerprint-identity bar is missed
        [--write]         # persist a smoke run (CI artifact upload)
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

from repro.core.averaging import AveragingConfig
from repro.core.pipeline import SiftConfig
from repro.runtime import ALL_GEOS, StudyRuntime
from repro.timeutil import utc
from repro.web import SiftWebApp

try:  # runnable both as a script and under the benchmarks package
    from perf import read_bench, write_bench
except ImportError:  # pragma: no cover
    from benchmarks.perf import read_bench, write_bench

BENCH_NAME = "streaming"

#: The paper-shape workload: all 51 geographies over the full two-year
#: study window (122 weekly ticks).  Low background scale keeps the
#: bench measuring the pipeline, not event generation; annotation off
#: because it is a global two-pass stage both sides defer to the end.
FULL_START = utc(2020, 1, 1)
FULL_END = utc(2022, 1, 1)
FULL_SCALE = 0.05
FULL_SEED = 20221025

#: CI smoke slice: 4 timezone-diverse geographies, 6 weekly ticks, at
#: the same sparse background scale as the full workload (a dense
#: spike-every-hour world would make every tick re-render every spike
#: table, which is not the regime the incremental path targets).
SMOKE_GEOS = ("US-TX", "US-CA", "US-AZ", "US-NY")
SMOKE_START = utc(2021, 1, 1)
SMOKE_END = utc(2021, 2, 7)
SMOKE_SCALE = 0.05
SMOKE_SEED = 11

#: Fixed fetch rounds per frame (streaming needs min_rounds ==
#: max_rounds for byte-identity with batch; see repro.streaming).
ROUNDS = 2

#: Speedup floors --check enforces: the tentpole target on the
#: paper-shape workload, a portable floor for the tiny CI slice.
FULL_FLOOR = 10.0
SMOKE_FLOOR = 3.0

#: A published spike matches a ground-truth impact when its peak falls
#: within this many hours of the impact's onset.
MATCH_HORIZON_HOURS = 48.0


def build_runtime(smoke: bool) -> StudyRuntime:
    return StudyRuntime.build(
        background_scale=SMOKE_SCALE if smoke else FULL_SCALE,
        seed=SMOKE_SEED if smoke else FULL_SEED,
        start=SMOKE_START if smoke else FULL_START,
        end=SMOKE_END if smoke else FULL_END,
        sift=SiftConfig(
            annotate=False,
            averaging=AveragingConfig(min_rounds=ROUNDS, max_rounds=ROUNDS),
        ),
        checkpoint=False,
    )


def rebuild_latency(runtime: StudyRuntime, geos, window, app: SiftWebApp) -> float:
    """Seconds for the full-rebuild path over one prefix window.

    Runs against *runtime*'s collection layer, which the daemon has
    already crawled — the rebuild's fetches are all cache hits, so the
    measured cost is pure pipeline + whole-index install (charging the
    rebuild nothing for the refetch it would actually also pay).
    """
    started = time.perf_counter()
    study = runtime.sift.run_study(geos, window)
    app.install_study(study)
    return time.perf_counter() - started


def time_to_detect(runtime: StudyRuntime, geos, publications) -> dict:
    """Detection lag from impact onset to spike publication, in sim-hours.

    *publications* maps each tick to (frame end, published spikes).  An
    impact counts as detected at the first tick that published a spike
    in its geography peaking within :data:`MATCH_HORIZON_HOURS` of the
    onset; the lag runs from onset to that tick's frame end — the
    simulated moment the spike became visible to a watcher.
    """
    geo_set = set(geos)
    delays: list[float] = []
    total = 0
    for event in runtime.scenario.events:
        for impact in event.impacts:
            geo = f"US-{impact.state}"
            if geo not in geo_set:
                continue
            total += 1
            best: float | None = None
            for frame_end, spikes in publications:
                if frame_end <= impact.start:
                    continue
                for spike in spikes:
                    if spike.geo != geo:
                        continue
                    offset = (spike.peak - impact.start).total_seconds() / 3600.0
                    if 0 <= offset <= MATCH_HORIZON_HOURS:
                        best = (frame_end - impact.start).total_seconds() / 3600.0
                        break
                if best is not None:
                    break
            if best is not None:
                delays.append(best)
    if not delays:
        return {"matched_impacts": 0, "total_impacts": total}
    return {
        "matched_impacts": len(delays),
        "total_impacts": total,
        "time_to_detect_mean_h": round(statistics.fmean(delays), 1),
        "time_to_detect_median_h": round(statistics.median(delays), 1),
    }


def run_bench(smoke: bool) -> dict:
    geos = SMOKE_GEOS if smoke else ALL_GEOS
    runtime = build_runtime(smoke)
    daemon = runtime.stream_daemon(geos)
    total = daemon.total_ticks
    # Rebuild comparisons sample the late stream (>75% ingested), where
    # the incremental advantage is the claim under test.
    late_start = (3 * total) // 4
    sample_ticks = sorted({late_start, (late_start + total - 1) // 2, total - 1})
    sample_ticks = [tick for tick in sample_ticks if late_start <= tick < total]

    app: SiftWebApp | None = None
    late_latencies: list[float] = []
    late_process: list[float] = []
    publications = []
    speedups: dict[str, float] = {}
    rebuild_ms: dict[str, float] = {}

    while not daemon.done:
        result = daemon.tick()
        tick = result.tick
        if app is None:
            # First tick bootstraps the app; deltas install from then on.
            app = SiftWebApp(daemon.snapshot_study())
            daemon.app = app
        process_s = result.elapsed_seconds - result.fetch_seconds
        if tick >= late_start:
            late_latencies.append(result.elapsed_seconds)
            late_process.append(process_s)
        publications.append((result.frame.end, result.published))
        if tick in sample_ticks:
            rebuild_s = rebuild_latency(
                runtime, geos, daemon.prefix_window(tick), app
            )
            ingested = (tick + 1) / total
            key = f"{round(100 * ingested)}pct"
            rebuild_ms[key] = round(rebuild_s * 1000, 1)
            speedups[key] = round(rebuild_s / process_s, 1)
            print(
                f"tick {tick + 1}/{total} ({key} ingested): incremental "
                f"{result.elapsed_seconds * 1000:.1f} ms "
                f"({process_s * 1000:.1f} ms crawl-free), rebuild "
                f"{rebuild_s * 1000:.1f} ms -> {speedups[key]:.1f}x"
            )

    streamed = daemon.snapshot_study()
    # The batch side of the correctness bar: a fresh runtime (same
    # config, cold caches) over the full window.
    batch = build_runtime(smoke).run_study(geos)
    detect = time_to_detect(runtime, geos, publications)

    metrics = {
        "ticks": total,
        "geo_count": len(geos),
        "rounds": ROUNDS,
        "tick_latency_p50_ms": round(
            statistics.median(late_latencies) * 1000, 1
        ),
        "tick_latency_max_ms": round(max(late_latencies) * 1000, 1),
        "tick_process_p50_ms": round(
            statistics.median(late_process) * 1000, 1
        ),
        "rebuild_latency_ms": rebuild_ms,
        "speedup_incremental_vs_rebuild": min(speedups.values()),
        "speedup_by_ingested": speedups,
        "final_fingerprint_streamed": streamed.fingerprint(),
        "final_fingerprint_batch": batch.fingerprint(),
        "fingerprints_match": streamed.fingerprint() == batch.fingerprint(),
        "smoke": smoke,
    }
    metrics.update(detect)
    return metrics


def check_regression(metrics: dict) -> int:
    """Enforce the floors; compare against committed results."""
    exit_code = 0
    if not metrics["fingerprints_match"]:
        print(
            f"check: FINGERPRINT MISMATCH streamed "
            f"{metrics['final_fingerprint_streamed']} != batch "
            f"{metrics['final_fingerprint_batch']}"
        )
        exit_code = 1
    floor = SMOKE_FLOOR if metrics["smoke"] else FULL_FLOOR
    speedup = metrics["speedup_incremental_vs_rebuild"]
    verdict = "ok" if speedup >= floor else "REGRESSION"
    print(
        f"check: speedup_incremental_vs_rebuild {speedup:.1f}x, "
        f"floor {floor:.1f}x -> {verdict}"
    )
    if speedup < floor:
        exit_code = 1
    committed = read_bench(BENCH_NAME)
    if committed and "current" in committed and not metrics["smoke"]:
        committed_speedup = committed["current"].get(
            "speedup_incremental_vs_rebuild"
        )
        if committed_speedup:
            print(
                f"check: committed speedup {committed_speedup:.1f}x "
                f"(informational)"
            )
    return exit_code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny CI slice")
    parser.add_argument(
        "--as-baseline",
        action="store_true",
        help="record results as the pre-change baseline",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail when the speedup floor or fingerprint identity is missed",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="persist results even for a smoke run (CI artifact upload)",
    )
    args = parser.parse_args(argv)

    metrics = run_bench(smoke=args.smoke)
    for key, value in metrics.items():
        print(f"{key}: {value}")

    exit_code = check_regression(metrics) if args.check else 0
    if args.as_baseline or args.write or not args.smoke:
        geos = SMOKE_GEOS if args.smoke else ALL_GEOS
        start = SMOKE_START if args.smoke else FULL_START
        end = SMOKE_END if args.smoke else FULL_END
        weeks = int((end - start).total_seconds() // (7 * 24 * 3600))
        write_bench(
            BENCH_NAME,
            metrics,
            as_baseline=args.as_baseline,
            workload_shape={
                "geos": len(geos),
                "weeks": weeks,
                "terms": 1,
                "rounds": ROUNDS,
            },
            extra={
                "workload": {
                    "start": start.isoformat(),
                    "end": end.isoformat(),
                    "background_scale": SMOKE_SCALE if args.smoke else FULL_SCALE,
                    "geo_count": len(geos),
                    "annotate": False,
                    "rebuild_baseline": "batch run_study over the same "
                    "prefix window + whole-index install_study, cache-hot "
                    "crawl (conservative: charges the rebuild no refetch)",
                },
            },
        )
        print(f"wrote BENCH_{BENCH_NAME}.json")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
