"""Ablation: overlap stitching vs naive concatenation (paper §3.2).

GT indexes every frame against its own maximum, so naive concatenation
destroys relative spike magnitudes across frames.  This ablation plants
two spikes with a known 3:1 magnitude ratio several weeks apart and
measures how well each reconstruction recovers it — for *every*
stitcher in the registry (DESIGN.md §9), so a new backend is covered
the moment it registers.
"""

import numpy as np
import pytest

from repro.analysis import paper_vs_measured
from repro.core.reconstruct import make_stitcher, stitcher_names
from repro.core.stitching import naive_concatenation
from repro.timeutil import TimeWindow, utc, weekly_frames
from repro.trends.records import TimeFrameRequest, TimeFrameResponse
from repro.trends.sampling import index_frame

SMALL_AT = 200
BIG_AT = 1200
TRUE_RATIO = 3.0


def synthetic_frames():
    rng = np.random.default_rng(42)
    hours = 1500
    signal = np.where(rng.random(hours) < 0.35, rng.integers(3, 9, hours), 0).astype(
        float
    )
    signal[SMALL_AT] = 50.0
    signal[BIG_AT] = 50.0 * TRUE_RATIO
    frames = []
    for piece in weekly_frames(TimeWindow(utc(2021, 1, 1), utc(2021, 3, 4, 12))):
        lo = int((piece.start - utc(2021, 1, 1)).total_seconds() // 3600)
        hi = lo + piece.hours
        request = TimeFrameRequest(term="Internet outage", geo="US-TX", window=piece)
        frames.append(
            TimeFrameResponse(
                request=request,
                values=index_frame(signal[lo:hi]),
                rising=(),
                sample_round=0,
            )
        )
    return frames


def stitch_with(name: str, frames):
    """Reconstruct *frames* with the registry backend *name*."""
    stitcher = make_stitcher(name)
    for frame in frames:
        stitcher.feed(frame)
    return stitcher.finalize()


@pytest.mark.parametrize("name", stitcher_names())
def test_stitching_vs_naive(name, benchmark, emit):
    frames = synthetic_frames()
    stitched, report = benchmark(stitch_with, name, frames)
    naive = naive_concatenation(frames)

    stitched_ratio = stitched.values[BIG_AT] / stitched.values[SMALL_AT]
    naive_ratio = naive.values[BIG_AT] / naive.values[SMALL_AT]
    emit(
        paper_vs_measured(
            [
                ("true magnitude ratio", TRUE_RATIO, "-"),
                (f"{name} estimate", "~3", f"{stitched_ratio:.2f}"),
                ("naive estimate", "~1 (broken)", f"{naive_ratio:.2f}"),
                ("frames", len(frames), report.frames),
                ("carried (silent) overlaps", "few", report.carried_ratios),
                ("ratio spread (live ratios)", "-", f"{report.ratio_spread:.2f}"),
            ],
            title=f"Ablation: {name} stitching vs naive concatenation",
        ),
    )
    assert abs(stitched_ratio - TRUE_RATIO) < abs(naive_ratio - TRUE_RATIO)
    assert stitched_ratio > 1.8
    assert naive_ratio < 1.5
