"""Hot-path perf bench: frames/sec, rising/sec, and study wall-clock.

The paper's crawl serves ~160k hourly frames (51 states x six averaging
rounds), so the simulated service's per-frame cost bounds every full
study.  This bench measures the three rates that matter and writes them
to ``BENCH_service.json`` (see :mod:`benchmarks.perf` for the layout):

* ``frames_per_sec`` — full ``TrendsService.fetch`` calls with rising
  suggestions enabled, over a rotation of geographies, weekly frames
  and sample rounds;
* ``rising_per_sec`` — the rising-suggestion computation alone;
* ``study_serial_s`` / ``study_workers4_s`` — wall-clock of a complete
  SIFT study (crawl -> stitch -> detect -> annotate) over the bench
  geographies, serial and on four workers;
* ``big_study_serial_s`` / ``big_study_process4_s`` and
  ``speedup_process_vs_serial`` — the paper-scale workload (all 51
  geographies over the full two-year window; annotation off, since the
  sharded stage is what the process executor parallelizes) serial vs
  four geography-sharded worker processes.  On a single-core machine
  the comparison is skipped (recorded as ``null`` plus a reason):
  processes time-slicing one CPU measure only sharding overhead;
* ``scalar_ref_frames_per_sec`` — the same fetch workload served by the
  frozen scalar reference implementation (:mod:`repro._reference`), and
  ``speedup_vs_scalar`` — the hardware-independent ratio CI guards.

The workload shape (geos × weeks × terms) is recorded next to the
metrics, so numbers taken on different workload sizes are never
silently compared (see :func:`benchmarks.perf.write_bench`).

Usage::

    PYTHONPATH=src python benchmarks/bench_service_hotpath.py [--smoke]
        [--as-baseline]   # record the pre-change numbers
        [--check]         # fail when speedup_vs_scalar regressed >30%
                          # against the committed BENCH_service.json,
                          # or (on 4+ cores) when the process executor
                          # is not >=2x serial on the big workload
"""

from __future__ import annotations

import argparse
import sys

from repro._reference import ReferencePopulation, reference_fetch
from repro.rand import substream
from repro.timeutil import TimeWindow, utc, weekly_frames
from repro.trends.ratelimit import RateLimitConfig
from repro.trends.records import TimeFrameRequest
from repro.trends.rising import rising_terms
from repro.trends.service import TrendsConfig, TrendsService
from repro.world.population import SearchPopulation
from repro.world.scenarios import Scenario, ScenarioConfig

try:  # runnable both as a script and under the benchmarks package
    from perf import measure_rate, measure_seconds, read_bench, write_bench
except ImportError:  # pragma: no cover
    from benchmarks.perf import measure_rate, measure_seconds, read_bench, write_bench

BENCH_NAME = "service"

#: Default scenario: two months around the Texas winter storm, the
#: same world the test suite exercises, over a timezone-diverse
#: geography rotation (Eastern/Central/Mountain/Pacific/Arizona/
#: Hawaii/Alaska are all represented).
SCENARIO_START = utc(2021, 1, 1)
SCENARIO_END = utc(2021, 3, 1)
BACKGROUND_SCALE = 0.3
GEOS = (
    "US-TX", "US-CA", "US-NY", "US-FL", "US-AZ", "US-HI",
    "US-AK", "US-CO", "US-IL", "US-WA", "US-GA", "US-MI",
)
SMOKE_GEOS = ("US-TX", "US-CA", "US-AZ", "US-NY")

#: Frames start one week into the scenario so every frame has a full
#: preceding window for the rising computation.
FRAME_SPAN = TimeWindow(utc(2021, 1, 8), utc(2021, 2, 19))

#: Regression gate: fail CI when the measured speedup-vs-scalar drops
#: below this fraction of the committed value (the "30% frames/sec
#: regression" budget, expressed hardware-independently).
CHECK_RATIO = 0.7

#: The scaled study workload: every geography of the paper's study over
#: its full two-year window.  The background scale is kept low so the
#: bench measures the pipeline, not event generation; annotation is off
#: because the process executor parallelizes the per-geography stage
#: and the (serial, parent-side) annotation crawl would Amdahl-cap the
#: measured speedup.
BIG_START = utc(2020, 1, 1)
BIG_END = utc(2022, 1, 1)
BIG_SCALE = 0.05
#: Smoke variant: a timezone-diverse 16-geography slice over 6 months.
BIG_SMOKE_END = utc(2020, 7, 1)
BIG_SMOKE_GEOS = (
    "US-TX", "US-CA", "US-NY", "US-FL", "US-AZ", "US-HI",
    "US-AK", "US-CO", "US-IL", "US-WA", "US-GA", "US-MI",
    "US-OR", "US-MA", "US-OK", "US-WY",
)

#: Hardware-portable floor for the process executor on the big
#: workload: >=2x over serial, demanded only on machines with at least
#: four cores (CI runners qualify; a one-core container cannot
#: demonstrate any parallel speedup).
PROCESS_FLOOR = 2.0
PROCESS_FLOOR_MIN_CORES = 4


def build_requests(smoke: bool) -> list[TimeFrameRequest]:
    geos = SMOKE_GEOS if smoke else GEOS
    frames = weekly_frames(FRAME_SPAN)
    return [
        TimeFrameRequest("Internet outage", geo, frame)
        for geo in geos
        for frame in frames
    ]


def build_service(population: SearchPopulation) -> TrendsService:
    config = TrendsConfig(
        rate_limit=RateLimitConfig(burst=10**9, refill_per_second=10**9)
    )
    return TrendsService(population, config)


def bench_frames(service, requests, rounds) -> tuple[float, float]:
    def one_pass() -> int:
        served = 0
        for sample_round in range(rounds):
            for request in requests:
                service.fetch(request, sample_round=sample_round)
                served += 1
        return served

    return measure_rate(one_pass)


def bench_rising(population, requests, rounds) -> tuple[float, float]:
    def one_pass() -> int:
        computed = 0
        for sample_round in range(rounds):
            for request in requests:
                rng = substream(99, "rising", request.cache_key, sample_round)
                rising_terms(population, request, rng, 0.03)
                computed += 1
        return computed

    return measure_rate(one_pass)


def bench_scalar_reference(scenario, requests, rounds) -> tuple[float, float]:
    """Reference fetches over the frozen scalar implementation."""
    population = ReferencePopulation(scenario, noise_seed=20221026)

    def one_pass() -> int:
        served = 0
        for sample_round in range(rounds):
            for request in requests:
                reference_fetch(population, request, sample_round)
                served += 1
        return served

    # The scalar path is slow; a single timed repeat keeps the bench fast.
    return measure_rate(one_pass, repeats=1, warmup=1)


def bench_study(smoke: bool, max_workers: int) -> float:
    from repro.runtime import StudyRuntime

    geos = SMOKE_GEOS if smoke else GEOS

    def run() -> None:
        with StudyRuntime.build(
            background_scale=BACKGROUND_SCALE,
            start=SCENARIO_START,
            end=SCENARIO_END,
            max_workers=max_workers,
        ) as runtime:
            runtime.run_study(geos=geos)

    return measure_seconds(run, repeats=1, warmup=0)


def big_workload(smoke: bool) -> tuple[tuple[str, ...], "object", "object"]:
    """(geos, start, end) of the scaled study workload."""
    from repro.runtime import ALL_GEOS

    if smoke:
        return BIG_SMOKE_GEOS, BIG_START, BIG_SMOKE_END
    return ALL_GEOS, BIG_START, BIG_END


def workload_shape(geos, start, end) -> dict:
    """The apples-to-apples key recorded beside the metrics."""
    weeks = int((end - start).total_seconds() // (7 * 24 * 3600))
    return {"geos": len(geos), "weeks": weeks, "terms": 1}


def bench_big_study(smoke: bool, executor: str, max_workers: int) -> float:
    """Wall-clock of the scaled study under one executor."""
    from repro.core.pipeline import SiftConfig
    from repro.runtime import StudyRuntime

    geos, start, end = big_workload(smoke)

    def run() -> None:
        with StudyRuntime.build(
            background_scale=BIG_SCALE,
            start=start,
            end=end,
            max_workers=max_workers,
            executor=executor,
            sift=SiftConfig(annotate=False),
        ) as runtime:
            runtime.run_study(geos=geos)

    return measure_seconds(run, repeats=1, warmup=0)


def run_bench(smoke: bool) -> dict:
    scenario = Scenario.build(
        ScenarioConfig(
            start=SCENARIO_START,
            end=SCENARIO_END,
            background_scale=BACKGROUND_SCALE,
        )
    )
    population = SearchPopulation(scenario, noise_seed=20221026)
    service = build_service(population)
    requests = build_requests(smoke)
    rounds = 1 if smoke else 3
    ref_rounds = 1

    frames_rate, _ = bench_frames(service, requests, rounds)
    rising_rate, _ = bench_rising(population, requests, rounds)
    scalar_rate, _ = bench_scalar_reference(
        scenario, requests[: len(requests) if smoke else len(requests) // 2],
        ref_rounds,
    )
    serial_s = bench_study(smoke, max_workers=1)
    workers4_s = bench_study(smoke, max_workers=4)
    big_serial_s = bench_big_study(smoke, executor="serial", max_workers=1)

    # The process-vs-serial comparison is meaningless without a second
    # core: four worker processes time-slicing one CPU measure only the
    # sharding overhead, and the resulting sub-1x "speedup" reads as a
    # regression it is not.  Record null plus the reason instead.
    import os

    cores = os.cpu_count() or 1
    if cores < 2:
        big_process4_s = None
        speedup_process = None
        process_skip_reason = (
            f"skipped: {cores} CPU core(s); a process pool cannot "
            f"demonstrate parallel speedup on this machine"
        )
    else:
        big_process4_s = round(
            bench_big_study(smoke, executor="process", max_workers=4), 3
        )
        speedup_process = round(big_serial_s / big_process4_s, 2)
        process_skip_reason = None

    return {
        "frames_per_sec": round(frames_rate, 1),
        "rising_per_sec": round(rising_rate, 1),
        "study_serial_s": round(serial_s, 3),
        "study_workers4_s": round(workers4_s, 3),
        "big_study_serial_s": round(big_serial_s, 3),
        "big_study_process4_s": big_process4_s,
        "speedup_process_vs_serial": speedup_process,
        "process_comparison_skipped": process_skip_reason,
        "scalar_ref_frames_per_sec": round(scalar_rate, 1),
        "speedup_vs_scalar": round(frames_rate / scalar_rate, 2),
        "frames_measured": len(requests) * rounds,
        "smoke": smoke,
    }


def check_regression(metrics: dict) -> int:
    """Compare against the committed results; return an exit code."""
    import os

    exit_code = 0
    committed = read_bench(BENCH_NAME)
    if not committed or "current" not in committed:
        print("check: no committed BENCH_service.json current section; skipping")
    else:
        committed_ratio = committed["current"].get("speedup_vs_scalar")
        measured_ratio = metrics["speedup_vs_scalar"]
        if not committed_ratio:
            print("check: committed results carry no speedup_vs_scalar; skipping")
        else:
            floor = CHECK_RATIO * committed_ratio
            verdict = "ok" if measured_ratio >= floor else "REGRESSION"
            print(
                f"check: speedup_vs_scalar measured {measured_ratio:.2f}x, "
                f"committed {committed_ratio:.2f}x, floor {floor:.2f}x -> {verdict}"
            )
            if measured_ratio < floor:
                exit_code = 1

    # Process-executor floor: hardware-portable (a ratio, not a
    # duration), but meaningless without cores to parallelize over.
    cores = os.cpu_count() or 1
    process_ratio = metrics.get("speedup_process_vs_serial")
    if cores < PROCESS_FLOOR_MIN_CORES:
        print(
            f"check: speedup_process_vs_serial {process_ratio}x not enforced "
            f"({cores} cores < {PROCESS_FLOOR_MIN_CORES})"
        )
    elif process_ratio is not None:
        verdict = "ok" if process_ratio >= PROCESS_FLOOR else "REGRESSION"
        print(
            f"check: speedup_process_vs_serial measured {process_ratio:.2f}x, "
            f"floor {PROCESS_FLOOR:.2f}x ({cores} cores) -> {verdict}"
        )
        if process_ratio < PROCESS_FLOOR:
            exit_code = 1
    return exit_code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny CI scenario")
    parser.add_argument(
        "--as-baseline",
        action="store_true",
        help="record results as the pre-change baseline",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail when the speedup regressed >30%% vs committed results",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="persist results even for a smoke run (CI artifact upload)",
    )
    args = parser.parse_args(argv)

    metrics = run_bench(smoke=args.smoke)
    for key, value in metrics.items():
        print(f"{key}: {value}")

    exit_code = check_regression(metrics) if args.check else 0
    # A smoke run only persists on request: the committed numbers should
    # come from the full workload, but CI wants the fresh measurements
    # in its artifact (the check above reads the committed file first).
    if args.as_baseline or args.write or not args.smoke:
        big_geos, big_start, big_end = big_workload(args.smoke)
        write_bench(
            BENCH_NAME,
            metrics,
            as_baseline=args.as_baseline,
            workload_shape={
                "hotpath": workload_shape(
                    SMOKE_GEOS if args.smoke else GEOS,
                    SCENARIO_START,
                    SCENARIO_END,
                ),
                "big_study": workload_shape(big_geos, big_start, big_end),
            },
            extra={
                "workload": {
                    "scenario": {
                        "start": SCENARIO_START.isoformat(),
                        "end": SCENARIO_END.isoformat(),
                        "background_scale": BACKGROUND_SCALE,
                    },
                    "geos": list(SMOKE_GEOS if args.smoke else GEOS),
                    "frame_span": [
                        FRAME_SPAN.start.isoformat(),
                        FRAME_SPAN.end.isoformat(),
                    ],
                    "big_study": {
                        "start": big_start.isoformat(),
                        "end": big_end.isoformat(),
                        "background_scale": BIG_SCALE,
                        "geo_count": len(big_geos),
                        "annotate": False,
                        "executor_compared": ["serial", "process"],
                    },
                },
            },
        )
        print(f"wrote BENCH_{BENCH_NAME}.json")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
