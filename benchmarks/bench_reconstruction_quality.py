"""Reconstruction-backend quality: spike fidelity and rounds-to-converge.

PR 6 made timeline reconstruction pluggable (DESIGN.md §9): frame
stitching and fetch-round merging are strategies picked by registry
name.  This bench sweeps every registered ``(stitcher, averager)``
combination over two sampling profiles and writes
``BENCH_reconstruction.json`` (layout in :mod:`benchmarks.perf`):

* ``canonical`` — the default ``TrendsConfig.sample_rate`` (0.03), the
  regime every other benchmark runs in;
* ``noisy`` — a much thinner searcher panel (sample_rate 0.01), where
  per-round sampling noise dominates and robust merging should pay off.

Per backend and profile it reports spike precision (share of detected
spikes explained by a ground-truth impact), recall of strong impacts
(intensity >= 5), mean fetch rounds to convergence, and the share of
geographies that converged inside the budget.

The JSON slots: ``baseline`` holds the default backend
(``overlap_ratio``/``mean``, the paper's reconstruction), ``current``
holds the best alternate on the noisy profile, so the ``speedup``
section reads as alternate-vs-default per metric (note
``*_mean_rounds`` improves *downward*).

Usage::

    PYTHONPATH=src python benchmarks/bench_reconstruction_quality.py
        [--smoke]   # tiny CI scenario
        [--check]   # fail when the default backend's quality drops
                    # below the floors, or when no alternate backend
                    # converges in fewer rounds on the noisy profile
        [--write]   # persist BENCH_reconstruction.json even for smoke
"""

from __future__ import annotations

import argparse
import itertools
import sys

from repro.analysis.scoring import score_spikes
from repro.core.averaging import AveragingConfig
from repro.core.pipeline import SiftConfig
from repro.core.reconstruct import (
    DEFAULT_AVERAGER,
    DEFAULT_STITCHER,
    averager_names,
    stitcher_names,
)
from repro.runtime import StudyRuntime
from repro.timeutil import utc

try:  # runnable both as a script and under the benchmarks package
    from perf import write_bench
except ImportError:  # pragma: no cover
    from benchmarks.perf import write_bench

BENCH_NAME = "reconstruction"

#: Same world as ``bench_web_serving``: two months around the Texas
#: winter storm.
SCENARIO_START = utc(2021, 1, 1)
SCENARIO_END = utc(2021, 3, 1)
BACKGROUND_SCALE = 0.3
GEOS = ("US-TX", "US-CA", "US-NY", "US-FL", "US-AZ", "US-HI",
        "US-AK", "US-CO")
SMOKE_GEOS = ("US-TX", "US-CA", "US-NY", "US-FL", "US-AZ", "US-IL")

#: Give the loop headroom beyond the default budget of 6 so the noisy
#: profile can expose convergence differences instead of clipping every
#: backend at the cap.
MAX_ROUNDS = 8

#: (profile name, TrendsConfig.sample_rate).  The sample rate is the
#: noise lever: it is the share of the searcher population each fetch
#: round observes, so a thinner panel means noisier frames.
PROFILES = (("canonical", 0.03), ("noisy", 0.01))

#: Acceptance floors for ``--check`` — absolute spike-quality bars for
#: the default backend on the canonical profile.  Quality metrics are
#: seeded-scenario properties, not hardware measurements, so the floors
#: are portable across CI boxes by construction.
PRECISION_FLOOR = 0.60
RECALL5_FLOOR = 0.30

DEFAULT_BACKEND = f"{DEFAULT_STITCHER}/{DEFAULT_AVERAGER}"


def backend_combos() -> list[tuple[str, str]]:
    """Every registered (stitcher, averager) pair, default first."""
    combos = sorted(
        itertools.product(stitcher_names(), averager_names()),
        key=lambda pair: pair != (DEFAULT_STITCHER, DEFAULT_AVERAGER),
    )
    return combos


def run_backend(
    stitcher: str, averager: str, sample_rate: float, geos: tuple[str, ...]
) -> dict:
    """One full study with one backend; returns its quality metrics."""
    config = SiftConfig(
        annotate=False,
        stitcher=stitcher,
        averager=averager,
        averaging=AveragingConfig(max_rounds=MAX_ROUNDS),
    )
    with StudyRuntime.build(
        background_scale=BACKGROUND_SCALE,
        start=SCENARIO_START,
        end=SCENARIO_END,
        sample_rate=sample_rate,
        sift=config,
    ) as runtime:
        study = runtime.run_study(geos=geos)
        quality = score_spikes(study.spikes, runtime.scenario)
        rounds = [study.states[geo].averaging.rounds_used for geo in geos]
        converged = [study.states[geo].averaging.converged for geo in geos]
    return {
        "precision": round(quality.precision, 4),
        "recall5": round(quality.recall_strong, 4),
        "mean_rounds": round(sum(rounds) / len(rounds), 4),
        "converged_share": round(sum(converged) / len(converged), 4),
        "spikes": quality.total_spikes,
    }


def run_bench(smoke: bool) -> dict[str, dict[str, dict]]:
    """Sweep every backend over every profile.

    Returns ``{profile: {"stitcher/averager": metrics}}``.
    """
    geos = SMOKE_GEOS if smoke else GEOS
    results: dict[str, dict[str, dict]] = {}
    for profile, sample_rate in PROFILES:
        per_backend: dict[str, dict] = {}
        for stitcher, averager in backend_combos():
            per_backend[f"{stitcher}/{averager}"] = run_backend(
                stitcher, averager, sample_rate, geos
            )
        results[profile] = per_backend
    return results


def flatten(per_profile: dict[str, dict]) -> dict:
    """One backend's metrics across profiles as flat ``write_bench`` keys."""
    flat: dict = {}
    for profile, metrics in per_profile.items():
        for key, value in metrics.items():
            flat[f"{profile}_{key}"] = value
    return flat


def best_alternate(results: dict[str, dict[str, dict]]) -> str:
    """The non-default backend converging fastest on the noisy profile."""
    noisy = results["noisy"]
    alternates = [name for name in noisy if name != DEFAULT_BACKEND]
    return min(
        alternates,
        key=lambda name: (noisy[name]["mean_rounds"], -noisy[name]["precision"]),
    )


def check_floors(results: dict[str, dict[str, dict]]) -> int:
    """Apply the acceptance criteria; return a process exit code."""
    failed = False

    default = results["canonical"][DEFAULT_BACKEND]
    for metric, floor in (("precision", PRECISION_FLOOR), ("recall5", RECALL5_FLOOR)):
        value = default[metric]
        verdict = "ok" if value >= floor else "REGRESSION"
        failed = failed or value < floor
        print(
            f"check: default backend canonical {metric} {value:.3f} "
            f"(floor {floor:.2f}) -> {verdict}"
        )

    noisy = results["noisy"]
    default_rounds = noisy[DEFAULT_BACKEND]["mean_rounds"]
    fastest = best_alternate(results)
    fastest_rounds = noisy[fastest]["mean_rounds"]
    verdict = "ok" if fastest_rounds < default_rounds else "REGRESSION"
    failed = failed or fastest_rounds >= default_rounds
    print(
        f"check: noisy profile {fastest} converges in {fastest_rounds:.2f} "
        f"mean rounds vs default {default_rounds:.2f} -> {verdict}"
    )
    return 1 if failed else 0


def print_results(results: dict[str, dict[str, dict]]) -> None:
    for profile, per_backend in results.items():
        print(f"-- {profile} profile --")
        for backend, metrics in per_backend.items():
            marker = " (default)" if backend == DEFAULT_BACKEND else ""
            line = ", ".join(f"{key}={value}" for key, value in metrics.items())
            print(f"{backend}{marker}: {line}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny CI scenario")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail when the default backend drops below the quality "
        "floors, or no alternate converges faster on the noisy profile",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="persist results even for a smoke run (CI artifact upload)",
    )
    args = parser.parse_args(argv)

    results = run_bench(smoke=args.smoke)
    print_results(results)
    exit_code = check_floors(results) if args.check else 0

    # Smoke runs only persist on request: the committed numbers come
    # from the full workload, but CI uploads its fresh measurements.
    if args.write or not args.smoke:
        champion = best_alternate(results)
        default_flat = flatten(
            {profile: results[profile][DEFAULT_BACKEND] for profile, _ in PROFILES}
        )
        default_flat["smoke"] = args.smoke
        champion_flat = flatten(
            {profile: results[profile][champion] for profile, _ in PROFILES}
        )
        champion_flat["smoke"] = args.smoke
        extra = {
            "backends": results,
            "default_backend": DEFAULT_BACKEND,
            "best_alternate": champion,
            "note": "baseline = default backend, current = best alternate "
            "on the noisy profile; *_mean_rounds improves downward",
            "workload": {
                "scenario": {
                    "start": SCENARIO_START.isoformat(),
                    "end": SCENARIO_END.isoformat(),
                    "background_scale": BACKGROUND_SCALE,
                },
                "geos": list(SMOKE_GEOS if args.smoke else GEOS),
                "max_rounds": MAX_ROUNDS,
                "profiles": dict(PROFILES),
            },
        }
        write_bench(BENCH_NAME, default_flat, as_baseline=True, extra=extra)
        write_bench(BENCH_NAME, champion_flat)
        print(f"wrote BENCH_{BENCH_NAME}.json")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
