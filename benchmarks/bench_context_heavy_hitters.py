"""Section 3.4 statistic: heavy-hitters in the rising suggestions.

Paper: of 6655 distinct suggested search terms, only 33 comprise half
of all suggestions; the head contains <Power outage>, major ISPs, and
<Electric power>.  The simulator's catalog is compact (a few dozen
topics), so the absolute numbers shrink, but the skew — a small head
covering half the mass — and the head's membership reproduce.
"""

from repro.analysis import paper_vs_measured, render_table
from repro.core.context import HeavyHitterAnalyzer
from repro.core.nlp import PhraseClusterer


def test_heavy_hitter_skew(study, environment, benchmark, emit):
    clusterer = PhraseClusterer()

    def superimpose() -> HeavyHitterAnalyzer:
        analyzer = HeavyHitterAnalyzer()
        sift = environment.sift
        for spike in study.spikes:
            rising = sift.daily_rising(spike.geo, spike.start)
            analyzer.add([clusterer.canonicalize(t.phrase) for t in rising])
        return analyzer

    analyzer = benchmark.pedantic(superimpose, rounds=1, iterations=1)
    head = analyzer.heavy_hitters(coverage=0.5)
    emit(
        render_table(
            ("term", "suggestions"),
            analyzer.most_common(10),
            title="Top suggested terms across all spikes",
        ),
        paper_vs_measured(
            [
                ("distinct suggested terms", 6655, analyzer.distinct_terms),
                ("terms covering half the mass", 33, len(head)),
                (
                    "head/catalog skew",
                    f"{33 / 6655:.1%}",
                    f"{len(head) / max(analyzer.distinct_terms, 1):.1%}",
                ),
                (
                    "<Power outage> in the head",
                    True,
                    "Power outage" in head,
                ),
            ],
            title="Heavy-hitter statistics",
        ),
    )
    assert len(head) < analyzer.distinct_terms / 2  # skewed head
    assert "Power outage" in head
