"""Shared fixtures for the benchmark harness.

One full 51-geography study is produced per session and shared by every
figure/table benchmark.  ``REPRO_BENCH_SCALE`` controls the background
event scale (default 0.15 runs the complete two-year pipeline in a
couple of minutes; 1.0 is the paper-scale study).  Counts scale with
the background; the *shapes* the paper reports are preserved, and each
benchmark prints a paper-vs-measured summary.
"""

from __future__ import annotations

import os

import pytest

from repro.ant import AntDataset
from repro.core.progress import ProgressLog
from repro.runtime import StudyRuntime


def bench_scale() -> float:
    if os.environ.get("REPRO_FULL_STUDY") == "1":
        return 1.0
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))


def bench_workers() -> int:
    return int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


@pytest.fixture(scope="session")
def progress_log():
    return ProgressLog()


@pytest.fixture(scope="session")
def environment(progress_log):
    return StudyRuntime.build(
        background_scale=bench_scale(),
        max_workers=bench_workers(),
        progress=progress_log,
    )


@pytest.fixture(scope="session")
def study(environment):
    return environment.run_study()


@pytest.fixture(scope="session")
def ant_dataset(environment):
    return AntDataset.build(environment.scenario)


@pytest.fixture()
def emit(capsys):
    """Print an artifact to the real terminal despite pytest capture."""

    def _emit(*chunks: str) -> None:
        with capsys.disabled():
            print()
            for chunk in chunks:
                print(chunk)

    return _emit
