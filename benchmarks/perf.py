"""Shared perf-run helpers: wall-clock measurement + BENCH_*.json output.

Every figure/table benchmark prints human-readable tables; this module
is the machine-readable side.  A perf benchmark measures rates with
:func:`measure_rate` (best-of-N to shed scheduler noise) and persists
them with :func:`write_bench`, so successive PRs accumulate a
performance trajectory in the committed ``BENCH_*.json`` files instead
of anecdotes in commit messages.

The JSON layout is shared by every perf bench:

```
{
  "benchmark": "<name>",
  "updated_utc": "...",
  "machine": {...},            # where the numbers were taken
  "baseline": {...metrics...}, # pre-change numbers recorded in the PR
                               # that introduced the bench
  "current": {...metrics...},  # latest numbers on this code
  "speedup": {...}             # current / baseline, per metric
}
```
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Any, Callable

#: Repository root (BENCH_*.json live next to README.md).
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def bench_path(name: str) -> str:
    """Path of the committed machine-readable result file."""
    return os.path.join(REPO_ROOT, f"BENCH_{name}.json")


def measure_seconds(
    fn: Callable[[], Any], *, repeats: int = 3, warmup: int = 1
) -> float:
    """Best-of-*repeats* wall-clock seconds of one ``fn()`` call."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def measure_rate(
    fn: Callable[[], int], *, repeats: int = 3, warmup: int = 1
) -> tuple[float, float]:
    """Best-of-*repeats* ``(units_per_second, seconds)`` for ``fn``.

    ``fn`` performs a batch of work and returns how many units it
    served; the rate is taken from the fastest repeat.
    """
    for _ in range(warmup):
        fn()
    best_rate, best_seconds = 0.0, float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        units = fn()
        elapsed = time.perf_counter() - started
        if units / elapsed > best_rate:
            best_rate, best_seconds = units / elapsed, elapsed
    return best_rate, best_seconds


def machine_info() -> dict[str, Any]:
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def read_bench(name: str) -> dict[str, Any] | None:
    """Load the committed results for *name*, or None when absent."""
    path = bench_path(name)
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def write_bench(
    name: str,
    metrics: dict[str, Any],
    *,
    as_baseline: bool = False,
    extra: dict[str, Any] | None = None,
    workload_shape: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Merge *metrics* into ``BENCH_<name>.json`` and return the payload.

    With ``as_baseline`` the metrics land in the ``baseline`` slot (the
    pre-change numbers a PR measures before optimizing); otherwise they
    become ``current`` and per-metric speedups against the stored
    baseline are recomputed.

    ``workload_shape`` records what was measured (e.g. ``{"geos": 51,
    "weeks": 104, "terms": 1}``) alongside the slot it belongs to.
    When the baseline and current shapes are both recorded and differ,
    the speedup section is **omitted** with an explanatory note — a
    12-geo baseline against a 51-geo current is not a speedup, and a
    silent ratio would read like one.
    """
    payload = read_bench(name) or {"benchmark": name}
    payload["updated_utc"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    payload["machine"] = machine_info()
    if extra:
        payload.update(extra)
    if as_baseline:
        payload["baseline"] = metrics
        if workload_shape is not None:
            payload["baseline_shape"] = workload_shape
    else:
        payload["current"] = metrics
        if workload_shape is not None:
            payload["current_shape"] = workload_shape
        baseline = payload.get("baseline")
        baseline_shape = payload.get("baseline_shape")
        current_shape = payload.get("current_shape")
        shapes_differ = (
            baseline_shape is not None
            and current_shape is not None
            and baseline_shape != current_shape
        )
        if baseline and shapes_differ:
            payload.pop("speedup", None)
            payload["speedup_note"] = (
                "baseline and current were measured on different workload "
                f"shapes ({baseline_shape} vs {current_shape}); "
                "per-metric speedups omitted"
            )
        elif baseline:
            payload.pop("speedup_note", None)
            # Rates improve upward, durations (``*_s``) downward; report
            # both as "how many times faster".
            payload["speedup"] = {
                key: round(
                    baseline[key] / value if key.endswith("_s") else value / baseline[key],
                    2,
                )
                for key, value in metrics.items()
                if isinstance(value, (int, float))
                and isinstance(baseline.get(key), (int, float))
                and baseline[key]
                and value
            }
    with open(bench_path(name), "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
