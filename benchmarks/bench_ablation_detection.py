"""Ablation: the half-drop threshold of the prominence walk (paper §3.3).

The paper ends a spike when a block falls below *half* of its
predecessor.  This ablation sweeps the ratio and shows how spike count
and duration react — at 0.5 the Texas storm stays a single 40+ hour
spike, while aggressive thresholds fragment it.
"""

from repro.analysis import render_table
from repro.core.detection import DetectionConfig, detect_spikes
from repro.core.spikes import SpikeSet


def test_half_ratio_sweep(study, benchmark, emit):
    timeline = study.states["US-TX"].timeline
    rows = []
    for ratio in (0.3, 0.4, 0.5, 0.6, 0.7):
        spikes = SpikeSet(
            detect_spikes(timeline, DetectionConfig(half_ratio=ratio))
        )
        longest = spikes.top_by_duration(1)[0].duration_hours if len(spikes) else 0
        rows.append(
            (
                f"{ratio:.1f}",
                len(spikes),
                longest,
                f"{spikes.durations().mean():.2f}" if len(spikes) else "-",
            )
        )

    benchmark(detect_spikes, timeline, DetectionConfig(half_ratio=0.5))
    emit(
        render_table(
            ("half ratio", "spikes", "longest (h)", "mean duration (h)"),
            rows,
            title="Ablation: detection half-drop threshold (US-TX)",
        ),
    )
    by_ratio = {row[0]: row for row in rows}
    # The paper's 0.5 keeps the storm intact.
    assert by_ratio["0.5"][2] >= 35
    # Mean duration shrinks monotonically as the threshold tightens.
    means = [float(row[3]) for row in rows]
    assert means[0] >= means[-1]
