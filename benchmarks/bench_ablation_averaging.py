"""Ablation: iterative re-fetch averaging (paper §3.2).

The paper reports that averaging independent re-fetches until the
detected spike set converges "takes six rounds of re-fetches to
conclude".  This ablation runs the averaging loop with round budgets
1..8 over a noisy state and measures (a) agreement with the asymptotic
spike set and (b) where convergence actually triggers.
"""

from repro import make_environment, utc
from repro.analysis import paper_vs_measured, render_table
from repro.core.averaging import AveragingConfig, average_until_convergence


def test_averaging_rounds_convergence(benchmark, emit):
    env = make_environment(
        background_scale=0.3, start=utc(2021, 1, 1), end=utc(2021, 3, 1)
    )
    sift = env.sift
    window = env.window

    def run(max_rounds: int, min_rounds: int | None = None):
        return average_until_convergence(
            lambda k: sift.fetch_week_frames("US-CA", window, k),
            AveragingConfig(
                max_rounds=max_rounds,
                # With min_rounds == max_rounds the loop always runs the
                # whole budget, giving fixed-round reference points.
                min_rounds=min_rounds or max_rounds,
                similarity_threshold=1.0 if min_rounds is None else 0.93,
            ),
        )

    # Asymptote: force eight full rounds.
    reference = run(8).spikes
    rows = []
    for budget in (1, 2, 3, 4, 6, 8):
        result = run(budget)
        rows.append(
            (
                budget,
                len(result.spikes),
                f"{result.spikes.weighted_match_similarity(reference):.3f}",
            )
        )

    adaptive = benchmark.pedantic(
        lambda: run(8, min_rounds=3), rounds=1, iterations=1
    )
    emit(
        render_table(
            ("rounds", "spikes", "agreement with 8-round set"),
            rows,
            title="Ablation: averaging round budget (US-CA, Jan-Feb 2021)",
        ),
        paper_vs_measured(
            [
                ("rounds to converge", "~6", adaptive.rounds_used),
                ("converged", True, adaptive.converged),
                (
                    "final agreement",
                    "high",
                    f"{adaptive.spikes.weighted_match_similarity(reference):.3f}",
                ),
            ]
        ),
    )
    assert adaptive.converged
    assert adaptive.rounds_used <= 6
    # more rounds -> closer to the asymptote (first vs last row)
    assert float(rows[-1][2]) >= float(rows[0][2])
