"""Figure 5: distribution of spikes over outages (simultaneous states).

The paper groups concurrent spikes across states into outages and finds
that 11% of outages include 10 or more states.  The benchmarked kernel
is the grouping sweep itself.
"""

from repro.analysis import footprint_cdf, paper_vs_measured, render_cdf
from repro.core.area import group_outages


def test_fig5_simultaneous_states(study, benchmark, emit):
    outages = benchmark.pedantic(
        group_outages, args=(study.spikes,), rounds=3, iterations=1
    )
    cdf = footprint_cdf(outages)
    emit(
        render_cdf(
            cdf.footprints,
            cdf.cumulative,
            "number of states",
            "cum. share",
            title="Fig. 5 - distribution of outages over their footprint",
        ),
        paper_vs_measured(
            [
                ("outages", "~25 000 (full scale)", len(outages)),
                (
                    "outages >= 10 states",
                    "11% (at paper scale)",
                    f"{cdf.fraction_at_least(10):.1%}",
                ),
                ("largest footprint", 34, int(cdf.footprints.max())),
            ]
        ),
    )
    assert cdf.fraction_at_least(10) > 0.01
    assert cdf.footprints.max() >= 25
