"""Figure 3: characteristics of all spikes in 2020-2021.

Left: cumulative share of spikes over ranked states (paper: top-10
states host 51%).  Right: cumulative distribution of spike durations
(paper: 90% are shorter than 3 hours).
"""

import numpy as np

from repro.analysis import (
    duration_cdf,
    paper_vs_measured,
    render_cdf,
    state_cdf,
)


def test_fig3_left_states_cdf(study, benchmark, emit):
    cdf = benchmark(state_cdf, study.spikes)
    emit(
        render_cdf(
            np.arange(1, cdf.counts.size + 1),
            cdf.cumulative,
            "state rank",
            "cum. share",
            title="Fig. 3 (left) - spikes over ranked states",
        ),
        paper_vs_measured(
            [
                ("top-10-state share", "51%", f"{cdf.share_of_top(10):.0%}"),
                ("busiest states", "CA, TX, FL, NY, ...", ", ".join(cdf.states[:4])),
            ]
        ),
    )
    assert 0.35 <= cdf.share_of_top(10) <= 0.70
    assert set(cdf.states[:6]) & {"CA", "TX", "FL", "NY"}


def test_fig3_right_duration_cdf(study, benchmark, emit):
    cdf = benchmark(duration_cdf, study.spikes)
    emit(
        render_cdf(
            cdf.hours,
            cdf.cumulative,
            "duration (h)",
            "cum. share",
            title="Fig. 3 (right) - spike durations",
        ),
        paper_vs_measured(
            [
                ("spikes >= 3 h", "10%", f"{cdf.fraction_at_least(3):.1%}"),
                ("spikes >= 5 h", "3.5%", f"{cdf.fraction_at_least(5):.1%}"),
                ("longest spike (h)", 45, int(cdf.hours.max())),
            ]
        ),
    )
    assert 0.05 <= cdf.fraction_at_least(3) <= 0.20
    assert cdf.hours.max() >= 30
