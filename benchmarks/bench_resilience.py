"""Resilience bench: recovery time, ticks lost, read availability.

A seeded kill/corrupt soak drives the self-healing watch loop
(DESIGN.md §13): process chaos crashes ticks mid-crawl, wedges fetches
past the supervisor's watchdog, and corrupts stream-checkpoint columns
on disk; the supervisor restarts from the columnar checkpoint,
quarantines damaged partitions, re-crawls exactly the quarantined
geographies — and the serving layer answers reads throughout, including
from inside restart windows.  The bench measures what that costs and
writes ``BENCH_resilience.json``:

* ``recovery_*`` — per-incident healing: ticks spent degraded and
  virtual seconds from first failure to the ``healthy`` transition
  (backoff waits and injected stalls all spend simulated time);
* ``ticks_lost`` — failed tick attempts, i.e. work re-done from the
  checkpoint; ``restarted_tick_max_attempts`` is the deepest retry;
* ``availability_pct`` — share of reads answered 200 during the soak.
  Reads are issued *inside* every restart window (from the
  ``TickRestarted`` hook, while the daemon is torn down) and after
  every tick; deliberate load-shed 503s are excluded by construction,
  ``unexpected_5xx`` counts everything else and must be zero;
* ``fingerprints_match`` — the correctness bar: after the soak the
  study must be byte-identical to an uninterrupted batch run, and the
  supervisor must be back in ``healthy``.

Floors enforced by ``--check`` (portable: seeded chaos replays
bit-exactly, virtual time is machine-independent):

* zero fingerprint divergence, final state ``healthy``;
* every incident recovers within ``RECOVERY_TICKS_FLOOR`` ticks;
* read availability >= 99% with zero unexpected 5xx.

Usage::

    PYTHONPATH=src python benchmarks/bench_resilience.py [--smoke]
        [--as-baseline] [--check] [--write]
"""

from __future__ import annotations

import argparse
import statistics
import sys

from repro.core.averaging import AveragingConfig
from repro.core.pipeline import SiftConfig
from repro.core.progress import TickRestarted
from repro.runtime import StudyRuntime
from repro.streaming import ProcessChaos, ProcessFaultProfile, SupervisorConfig
from repro.timeutil import utc
from repro.web import SiftWebApp

try:  # runnable both as a script and under the benchmarks package
    from perf import write_bench
except ImportError:  # pragma: no cover
    from benchmarks.perf import write_bench

BENCH_NAME = "resilience"

#: Full workload: eight timezone-diverse geographies over a quarter
#: (twelve weekly ticks) — enough stream for several distinct incidents
#: without turning the soak into a crawl benchmark.
FULL_GEOS = (
    "US-TX",
    "US-CA",
    "US-OK",
    "US-NY",
    "US-FL",
    "US-WA",
    "US-IL",
    "US-AZ",
)
FULL_START, FULL_END = utc(2021, 1, 1), utc(2021, 3, 26)
FULL_CHAOS_SEED = 1

#: CI smoke slice: three geographies, six weekly ticks — the same soak
#: the resilience tests replay.
SMOKE_GEOS = ("US-TX", "US-CA", "US-OK")
SMOKE_START, SMOKE_END = utc(2021, 1, 1), utc(2021, 2, 7)
SMOKE_CHAOS_SEED = 8

SCALE = 0.3
SEED = 11
ROUNDS = 2

#: The soak profiles: per-fetch crash/stall rates tuned per workload
#: shape so the *expected failures per tick* stay comparable (the full
#: shape draws 16 fetch faults per tick vs the smoke's 6 — identical
#: per-fetch rates would keep the big stream permanently degraded),
#: corruption aggressive enough that quarantine + re-crawl is exercised
#: every run.  The chaos seeds above were chosen so each replay injects
#: at least one crash and one corruption and ends back at ``healthy`` —
#: the acceptance scenario.
SMOKE_PROFILE = ProcessFaultProfile(
    name="soak-smoke",
    crash_rate=0.06,
    stall_rate=0.03,
    stall_seconds=600.0,
    corrupt_rate=0.35,
)
FULL_PROFILE = ProcessFaultProfile(
    name="soak-full",
    crash_rate=0.0225,
    stall_rate=0.011,
    stall_seconds=600.0,
    corrupt_rate=0.35,
)
SOAK_CONFIG = SupervisorConfig(watchdog_seconds=500.0, max_restarts=10)

#: Portable floors --check enforces.
RECOVERY_TICKS_FLOOR = 4
AVAILABILITY_FLOOR_PCT = 99.0

#: Read mix issued during the soak (per probe burst).
READ_PATHS = (
    "/api/geos",
    "/api/summary",
    "/api/timeline?geo=US-TX",
    "/api/outages",
    "/api/runtime",
    "/healthz",
    "/readyz",
)


def build_runtime(
    smoke: bool, store: str | None = None, progress=None
) -> StudyRuntime:
    return StudyRuntime.build(
        background_scale=SCALE,
        seed=SEED,
        start=SMOKE_START if smoke else FULL_START,
        end=SMOKE_END if smoke else FULL_END,
        sift=SiftConfig(
            annotate=False,
            averaging=AveragingConfig(min_rounds=ROUNDS, max_rounds=ROUNDS),
        ),
        checkpoint=False,
        store=store,
        progress=progress,
    )


class ReadProbe:
    """Issues read bursts against the app and keeps availability books."""

    def __init__(self) -> None:
        self.app: SiftWebApp | None = None
        self.total = 0
        self.ok = 0
        self.shed = 0
        self.unexpected_5xx = 0
        self.during_restart = 0

    def burst(self, during_restart: bool = False) -> None:
        if self.app is None:
            return
        for path in READ_PATHS:
            status = self.app.handle_request(path).status
            self.total += 1
            if during_restart:
                self.during_restart += 1
            if status == 200:
                self.ok += 1
            elif status == 503 and path == "/readyz":
                # /readyz deliberately refuses while halted; the soak
                # never halts, so any 503 here is a real failure.
                self.unexpected_5xx += 1
            elif status >= 500:
                self.unexpected_5xx += 1

    def availability_pct(self) -> float:
        served = self.total - self.shed
        if not served:
            return 100.0
        return round(100.0 * self.ok / served, 3)


def run_bench(smoke: bool, store_dir: str) -> dict:
    geos = SMOKE_GEOS if smoke else FULL_GEOS
    chaos_seed = SMOKE_CHAOS_SEED if smoke else FULL_CHAOS_SEED
    probe = ReadProbe()
    attempts_by_tick: dict[int, int] = {}

    def on_event(event) -> None:
        if isinstance(event, TickRestarted):
            attempts_by_tick[event.tick] = max(
                attempts_by_tick.get(event.tick, 0), event.attempt
            )
            # The degraded window: daemon torn down, backoff pending.
            probe.burst(during_restart=True)

    runtime = build_runtime(smoke, store=store_dir, progress=on_event)
    profile = SMOKE_PROFILE if smoke else FULL_PROFILE
    chaos = ProcessChaos(profile, seed=chaos_seed)
    supervisor = runtime.supervise(geos, config=SOAK_CONFIG, chaos=chaos)

    supervisor.tick()
    probe.app = SiftWebApp(
        supervisor.daemon.snapshot_study(),
        health_source=supervisor.health_payload,
    )
    supervisor.attach_app(probe.app)
    probe.burst()
    while not supervisor.done:
        supervisor.tick()
        probe.burst()
    final = supervisor.finalize()

    batch = build_runtime(smoke).run_study(geos)
    injected = chaos.injection_counts()
    degraded_ticks = [
        incident["ticks_degraded"] for incident in supervisor.recovery_log
    ]
    recovery_seconds = [
        incident["virtual_seconds"] for incident in supervisor.recovery_log
    ]

    return {
        "ticks": supervisor.total_ticks,
        "geo_count": len(geos),
        "rounds": ROUNDS,
        "chaos_profile": profile.name,
        "chaos_seed": chaos_seed,
        "injected_crashes": injected["crash"],
        "injected_stalls": injected["stall"],
        "injected_corruptions": injected["truncate"] + injected["bitflip"],
        "ticks_lost": supervisor.restarts,
        "restarted_tick_max_attempts": max(
            attempts_by_tick.values(), default=0
        ),
        "quarantined_geos": len(supervisor.quarantined),
        "incidents": len(supervisor.recovery_log),
        "recovery_max_ticks": max(degraded_ticks, default=0),
        "recovery_mean_virtual_seconds": round(
            statistics.fmean(recovery_seconds), 1
        )
        if recovery_seconds
        else 0.0,
        "recovery_max_virtual_seconds": max(recovery_seconds, default=0.0),
        "virtual_seconds_total": round(float(runtime.clock()), 1),
        "reads_total": probe.total,
        "reads_during_restart": probe.during_restart,
        "reads_shed": probe.shed,
        "unexpected_5xx": probe.unexpected_5xx,
        "availability_pct": probe.availability_pct(),
        "final_state": supervisor.state.value,
        "final_fingerprint_supervised": final.fingerprint(),
        "final_fingerprint_batch": batch.fingerprint(),
        "fingerprints_match": final.fingerprint() == batch.fingerprint(),
        "smoke": smoke,
    }


def check_regression(metrics: dict) -> int:
    """Enforce the portable resilience floors."""
    exit_code = 0

    def gate(ok: bool, label: str) -> None:
        nonlocal exit_code
        print(f"check: {label} -> {'ok' if ok else 'REGRESSION'}")
        if not ok:
            exit_code = 1

    gate(metrics["fingerprints_match"], "fingerprint identity after soak")
    gate(metrics["final_state"] == "healthy", "supervisor healed to healthy")
    gate(
        metrics["injected_crashes"] >= 1
        and metrics["injected_corruptions"] >= 1,
        "soak injected >=1 crash and >=1 corruption",
    )
    gate(
        metrics["recovery_max_ticks"] <= RECOVERY_TICKS_FLOOR,
        f"recovery within {RECOVERY_TICKS_FLOOR} ticks "
        f"(max {metrics['recovery_max_ticks']})",
    )
    gate(
        metrics["availability_pct"] >= AVAILABILITY_FLOOR_PCT,
        f"read availability {metrics['availability_pct']}% >= "
        f"{AVAILABILITY_FLOOR_PCT}%",
    )
    gate(metrics["unexpected_5xx"] == 0, "zero unexpected 5xx")
    return exit_code


def main(argv: list[str] | None = None) -> int:
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny CI slice")
    parser.add_argument(
        "--as-baseline",
        action="store_true",
        help="record results as the pre-change baseline",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail when a resilience floor is missed",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="persist results even for a smoke run (CI artifact upload)",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as store_dir:
        metrics = run_bench(smoke=args.smoke, store_dir=store_dir)
    for key, value in metrics.items():
        print(f"{key}: {value}")

    exit_code = check_regression(metrics) if args.check else 0
    if args.as_baseline or args.write or not args.smoke:
        profile = SMOKE_PROFILE if args.smoke else FULL_PROFILE
        geos = SMOKE_GEOS if args.smoke else FULL_GEOS
        start = SMOKE_START if args.smoke else FULL_START
        end = SMOKE_END if args.smoke else FULL_END
        weeks = int((end - start).total_seconds() // (7 * 24 * 3600))
        write_bench(
            BENCH_NAME,
            metrics,
            as_baseline=args.as_baseline,
            workload_shape={
                "geos": len(geos),
                "weeks": weeks,
                "terms": 1,
                "rounds": ROUNDS,
            },
            extra={
                "workload": {
                    "start": start.isoformat(),
                    "end": end.isoformat(),
                    "background_scale": SCALE,
                    "geo_count": len(geos),
                    "chaos_profile": {
                        "name": profile.name,
                        "crash_rate": profile.crash_rate,
                        "stall_rate": profile.stall_rate,
                        "stall_seconds": profile.stall_seconds,
                        "corrupt_rate": profile.corrupt_rate,
                    },
                    "supervisor": {
                        "watchdog_seconds": SOAK_CONFIG.watchdog_seconds,
                        "max_restarts": SOAK_CONFIG.max_restarts,
                        "recovery_ticks": SOAK_CONFIG.recovery_ticks,
                    },
                },
                "floors": {
                    "recovery_max_ticks": RECOVERY_TICKS_FLOOR,
                    "availability_pct": AVAILABILITY_FLOOR_PCT,
                    "unexpected_5xx": 0,
                    "fingerprints_match": True,
                },
            },
        )
        print(f"wrote BENCH_{BENCH_NAME}.json")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
