"""Ground-truth detection quality (the validation the paper calls for).

Paper §6: "a more detailed validation study can unfold two promising
research directions" — here the simulator's ground truth makes the
validation exact.  Reports recall by event intensity, precision,
duration fidelity, annotation accuracy, and the SIFT/ANT three-way
characterization (seen by both / SIFT-only / ANT-only).
"""

from repro.analysis import paper_vs_measured, render_table
from repro.analysis.scoring import score_spikes
from repro.analysis.validation import validate_study
from repro.ant import characterize


def test_detection_quality(study, environment, benchmark, emit):
    # The shared scoring module (repro.analysis.scoring) provides the
    # headline metrics; the raw report is still needed for the
    # annotation- and intensity-bucket views it does not bundle.
    quality = benchmark.pedantic(
        score_spikes,
        args=(study.spikes, environment.scenario),
        rounds=1,
        iterations=1,
    )
    report = validate_study(study.spikes, environment.scenario)
    rows = [
        ("recall (all impacts)", f"{quality.recall:.0%}"),
        ("recall (intensity >= 5)", f"{quality.recall_strong:.0%}"),
        ("recall (intensity >= 10)", f"{report.recall_above_intensity(10.0):.0%}"),
        ("event-driven spike share", f"{quality.precision:.0%}"),
        ("mean detection delay (h)", f"{quality.mean_detection_delay_hours:.2f}"),
        ("mean |duration error| (h)", f"{quality.mean_abs_duration_error_hours:.2f}"),
        ("annotation accuracy", f"{report.annotation_accuracy():.0%}"),
    ]
    emit(
        render_table(
            ("metric", "value"),
            rows,
            title="Detection quality vs ground truth (not measurable in the paper)",
        ),
    )
    assert quality.recall_strong > 0.7
    assert report.annotation_accuracy() > 0.4


def test_sift_ant_characterization(study, environment, ant_dataset, benchmark, emit):
    report = benchmark.pedantic(
        characterize,
        args=(study.spikes, ant_dataset, environment.scenario),
        kwargs={"top_spikes": 150},
        rounds=1,
        iterations=1,
    )
    emit(
        render_table(
            ("cause", "seen by both", "SIFT-only"),
            [
                (
                    cause,
                    report.both_causes.get(cause, 0),
                    report.sift_only_causes.get(cause, 0),
                )
                for cause in sorted(
                    set(report.both_causes) | set(report.sift_only_causes)
                )
            ],
            title="SIFT vs ANT: who sees what (top spikes, by ground-truth cause)",
        ),
        paper_vs_measured(
            [
                (
                    "SIFT-only share of top spikes",
                    "mobile/DNS/app outages (qualitative)",
                    f"{report.sift_only_share:.0%}",
                ),
                (
                    "ANT-only darkening episodes",
                    "future work",
                    report.ant_only_episodes,
                ),
            ]
        ),
    )
    power_both = report.both_causes.get("power-weather", 0) + report.both_causes.get(
        "power-grid", 0
    )
    power_only = report.sift_only_causes.get("power-weather", 0) + (
        report.sift_only_causes.get("power-grid", 0)
    )
    invisible_only = sum(
        report.sift_only_causes.get(cause, 0)
        for cause in ("mobile", "cloud", "application")
    )
    invisible_both = sum(
        report.both_causes.get(cause, 0)
        for cause in ("mobile", "cloud", "application")
    )
    # Power problems skew to "both"; mobile/cloud/app skew to SIFT-only.
    assert power_both >= power_only
    assert invisible_only >= invisible_both
