"""Baseline comparison: SIFT vs a complaint-based detector (paper §5).

The paper argues complaint portals (Downdetector) attribute problems to
*services* but provide no geographical insight and no root-cause
suggestions, while SIFT's per-state search signal provides both.  This
benchmark runs both detectors over the same ground truth and compares
what each can say about the Verizon East Coast outage and the Texas
winter storm.
"""

from repro.analysis import paper_vs_measured, render_table
from repro.complaints import ComplaintStream, Downdetector
from repro.timeutil import TimeWindow, utc


def test_sift_vs_downdetector(study, environment, benchmark, emit):
    stream = ComplaintStream(environment.scenario)
    portal = Downdetector(stream)

    verizon_window = TimeWindow(utc(2021, 1, 26, 12), utc(2021, 1, 27, 4))
    storm_window = TimeWindow(utc(2021, 2, 15, 8), utc(2021, 2, 17, 12))

    verizon_incident = benchmark.pedantic(
        portal.incident_overlapping,
        args=("Verizon", verizon_window),
        rounds=1,
        iterations=1,
    )

    verizon_outages = [
        outage
        for outage in study.outages
        if verizon_window.contains(outage.start) or verizon_window.contains(outage.peak)
    ]
    verizon_footprint = max(
        (outage.footprint for outage in verizon_outages), default=0
    )
    storm_spike = study.spikes.in_state("TX").top_by_duration(1)[0]
    storm_power_incident = None  # "Power outage" has no complaint page

    rows = [
        (
            "Verizon 26 Jan 2021",
            "incident (no geography)" if verizon_incident else "missed",
            f"spikes in {verizon_footprint} states",
        ),
        (
            "TX winter storm",
            "indirect only (per-ISP pages)" if storm_power_incident is None else "?",
            f"{storm_spike.duration_hours} h spike, "
            f"annotations {storm_spike.annotations[:2]}",
        ),
    ]
    emit(
        render_table(
            ("event", "Downdetector view", "SIFT view"),
            rows,
            title="Baseline comparison on shared ground truth",
        ),
        paper_vs_measured(
            [
                (
                    "complaint incidents carry geography",
                    "no (paper §5)",
                    "no (by construction)",
                ),
                (
                    "Verizon incident detected by complaints",
                    True,
                    verizon_incident is not None,
                ),
                (
                    "SIFT area insight for the same event",
                    "27 states",
                    f"{verizon_footprint} states",
                ),
                (
                    "root-cause suggestions",
                    "SIFT only",
                    f"SIFT: {storm_spike.annotations[:2]}",
                ),
            ]
        ),
    )
    assert verizon_incident is not None  # complaints do see the ISP outage
    assert verizon_footprint >= 2  # but only SIFT localizes it
    assert storm_spike.annotations  # and only SIFT suggests causes
