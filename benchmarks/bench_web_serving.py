"""Web serving perf bench: cold vs warm requests/sec per endpoint.

PR 4 put a columnar :class:`repro.web.index.QueryIndex` and an
ETag-aware LRU of fully-encoded responses in front of the study.  This
bench quantifies both layers and writes ``BENCH_web.json`` (see
:mod:`benchmarks.perf` for the layout):

* ``baseline`` — the **cold** path: every request re-plans, rebuilds
  its payload from the query index, re-encodes and re-hashes it
  (``caching=False``);
* ``current`` — the **warm** path: the same requests served from the
  preloaded response cache, so the ``speedup`` section is exactly the
  warm-vs-cold ratio per endpoint;
* ``etag_304_rps`` — conditional requests revalidating with
  ``If-None-Match`` (no body moves at all);
* ``http_soak_rps`` — one real ``ThreadingHTTPServer`` soak over a
  keep-alive connection, to keep the socket path honest.

Every request issued cold is also issued warm and the bodies are
asserted byte-identical — the cache must never change a response.

Usage::

    PYTHONPATH=src python benchmarks/bench_web_serving.py [--smoke]
        [--check]   # fail when warm-vs-cold drops below the 10x floor
                    # on /api/timeline or /api/outages
        [--write]   # persist BENCH_web.json even for a smoke run
"""

from __future__ import annotations

import argparse
import http.client
import sys

from repro.runtime import StudyRuntime
from repro.timeutil import utc
from repro.web import SiftWebApp, serve

try:  # runnable both as a script and under the benchmarks package
    from perf import measure_rate, write_bench
except ImportError:  # pragma: no cover
    from benchmarks.perf import measure_rate, write_bench

BENCH_NAME = "web"

#: Same world as ``bench_service_hotpath``: two months around the Texas
#: winter storm, over a timezone-diverse geography rotation.
SCENARIO_START = utc(2021, 1, 1)
SCENARIO_END = utc(2021, 3, 1)
BACKGROUND_SCALE = 0.3
GEOS = (
    "US-TX", "US-CA", "US-NY", "US-FL", "US-AZ", "US-HI",
    "US-AK", "US-CO", "US-IL", "US-WA", "US-GA", "US-MI",
)
SMOKE_GEOS = ("US-TX", "US-CA", "US-NY", "US-FL", "US-AZ", "US-HI",
              "US-AK", "US-CO")

#: Hardware-portable acceptance floor: the response cache must serve
#: the heavy endpoints at least this many times faster than a full
#: rebuild.  A ratio of rates on the same machine, so CI boxes of any
#: speed apply the same bar.
WARM_VS_COLD_FLOOR = 10.0
CHECKED_ENDPOINTS = ("timeline", "outages")


def build_study(smoke: bool):
    geos = SMOKE_GEOS if smoke else GEOS
    with StudyRuntime.build(
        background_scale=BACKGROUND_SCALE,
        start=SCENARIO_START,
        end=SCENARIO_END,
    ) as runtime:
        return runtime.run_study(geos=geos)


def endpoint_paths(study) -> dict[str, list[str]]:
    """The request mix, keyed by the metric name of each endpoint."""
    geos = sorted(study.states)
    return {
        "index": ["/"],
        "geos": ["/api/geos"],
        "summary": ["/api/summary"],
        "timeline": [f"/api/timeline?geo={geo}" for geo in geos],
        "spikes": [f"/api/spikes?geo={geo}" for geo in geos],
        "outages": [f"/api/outages?min_states={n}" for n in (0, 2, 5, 8)],
    }


def assert_byte_identity(cold: SiftWebApp, warm: SiftWebApp, paths) -> None:
    for group in paths.values():
        for path in group:
            a = cold.handle_request(path)
            b = warm.handle_request(path)
            if a.status != 200 or a.body != b.body:
                raise AssertionError(
                    f"cached response diverges from uncached on {path}"
                )


def bench_endpoint(app: SiftWebApp, group: list[str], passes: int) -> float:
    def one_pass() -> int:
        served = 0
        for _ in range(passes):
            for path in group:
                app.handle_request(path)
                served += 1
        return served

    rate, _ = measure_rate(one_pass)
    return rate


def bench_304(app: SiftWebApp, paths, passes: int) -> float:
    """Conditional-request rate: every request revalidates to a 304."""
    validators = []
    for group in paths.values():
        for path in group:
            etag = app.handle_request(path).header("ETag")
            validators.append((path, {"If-None-Match": etag}))

    def one_pass() -> int:
        served = 0
        for _ in range(passes):
            for path, headers in validators:
                response = app.handle_request(path, headers=headers)
                if response.status != 304:
                    raise AssertionError(f"expected 304 on {path}")
                served += 1
        return served

    rate, _ = measure_rate(one_pass)
    return rate


def bench_http_soak(study, requests: int, *, caching: bool) -> float:
    """Requests/sec over one keep-alive connection to a live server."""
    server, _thread = serve(study, port=0, caching=caching, preload=caching)
    host, port = server.server_address[:2]
    soak_paths = [
        "/api/geos",
        f"/api/timeline?geo={sorted(study.states)[0]}",
        "/api/outages",
    ]
    try:
        connection = http.client.HTTPConnection(host, port, timeout=10)

        def one_pass() -> int:
            for index in range(requests):
                connection.request("GET", soak_paths[index % len(soak_paths)])
                response = connection.getresponse()
                response.read()
                if response.status != 200:
                    raise AssertionError(f"soak got HTTP {response.status}")
            return requests

        rate, _ = measure_rate(one_pass, repeats=2, warmup=1)
        connection.close()
    finally:
        server.shutdown()
    return rate


def run_bench(smoke: bool) -> tuple[dict, dict]:
    """Measure the request mix cold and warm; return both metric sets."""
    study = build_study(smoke)
    paths = endpoint_paths(study)
    cold_app = SiftWebApp(study, caching=False, preload=False)
    warm_app = SiftWebApp(study, caching=True, preload=True)
    assert_byte_identity(cold_app, warm_app, paths)

    cold_passes, warm_passes = (1, 20) if smoke else (2, 50)
    cold: dict = {"smoke": smoke}
    warm: dict = {"smoke": smoke, "byte_identical": True}
    for name, group in paths.items():
        cold[f"{name}_rps"] = round(
            bench_endpoint(cold_app, group, cold_passes), 1
        )
        warm[f"{name}_rps"] = round(
            bench_endpoint(warm_app, group, warm_passes), 1
        )
        warm[f"warm_vs_cold_{name}"] = round(
            warm[f"{name}_rps"] / cold[f"{name}_rps"], 1
        )
    cold["etag_304_rps"] = round(bench_304(cold_app, paths, cold_passes), 1)
    warm["etag_304_rps"] = round(bench_304(warm_app, paths, warm_passes), 1)

    soak_requests = 150 if smoke else 600
    cold["http_soak_rps"] = round(
        bench_http_soak(study, soak_requests, caching=False), 1
    )
    warm["http_soak_rps"] = round(
        bench_http_soak(study, soak_requests, caching=True), 1
    )
    return cold, warm


def check_floor(warm: dict) -> int:
    """Apply the hardware-portable warm-vs-cold floor; return exit code."""
    failed = False
    for name in CHECKED_ENDPOINTS:
        ratio = warm[f"warm_vs_cold_{name}"]
        verdict = "ok" if ratio >= WARM_VS_COLD_FLOOR else "REGRESSION"
        if ratio < WARM_VS_COLD_FLOOR:
            failed = True
        print(
            f"check: /api/{name} warm vs cold {ratio:.1f}x "
            f"(floor {WARM_VS_COLD_FLOOR:.0f}x) -> {verdict}"
        )
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny CI scenario")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail when the warm-vs-cold ratio drops below the 10x floor",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="persist results even for a smoke run (CI artifact upload)",
    )
    args = parser.parse_args(argv)

    cold, warm = run_bench(smoke=args.smoke)
    print("-- cold (caching off) --")
    for key, value in cold.items():
        print(f"{key}: {value}")
    print("-- warm (cached + preloaded) --")
    for key, value in warm.items():
        print(f"{key}: {value}")

    exit_code = check_floor(warm) if args.check else 0
    # Smoke runs only persist on request: the committed numbers come
    # from the full workload, but CI uploads its fresh measurements.
    if args.write or not args.smoke:
        extra = {
            "workload": {
                "scenario": {
                    "start": SCENARIO_START.isoformat(),
                    "end": SCENARIO_END.isoformat(),
                    "background_scale": BACKGROUND_SCALE,
                },
                "geos": list(SMOKE_GEOS if args.smoke else GEOS),
            },
        }
        write_bench(BENCH_NAME, cold, as_baseline=True, extra=extra)
        write_bench(BENCH_NAME, warm)
        print(f"wrote BENCH_{BENCH_NAME}.json")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
