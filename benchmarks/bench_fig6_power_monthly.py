"""Figure 6: monthly count of power-annotated spikes lasting >= 5 h.

The paper's climate finding: power outages dominate long spikes, with
two outlier clusters — California's wildfire/heat-wave season
(Aug/Sep 2020) and the Texas winter storms (Jan/Feb 2021).
"""

from repro.analysis import (
    monthly_power_long_spikes,
    paper_vs_measured,
    power_share_of_long_spikes,
    render_bars,
)

MONTHS = ("Jan", "Feb", "Mar", "Apr", "May", "Jun",
          "Jul", "Aug", "Sep", "Oct", "Nov", "Dec")


def test_fig6_power_annotated_monthly(study, benchmark, emit):
    monthly = benchmark(monthly_power_long_spikes, study.spikes, 5)
    rows = []
    values = []
    for year in (2020, 2021):
        for month in range(1, 13):
            rows.append(f"{MONTHS[month - 1]} {year}")
            values.append(monthly.get((year, month), 0))
    share = power_share_of_long_spikes(study.spikes)

    ca_peak = sum(monthly.get((2020, m), 0) for m in (8, 9))
    ca_rest = sum(monthly.get((2020, m), 0) for m in (3, 4, 5))
    tx_peak = sum(monthly.get((2021, m), 0) for m in (1, 2))
    tx_rest = sum(monthly.get((2021, m), 0) for m in (4, 5, 6))

    emit(
        render_bars(
            rows,
            [float(v) for v in values],
            title="Fig. 6 - power-annotated spikes >= 5 h per month",
        ),
        paper_vs_measured(
            [
                ("power share of >= 5 h spikes", "73%", f"{share:.0%}"),
                ("Aug+Sep 2020 count (CA wildfires)", "outlier", ca_peak),
                ("Mar-May 2020 count (baseline)", "low", ca_rest),
                ("Jan+Feb 2021 count (TX storms)", "outlier", tx_peak),
                ("Apr-Jun 2021 count (baseline)", "low", tx_rest),
            ]
        ),
    )
    # The outlier months must clearly dominate their year's baseline.
    assert ca_peak > 1.5 * max(ca_rest, 1)
    assert tx_peak > 1.5 * max(tx_rest, 1)
    assert share > 0.3
