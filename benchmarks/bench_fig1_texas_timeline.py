"""Figure 1: the <Internet outage> popularity index in Texas.

Regenerates the paper's opening figure — the Texas timeline for
19 Jan - 21 Feb 2021 with its two news-verified anchors: the Verizon
East Coast outage (26 Jan) and the winter-storm power outage (15 Feb).
The benchmarked kernel is the stitching+renormalization step that
produces the continuous series.
"""

from repro.analysis import paper_vs_measured, render_timeline
from repro.core.stitching import stitch_frames
from repro.timeutil import TimeWindow, utc


def test_fig1_texas_timeline(environment, study, benchmark, emit):
    window = TimeWindow(utc(2021, 1, 19), utc(2021, 2, 21))
    tx = study.states["US-TX"]

    frames = tuple(tx.averaging.responses)
    timeline, _report = benchmark.pedantic(
        stitch_frames, args=(frames,), rounds=3, iterations=1
    )

    cut = timeline.renormalized().slice(window)
    storm = study.spikes.in_state("TX").top_by_duration(1)[0]
    verizon_day = [
        spike
        for spike in study.spikes.in_state("TX")
        if spike.peak.date().isoformat() == "2021-01-26"
    ]
    emit(
        render_timeline(
            cut.values,
            title="Fig. 1 - <Internet outage> in Texas, 19 Jan - 21 Feb 2021",
        ),
        paper_vs_measured(
            [
                ("winter-storm spike start", "15 Feb. 2021-10h", storm.label),
                ("winter-storm duration (h)", 45, storm.duration_hours),
                (
                    "Verizon spike on 26 Jan",
                    "present",
                    "present" if verizon_day else "MISSING",
                ),
                (
                    "storm magnitude > Verizon magnitude",
                    True,
                    bool(
                        verizon_day
                        and storm.magnitude > max(s.magnitude for s in verizon_day)
                    ),
                ),
            ],
            title="Fig. 1 anchors",
        ),
    )
    assert storm.duration_hours >= 30
    assert verizon_day
