"""Table 3: the most impactful power outages per state.

Paper anchors: Texas winter storm (45 h) on top; California heat wave,
Michigan storm, Washington storm, Colorado severed power line, Ohio
storm, and the Kentucky tornado in the tail.
"""

from repro.analysis import (
    paper_vs_measured,
    render_table,
    top_power_outages_by_state,
)


def test_table3_power_outages_by_state(study, benchmark, emit):
    rows = benchmark(top_power_outages_by_state, study.spikes, 7)
    table = render_table(
        ("spike time", "state", "duration (h)", "cause hint"),
        [(r.label, r.state, r.duration_hours, r.cause_hint) for r in rows],
        title="Table 3 - most impactful power outages by state",
    )
    states = [row.state for row in rows]
    ca_row = next((r for r in rows if r.state == "CA"), None)
    emit(
        table,
        paper_vs_measured(
            [
                ("rank-1 row", "TX 45h Winter storm", f"{rows[0].state} {rows[0].duration_hours}h {rows[0].cause_hint}"),
                ("distinct states", "7 of 7", f"{len(set(states))} of {len(states)}"),
                (
                    "CA row (heat wave / wildfire)",
                    "06 Sep. 2020, 18h",
                    f"{ca_row.label}, {ca_row.duration_hours}h" if ca_row else "MISSING",
                ),
            ]
        ),
    )
    assert rows[0].state == "TX"
    assert rows[0].duration_hours >= 35
    assert len(set(states)) == len(states)  # one row per state
    assert all(row.duration_hours >= rows[-1].duration_hours for row in rows)
