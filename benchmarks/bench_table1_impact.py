"""Table 1: the most impactful spikes based on their durations.

Paper anchors: the Texas winter storm tops the table at 45 hours, and
the highly-impactful T-Mobile outage (CA, 19 h) is *not traceable* in
the ANT active-probing data because mobile nodes do not answer probes.
"""

from repro.analysis import most_impactful, paper_vs_measured, render_table
from repro.ant import trace_spike


def test_table1_most_impactful(study, ant_dataset, benchmark, emit):
    rows = benchmark(most_impactful, study.spikes, 7)
    table = render_table(
        ("spike time", "state", "duration (h)", "outage (top annotation)"),
        [(r.label, r.state, r.duration_hours, r.spike.annotations) for r in rows],
        title="Table 1 - most impactful spikes by duration",
    )

    top = rows[0]
    tmobile = [
        spike
        for spike in study.spikes.in_state("CA")
        if spike.start.date().isoformat() == "2020-06-15"
        and spike.duration_hours >= 5
    ]
    tmobile_traced = (
        trace_spike(ant_dataset, max(tmobile, key=lambda s: s.duration_hours)).confirmed
        if tmobile
        else None
    )
    emit(
        table,
        paper_vs_measured(
            [
                ("rank-1 spike", "15 Feb. 2021-10h TX 45h", f"{top.label} {top.state} {top.duration_hours}h"),
                ("rank-1 cause", "Winter storm (power)", top.outage),
                ("T-Mobile spike in CA (15 Jun 2020)", "present", "present" if tmobile else "MISSING"),
                ("T-Mobile traced in ANT data", "no (mobile invisible)", tmobile_traced),
            ]
        ),
    )
    assert top.state == "TX"
    assert top.duration_hours >= 35
    assert tmobile
    assert tmobile_traced is False
