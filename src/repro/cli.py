"""Command-line interface: ``python -m repro <command>``.

Commands mirror the system's stages:

* ``simulate`` — build the ground-truth scenario and print its summary;
* ``detect``   — run the pipeline for one geography and list top spikes;
* ``study``    — run a multi-geography study and print headline stats;
* ``serve``    — run a study and expose the web interface (the
  response-cache knobs: ``--cache-size``, ``--no-cache``,
  ``--no-preload``);
* ``watch``    — stream the study one weekly frame per tick
  (DESIGN.md §12): each tick crawls only the newest frame, re-stitches
  the dirty tail, and publishes spikes as they appear; ``--serve``
  installs delta snapshots into a live web app with ``/api/stream``
  events, ``--store`` makes an interrupted watch resume mid-stream
  with zero refetch;
* ``report``   — regenerate the paper's headline numbers;
* ``scenarios`` — the foundry (DESIGN.md §11): ``generate`` compiles
  scenario-pack families (or a spec JSON) into ground-truth worlds,
  ``score`` runs them through the pipeline and prints per-family
  detection quality.

Every pipeline command accepts the runtime knobs: ``--workers`` and
``--executor {auto,serial,thread,process}`` for parallel per-geography
analysis (process = geography-sharded worker processes; results are
byte-identical across executors), ``--db`` for a durable database that
checkpoints finished geographies (rerunning after an interrupt resumes
instead of recrawling), ``--store DIR`` for the memory-mapped columnar
store (``serve --from-store`` then serves a finished study from it
without crawling), ``--progress`` to stream the structured progress
events as they happen, and ``--chaos PROFILE``/``--chaos-seed`` to
inject deterministic faults into the simulated Trends service (see
DESIGN.md §7) — the fault summary prints after the run.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis import (
    daily_distribution,
    duration_cdf,
    footprint_cdf,
    most_impactful,
    power_share_of_long_spikes,
    render_table,
    state_cdf,
    yearly_counts,
)
from repro.core.pipeline import SiftConfig
from repro.core.progress import ProgressLog, text_listener
from repro.core.reconstruct import (
    DEFAULT_AVERAGER,
    DEFAULT_STITCHER,
    averager_names,
    stitcher_names,
)
from repro.runtime import ALL_GEOS, EXECUTOR_KINDS, StudyRuntime
from repro.trends.faults import PROFILES
from repro.world.foundry import (
    PACK_SEED,
    ScenarioSpec,
    scenario_pack,
    score_pack_family,
)
from repro.world.scenarios import Scenario, ScenarioConfig


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="background event scale (1.0 = paper scale, default 0.05)",
    )
    parser.add_argument("--seed", type=int, default=20221025)


def _add_runtime(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="workers analyzing geographies concurrently (default 1)",
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTOR_KINDS,
        default="auto",
        help="where those workers run: serial, a thread pool, or "
        "geography-sharded worker processes; auto picks serial for one "
        "worker and threads otherwise (results are byte-identical "
        "either way; default auto)",
    )
    parser.add_argument(
        "--db",
        default=":memory:",
        help="sqlite path for the collection database; a file path "
        "checkpoints finished geographies so reruns resume",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="columnar store directory: per-geography checkpoints land "
        "there as memory-mapped .npy columns (instead of the sqlite "
        "tables) and `serve --from-store` serves a finished study "
        "from it without crawling",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="stream structured progress events to stderr",
    )
    parser.add_argument(
        "--chaos",
        choices=sorted(PROFILES),
        default=None,
        help="inject deterministic faults into the simulated Trends "
        "service (fault profile name)",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=7,
        help="seed of the fault plan; (profile, seed) replays a chaos "
        "run exactly (default 7)",
    )
    parser.add_argument(
        "--stitcher",
        choices=stitcher_names(),
        default=DEFAULT_STITCHER,
        help="frame-stitching backend (see DESIGN.md §9; default "
        f"{DEFAULT_STITCHER}, the paper's overlap-ratio chain)",
    )
    parser.add_argument(
        "--averager",
        choices=averager_names(),
        default=DEFAULT_AVERAGER,
        help="fetch-round merging backend (see DESIGN.md §9; default "
        f"{DEFAULT_AVERAGER}, the paper's flat running means)",
    )


def _sift_config(args: argparse.Namespace) -> SiftConfig:
    return SiftConfig(
        stitcher=getattr(args, "stitcher", DEFAULT_STITCHER),
        averager=getattr(args, "averager", DEFAULT_AVERAGER),
    )


def _runtime(args: argparse.Namespace) -> StudyRuntime:
    progress = None
    if getattr(args, "progress", False):
        progress = text_listener(lambda line: print(line, file=sys.stderr))
    return StudyRuntime.build(
        background_scale=args.scale,
        seed=args.seed,
        max_workers=getattr(args, "workers", 1),
        executor=getattr(args, "executor", "auto"),
        database=getattr(args, "db", ":memory:"),
        store=getattr(args, "store", None),
        sift=_sift_config(args),
        progress=progress,
        faults=getattr(args, "chaos", None),
        fault_seed=getattr(args, "chaos_seed", 7),
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    scenario = Scenario.build(
        ScenarioConfig(seed=args.seed, background_scale=args.scale)
    )
    print(f"scenario: {len(scenario.events)} events, "
          f"{scenario.total_impacts} state-level impacts")
    by_cause: dict[str, int] = {}
    for event in scenario.events:
        by_cause[event.cause.value] = by_cause.get(event.cause.value, 0) + 1
    print(render_table(
        ("cause", "events"),
        sorted(by_cause.items(), key=lambda item: -item[1]),
    ))
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    runtime = _runtime(args)
    result = runtime.analyze_state(args.geo)
    print(result.timeline.describe())
    print(f"{len(result.spikes)} spikes "
          f"({result.averaging.rounds_used} averaging rounds, "
          f"converged={result.averaging.converged}, "
          f"backend={result.averaging.stitcher}/{result.averaging.averager})")
    rows = [
        (spike.label, spike.duration_hours, f"{spike.magnitude:.1f}")
        for spike in result.spikes.top_by_duration(args.top)
    ]
    print(render_table(("spike time", "duration (h)", "magnitude"), rows))
    return 0


def _study(args: argparse.Namespace):
    runtime = _runtime(args)
    geos = tuple(args.geos) if args.geos else ALL_GEOS
    return runtime, runtime.run_study(geos=geos)


def _cmd_study(args: argparse.Namespace) -> int:
    runtime, study = _study(args)
    if study.resumed_geos:
        print(f"resumed {len(study.resumed_geos)} checkpointed geographies: "
              f"{', '.join(study.resumed_geos)}")
    print(f"{study.spike_count} spikes, {len(study.outages)} outages")
    print(f"yearly counts: {yearly_counts(study.spikes)}")
    cdf = state_cdf(study.spikes)
    print(f"top-10-state share: {cdf.share_of_top(10):.0%}")
    print(f"spikes >= 3 h: {duration_cdf(study.spikes).fraction_at_least(3):.0%}")
    print(f"outages >= 10 states: "
          f"{footprint_cdf(study.outages).fraction_at_least(10):.1%}")
    print(f"weekend dip (weekday/weekend): "
          f"{daily_distribution(study.spikes).weekend_dip:.2f}")
    print(f"power share of >= 5 h spikes: "
          f"{power_share_of_long_spikes(study.spikes):.0%}")
    report = runtime.report()
    print(f"crawl: {report.fetched} fetched, {report.served_from_cache} cached, "
          f"{report.frames_per_second:.0f} frames/s")
    faults = runtime.fault_report()
    if faults is not None:
        print(faults.describe())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    _, study = _study(args)
    rows = [
        (row.label, row.state, row.duration_hours, row.outage)
        for row in most_impactful(study.spikes, count=7)
    ]
    print(render_table(
        ("spike time", "state", "duration (h)", "outage"),
        rows,
        title="Table 1: most impactful spikes by duration",
    ))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    log = ProgressLog()
    listeners = [log]
    if args.progress:
        listeners.append(
            text_listener(lambda line: print(line, file=sys.stderr))
        )

    def progress(event):
        for listener in listeners:
            listener(event)

    if args.from_store:
        if not args.store:
            print("serve --from-store requires --store DIR", file=sys.stderr)
            return 2
        from repro.store import ColumnarStore
        from repro.web import serve

        store = ColumnarStore(
            args.store, stitcher=args.stitcher, averager=args.averager
        )
        # Serve the checkpointed study straight off the memory-mapped
        # columns: no scenario build, no crawl.
        study = store.load_study()
        server, _thread = serve(
            study,
            host=args.host,
            port=args.port,
            progress_log=log,
            execution={"store": args.store, "from_store": True},
            cache_size=args.cache_size,
            caching=not args.no_cache,
            preload=not args.no_preload,
            progress=progress,
        )
    else:
        runtime = StudyRuntime.build(
            background_scale=args.scale,
            seed=args.seed,
            max_workers=args.workers,
            executor=args.executor,
            database=args.db,
            store=args.store,
            sift=_sift_config(args),
            progress=progress,
            faults=args.chaos,
            fault_seed=args.chaos_seed,
        )
        geos = tuple(args.geos) if args.geos else ALL_GEOS
        study = runtime.run_study(geos=geos)
        server, _thread = runtime.serve_web(
            study,
            host=args.host,
            port=args.port,
            progress_log=log,
            cache_size=args.cache_size,
            caching=not args.no_cache,
            preload=not args.no_preload,
            progress=progress,
        )
    host, port = server.server_address[:2]
    cache = "off" if args.no_cache else f"{args.cache_size} entries"
    print(f"serving SIFT on http://{host}:{port}/ "
          f"(response cache: {cache}; Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.shutdown()
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    import time

    from repro.errors import SupervisorHalted
    from repro.streaming import StreamConfig

    runtime = _runtime(args)
    geos = tuple(args.geos) if args.geos else ALL_GEOS
    stream = StreamConfig(
        rounds=args.rounds, checkpoint_every=args.checkpoint_every
    )
    supervisor = None
    if args.supervise:
        from repro.streaming import (
            PROCESS_PROFILES,
            ProcessChaos,
            SupervisorConfig,
        )

        chaos = None
        if args.process_chaos != "none":
            chaos = ProcessChaos(
                PROCESS_PROFILES[args.process_chaos],
                seed=args.process_chaos_seed,
            )
        supervisor = runtime.supervise(
            geos,
            config=SupervisorConfig(
                watchdog_seconds=args.watchdog,
                max_restarts=args.max_restarts,
            ),
            stream=stream,
            chaos=chaos,
        )
        # The daemon attribute may be rebuilt across restarts; always go
        # through the supervisor from here on.
        step, source = supervisor.tick, supervisor
    else:
        daemon = runtime.stream_daemon(geos, stream=stream)
        step, source = daemon.tick, daemon
    if source.ticks_done:
        print(f"resumed mid-stream at tick {source.ticks_done}/"
              f"{source.total_ticks} (zero refetch)")
    server = None
    remaining = args.ticks
    try:
        if args.serve and not source.done:
            from repro.web import SiftWebApp, serve_app

            # The app needs a first snapshot to exist; the daemon
            # installs deltas into it from the second tick on.
            step()
            if remaining is not None:
                remaining -= 1
            app = SiftWebApp(
                (supervisor.daemon if supervisor else daemon).snapshot_study(),
                crawl_report=runtime.report(),
                fault_report=runtime.fault_report(),
                execution=runtime.execution_info(),
                health_source=(
                    supervisor.health_payload if supervisor else None
                ),
                max_inflight=args.max_inflight,
            )
            if supervisor is not None:
                supervisor.attach_app(app)
            else:
                daemon.app = app
            server, _thread = serve_app(app, host=args.host, port=args.port)
            host, port = server.server_address[:2]
            print(f"watching on http://{host}:{port}/ "
                  f"(live events: /api/stream?since=0; health: /healthz)")
        while not source.done and (remaining is None or remaining > 0):
            result = step()
            if remaining is not None:
                remaining -= 1
            line = (
                f"tick {result.tick + 1}/{source.total_ticks} "
                f"-> {result.frame.end.date()}: "
                f"{len(result.published)} published, "
                f"{result.spike_count} spikes total "
                f"({result.elapsed_seconds * 1000:.0f} ms, "
                f"fp {result.fingerprint})"
            )
            if supervisor is not None and supervisor.restarts:
                line += (f" [{supervisor.state.value}, "
                         f"{supervisor.restarts} restarts]")
            print(line)
            for spike in result.published[:5]:
                print(f"  spike [{spike.geo}] peak {spike.peak.isoformat()} "
                      f"magnitude {spike.magnitude:.1f} "
                      f"({spike.duration_hours}h)")
            if args.tick and not source.done:
                time.sleep(args.tick)
    except SupervisorHalted as error:
        print(f"supervisor halted at tick {source.ticks_done}/"
              f"{source.total_ticks}: {error}", file=sys.stderr)
        if server is not None:
            server.shutdown()
        return 1
    except KeyboardInterrupt:
        print(f"interrupted at tick {source.ticks_done}/{source.total_ticks}"
              + (" (stream checkpointed; rerun to resume)"
                 if runtime.store is not None else ""))
        if server is not None:
            server.shutdown()
        return 130
    if source.done:
        study = source.finalize()
        line = (f"stream complete: {study.spike_count} spikes, "
                f"{len(study.outages)} outages, fp {study.fingerprint()}")
        if supervisor is not None:
            line += (f" ({supervisor.state.value}, "
                     f"{supervisor.restarts} restarts, "
                     f"{len(supervisor.quarantined)} quarantined)")
        print(line)
    else:
        print(f"paused at tick {source.ticks_done}/{source.total_ticks}"
              + (" (stream checkpointed; rerun to resume)"
                 if runtime.store is not None else ""))
    if server is not None:
        if args.ticks is None:
            print("serving final study; Ctrl-C to stop")
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                pass
        server.shutdown()
    return 0


def _selected_specs(args: argparse.Namespace) -> dict[str, ScenarioSpec]:
    """The specs a ``scenarios`` action operates on, keyed by name."""
    if args.spec:
        import json

        with open(args.spec, encoding="utf-8") as handle:
            payload = json.load(handle)
        # Accept both a bare spec and an archived fuzzer fixture.
        spec = ScenarioSpec.from_dict(payload.get("spec", payload))
        return {spec.name: spec}
    pack = scenario_pack(smoke=args.smoke)
    if not args.families:
        return pack
    unknown = [name for name in args.families if name not in pack]
    if unknown:
        raise SystemExit(
            f"unknown families: {', '.join(unknown)} "
            f"(pack has: {', '.join(pack)})"
        )
    return {name: pack[name] for name in args.families}


def _cmd_scenarios_generate(args: argparse.Namespace) -> int:
    specs = _selected_specs(args)
    if args.as_json:
        import json

        print(json.dumps(
            {name: spec.to_dict() for name, spec in specs.items()},
            indent=2,
            sort_keys=True,
        ))
        return 0
    for name, spec in specs.items():
        scenario = spec.compile(args.seed)
        window = spec.window
        print(f"{name}: {len(scenario.events)} events, "
              f"{scenario.total_impacts} impacts over {window.hours} h, "
              f"geos={','.join(spec.geos)}")
        rows = [
            (
                event.event_id,
                event.start.strftime("%Y-%m-%d %H:%M"),
                event.cause.value,
                ",".join(sorted(event.states)),
            )
            for event in scenario.events
        ]
        print(render_table(("event", "start (UTC)", "cause", "states"), rows))
    return 0


def _cmd_scenarios_score(args: argparse.Namespace) -> int:
    specs = _selected_specs(args)
    rows = []
    for name, spec in specs.items():
        score = score_pack_family(
            spec, args.seed, stitcher=args.stitcher, averager=args.averager
        )
        spikes, outages = score.spikes, score.outages
        rows.append((
            name,
            f"{spikes.precision:.3f}",
            f"{spikes.recall:.3f}",
            f"{spikes.recall_strong:.3f}",
            f"{spikes.mean_detection_delay_hours:.2f}",
            f"{outages.f1:.3f}",
            spikes.total_spikes,
            spikes.total_impacts,
        ))
    print(render_table(
        ("family", "precision", "recall", "recall>=5", "delay (h)",
         "grouped f1", "spikes", "impacts"),
        rows,
        title=f"Scenario-pack detection quality "
        f"({args.stitcher}/{args.averager}, seed {args.seed})",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SIFT reproduction: outage detection from search trends",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser("simulate", help="summarize the ground truth")
    _add_scale(simulate)
    simulate.set_defaults(handler=_cmd_simulate)

    detect = commands.add_parser("detect", help="run SIFT for one geography")
    _add_scale(detect)
    _add_runtime(detect)
    detect.add_argument("--geo", default="US-TX")
    detect.add_argument("--top", type=int, default=10)
    detect.set_defaults(handler=_cmd_detect)

    study = commands.add_parser("study", help="run a multi-geography study")
    _add_scale(study)
    _add_runtime(study)
    study.add_argument("geos", nargs="*", help="geographies (default: all 51)")
    study.set_defaults(handler=_cmd_study)

    report = commands.add_parser("report", help="regenerate headline tables")
    _add_scale(report)
    _add_runtime(report)
    report.add_argument("geos", nargs="*")
    report.set_defaults(handler=_cmd_report)

    serve_cmd = commands.add_parser("serve", help="serve the web interface")
    _add_scale(serve_cmd)
    _add_runtime(serve_cmd)
    serve_cmd.add_argument("geos", nargs="*")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8080)
    serve_cmd.add_argument(
        "--cache-size",
        type=int,
        default=512,
        help="LRU bound of the encoded-response cache (default 512)",
    )
    serve_cmd.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the response cache (payloads still come from the "
        "columnar query index)",
    )
    serve_cmd.add_argument(
        "--no-preload",
        action="store_true",
        help="skip pre-encoding the hot payloads at startup",
    )
    serve_cmd.add_argument(
        "--from-store",
        action="store_true",
        help="serve a finished study straight from the columnar store "
        "given by --store (memory-mapped, no crawl)",
    )
    serve_cmd.set_defaults(handler=_cmd_serve)

    watch = commands.add_parser(
        "watch", help="stream the study tick-by-tick (one weekly frame each)"
    )
    _add_scale(watch)
    _add_runtime(watch)
    watch.add_argument("geos", nargs="*", help="geographies (default: all 51)")
    watch.add_argument(
        "--tick",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="pace: sleep this long between ticks (default 0, run flat out)",
    )
    watch.add_argument(
        "--ticks",
        type=int,
        default=None,
        metavar="N",
        help="stop after N ticks this invocation (with --store, a later "
        "run resumes mid-stream with zero refetch)",
    )
    watch.add_argument(
        "--rounds",
        type=int,
        default=2,
        help="fetch rounds per frame (fixed per tick; default 2)",
    )
    watch.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="TICKS",
        help="stream-checkpoint cadence into --store (default every tick)",
    )
    watch.add_argument(
        "--serve",
        action="store_true",
        help="expose the study over HTTP while it streams; each tick "
        "installs a delta snapshot and /api/stream emits live events",
    )
    watch.add_argument("--host", default="127.0.0.1")
    watch.add_argument("--port", type=int, default=8080)
    watch.add_argument(
        "--supervise",
        action="store_true",
        help="run ticks under the self-healing supervisor: watchdog "
        "deadlines, checkpoint restarts with backoff, store integrity "
        "quarantine, /healthz + /readyz health probes",
    )
    watch.add_argument(
        "--max-restarts",
        type=int,
        default=8,
        metavar="N",
        help="supervisor halts after N consecutive failures of one tick "
        "(default 8)",
    )
    watch.add_argument(
        "--watchdog",
        type=float,
        default=3600.0,
        metavar="SECONDS",
        help="virtual-time deadline per supervised tick (default 3600)",
    )
    watch.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="with --serve: shed requests beyond N concurrent with a "
        "503 Retry-After (default: unbounded)",
    )
    watch.add_argument(
        "--process-chaos",
        choices=["none", "crashy", "wedged", "torn", "havoc"],
        default="none",
        help="with --supervise: inject seeded process faults (tick "
        "crashes, watchdog stalls, checkpoint corruption)",
    )
    watch.add_argument(
        "--process-chaos-seed",
        type=int,
        default=8,
        metavar="SEED",
        help="seed for the process-chaos substreams (default 8)",
    )
    watch.set_defaults(handler=_cmd_watch)

    scenarios = commands.add_parser(
        "scenarios", help="generate and score foundry scenario worlds"
    )
    actions = scenarios.add_subparsers(dest="action", required=True)

    def _add_selection(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "families",
            nargs="*",
            help="scenario-pack family names (default: the whole pack)",
        )
        sub.add_argument(
            "--spec",
            default=None,
            metavar="FILE",
            help="operate on a ScenarioSpec JSON file (or an archived "
            "fuzzer fixture) instead of pack families",
        )
        sub.add_argument(
            "--seed",
            type=int,
            default=PACK_SEED,
            help=f"world seed (default {PACK_SEED}, the frozen pack seed)",
        )
        sub.add_argument(
            "--smoke",
            action="store_true",
            help="the reduced-scale pack the CI smoke job runs",
        )

    generate = actions.add_parser(
        "generate", help="compile specs into ground-truth worlds"
    )
    _add_selection(generate)
    generate.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="print the selected specs as JSON instead of event tables",
    )
    generate.set_defaults(handler=_cmd_scenarios_generate)

    score = actions.add_parser(
        "score", help="run generated worlds through the pipeline and score"
    )
    _add_selection(score)
    score.add_argument(
        "--stitcher", choices=stitcher_names(), default=DEFAULT_STITCHER
    )
    score.add_argument(
        "--averager", choices=averager_names(), default=DEFAULT_AVERAGER
    )
    score.set_defaults(handler=_cmd_scenarios_score)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
