"""SIFT reproduction: user-affecting Internet outage detection via search trends.

A full, self-contained reproduction of *"Is my Internet down?": Sifting
through User-Affecting Outages with Google Trends* (Kirci, Vahlensieck,
Vanbever — IMC 2022), including every substrate the paper depends on:

* :mod:`repro.world` — a ground-truth model of the 2020-2021 US outage
  landscape and the search behaviour it drives;
* :mod:`repro.trends` — a Google Trends service simulator with the real
  service's sampling, anonymity, indexing, and rate-limit semantics;
* :mod:`repro.collection` — the fetcher-fleet crawler and its database;
* :mod:`repro.core` — SIFT itself: stitching, re-fetch averaging, spike
  detection, area grouping, and context annotation;
* :mod:`repro.ant` — an ANT-outages-style active-probing data set for
  cross-validation;
* :mod:`repro.analysis` — the evaluation figures and tables as code.

Quickstart::

    from repro import make_environment

    env = make_environment(background_scale=0.05)
    result = env.run_study(geos=("US-TX",))
    for spike in result.spikes.top_by_duration(3):
        print(spike.label, spike.duration_hours, spike.annotations)
"""

from repro.env import (
    ALL_GEOS,
    STUDY_END,
    STUDY_START,
    Environment,
    EnvironmentConfig,
    make_environment,
)
from repro.runtime import RuntimeConfig, StudyRuntime
from repro.timeutil import TimeWindow, utc

__version__ = "1.0.0"

__all__ = [
    "ALL_GEOS",
    "Environment",
    "EnvironmentConfig",
    "RuntimeConfig",
    "STUDY_END",
    "STUDY_START",
    "StudyRuntime",
    "TimeWindow",
    "make_environment",
    "utc",
    "__version__",
]
