"""Complaint-based detection baseline (the Downdetector comparator, §5).

Derives per-service complaint streams from the same ground truth as the
Trends simulator and detects incidents from unusual complaint volume —
service-attributed but geography-blind, the structural contrast the
paper draws against SIFT.
"""

from repro.complaints.detector import (
    Downdetector,
    DowndetectorConfig,
    Incident,
    detect_incidents,
)
from repro.complaints.stream import (
    ComplaintConfig,
    ComplaintStream,
    tracked_services,
)

__all__ = [
    "ComplaintConfig",
    "ComplaintStream",
    "Downdetector",
    "DowndetectorConfig",
    "Incident",
    "detect_incidents",
    "tracked_services",
]
