"""Complaint streams: the raw material of a Downdetector-style service.

The paper's related work (§5) contrasts SIFT with complaint-based
detection: Downdetector watches user-submitted complaints per *service*
and flags problems when complaint volume is unusual.  To compare the
approaches on equal footing, this module derives per-service hourly
complaint streams from the same ground-truth scenario the Trends
simulator uses:

* every outage event generates complaints against the services its
  search terms name (users complain about <Verizon>, not about "the
  Internet");
* complaint volume follows the same interest envelope as searches but
  is **not geo-tagged** — the key structural limitation the paper
  points out (Downdetector offers no geographical insight);
* a small background of always-on complaints models the noise floor a
  complaint detector must threshold against.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.rand import hashed_normal, stable_key
from repro.timeutil import TimeWindow, hour_index
from repro.world.behavior import interest_shape
from repro.world.catalog import Category, get_term, terms_in_category
from repro.world.scenarios import Scenario

#: Services a complaint portal tracks: providers, clouds, applications.
_SERVICE_CATEGORIES = (Category.ISP, Category.CLOUD, Category.APPLICATION)


def tracked_services() -> tuple[str, ...]:
    """Service names with a complaint page (catalog providers + apps)."""
    names: list[str] = []
    for category in _SERVICE_CATEGORIES:
        names.extend(term.name for term in terms_in_category(category))
    return tuple(names)


@dataclasses.dataclass(frozen=True, slots=True)
class ComplaintConfig:
    """Volume model of the complaint stream."""

    #: Baseline complaints per service per hour (national, busy hour).
    baseline_per_hour: float = 6.0
    #: Complaints generated per intensity unit at an event's peak.
    complaints_per_intensity: float = 40.0
    #: Sigma of multiplicative noise on hourly complaint counts.
    noise_sigma: float = 0.35
    seed: int = 777


class ComplaintStream:
    """Hourly complaint counts per service, derived from ground truth."""

    def __init__(self, scenario: Scenario, config: ComplaintConfig | None = None):
        self.scenario = scenario
        self.config = config or ComplaintConfig()
        self._span = scenario.window
        self._cache: dict[str, np.ndarray] = {}

    @property
    def window(self) -> TimeWindow:
        return self._span

    def counts(self, service: str, window: TimeWindow | None = None) -> np.ndarray:
        """Hourly complaint counts for *service* over *window*."""
        get_term(service)  # validate the name against the catalog
        series = self._cache.get(service)
        if series is None:
            series = self._build(service)
            self._cache[service] = series
        if window is None:
            return series.copy()
        lo = hour_index(self._span.start, window.start)
        hi = hour_index(self._span.start, window.end)
        if lo < 0 or hi > series.size:
            raise ValueError("window outside scenario span")
        return series[lo:hi].copy()

    def _build(self, service: str) -> np.ndarray:
        hours = self._span.hours
        config = self.config
        noise_key = stable_key(config.seed, "complaints", service)
        noise = np.exp(
            config.noise_sigma * hashed_normal(noise_key, np.arange(hours))
        )
        series = config.baseline_per_hour * noise
        for event in self.scenario.events:
            if service not in event.terms:
                continue
            # Complaints are national: every affected state's users pile
            # onto the same service page, with no geography attached.
            for impact in event.impacts:
                shape = interest_shape(impact.interest_hours)
                offset = hour_index(self._span.start, impact.onset)
                lo = max(0, offset)
                hi = min(hours, offset + shape.size)
                if hi <= lo:
                    continue
                series[lo:hi] += (
                    impact.intensity
                    * config.complaints_per_intensity
                    * shape[lo - offset : hi - offset]
                )
        return np.round(series).astype(np.float64)
