"""A Downdetector-style baseline: unusual-complaint-volume detection.

Per Ookla's published description, Downdetector "automatically detects
problems based on unusual amounts of complaints": the detector keeps a
running baseline per service and raises an incident while the complaint
rate exceeds a multiple of it.  This is the complaint-based comparator
the paper discusses in §5 — strong on service attribution, but

* it only sees *tracked services* (no `<Internet outage>` catch-all, so
  regional power/infrastructure outages surface only indirectly), and
* it carries *no geography* — an incident says "Verizon has a problem",
  not "users in 27 states are affected",

which is exactly the comparison the benchmark harness draws against
SIFT's state-level view.
"""

from __future__ import annotations

import dataclasses
from datetime import datetime

import numpy as np

from repro.complaints.stream import ComplaintStream, tracked_services
from repro.errors import ConfigurationError
from repro.timeutil import TimeWindow, hour_at


@dataclasses.dataclass(frozen=True, slots=True)
class DowndetectorConfig:
    """Incident policy of the complaint detector."""

    #: Hours of history in the rolling baseline.
    baseline_hours: int = 24 * 7
    #: An hour is anomalous when complaints exceed this multiple of the
    #: rolling baseline mean (plus a small absolute floor).
    threshold_ratio: float = 3.5
    min_complaints: float = 25.0
    #: Consecutive anomalous hours needed to open an incident.
    min_hours: int = 1

    def __post_init__(self) -> None:
        if self.baseline_hours < 1:
            raise ConfigurationError(
                f"baseline_hours must be >= 1: {self.baseline_hours}"
            )
        if self.threshold_ratio <= 1.0:
            raise ConfigurationError(
                f"threshold_ratio must exceed 1: {self.threshold_ratio}"
            )
        if self.min_hours < 1:
            raise ConfigurationError(f"min_hours must be >= 1: {self.min_hours}")


@dataclasses.dataclass(frozen=True, slots=True)
class Incident:
    """One detected complaint surge for one service."""

    service: str
    start: datetime
    end: datetime  # exclusive: first non-anomalous hour
    peak_complaints: float

    @property
    def duration_hours(self) -> int:
        return int((self.end - self.start).total_seconds() // 3600)

    def overlaps(self, window: TimeWindow) -> bool:
        return self.start < window.end and window.start < self.end


def detect_incidents(
    stream: ComplaintStream,
    service: str,
    config: DowndetectorConfig | None = None,
) -> list[Incident]:
    """All incidents for one service over the stream's span."""
    config = config or DowndetectorConfig()
    counts = stream.counts(service)
    span_start = stream.window.start
    # Rolling baseline: trailing mean, seeded with the global median so
    # the first week is not blind.
    baseline = np.empty_like(counts)
    seed = float(np.median(counts))
    cumulative = np.concatenate([[0.0], np.cumsum(counts)])
    for i in range(counts.size):
        lo = max(0, i - config.baseline_hours)
        if i == 0:
            baseline[i] = seed
        else:
            baseline[i] = (cumulative[i] - cumulative[lo]) / (i - lo)
    threshold = np.maximum(
        baseline * config.threshold_ratio, config.min_complaints
    )
    anomalous = counts > threshold
    incidents: list[Incident] = []
    i = 0
    while i < counts.size:
        if not anomalous[i]:
            i += 1
            continue
        j = i
        while j < counts.size and anomalous[j]:
            j += 1
        if j - i >= config.min_hours:
            incidents.append(
                Incident(
                    service=service,
                    start=hour_at(span_start, i),
                    end=hour_at(span_start, j),
                    peak_complaints=float(counts[i:j].max()),
                )
            )
        i = j
    return incidents


class Downdetector:
    """The whole portal: incidents across every tracked service."""

    def __init__(
        self, stream: ComplaintStream, config: DowndetectorConfig | None = None
    ) -> None:
        self.stream = stream
        self.config = config or DowndetectorConfig()

    def incidents(self, service: str) -> list[Incident]:
        return detect_incidents(self.stream, service, self.config)

    def all_incidents(self) -> list[Incident]:
        found: list[Incident] = []
        for service in tracked_services():
            found.extend(self.incidents(service))
        found.sort(key=lambda incident: incident.start)
        return found

    def incident_overlapping(
        self, service: str, window: TimeWindow
    ) -> Incident | None:
        for incident in self.incidents(service):
            if incident.overlaps(window):
                return incident
        return None
