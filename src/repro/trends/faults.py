"""Deterministic fault injection for the simulated Trends service.

The real Google Trends is hostile in more ways than rate limiting: it
times out, drops requests, answers with truncated or below-threshold
frames, resets quotas, and occasionally blacklists an IP outright
(paper §4; Trinocular and ThunderPing treat the same measurement-channel
unreliability as a first-class modeling concern).  This module makes
the simulator hostile *on demand*:

* :class:`FaultProfile` — declarative per-request fault rates plus
  per-IP blackout scheduling (the named :data:`PROFILES` cover each
  failure mode in isolation and one "hostile" kitchen sink);
* :class:`FaultPlan` — the seeded decision engine.  Every draw comes
  from a :func:`repro.rand.substream` keyed by the *request identity*
  (term, geo, window, round, attempt) — never by arrival order — so a
  chaos run is bit-reproducible from ``(seed, profile)`` and identical
  whether the study runs serially or across a worker pool;
* :class:`FaultyTrendsService` — a drop-in wrapper over
  :class:`repro.trends.service.TrendsService` that injects the planned
  faults and counts every injection, per kind and per IP.

Faults surface exactly the way the consumers must handle them:
exceptions (:class:`~repro.errors.TransientServiceError`,
:class:`~repro.errors.RequestTimeout`, rate limiting after a quota
reset) or damaged responses (truncated windows, degraded all-zero
frames) that :class:`repro.trends.client.TrendsClient` detects by
validation.  Timeouts spend virtual time through the injected sleeper —
nothing in this module ever really sleeps.
"""

from __future__ import annotations

import dataclasses
import enum
import threading
from collections import Counter
from datetime import timedelta

import numpy as np

from repro.errors import (
    ConfigurationError,
    RequestTimeout,
    TransientServiceError,
)
from repro.rand import substream
from repro.timeutil import TimeWindow
from repro.trends.records import RisingTerm, TimeFrameRequest, TimeFrameResponse
from repro.trends.service import TrendsService


class FaultKind(enum.Enum):
    """Every failure mode the injector can produce."""

    TRANSIENT = "transient"  # 503-style exception, retryable
    TIMEOUT = "timeout"  # request deadline spent (virtual), then error
    TRUNCATED = "truncated"  # response missing trailing hours
    DEGRADED = "degraded"  # below-privacy-threshold all-zero frame
    QUOTA_RESET = "quota_reset"  # server drops the IP's token bucket
    BLACKOUT = "blackout"  # the IP is dark for a scheduled interval


#: Draw order for per-request faults (fixed: changing it changes seeds).
_DRAWN_KINDS: tuple[FaultKind, ...] = (
    FaultKind.TRANSIENT,
    FaultKind.TIMEOUT,
    FaultKind.TRUNCATED,
    FaultKind.DEGRADED,
    FaultKind.QUOTA_RESET,
)


@dataclasses.dataclass(frozen=True, slots=True)
class FaultProfile:
    """Declarative chaos: how often each fault fires.

    Per-request rates are probabilities per *attempt* (retries draw
    again), mutually exclusive in :data:`_DRAWN_KINDS` order; their sum
    must stay below 1 so every frame eventually succeeds.  Blackouts
    are scheduled per IP in virtual time: every IP named in
    ``blackout_ips`` (plus each IP passing the ``blackout_probability``
    coin flip) goes dark for one drawn interval and recovers.
    """

    name: str = "custom"
    transient_rate: float = 0.0
    timeout_rate: float = 0.0
    truncate_rate: float = 0.0
    degrade_rate: float = 0.0
    quota_reset_rate: float = 0.0
    #: Virtual seconds spent waiting for a request that times out.
    timeout_seconds: float = 30.0
    #: Hours cut from the end of a truncated frame (drawn uniformly).
    truncate_min_hours: int = 1
    truncate_max_hours: int = 24
    #: IPs guaranteed to suffer one blackout interval.
    blackout_ips: tuple[str, ...] = ()
    #: Chance any other IP also gets a blackout interval.
    blackout_probability: float = 0.0
    #: Blackout start is drawn from [0, blackout_start_max) virtual
    #: seconds; duration from [blackout_min_s, blackout_max_s).
    blackout_start_max: float = 120.0
    blackout_min_s: float = 30.0
    blackout_max_s: float = 90.0

    def __post_init__(self) -> None:
        rates = (
            self.transient_rate,
            self.timeout_rate,
            self.truncate_rate,
            self.degrade_rate,
            self.quota_reset_rate,
        )
        if any(rate < 0.0 for rate in rates) or sum(rates) >= 1.0:
            raise ConfigurationError(
                f"per-request fault rates must be >= 0 and sum below 1: {rates}"
            )
        if not 0.0 <= self.blackout_probability <= 1.0:
            raise ConfigurationError(
                f"blackout_probability must be in [0, 1]: "
                f"{self.blackout_probability}"
            )
        if self.truncate_min_hours < 1 or (
            self.truncate_max_hours < self.truncate_min_hours
        ):
            raise ConfigurationError(
                f"invalid truncate hour range: {self.truncate_min_hours}"
                f"..{self.truncate_max_hours}"
            )

    @property
    def rates(self) -> tuple[tuple[FaultKind, float], ...]:
        return tuple(
            zip(
                _DRAWN_KINDS,
                (
                    self.transient_rate,
                    self.timeout_rate,
                    self.truncate_rate,
                    self.degrade_rate,
                    self.quota_reset_rate,
                ),
            )
        )


#: Named profiles for the CLI and the chaos test matrix: every failure
#: mode in isolation, plus the kitchen sink.
PROFILES: dict[str, FaultProfile] = {
    "none": FaultProfile(name="none"),
    "transient": FaultProfile(name="transient", transient_rate=0.2),
    "timeouts": FaultProfile(
        name="timeouts", timeout_rate=0.15, timeout_seconds=20.0
    ),
    "truncated": FaultProfile(name="truncated", truncate_rate=0.2),
    "degraded": FaultProfile(name="degraded", degrade_rate=0.2),
    "quota": FaultProfile(name="quota", quota_reset_rate=0.05),
    # Blackouts start at t=0 so they bite even when nothing else
    # advances the virtual clock; recovery rides on retry backoff and
    # breaker cooldowns spending virtual time.
    "blackout": FaultProfile(
        name="blackout", blackout_probability=1.0, blackout_start_max=0.0
    ),
    "hostile": FaultProfile(
        name="hostile",
        transient_rate=0.08,
        timeout_rate=0.05,
        truncate_rate=0.05,
        degrade_rate=0.05,
        quota_reset_rate=0.02,
        timeout_seconds=15.0,
        blackout_probability=0.5,
    ),
}


@dataclasses.dataclass(frozen=True, slots=True)
class FaultReport:
    """Everything a chaos run did to (and through) the collection layer.

    ``injected`` counts what the service wrapper actually produced;
    ``observed`` counts what the fetcher clients saw and retried.  In a
    healthy run the two agree per kind — the exactly-once accounting
    the chaos soak asserts.  Dict fields compare by value, so two runs
    of the same seeded profile produce ``==`` reports.
    """

    profile: str
    seed: int
    injected: dict[str, int]
    observed: dict[str, int]
    retries: int
    breaker_opened: int
    breaker_half_opened: int
    breaker_closed: int
    dead_letters: int
    blackout_rejections: dict[str, int]

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def describe(self) -> str:
        return (
            f"faults[{self.profile}/{self.seed}]: "
            f"{self.total_injected} injected, {self.retries} retries, "
            f"breaker {self.breaker_opened} opens, "
            f"{self.dead_letters} dead-lettered"
        )

    def to_dict(self) -> dict:
        return {
            "profile": self.profile,
            "seed": self.seed,
            "injected": dict(self.injected),
            "observed": dict(self.observed),
            "retries": self.retries,
            "breaker_opened": self.breaker_opened,
            "breaker_half_opened": self.breaker_half_opened,
            "breaker_closed": self.breaker_closed,
            "dead_letters": self.dead_letters,
            "blackout_rejections": dict(self.blackout_rejections),
        }


class FaultPlan:
    """Seeded, order-independent fault decisions.

    Per-request draws are keyed by (request identity, sample round,
    attempt number); per-IP blackout schedules by the IP alone.  Either
    way a decision never depends on when — or on which thread — the
    request arrives, which is what keeps chaos runs reproducible and
    parallel runs equal to serial ones.
    """

    def __init__(self, profile: FaultProfile, seed: int) -> None:
        self.profile = profile
        self.seed = seed
        self._blackouts: dict[str, tuple[float, float] | None] = {}
        self._lock = threading.Lock()

    def draw(
        self, cache_key: tuple, sample_round: object, attempt: int
    ) -> tuple[FaultKind | None, int]:
        """The planned fault for one fetch attempt.

        Returns ``(kind, truncate_hours)``; *kind* is ``None`` for a
        clean attempt and ``truncate_hours`` only meaningful for
        :data:`FaultKind.TRUNCATED`.
        """
        rates = self.profile.rates
        if not any(rate for _, rate in rates):
            return None, 0
        rng = substream(
            self.seed, "fault", *cache_key, sample_round, attempt
        )
        draw = float(rng.random())
        cumulative = 0.0
        for kind, rate in rates:
            cumulative += rate
            if draw < cumulative:
                hours = 0
                if kind is FaultKind.TRUNCATED:
                    hours = int(
                        rng.integers(
                            self.profile.truncate_min_hours,
                            self.profile.truncate_max_hours + 1,
                        )
                    )
                return kind, hours
        return None, 0

    def blackout_window(self, ip: str) -> tuple[float, float] | None:
        """The (start, end) virtual-time blackout for *ip*, if any.

        Deterministic per (seed, ip); memoized so repeated requests do
        not redraw.
        """
        with self._lock:
            if ip in self._blackouts:
                return self._blackouts[ip]
        rng = substream(self.seed, "blackout", ip)
        scheduled = ip in self.profile.blackout_ips
        if not scheduled and self.profile.blackout_probability > 0.0:
            scheduled = float(rng.random()) < self.profile.blackout_probability
        window: tuple[float, float] | None = None
        if scheduled:
            start = float(rng.random()) * self.profile.blackout_start_max
            duration = self.profile.blackout_min_s + float(rng.random()) * (
                self.profile.blackout_max_s - self.profile.blackout_min_s
            )
            window = (start, start + duration)
        with self._lock:
            self._blackouts.setdefault(ip, window)
            return self._blackouts[ip]


class FaultyTrendsService:
    """A :class:`TrendsService` that misbehaves exactly as planned.

    Duck-types the service's ``fetch`` and forwards ``population`` /
    ``config`` / ``stats`` / ``limiter``, so every consumer — client,
    fleet, scheduler, runtime — works unchanged.  Injection counters
    live in ``injected`` (per kind) and ``blackout_rejections`` (per
    IP); both feed the :class:`FaultReport`.
    """

    def __init__(
        self,
        service: TrendsService,
        plan: FaultPlan,
        sleep=None,
    ) -> None:
        self.inner = service
        self.plan = plan
        #: Spends a timed-out request's deadline (virtual time).
        self._sleep = sleep if sleep is not None else (lambda seconds: None)
        self.injected: Counter = Counter()
        self.blackout_rejections: Counter = Counter()
        self._attempts: Counter = Counter()
        self._lock = threading.Lock()

    # -- passthroughs --------------------------------------------------------

    @property
    def population(self):
        return self.inner.population

    @property
    def config(self):
        return self.inner.config

    @property
    def stats(self):
        return self.inner.stats

    @property
    def limiter(self):
        return self.inner.limiter

    # -- the hostile fetch ---------------------------------------------------

    def fetch(
        self,
        request: TimeFrameRequest,
        ip: str = "198.51.100.1",
        sample_round: int | None = None,
        include_rising: bool = True,
    ) -> TimeFrameResponse:
        cache_key = request.cache_key
        round_label: object = sample_round if sample_round is not None else "auto"
        attempt_key = (cache_key, round_label)
        with self._lock:
            attempt = self._attempts[attempt_key]
            self._attempts[attempt_key] += 1

        window = self.plan.blackout_window(ip)
        if window is not None:
            now = self.inner.limiter.clock()
            if window[0] <= now < window[1]:
                with self._lock:
                    self.injected[FaultKind.BLACKOUT.value] += 1
                    self.blackout_rejections[ip] += 1
                raise TransientServiceError(
                    f"{ip} is dark until t={window[1]:.1f} "
                    f"(now t={now:.1f})"
                )

        kind, truncate_hours = self.plan.draw(cache_key, round_label, attempt)
        if kind is FaultKind.TRANSIENT:
            with self._lock:
                self.injected[kind.value] += 1
            raise TransientServiceError(
                f"service unavailable for {ip} (injected, attempt {attempt})"
            )
        if kind is FaultKind.TIMEOUT:
            with self._lock:
                self.injected[kind.value] += 1
            self._sleep(self.plan.profile.timeout_seconds)
            raise RequestTimeout(ip, self.plan.profile.timeout_seconds)
        if kind is FaultKind.QUOTA_RESET:
            with self._lock:
                self.injected[kind.value] += 1
            self.inner.limiter.reset_quota(ip)
            # Fall through: the fetch below observes the empty bucket.

        response = self.inner.fetch(
            request,
            ip=ip,
            sample_round=sample_round,
            include_rising=include_rising,
        )
        if kind is FaultKind.TRUNCATED:
            truncated = self._truncate(response, truncate_hours)
            if truncated is not None:
                with self._lock:
                    self.injected[kind.value] += 1
                return truncated
        if kind is FaultKind.DEGRADED:
            with self._lock:
                self.injected[kind.value] += 1
            return dataclasses.replace(
                response,
                values=np.zeros(response.values.shape, dtype=np.int16),
                rising=(),
                degraded=True,
            )
        return response

    @staticmethod
    def _truncate(
        response: TimeFrameResponse, hours: int
    ) -> TimeFrameResponse | None:
        """Drop *hours* trailing hours; ``None`` if the frame is too
        short to truncate (sub-day daily frames stay whole)."""
        window = response.request.window
        keep = window.hours - hours
        if keep < 1:
            return None
        short = TimeWindow(window.start, window.end - timedelta(hours=hours))
        request = dataclasses.replace(response.request, window=short)
        return TimeFrameResponse(
            request=request,
            values=response.values[:keep],
            rising=response.rising,
            sample_round=response.sample_round,
            degraded=response.degraded,
        )

    def injection_counts(self) -> dict[str, int]:
        """Stable snapshot of injected-fault counters (all kinds)."""
        with self._lock:
            return {
                kind.value: self.injected.get(kind.value, 0)
                for kind in FaultKind
            }
