"""Simulated Google Trends service: the data source SIFT crawls.

Reproduces the service semantics the paper depends on — per-request
sampling, anonymity rounding, piecewise 0-100 indexing, weekly hourly
frames, rising suggestions, and per-IP rate limiting — over the
ground-truth :mod:`repro.world` population.
"""

from repro.trends.client import RetryPolicy, TrendsClient
from repro.trends.faults import (
    PROFILES,
    FaultKind,
    FaultPlan,
    FaultProfile,
    FaultReport,
    FaultyTrendsService,
)
from repro.trends.ratelimit import (
    RateLimitConfig,
    SimulatedClock,
    TokenBucketLimiter,
)
from repro.trends.records import (
    BREAKOUT_WEIGHT,
    MAX_HOURLY_FRAME,
    RisingTerm,
    TimeFrameRequest,
    TimeFrameResponse,
)
from repro.trends.rising import RisingConfig, rising_terms
from repro.trends.sampling import (
    index_frame,
    privacy_round,
    sample_counts,
    sampling_standard_error,
)
from repro.trends.service import ServiceStats, TrendsConfig, TrendsService

__all__ = [
    "BREAKOUT_WEIGHT",
    "FaultKind",
    "FaultPlan",
    "FaultProfile",
    "FaultReport",
    "FaultyTrendsService",
    "MAX_HOURLY_FRAME",
    "PROFILES",
    "RateLimitConfig",
    "RetryPolicy",
    "RisingConfig",
    "RisingTerm",
    "ServiceStats",
    "SimulatedClock",
    "TimeFrameRequest",
    "TimeFrameResponse",
    "TokenBucketLimiter",
    "TrendsClient",
    "TrendsConfig",
    "TrendsService",
    "index_frame",
    "privacy_round",
    "rising_terms",
    "sample_counts",
    "sampling_standard_error",
]
