"""Rising-suggestions computation (GT's "related queries: rising").

For a requested (term, geo, frame) the real service surfaces search
terms whose interest rose the most during the frame, weighted by their
percent increase over the preceding period (paper §2).  The simulator
recomputes exactly that from the ground-truth population:

* candidate terms are every catalog topic except the requested one;
* each candidate's sampled search count in the frame is compared to its
  sampled count in the preceding window of equal length;
* candidates under the anonymity threshold are invisible;
* the weight is the integer percent increase, and the phrase reported
  is one of the topic's raw query variants — chosen deterministically
  per (term, geo, frame) so the downstream clustering stage has real
  work to do.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.rand import hashed_uniform, stable_key
from repro.trends.records import BREAKOUT_WEIGHT, RisingTerm, TimeFrameRequest
from repro.world.catalog import TERMS
from repro.world.population import SearchPopulation
from repro.world.states import get_state


@dataclasses.dataclass(frozen=True, slots=True)
class RisingConfig:
    """Tunables of the rising-suggestion computation."""

    min_weight: int = 45  # smallest percent increase worth reporting
    top_k: int = 25  # suggestions returned per frame
    min_window_count: int = 5  # anonymity threshold on window totals


def _variant_phrase(term_name: str, variants: tuple[str, ...], key: int) -> str:
    """Pick one raw phrasing deterministically for this (term, frame)."""
    phrasings = (term_name, *variants)
    pick = hashed_uniform(key, np.array([1], dtype=np.uint64))[0]
    return phrasings[int(pick * len(phrasings)) % len(phrasings)]


def rising_terms(
    population: SearchPopulation,
    request: TimeFrameRequest,
    rng: np.random.Generator,
    sample_rate: float,
    config: RisingConfig | None = None,
) -> tuple[RisingTerm, ...]:
    """Compute the rising suggestions for one frame."""
    config = config or RisingConfig()
    state = get_state(request.geo)
    window = request.window
    previous = window.shift(-window.hours)
    if previous.start < population.window.start:
        return ()  # no preceding period to compare against
    suggestions: list[RisingTerm] = []
    total_now = float(population.total_volume(state.code, window).sum())
    total_prev = float(population.total_volume(state.code, previous).sum())
    size_now = max(int(round(total_now * sample_rate)), 1)
    size_prev = max(int(round(total_prev * sample_rate)), 1)
    for term in TERMS:
        if term.name == request.term:
            continue
        volume_now = float(population.term_volume(term.name, state.code, window).sum())
        volume_prev = float(
            population.term_volume(term.name, state.code, previous).sum()
        )
        count_now = int(
            rng.binomial(size_now, min(volume_now / max(total_now, 1e-9), 1.0))
        )
        count_prev = int(
            rng.binomial(size_prev, min(volume_prev / max(total_prev, 1e-9), 1.0))
        )
        if count_now < config.min_window_count:
            continue  # anonymity: the term is invisible this window
        share_now = count_now / size_now
        share_prev = count_prev / size_prev
        if share_prev <= 0:
            weight = BREAKOUT_WEIGHT
        else:
            weight = int(round(100.0 * (share_now - share_prev) / share_prev))
        if weight < config.min_weight:
            continue
        phrase_key = stable_key(
            "rising-phrase", term.name, request.geo, window.start.isoformat()
        )
        suggestions.append(
            RisingTerm(
                phrase=_variant_phrase(term.name, term.variants, phrase_key),
                weight=min(weight, BREAKOUT_WEIGHT),
            )
        )
    suggestions.sort(key=lambda item: item.weight, reverse=True)
    return tuple(suggestions[: config.top_k])
