"""Rising-suggestions computation (GT's "related queries: rising").

For a requested (term, geo, frame) the real service surfaces search
terms whose interest rose the most during the frame, weighted by their
percent increase over the preceding period (paper §2).  The simulator
recomputes exactly that from the ground-truth population:

* candidate terms are every catalog topic except the requested one;
* each candidate's sampled search count in the frame is compared to its
  sampled count in the preceding window of equal length;
* candidates under the anonymity threshold are invisible;
* the weight is the integer percent increase, and the phrase reported
  is one of the topic's raw query variants — chosen deterministically
  per (term, geo, frame) so the downstream clustering stage has real
  work to do.

The whole computation is batched: one ``term_window_sums`` call per
window gives every candidate's volume, and a single ``rng.binomial``
over a ``(candidates, 2)`` array draws all now/prev counts.  numpy
fills that array in C order — row by row, now before prev — which is
exactly the draw order of the original per-term loop, so the sampled
counts (and therefore the suggestions) are bit-identical.
"""

from __future__ import annotations

import dataclasses
from functools import lru_cache

import numpy as np

from repro.rand import hashed_uniform_scalar, stable_key
from repro.timeutil import TimeWindow
from repro.trends.records import BREAKOUT_WEIGHT, RisingTerm, TimeFrameRequest
from repro.world.catalog import TERMS, Term
from repro.world.population import SearchPopulation
from repro.world.states import get_state


@dataclasses.dataclass(frozen=True, slots=True)
class RisingConfig:
    """Tunables of the rising-suggestion computation."""

    min_weight: int = 45  # smallest percent increase worth reporting
    top_k: int = 25  # suggestions returned per frame
    min_window_count: int = 5  # anonymity threshold on window totals


def _variant_phrase(term_name: str, variants: tuple[str, ...], key: int) -> str:
    """Pick one raw phrasing deterministically for this (term, frame)."""
    phrasings = (term_name, *variants)
    # Index 1 of the hashed stream — the same draw the original
    # 1-element ``hashed_uniform`` array round-trip produced.
    pick = hashed_uniform_scalar(key, 1)
    return phrasings[int(pick * len(phrasings)) % len(phrasings)]


@lru_cache(maxsize=8192)
def _pick_phrase(term: Term, geo: str, start_iso: str) -> str:
    """Memoized phrase choice — pure in (term, geo, frame start)."""
    key = stable_key("rising-phrase", term.name, geo, start_iso)
    return _variant_phrase(term.name, term.variants, key)


@lru_cache(maxsize=4096)
def _previous_window(window: TimeWindow) -> TimeWindow:
    """The equal-length window immediately preceding *window*."""
    return window.shift(-window.hours)


@lru_cache(maxsize=64)
def _candidates(requested: str) -> tuple[tuple[Term, ...], np.ndarray]:
    """Catalog terms other than *requested*, with their tensor rows."""
    terms = tuple(term for term in TERMS if term.name != requested)
    rows = np.array(
        [row for row, term in enumerate(TERMS) if term.name != requested]
    )
    rows.setflags(write=False)
    return terms, rows


def rising_terms(
    population: SearchPopulation,
    request: TimeFrameRequest,
    rng: np.random.Generator,
    sample_rate: float,
    config: RisingConfig | None = None,
) -> tuple[RisingTerm, ...]:
    """Compute the rising suggestions for one frame."""
    config = config or RisingConfig()
    state = get_state(request.geo)
    window = request.window
    previous = _previous_window(window)
    if previous.start < population.window.start:
        return ()  # no preceding period to compare against
    total_now = population.total_window_sum(state.code, window)
    total_prev = population.total_window_sum(state.code, previous)
    size_now = max(int(round(total_now * sample_rate)), 1)
    size_prev = max(int(round(total_prev * sample_rate)), 1)

    candidates, rows = _candidates(request.term)
    sums_now = population.term_window_sums(state.code, window)[rows]
    sums_prev = population.term_window_sums(state.code, previous)[rows]

    probs = np.empty((len(candidates), 2), dtype=np.float64)
    probs[:, 0] = np.minimum(sums_now / max(total_now, 1e-9), 1.0)
    probs[:, 1] = np.minimum(sums_prev / max(total_prev, 1e-9), 1.0)
    sizes = np.array([[size_now, size_prev]], dtype=np.int64)
    counts = rng.binomial(sizes, probs)  # C-order fill == per-term interleave
    counts_now = counts[:, 0]
    counts_prev = counts[:, 1]

    share_now = counts_now / size_now
    share_prev = counts_prev / size_prev
    numerator = 100.0 * (share_now - share_prev)
    raw = np.divide(
        numerator,
        share_prev,
        out=np.zeros_like(numerator),
        where=share_prev > 0,
    )
    raw = np.round(raw)
    breakout = share_prev <= 0
    visible = counts_now >= config.min_window_count

    suggestions: list[RisingTerm] = []
    start_iso = window.start.isoformat()
    for i, term in enumerate(candidates):
        if not visible[i]:
            continue  # anonymity: the term is invisible this window
        weight = BREAKOUT_WEIGHT if breakout[i] else int(raw[i])
        if weight < config.min_weight:
            continue
        suggestions.append(
            RisingTerm(
                phrase=_pick_phrase(term, request.geo, start_iso),
                weight=min(weight, BREAKOUT_WEIGHT),
            )
        )
    suggestions.sort(key=lambda item: item.weight, reverse=True)
    return tuple(suggestions[: config.top_k])
