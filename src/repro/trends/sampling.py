"""Sampling and indexing semantics of the Trends service.

The real service (paper §2) answers a request in three steps:

1. draw an *unbiased random sample* of the search database for the
   frame — this is why two fetches of the same frame disagree, and why
   the paper's averaging stage exists;
2. round tiny search volumes down to 0 for anonymity — this is why
   quiet hours read as hard zeros, which the spike detector's
   walk-to-zero rules rely on;
3. index the frame's data points onto 0..100 relative to the frame's
   own maximum — this piecewise normalization is why the stitching
   stage must rescale frames against their overlaps.

Each step is a small pure function here so the pipeline's tests can
target them in isolation.
"""

from __future__ import annotations

import numpy as np


def sample_counts(
    rng: np.random.Generator,
    volumes: np.ndarray,
    totals: np.ndarray,
    sample_rate: float,
    sizes: np.ndarray | None = None,
) -> np.ndarray:
    """Draw sampled per-hour counts of a term from the search population.

    For each hour the service samples ``n = sample_rate * total``
    searches out of ``total`` and counts how many are for the term —
    i.e. a binomial draw with the term's true proportion.  The binomial
    standard error is what shrinks when the pipeline averages re-fetches.

    *sizes* are derived from ``totals`` when omitted; the service passes
    its cached per-(state, window) sizes to skip the recomputation.
    """
    if not 0 < sample_rate <= 1:
        raise ValueError(f"sample_rate must be in (0, 1]: {sample_rate}")
    if volumes.shape != totals.shape:
        raise ValueError("volumes and totals must align")
    proportions = np.clip(volumes / np.maximum(totals, 1e-9), 0.0, 1.0)
    if sizes is None:
        sizes = np.maximum(np.round(totals * sample_rate), 1.0).astype(np.int64)
    return rng.binomial(sizes, proportions)


def privacy_round(counts: np.ndarray, threshold: int) -> np.ndarray:
    """Zero out counts below the anonymity threshold (GT's rounding)."""
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0: {threshold}")
    rounded = counts.copy()
    rounded[rounded < threshold] = 0
    return rounded


def index_frame(counts: np.ndarray, sizes: np.ndarray | None = None) -> np.ndarray:
    """Index a frame's counts onto the 0..100 scale, GT style.

    The service indexes *proportions* (count / sample size); when
    *sizes* is None the counts are treated as already proportional.
    The frame maximum maps to 100 and everything scales linearly,
    rounded to integers.  An all-zero frame stays all-zero.
    """
    values = counts.astype(np.float64)
    if sizes is not None:
        if sizes.shape != counts.shape:
            raise ValueError("sizes and counts must align")
        values = values / np.maximum(sizes, 1)
    peak = values.max()
    if peak <= 0:
        return np.zeros(counts.shape, dtype=np.int16)
    indexed = np.round(100.0 * values / peak)
    return indexed.astype(np.int16)


def sampling_standard_error(proportion: float, sample_size: int) -> float:
    """Standard error of a sampled proportion (normal approximation).

    Used by tests and the averaging ablation to verify the simulator's
    error actually shrinks as 1/sqrt(rounds), the paper's §3.2 premise.
    """
    if not 0 <= proportion <= 1:
        raise ValueError(f"proportion must be in [0, 1]: {proportion}")
    if sample_size <= 0:
        raise ValueError(f"sample_size must be positive: {sample_size}")
    return float(np.sqrt(proportion * (1.0 - proportion) / sample_size))
