"""Per-IP token-bucket rate limiting.

The paper's implementation section names GT's IP-based rate limiting as
the collection module's primary bottleneck — the reason SIFT spreads
its workload over fetcher units behind separate IP addresses.  The
simulator enforces the same constraint so the collection scheduler is
exercised for real.

The limiter takes an injectable ``clock`` (seconds, monotonic) so tests
and the simulated collection run can advance virtual time instead of
sleeping.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections.abc import Callable

from repro.errors import ConfigurationError, RateLimitError

Clock = Callable[[], float]


@dataclasses.dataclass(frozen=True, slots=True)
class RateLimitConfig:
    """Token-bucket parameters applied to every client IP."""

    burst: int = 30  # bucket capacity: requests servable back-to-back
    refill_per_second: float = 1.5  # sustained request rate

    def __post_init__(self) -> None:
        if self.burst <= 0:
            raise ConfigurationError(f"burst must be positive: {self.burst}")
        if self.refill_per_second <= 0:
            raise ConfigurationError(
                f"refill_per_second must be positive: {self.refill_per_second}"
            )


class _Bucket:
    __slots__ = ("tokens", "updated")

    def __init__(self, tokens: float, updated: float) -> None:
        self.tokens = tokens
        self.updated = updated


class TokenBucketLimiter:
    """Classic token bucket, one bucket per client IP."""

    def __init__(
        self, config: RateLimitConfig | None = None, clock: Clock = time.monotonic
    ) -> None:
        self.config = config or RateLimitConfig()
        self.clock = clock
        self._buckets: dict[str, _Bucket] = {}
        #: Serializes bucket creation and token accounting so concurrent
        #: fetcher threads cannot double-spend a token.
        self._lock = threading.Lock()
        self.rejections = 0

    def _bucket(self, ip: str) -> _Bucket:
        bucket = self._buckets.get(ip)
        if bucket is None:
            bucket = _Bucket(float(self.config.burst), self.clock())
            self._buckets[ip] = bucket
        return bucket

    def _refill(self, bucket: _Bucket) -> None:
        now = self.clock()
        elapsed = max(0.0, now - bucket.updated)
        bucket.tokens = min(
            float(self.config.burst),
            bucket.tokens + elapsed * self.config.refill_per_second,
        )
        bucket.updated = now

    def try_acquire(self, ip: str) -> bool:
        """Consume one token for *ip*; False when the budget is exhausted."""
        with self._lock:
            bucket = self._bucket(ip)
            self._refill(bucket)
            if bucket.tokens >= 1.0:
                bucket.tokens -= 1.0
                return True
            self.rejections += 1
            return False

    def acquire(self, ip: str) -> None:
        """Consume one token or raise :class:`RateLimitError`."""
        if not self.try_acquire(ip):
            raise RateLimitError(ip, self.retry_after(ip))

    def retry_after(self, ip: str) -> float:
        """Seconds until *ip* will have one token again."""
        with self._lock:
            bucket = self._bucket(ip)
            self._refill(bucket)
            missing = max(0.0, 1.0 - bucket.tokens)
            return missing / self.config.refill_per_second

    def tokens_available(self, ip: str) -> float:
        with self._lock:
            bucket = self._bucket(ip)
            self._refill(bucket)
            return bucket.tokens

    def reset_quota(self, ip: str) -> None:
        """Drop *ip*'s bucket to zero tokens (a server-side quota reset).

        The next request from *ip* is rate-limited until the bucket
        refills; used by the fault injector to model the real service
        revoking a client's remaining budget mid-crawl.
        """
        with self._lock:
            bucket = self._bucket(ip)
            self._refill(bucket)
            bucket.tokens = 0.0


class SimulatedClock:
    """A manually-advanced clock for deterministic, sleep-free tests.

    Thread-safe: concurrent fetcher threads advance one shared virtual
    timeline (each sleep still moves time forward exactly once).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot rewind the clock: {seconds}")
        with self._lock:
            self._now += seconds

    def sleep(self, seconds: float) -> None:
        """Sleep by advancing virtual time (duck-types ``time.sleep``)."""
        self.advance(seconds)
