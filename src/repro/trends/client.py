"""A pytrends-style convenience client for the simulated service.

:class:`TrendsClient` is what the collection layer talks to: it owns a
source IP, retries politely on rate limiting (honoring ``retry_after``
with exponential backoff and jitter), and exposes the two calls SIFT
needs — interest-over-time frames and rising related queries.

The sleep function is injectable so the whole crawl runs on virtual
time in tests and benchmarks.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Callable

from repro.errors import CollectionError, RateLimitError
from repro.rand import substream
from repro.timeutil import TimeWindow
from repro.trends.records import RisingTerm, TimeFrameRequest, TimeFrameResponse
from repro.trends.service import TrendsService

Sleeper = Callable[[float], None]


@dataclasses.dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Backoff behaviour when the service rate-limits the client."""

    max_attempts: int = 8
    backoff_base: float = 1.5
    max_backoff: float = 120.0
    jitter: float = 0.25  # +- fraction of the computed delay

    def delay(self, attempt: int, retry_after: float, jitter_unit: float) -> float:
        """Delay before retry *attempt* (0-based), respecting the hint."""
        backoff = min(self.backoff_base**attempt, self.max_backoff)
        base = max(retry_after, backoff)
        return base * (1.0 + self.jitter * (2.0 * jitter_unit - 1.0))


class TrendsClient:
    """One crawler identity (one IP) against the Trends service."""

    def __init__(
        self,
        service: TrendsService,
        ip: str,
        sleep: Sleeper = time.sleep,
        policy: RetryPolicy | None = None,
        seed: int = 1234,
        latency: float = 0.0,
    ) -> None:
        self.service = service
        self.ip = ip
        self.policy = policy or RetryPolicy()
        self._sleep = sleep
        self._jitter_rng = substream(seed, "client-jitter", ip)
        #: Simulated network round-trip per successful request, spent
        #: through the injected sleeper (virtual or real).  Zero by
        #: default; the throughput benchmark uses it to model the
        #: request latency that makes fleet parallelism pay off.
        self.latency = latency
        self.fetches = 0
        self.retries = 0

    def interest_over_time(
        self,
        term: str,
        geo: str,
        window: TimeWindow,
        sample_round: int | None = None,
        include_rising: bool = True,
    ) -> TimeFrameResponse:
        """Fetch one hourly frame, retrying through rate limits."""
        request = TimeFrameRequest(term=term, geo=geo, window=window)
        last_error: RateLimitError | None = None
        for attempt in range(self.policy.max_attempts):
            try:
                response = self.service.fetch(
                    request,
                    ip=self.ip,
                    sample_round=sample_round,
                    include_rising=include_rising,
                )
            except RateLimitError as error:
                last_error = error
                self.retries += 1
                delay = self.policy.delay(
                    attempt, error.retry_after, float(self._jitter_rng.random())
                )
                self._sleep(delay)
                continue
            if self.latency > 0.0:
                self._sleep(self.latency)
            self.fetches += 1
            return response
        raise CollectionError(
            f"fetcher {self.ip} gave up after {self.policy.max_attempts} "
            f"rate-limited attempts: {last_error}"
        )

    def rising_queries(
        self, term: str, geo: str, window: TimeWindow
    ) -> tuple[RisingTerm, ...]:
        """Fetch only the rising related queries for a frame."""
        response = self.interest_over_time(term, geo, window, include_rising=True)
        return response.rising
