"""A pytrends-style convenience client for the simulated service.

:class:`TrendsClient` is what the collection layer talks to: it owns a
source IP, classifies every failure the service can surface (see
:func:`repro.errors.classify_error`), retries politely on anything
retryable — honoring ``retry_after`` hints with exponential backoff and
jitter — and validates each response, converting truncated or degraded
frames into retryable errors instead of letting damaged data through.
Fatal errors (malformed requests, configuration mistakes) propagate on
the first attempt; an exhausted retry budget surfaces as
:class:`~repro.errors.FrameCrawlError` so the scheduler can reassign
the frame to another fetcher.

The sleep function is injectable so the whole crawl runs on virtual
time in tests and benchmarks.  An optional circuit breaker (duck-typed;
see :class:`repro.collection.breaker.CircuitBreaker`) is consulted
before every attempt and fed transport-level successes and failures.
"""

from __future__ import annotations

import dataclasses
import time
from collections import Counter
from collections.abc import Callable

from repro.errors import (
    CircuitOpenError,
    DegradedFrameError,
    ErrorClass,
    FrameCrawlError,
    ReproError,
    TransientServiceError,
    TruncatedFrameError,
    classify_error,
)
from repro.rand import substream
from repro.timeutil import TimeWindow
from repro.trends.records import RisingTerm, TimeFrameRequest, TimeFrameResponse
from repro.trends.service import TrendsService

Sleeper = Callable[[float], None]


@dataclasses.dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Backoff behaviour when the service rate-limits the client."""

    max_attempts: int = 8
    backoff_base: float = 1.5
    max_backoff: float = 120.0
    jitter: float = 0.25  # +- fraction of the computed delay

    def delay(self, attempt: int, retry_after: float, jitter_unit: float) -> float:
        """Delay before retry *attempt* (0-based), respecting the hint."""
        backoff = min(self.backoff_base**attempt, self.max_backoff)
        base = max(retry_after, backoff)
        return base * (1.0 + self.jitter * (2.0 * jitter_unit - 1.0))


def _trips_breaker(error: ReproError) -> bool:
    """Only transport faults count toward opening the breaker.

    Rate limits are back-pressure from a healthy service; truncated and
    degraded frames are data-quality faults — neither says the path to
    the service is dark.
    """
    return isinstance(error, TransientServiceError) and not isinstance(
        error, (TruncatedFrameError, DegradedFrameError)
    )


class TrendsClient:
    """One crawler identity (one IP) against the Trends service."""

    def __init__(
        self,
        service: TrendsService,
        ip: str,
        sleep: Sleeper = time.sleep,
        policy: RetryPolicy | None = None,
        seed: int = 1234,
        latency: float = 0.0,
        breaker=None,
    ) -> None:
        self.service = service
        self.ip = ip
        self.policy = policy or RetryPolicy()
        self._sleep = sleep
        self._jitter_rng = substream(seed, "client-jitter", ip)
        #: Simulated network round-trip per successful request, spent
        #: through the injected sleeper (virtual or real).  Zero by
        #: default; the throughput benchmark uses it to model the
        #: request latency that makes fleet parallelism pay off.
        self.latency = latency
        #: Optional circuit breaker guarding this IP; consulted before
        #: every attempt and fed transport successes/failures.
        self.breaker = breaker
        self.fetches = 0
        self.retries = 0
        #: Retried errors by exception type name — the "observed" side
        #: of the chaos FaultReport's exactly-once accounting.
        self.retry_causes: Counter = Counter()

    def interest_over_time(
        self,
        term: str,
        geo: str,
        window: TimeWindow,
        sample_round: int | None = None,
        include_rising: bool = True,
    ) -> TimeFrameResponse:
        """Fetch one hourly frame, retrying through retryable faults.

        Raises :class:`~repro.errors.CircuitOpenError` without touching
        the service while this IP's breaker is open, propagates fatal
        errors immediately, and raises
        :class:`~repro.errors.FrameCrawlError` once the retry budget is
        spent on retryable ones.
        """
        request = TimeFrameRequest(term=term, geo=geo, window=window)
        last_error: ReproError | None = None
        for attempt in range(self.policy.max_attempts):
            if self.breaker is not None and not self.breaker.allow():
                raise CircuitOpenError(self.ip, self.breaker.retry_at)
            try:
                response = self.service.fetch(
                    request,
                    ip=self.ip,
                    sample_round=sample_round,
                    include_rising=include_rising,
                )
                self._validate(request, response)
            except ReproError as error:
                if classify_error(error) is ErrorClass.FATAL:
                    raise
                last_error = error
                self.retries += 1
                self.retry_causes[type(error).__name__] += 1
                if self.breaker is not None and _trips_breaker(error):
                    self.breaker.record_failure()
                delay = self.policy.delay(
                    attempt,
                    getattr(error, "retry_after", 0.0),
                    float(self._jitter_rng.random()),
                )
                self._sleep(delay)
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            if self.latency > 0.0:
                self._sleep(self.latency)
            self.fetches += 1
            return response
        raise FrameCrawlError(self.ip, self.policy.max_attempts, last_error)

    @staticmethod
    def _validate(
        request: TimeFrameRequest, response: TimeFrameResponse
    ) -> None:
        """Reject damaged responses so the retry loop re-fetches them."""
        if response.request.window != request.window:
            raise TruncatedFrameError(
                request.window.hours, response.request.window.hours
            )
        if response.degraded:
            raise DegradedFrameError(
                f"below-threshold frame for {request.term!r} in {request.geo}"
            )

    def rising_queries(
        self, term: str, geo: str, window: TimeWindow
    ) -> tuple[RisingTerm, ...]:
        """Fetch only the rising related queries for a frame."""
        response = self.interest_over_time(term, geo, window, include_rising=True)
        return response.rising
