"""Request/response records for the simulated Google Trends service.

The shapes deliberately mirror what the real service gives a crawler:
a weekly frame at hourly resolution is 168 integer data points indexed
0-100 within the frame, plus a list of *rising* related search terms
with percent-increase weights.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import TrendsRequestError
from repro.timeutil import HOURS_PER_WEEK, TimeWindow
from repro.world.states import is_known_geo

#: GT caps hourly-resolution requests at one week (paper §2).
MAX_HOURLY_FRAME = HOURS_PER_WEEK

#: Rising weights above this are reported as "Breakout" by the real
#: service; we keep the numeric weight and set a flag.
BREAKOUT_WEIGHT = 5000


@dataclasses.dataclass(frozen=True, slots=True)
class TimeFrameRequest:
    """One Trends request: a term over a geo and an hourly time frame."""

    term: str
    geo: str  # "US-TX" style state geography
    window: TimeWindow

    def __post_init__(self) -> None:
        if not self.term or not self.term.strip():
            raise TrendsRequestError("empty search term")
        if not is_known_geo(self.geo):
            raise TrendsRequestError(f"unsupported geography: {self.geo!r}")
        if self.window.hours > MAX_HOURLY_FRAME:
            raise TrendsRequestError(
                f"hourly frames are limited to {MAX_HOURLY_FRAME} hours, "
                f"got {self.window.hours}"
            )

    @property
    def cache_key(self) -> tuple[str, str, str, str]:
        """Identity of the request for caching/round-counting purposes."""
        return (
            self.term,
            self.geo,
            self.window.start.isoformat(),
            self.window.end.isoformat(),
        )


@dataclasses.dataclass(frozen=True, slots=True)
class RisingTerm:
    """A related search term with a rising-interest weight.

    ``phrase`` is a *raw query* (what users typed), not necessarily the
    canonical topic name — downstream clustering has to merge variants,
    which is exactly the job the paper gives its NLP stage.
    """

    phrase: str
    weight: int  # percent increase over the preceding period

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise TrendsRequestError(f"rising weight must be positive: {self.weight}")

    @property
    def breakout(self) -> bool:
        return self.weight >= BREAKOUT_WEIGHT


@dataclasses.dataclass(frozen=True, slots=True)
class TimeFrameResponse:
    """The service's answer to one :class:`TimeFrameRequest`."""

    request: TimeFrameRequest
    values: np.ndarray  # int16 index values, 0..100, one per hour
    rising: tuple[RisingTerm, ...]
    sample_round: int  # which independent sample produced this response
    #: The service computed this frame from a sample below its privacy
    #: threshold and zeroed it out (the real service shows a "not
    #: enough data" notice in this case).  Clients should re-fetch.
    degraded: bool = False

    def __post_init__(self) -> None:
        if self.values.shape != (self.request.window.hours,):
            raise TrendsRequestError(
                f"response shape {self.values.shape} does not match "
                f"frame of {self.request.window.hours} hours"
            )
        if self.values.min() < 0 or self.values.max() > 100:
            raise TrendsRequestError("index values must lie in [0, 100]")

    @property
    def window(self) -> TimeWindow:
        return self.request.window

    def is_flat(self) -> bool:
        """True when privacy rounding zeroed out the whole frame."""
        return bool((self.values == 0).all())
