"""The simulated Google Trends service.

:class:`TrendsService` is the only gateway between the SIFT pipeline
and the ground-truth search world, and it degrades the data in exactly
the ways the real service does (paper §2): per-request sampling,
anonymity rounding, per-frame 0-100 indexing, one-week hourly-frame
limits, and per-IP rate limiting.

Each fetch of the same frame draws an *independent* sample (numbered
``sample_round``), which is what makes the paper's iterative averaging
meaningful.  Rounds are deterministic: round *k* of a given request
always returns the same response, so full pipeline runs reproduce.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import Counter

import numpy as np

from repro.rand import stable_key_cached, substream_from
from repro.trends.ratelimit import Clock, RateLimitConfig, TokenBucketLimiter
from repro.trends.records import RisingTerm, TimeFrameRequest, TimeFrameResponse
from repro.trends.rising import RisingConfig, rising_terms
from repro.trends.sampling import index_frame, privacy_round, sample_counts
from repro.world.population import SearchPopulation
from repro.world.states import get_state


@dataclasses.dataclass(frozen=True, slots=True)
class TrendsConfig:
    """Service-level parameters."""

    #: Fraction of the search database sampled per request.
    sample_rate: float = 0.03
    #: Anonymity threshold on sampled per-hour counts.
    privacy_threshold: int = 3
    #: Seed for per-request sampling streams.
    seed: int = 99
    rising: RisingConfig = dataclasses.field(default_factory=RisingConfig)
    rate_limit: RateLimitConfig = dataclasses.field(default_factory=RateLimitConfig)


@dataclasses.dataclass
class ServiceStats:
    """Observable service counters (the paper reports 160 238 frames)."""

    frames_served: int = 0
    rising_computed: int = 0
    rate_limited: int = 0
    frames_by_geo: Counter = dataclasses.field(default_factory=Counter)


class TrendsService:
    """Answers :class:`TimeFrameRequest`s from the ground-truth population."""

    def __init__(
        self,
        population: SearchPopulation,
        config: TrendsConfig | None = None,
        clock: Clock = time.monotonic,
    ) -> None:
        self.population = population
        self.config = config or TrendsConfig()
        self.limiter = TokenBucketLimiter(self.config.rate_limit, clock=clock)
        self.stats = ServiceStats()
        self._round_counter: Counter = Counter()
        #: Guards the mutable counters; the sampling itself is pure.
        self._stats_lock = threading.Lock()
        #: Sample sizes per (state, window) — pure in the request, so a
        #: benign-race dict is safe across worker threads.
        self._sizes_cache: dict[tuple[str, object], np.ndarray] = {}

    def fetch(
        self,
        request: TimeFrameRequest,
        ip: str = "198.51.100.1",
        sample_round: int | None = None,
        include_rising: bool = True,
    ) -> TimeFrameResponse:
        """Serve one frame, or raise :class:`repro.errors.RateLimitError`.

        ``sample_round`` pins which independent sample to draw; when
        omitted, consecutive fetches of the same frame get consecutive
        rounds, mimicking "just fetch it again" crawling.
        """
        try:
            self.limiter.acquire(ip)
        except Exception:
            with self._stats_lock:
                self.stats.rate_limited += 1
            raise
        cache_key = request.cache_key
        if sample_round is None:
            with self._stats_lock:
                sample_round = self._round_counter[cache_key]
                self._round_counter[cache_key] += 1
        values = self._sample_values(request, cache_key, sample_round)
        rising: tuple[RisingTerm, ...] = ()
        if include_rising:
            rising_rng = substream_from(
                self.config.seed,
                stable_key_cached("rising", cache_key),
                sample_round,
            )
            rising = rising_terms(
                self.population,
                request,
                rising_rng,
                self.config.sample_rate,
                self.config.rising,
            )
        with self._stats_lock:
            if include_rising:
                self.stats.rising_computed += 1
            self.stats.frames_served += 1
            self.stats.frames_by_geo[request.geo] += 1
        return TimeFrameResponse(
            request=request,
            values=values,
            rising=rising,
            sample_round=sample_round,
        )

    def _sample_values(
        self, request: TimeFrameRequest, cache_key: tuple, sample_round: int
    ) -> np.ndarray:
        state = get_state(request.geo)
        # The substream key prefix repeats across rounds of the same
        # frame; memoize it and extend with the round number only.
        rng = substream_from(
            self.config.seed,
            stable_key_cached("frame", cache_key),
            sample_round,
        )
        volumes = self.population.term_volume(request.term, state.code, request.window)
        totals = self.population.total_volume(state.code, request.window)
        sizes_key = (state.code, request.window)
        sizes = self._sizes_cache.get(sizes_key)
        if sizes is None:
            sizes = np.maximum(
                np.round(totals * self.config.sample_rate), 1.0
            ).astype(np.int64)
            sizes.setflags(write=False)
            if len(self._sizes_cache) >= 8192:
                self._sizes_cache.clear()
            self._sizes_cache[sizes_key] = sizes
        counts = sample_counts(rng, volumes, totals, self.config.sample_rate, sizes)
        counts = privacy_round(counts, self.config.privacy_threshold)
        return index_frame(counts, sizes)
