"""The streaming study daemon: batch SIFT turned into a watch loop.

Batch SIFT crawls every weekly frame of the window, for every fetch
round, before a single spike exists.  The :class:`StudyDaemon` runs the
same pipeline as a sequence of *ticks*: each tick crawls only the
newest weekly frame (for a fixed number of sample rounds), folds it
through the configured averager, feeds the already-incremental
:class:`~repro.core.reconstruct.base.Stitcher`, re-walks detection over
the dirty tail only (:class:`~repro.streaming.detector.TailDetector`),
and publishes a delta snapshot into the serving layer.

Byte-identity with batch rests on three structural facts:

* the weekly frame partition of any prefix window ``[start,
  frames[t].end)`` is exactly frames ``0..t`` of the full partition
  (``weekly_frames`` right-aligns the final frame, which for a prefix
  window coincides with the regular grid);
* per-frame averaging folds are frame-independent, so folding one
  frame's rounds at its tick produces the same means as batch folding
  whole rounds — provided the round count is fixed
  (``AveragingConfig(min_rounds=R, max_rounds=R)``);
* the prominence walk never crosses zero hours, so detection restricted
  to the trailing dirty segment equals batch detection restricted to
  the same hours (DESIGN.md §12).

A killed watcher resumes mid-stream with zero refetch: stream state
(stitcher scalars, spike bounds, raw series) checkpoints into the
columnar store every ``StreamConfig.checkpoint_every`` ticks.
"""

from __future__ import annotations

import dataclasses
import time
from typing import TYPE_CHECKING

import numpy as np

from repro.core.averaging import AveragingResult, MissingFrame
from repro.core.area import group_outages
from repro.core.context import SpikeAnnotator
from repro.core.detection import SpikeBounds
from repro.core.pipeline import StateResult, StudyResult
from repro.core.progress import (
    AnnotationStarted,
    FramesDropped,
    GeoRecrawled,
    SpikePublished,
    StreamResumed,
    StudyFinished,
    TickFinished,
)
from repro.core.spikes import Spike, SpikeSet
from repro.errors import (
    CheckpointMismatchError,
    CollectionError,
    ConfigurationError,
    FrameDeadLettered,
)
from repro.streaming.config import StreamConfig
from repro.streaming.delta import GeoDelta, StudyDelta
from repro.streaming.detector import DetectionDelta, TailDetector
from repro.timeutil import TimeWindow, weekly_frames
from repro.trends.records import TimeFrameRequest, TimeFrameResponse

if TYPE_CHECKING:
    from repro.runtime.study import StudyRuntime
    from repro.web.app import SiftWebApp


@dataclasses.dataclass(frozen=True, slots=True)
class TickResult:
    """What one tick accomplished."""

    tick: int
    frame: TimeWindow
    published: tuple[Spike, ...]
    removed: int
    spike_count: int
    elapsed_seconds: float
    #: Of ``elapsed_seconds``, what the crawl of the newest frame cost.
    #: Any strategy pays this exactly once per new week, so benchmarks
    #: comparing incremental processing against a cache-hot full
    #: rebuild subtract it to keep both sides crawl-free.
    fetch_seconds: float
    fingerprint: str


class GeoStream:
    """One geography's incremental ingest state."""

    __slots__ = (
        "term",
        "geo",
        "averager",
        "stitcher",
        "detector",
        "rounds",
        "responses",
        "missing",
        "missing_by_round",
        "ticks_fed",
        "last_delta",
        "prev_hours",
        "prev_peak",
        "reused",
        "_raw",
        "_cached_spikes",
    )

    def __init__(self, term, geo, averager, stitcher, detection, rounds) -> None:
        self.term = term
        self.geo = geo
        self.averager = averager
        self.stitcher = stitcher
        self.detector = TailDetector(detection)
        self.rounds = rounds
        self.responses: list[TimeFrameResponse] = []
        self.missing: list[MissingFrame] = []
        self.missing_by_round: dict[int, int] = {}
        self.ticks_fed = 0
        self.last_delta: DetectionDelta | None = None
        self.prev_hours = 0
        self.prev_peak = 0.0
        #: Did the last :meth:`state_result` reuse its cached spikes?
        self.reused = False
        self._raw: np.ndarray | None = None
        self._cached_spikes: SpikeSet | None = None

    @property
    def hours(self) -> int:
        return 0 if self._raw is None else int(self._raw.size)

    @property
    def scale_changed(self) -> bool:
        """Did this tick move the raw maximum (the renorm factor)?"""
        if self._raw is None:
            return False
        return float(self._raw.max()) != self.prev_peak

    @property
    def rewrote_prefix(self) -> bool:
        return self.stitcher.dirty_from < self.prev_hours

    def ingest(self, tick: int, entries: list) -> DetectionDelta:
        """Fold one frame's sample rounds, feed the stitcher, re-walk.

        Transactional with respect to the crawl: callers fetch every
        round *before* invoking this, so a tick that dies mid-crawl
        never half-feeds a frame.
        """
        self.prev_hours = self.hours
        self.prev_peak = 0.0 if self._raw is None else float(self._raw.max())
        accumulator = self.averager.make_accumulator([entries[0]])
        for entry in entries:
            accumulator.fold([entry])
        dropped = [entry for entry in entries if isinstance(entry, MissingFrame)]
        self.missing.extend(dropped)
        for entry in dropped:
            self.missing_by_round[entry.sample_round] = (
                self.missing_by_round.get(entry.sample_round, 0) + 1
            )
        response = accumulator.to_responses()[0]
        self.stitcher.feed(response)
        self.responses.append(response)
        timeline, _ = self.stitcher.finalize(renormalize=False)
        self._raw = timeline.values
        self.last_delta = self.detector.update(self._raw, self.stitcher.dirty_from)
        self.ticks_fed = tick + 1
        return self.last_delta

    def state_result(self) -> tuple[StateResult, tuple[Spike, ...]]:
        """Current StateResult plus the spikes newly added this tick.

        Spikes are materialized exactly the way batch
        :func:`~repro.core.detection.detect_spikes` does it: ranked by
        descending renormalized peak value (ties by earliest index —
        the stable-argsort visit order), magnitudes read off the
        renormalized timeline.
        """
        timeline, report = self.stitcher.finalize(renormalize=True)
        # A pure-append tick that moved neither the renormalization
        # scale nor any spike bound leaves every materialized spike
        # byte-identical: reuse the cached set instead of rebuilding
        # O(spikes) objects (the common case late in a sparse stream).
        delta_changed = self.last_delta is not None and self.last_delta.changed
        if (
            self._cached_spikes is not None
            and not self.scale_changed
            and not self.rewrote_prefix
            and not delta_changed
        ):
            self.reused = True
            spike_set = self._cached_spikes
            published: tuple[Spike, ...] = ()
        else:
            self.reused = False
            values = timeline.values
            ordered = sorted(
                self.detector.bounds, key=lambda b: (-values[b.peak], b.peak)
            )
            spikes = [
                Spike(
                    term=self.term,
                    geo=self.geo,
                    start=timeline.time_at(bound.start),
                    peak=timeline.time_at(bound.peak),
                    end=timeline.time_at(bound.end),
                    magnitude=float(values[bound.peak]),
                    magnitude_rank=rank,
                )
                for rank, bound in enumerate(ordered, start=1)
            ]
            added = set(self.last_delta.added) if self.last_delta else set()
            published = tuple(
                spike for spike, bound in zip(spikes, ordered) if bound in added
            )
            spike_set = SpikeSet(spikes)
            self._cached_spikes = spike_set
        averaging = AveragingResult(
            timeline=timeline,
            spikes=spike_set,
            rounds_used=self.rounds,
            converged=True,
            similarity_history=(),
            stitch_report=report,
            responses=tuple(self.responses),
            missing_frames=tuple(self.missing),
            stitcher=self.stitcher.name,
            averager=self.averager.name,
        )
        result = StateResult(
            geo=self.geo, timeline=timeline, spikes=spike_set, averaging=averaging
        )
        return result, published

    def raw_series(self) -> np.ndarray:
        if self._raw is None:
            raise CollectionError(f"{self.geo}: no frames ingested yet")
        return self._raw


class StudyDaemon:
    """Drives the crawl scheduler in rounds of "newest week only"."""

    def __init__(
        self,
        runtime: "StudyRuntime",
        geos,
        *,
        stream: StreamConfig | None = None,
        app: "SiftWebApp | None" = None,
    ) -> None:
        self.runtime = runtime
        self.sift = runtime.sift
        config = self.sift.config
        if config.detection.min_peak != 0:
            raise ConfigurationError(
                "streaming detection requires min_peak == 0: the tail "
                "re-walk runs on the raw stitched series, which is only "
                "equivalent to batch detection when the walk is scale-"
                "invariant"
            )
        if config.averaging.quantize:
            raise ConfigurationError(
                "streaming cannot reproduce quantize=True: global "
                "quantization rounds the renormalized series, which is "
                "not scale-invariant under incremental re-stitching"
            )
        stream = stream if stream is not None else getattr(
            runtime.config, "stream", None
        ) or StreamConfig()
        if stream.rounds is None:
            if config.averaging.min_rounds != config.averaging.max_rounds:
                raise ConfigurationError(
                    "streaming needs a fixed fetch-round count; set "
                    "AveragingConfig(min_rounds=R, max_rounds=R) or "
                    "StreamConfig(rounds=R)"
                )
            rounds = config.averaging.min_rounds
        else:
            rounds = stream.rounds
        if getattr(self.sift.executor, "shards_study", False):
            raise ConfigurationError(
                "streaming keeps per-geo state in-process; the process-"
                "sharded executor cannot drive it — use serial or thread"
            )
        self.stream = stream
        self.rounds = rounds
        self.geos = tuple(geos)
        if not self.geos:
            raise ConfigurationError("streaming needs at least one geography")
        self.window = runtime.window
        self.frames = weekly_frames(self.window, config.overlap_hours)
        self.store = runtime.store
        self.app = app
        self.streams = {
            geo: GeoStream(
                term=config.term,
                geo=geo,
                averager=self.sift.averager,
                stitcher=self.sift.stitcher_factory(),
                detection=config.detection,
                rounds=rounds,
            )
            for geo in self.geos
        }
        self._next_tick = 0
        self._last_study: StudyResult | None = None
        self._last_spike_set: SpikeSet | None = None
        self._last_outages = None
        self._fetch_seconds: dict[str, float] = {}
        self._resume()

    # -- geometry ----------------------------------------------------------------

    @property
    def total_ticks(self) -> int:
        return len(self.frames)

    @property
    def ticks_done(self) -> int:
        return self._next_tick

    @property
    def done(self) -> bool:
        return self._next_tick >= self.total_ticks

    def prefix_window(self, tick: int | None = None) -> TimeWindow:
        """The batch-equivalent study window after *tick* has run."""
        index = self._next_tick - 1 if tick is None else tick
        return TimeWindow(self.window.start, self.frames[index].end)

    # -- the tick loop -----------------------------------------------------------

    def _fetch_entries(self, geo: str, frame: TimeWindow) -> list:
        """All sample rounds of one frame; dead letters become missing.

        Rising suggestions ride along only on round 0, mirroring the
        batch crawl (they are frame metadata, not sampled values).
        """
        entries: list[TimeFrameResponse | MissingFrame] = []
        for sample_round in range(self.rounds):
            try:
                entries.append(
                    self.sift.source.interest_over_time(
                        self.sift.config.term,
                        geo,
                        frame,
                        sample_round=sample_round,
                        include_rising=(sample_round == 0),
                    )
                )
            except FrameDeadLettered as error:
                entries.append(
                    MissingFrame(
                        request=TimeFrameRequest(
                            term=self.sift.config.term, geo=geo, window=frame
                        ),
                        sample_round=sample_round,
                        error=str(error),
                    )
                )
        return entries

    def _ingest_geo(self, geo: str, tick: int, frame: TimeWindow) -> None:
        stream = self.streams[geo]
        if stream.ticks_fed > tick:
            # Already fed by an earlier attempt of this tick: a retry
            # after a mid-tick failure must not double-feed the stitcher.
            return
        fetch_started = time.perf_counter()
        entries = self._fetch_entries(geo, frame)
        self._fetch_seconds[geo] = time.perf_counter() - fetch_started
        dropped_before = len(stream.missing)
        stream.ingest(tick, entries)
        dropped = len(stream.missing) - dropped_before
        if dropped:
            self.sift._emit(
                FramesDropped(geo=geo, dropped=dropped, rounds_used=self.rounds)
            )
        # Batch aborts a geography when any single round loses more
        # than max_missing_fraction of the window's frames; apply the
        # same budget against the full frame count as it accrues.
        budget = self.sift.config.averaging.max_missing_fraction * len(self.frames)
        for sample_round, count in stream.missing_by_round.items():
            if count > budget:
                raise CollectionError(
                    f"{geo}: round {sample_round} lost {count} of "
                    f"{len(self.frames)} frames; exceeds "
                    f"max_missing_fraction="
                    f"{self.sift.config.averaging.max_missing_fraction}"
                )

    def tick(self) -> TickResult:
        """Ingest the next weekly frame across all geographies.

        Safe to retry: a tick that raises mid-crawl (a dead fetcher, an
        exhausted fault budget) can simply be called again — geographies
        already fed this tick are skipped via their fed-tick watermark,
        and the crawl cache makes refetches free.
        """
        if self.done:
            raise CollectionError("stream exhausted: every tick has run")
        tick = self._next_tick
        frame = self.frames[tick]
        started = time.perf_counter()
        self._fetch_seconds = {}
        executor = self.sift.executor
        if executor is not None and hasattr(executor, "map"):
            executor.map(
                lambda geo: self._ingest_geo(geo, tick, frame), list(self.geos)
            )
        else:
            for geo in self.geos:
                self._ingest_geo(geo, tick, frame)
        study, delta = self._snapshot(tick)
        self._last_study = study
        self._next_tick = tick + 1
        if self.app is not None:
            self.app.install_delta(study, delta)
        published = delta.published
        for spike in published:
            self.sift._emit(
                SpikePublished(
                    geo=spike.geo,
                    tick=tick,
                    start=spike.start.isoformat(),
                    peak=spike.peak.isoformat(),
                    end=spike.end.isoformat(),
                    magnitude=spike.magnitude,
                    duration_hours=spike.duration_hours,
                )
            )
        removed = sum(
            len(stream.last_delta.removed)
            for stream in self.streams.values()
            if stream.last_delta is not None
        )
        elapsed = time.perf_counter() - started
        self.sift._emit(
            TickFinished(
                tick=tick,
                total_ticks=self.total_ticks,
                frame=frame,
                geo_count=len(self.geos),
                published=len(published),
                removed=removed,
                spike_count=len(study.spikes),
                elapsed_seconds=elapsed,
            )
        )
        if (
            self.store is not None
            and self.stream.checkpoint_every
            and self._next_tick % self.stream.checkpoint_every == 0
        ):
            self._checkpoint()
        return TickResult(
            tick=tick,
            frame=frame,
            published=published,
            removed=removed,
            spike_count=len(study.spikes),
            elapsed_seconds=elapsed,
            fetch_seconds=sum(self._fetch_seconds.values()),
            fingerprint=study.fingerprint(),
        )

    def run(self, max_ticks: int | None = None) -> StudyResult | None:
        """Run ticks to the window's end (or *max_ticks*); finalize if done."""
        ran = 0
        while not self.done and (max_ticks is None or ran < max_ticks):
            self.tick()
            ran += 1
        return self.finalize() if self.done else None

    # -- snapshots ---------------------------------------------------------------

    def _snapshot(self, tick: int) -> tuple[StudyResult, StudyDelta]:
        """The prefix StudyResult after *tick*, plus what the tick changed.

        Matches a batch ``run_study(geos, prefix_window)`` with
        ``annotate=False``: annotation is a two-pass global stage that
        would re-run O(study) per tick, so it is deferred to
        :meth:`finalize`.
        """
        frame = self.frames[tick]
        states: dict[str, StateResult] = {}
        deltas: dict[str, GeoDelta] = {}
        all_spikes: list[Spike] = []
        for geo in self.geos:
            stream = self.streams[geo]
            result, published = stream.state_result()
            states[geo] = result
            all_spikes.extend(result.spikes)
            deltas[geo] = GeoDelta(
                geo=geo,
                old_hours=stream.prev_hours,
                new_hours=len(result.timeline),
                scale_changed=stream.scale_changed,
                rewrote_prefix=stream.rewrote_prefix,
                spikes_changed=not stream.reused,
                published=published,
            )
        if self._last_spike_set is not None and all(
            stream.reused for stream in self.streams.values()
        ):
            # No geography's spikes moved: the union and its grouping
            # are the previous tick's, verbatim.
            spike_set = self._last_spike_set
            outages = self._last_outages
        else:
            spike_set = SpikeSet(all_spikes)
            outages = group_outages(spike_set, self.sift.config.area)
        self._last_spike_set = spike_set
        self._last_outages = outages
        study = StudyResult(
            window=TimeWindow(self.window.start, frame.end),
            spikes=spike_set,
            outages=outages,
            states=states,
            heavy_hitters=tuple(
                sorted(self.sift.config.context.seed_heavy_hitters)
            ),
            suggestion_stats=(0, 0),
            resumed_geos=(),
        )
        return study, StudyDelta(tick=tick, frame=frame, geos=deltas)

    def snapshot_study(self) -> StudyResult:
        """The streamed study as of the last completed tick."""
        if self._last_study is None:
            raise CollectionError("no tick has run yet")
        return self._last_study

    def finalize(self) -> StudyResult:
        """Annotate, group, persist — the batch study, stream-assembled."""
        if not self.done:
            raise CollectionError(
                f"cannot finalize: {self.total_ticks - self._next_tick} "
                f"ticks remain"
            )
        config = self.sift.config
        states = self.snapshot_study().states
        all_spikes: list[Spike] = []
        for geo in self.geos:
            all_spikes.extend(states[geo].spikes)
        annotator = SpikeAnnotator(
            fetch_rising=self.sift.daily_rising,
            clusterer=self.sift.clusterer,
            config=config.context,
        )
        if config.annotate and all_spikes:
            self.sift._emit(AnnotationStarted(spike_count=len(all_spikes)))
            all_spikes = annotator.annotate_all(all_spikes, two_pass=True)
        spike_set = SpikeSet(all_spikes)
        outages = group_outages(spike_set, config.area)
        if self.sift.checkpoint is not None:
            for geo in self.geos:
                self.sift.checkpoint.save_state(states[geo], self.window)
            self.sift.checkpoint.save_annotated(spike_set)
        study = StudyResult(
            window=self.window,
            spikes=spike_set,
            outages=outages,
            states=states,
            heavy_hitters=tuple(sorted(annotator.heavy_hitters)),
            suggestion_stats=(
                annotator.analyzer.distinct_terms,
                annotator.analyzer.total_suggestions,
            ),
            resumed_geos=(),
        )
        self._last_study = study
        self.sift._emit(self.sift.rising_cache.stats())
        self.sift._emit_crawl_stats()
        self.sift._emit(
            StudyFinished(
                geo_count=len(self.geos),
                spike_count=len(spike_set),
                outage_count=len(outages),
                resumed_geos=(),
            )
        )
        if self.store is not None:
            self.store.record_summary(study)
        if self.app is not None:
            self.app.install_study(study)
        return study

    # -- persistence -------------------------------------------------------------

    def _checkpoint(self) -> None:
        state = {
            "window_start": self.window.start.isoformat(),
            "window_end": self.window.end.isoformat(),
            "overlap_hours": self.sift.config.overlap_hours,
            "rounds": self.rounds,
            "stitcher": self.sift.config.stitcher,
            "averager": self.sift.config.averager,
            "tick": self._next_tick,
            "geos": {
                geo: {
                    "stitcher_state": stream.stitcher.export_state(),
                    "spikes": [
                        [bound.start, bound.peak, bound.end]
                        for bound in stream.detector.bounds
                    ],
                    "hours": stream.hours,
                }
                for geo, stream in self.streams.items()
            },
        }
        columns = {geo: stream.raw_series() for geo, stream in self.streams.items()}
        self.store.save_stream(state, columns)

    def _resume(self) -> None:
        if self.store is None:
            return
        state = self.store.load_stream()
        if state is None:
            return
        config = self.sift.config
        state_geos = set(state.get("geos", {}))
        # Geographies the store's integrity pass moved aside: absent
        # from the checkpoint because their partitions were damaged —
        # not because the stream was configured without them — so the
        # resume re-crawls exactly these back to the stream head.
        quarantined = tuple(
            sorted(
                geo
                for geo in state.get("quarantined", {})
                if geo in self.geos and geo not in state_geos
            )
        )
        matches = (
            state.get("window_start") == self.window.start.isoformat()
            and state.get("window_end") == self.window.end.isoformat()
            and state.get("overlap_hours") == config.overlap_hours
            and state.get("rounds") == self.rounds
            and state_geos | set(quarantined) == set(self.geos)
        )
        if not matches:
            return  # a different stream; start fresh, like window mismatches
        if (
            state.get("stitcher") != config.stitcher
            or state.get("averager") != config.averager
        ):
            raise CheckpointMismatchError(
                f"stream checkpoint was written by "
                f"{state.get('stitcher')}/{state.get('averager')}, study "
                f"is configured with {config.stitcher}/{config.averager}"
            )
        for geo, saved in state["geos"].items():
            stream = self.streams[geo]
            series = self.store.load_stream_column(geo)
            stream.stitcher.restore_state(saved["stitcher_state"], series)
            stream.detector.restore(
                [
                    SpikeBounds(start=s, peak=p, end=e)
                    for s, p, e in saved["spikes"]
                ],
                series,
            )
            stream._raw = series
            stream.prev_hours = int(series.size)
            stream.prev_peak = float(series.max())
            stream.ticks_fed = int(state["tick"])
        self._next_tick = int(state["tick"])
        recrawled = self._recrawl(quarantined)
        if self._next_tick > 0:
            self._last_study, _ = self._snapshot(self._next_tick - 1)
        self.sift._emit(
            StreamResumed(
                tick=self._next_tick,
                total_ticks=self.total_ticks,
                geo_count=len(self.geos),
            )
        )
        if recrawled:
            # Checkpoint immediately: the refilled state (quarantine
            # marker cleared) hits disk before anything else can crash,
            # so each quarantined geo is re-crawled exactly once no
            # matter how many restarts follow.
            self._checkpoint()

    def _recrawl(self, geos: tuple[str, ...]) -> bool:
        """Refill quarantined geographies up to the stream head.

        Each geo re-runs ticks ``0 .. _next_tick - 1`` through the
        normal ingest path (its fed-tick watermark starts at zero, so
        every frame feeds once); the crawl cache makes the refetches
        cheap, and determinism makes them byte-identical to the lost
        originals.
        """
        for geo in geos:
            for tick in range(self._next_tick):
                self._ingest_geo(geo, tick, self.frames[tick])
            self.sift._emit(GeoRecrawled(geo=geo, ticks=self._next_tick))
        return bool(geos)
