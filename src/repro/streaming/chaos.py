"""Process-level chaos for the supervised watch loop.

PR 3's fault layer (:mod:`repro.trends.faults`) attacks *requests* —
503s, timeouts, truncated frames — everything the per-frame retry
machinery is built to absorb.  This module attacks the **process**: the
failures that escape every retry budget and land on the supervisor.

* :class:`ProcessFaultProfile` — declarative rates for tick-killing
  crashes, watchdog-tripping stalls, and post-checkpoint partition
  corruption (torn/truncated or bit-flipped stream columns);
* :class:`ProcessChaos` — the seeded decision engine.  Fetch-level
  draws come from a :func:`repro.rand.substream` keyed by the request
  identity plus a per-identity attempt counter (a restarted tick's
  refetch is a *new* attempt and redraws), corruption draws by the tick
  number alone — never by wall time or arrival order, so a chaos soak
  replays bit-exactly from ``(profile, seed)``;
* :class:`ChaoticFrameSource` — a delegating wrapper over the study's
  :class:`~repro.collection.scheduler.CollectionManager`.  It sits
  *above* the fetcher retry loop, so an injected
  :class:`~repro.errors.TickCrashError` kills the tick outright
  (simulating a process death) instead of being retried away; injected
  stalls spend virtual time and then let the armed :class:`Watchdog`
  fire, exactly like a supervisor killing a wedged worker;
* :func:`damage_stream_column` — deterministic on-disk corruption of
  one geo's stream checkpoint column, discovered only by the *next*
  restart's :meth:`~repro.store.columnar.ColumnarStore.verify` pass —
  the same delayed detection a real torn write gets.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from collections import Counter

from repro.errors import ConfigurationError, TickCrashError, WatchdogTimeout
from repro.rand import substream
from repro.store.columnar import SERIES_DIR
from repro.timeutil import TimeWindow


class Watchdog:
    """A cooperative virtual-time deadline for one supervised tick.

    The supervisor arms it before each tick; chaos stalls (and any
    other cooperative checkpoint) call :meth:`check`, which raises
    :class:`~repro.errors.WatchdogTimeout` once the tick has spent more
    virtual seconds than the deadline allows.  Cooperative because the
    whole runtime shares one simulated clock — there is no second
    process to send signals from, and none is needed: everything that
    can wedge a tick (stalls, timeouts, backoff) spends virtual time
    through that clock.
    """

    def __init__(self, clock, deadline_seconds: float) -> None:
        if deadline_seconds <= 0:
            raise ConfigurationError(
                f"watchdog deadline must be positive: {deadline_seconds}"
            )
        self.clock = clock
        self.deadline_seconds = deadline_seconds
        self._armed_at: float | None = None

    def arm(self) -> None:
        self._armed_at = float(self.clock())

    def disarm(self) -> None:
        self._armed_at = None

    def elapsed(self) -> float:
        if self._armed_at is None:
            return 0.0
        return float(self.clock()) - self._armed_at

    def expired(self) -> bool:
        return self._armed_at is not None and (
            self.elapsed() > self.deadline_seconds
        )

    def check(self) -> None:
        """Raise :class:`WatchdogTimeout` if the deadline is spent."""
        if self.expired():
            raise WatchdogTimeout(self.elapsed(), self.deadline_seconds)


#: Corruption kinds :func:`damage_stream_column` can apply.
CORRUPTION_KINDS = ("truncate", "bitflip")


@dataclasses.dataclass(frozen=True, slots=True)
class ProcessFaultProfile:
    """Declarative process chaos: how often the daemon itself suffers.

    ``crash_rate`` and ``stall_rate`` are probabilities per fetch
    attempt (mutually exclusive, crash drawn first); their sum must
    stay below 1 so every tick eventually completes.  ``corrupt_rate``
    is a probability per *completed checkpoint* that one geo's stream
    column gets damaged on disk.
    """

    name: str = "custom"
    #: Per fetch attempt: the tick dies mid-crawl (``TickCrashError``).
    crash_rate: float = 0.0
    #: Per fetch attempt: the fetch wedges for ``stall_seconds`` of
    #: virtual time, tripping any armed watchdog.
    stall_rate: float = 0.0
    stall_seconds: float = 300.0
    #: Per completed checkpoint: one stream column is damaged on disk.
    corrupt_rate: float = 0.0
    #: Bytes cut from the end of a torn ("truncate") column.
    torn_bytes: int = 16
    #: Which corruption kinds the corruption draw chooses between.
    kinds: tuple[str, ...] = CORRUPTION_KINDS

    def __post_init__(self) -> None:
        rates = (self.crash_rate, self.stall_rate, self.corrupt_rate)
        if any(rate < 0.0 for rate in rates):
            raise ConfigurationError(f"fault rates must be >= 0: {rates}")
        if self.crash_rate + self.stall_rate >= 1.0:
            raise ConfigurationError(
                "crash_rate + stall_rate must stay below 1 so every tick "
                f"eventually completes: {self.crash_rate + self.stall_rate}"
            )
        if self.corrupt_rate > 1.0:
            raise ConfigurationError(
                f"corrupt_rate is a probability: {self.corrupt_rate}"
            )
        if self.stall_seconds <= 0 or self.torn_bytes < 1:
            raise ConfigurationError(
                f"stall_seconds must be positive and torn_bytes >= 1: "
                f"{self.stall_seconds}, {self.torn_bytes}"
            )
        if not self.kinds or any(k not in CORRUPTION_KINDS for k in self.kinds):
            raise ConfigurationError(
                f"kinds must be drawn from {CORRUPTION_KINDS}: {self.kinds}"
            )


#: Named profiles: each process failure mode in isolation, plus the
#: kill/corrupt soak the resilience benchmark runs.
PROCESS_PROFILES: dict[str, ProcessFaultProfile] = {
    "none": ProcessFaultProfile(name="none"),
    "crashy": ProcessFaultProfile(name="crashy", crash_rate=0.06),
    "wedged": ProcessFaultProfile(
        name="wedged", stall_rate=0.05, stall_seconds=600.0
    ),
    "torn": ProcessFaultProfile(name="torn", corrupt_rate=0.4),
    "havoc": ProcessFaultProfile(
        name="havoc",
        crash_rate=0.04,
        stall_rate=0.03,
        stall_seconds=600.0,
        corrupt_rate=0.25,
    ),
}


class ProcessChaos:
    """Seeded, order-independent process-fault decisions plus counters."""

    def __init__(self, profile: ProcessFaultProfile, seed: int, clock=None):
        self.profile = profile
        self.seed = seed
        #: The shared virtual clock; stalls spend time through it.
        self.clock = clock
        #: Armed by the supervisor around each tick; stalls check it.
        self.watchdog: Watchdog | None = None
        self.injected: Counter = Counter()
        self._attempts: Counter = Counter()
        self._lock = threading.Lock()

    def fetch_fault(
        self, term: str, geo: str, window: TimeWindow, sample_round: int
    ) -> str | None:
        """The planned fault for one fetch attempt: "crash", "stall", None.

        Keyed by request identity + per-identity attempt count, so the
        decision is independent of thread interleaving, and a restarted
        tick's refetch of the same frame draws fresh.
        """
        identity = (
            term,
            geo,
            window.start.isoformat(),
            window.end.isoformat(),
            sample_round,
        )
        with self._lock:
            attempt = self._attempts[identity]
            self._attempts[identity] += 1
        if not (self.profile.crash_rate or self.profile.stall_rate):
            return None
        rng = substream(self.seed, "process", *identity, attempt)
        draw = float(rng.random())
        if draw < self.profile.crash_rate:
            return "crash"
        if draw < self.profile.crash_rate + self.profile.stall_rate:
            return "stall"
        return None

    def corruption(self, tick: int, geos) -> tuple[str, str] | None:
        """What to damage after *tick*'s checkpoint: (geo, kind) or None."""
        if self.profile.corrupt_rate <= 0.0:
            return None
        rng = substream(self.seed, "corrupt", tick)
        if float(rng.random()) >= self.profile.corrupt_rate:
            return None
        ordered = sorted(geos)
        geo = ordered[int(rng.integers(len(ordered)))]
        kind = self.profile.kinds[int(rng.integers(len(self.profile.kinds)))]
        return geo, kind

    def injection_counts(self) -> dict[str, int]:
        with self._lock:
            return {
                kind: self.injected.get(kind, 0)
                for kind in ("crash", "stall", "truncate", "bitflip")
            }


class ChaoticFrameSource:
    """A frame source that dies and wedges exactly as planned.

    Wraps the study's ``CollectionManager`` *above* the per-frame retry
    loop: an injected crash is a process death, not a 503, so nothing
    below the supervisor may absorb it.  All other attributes delegate
    to the wrapped manager, so the daemon's crawl accounting, caching,
    and dead-letter handling are untouched.
    """

    def __init__(self, inner, chaos: ProcessChaos) -> None:
        self.inner = inner
        self.chaos = chaos

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    def interest_over_time(
        self,
        term: str,
        geo: str,
        window: TimeWindow,
        sample_round: int | None = None,
        include_rising: bool = True,
    ):
        fault = self.chaos.fetch_fault(
            term, geo, window, sample_round if sample_round is not None else 0
        )
        if fault == "crash":
            with self.chaos._lock:
                self.chaos.injected["crash"] += 1
            raise TickCrashError(
                f"injected process crash mid-crawl ({geo}, "
                f"..{window.end:%Y-%m-%d}, round {sample_round})"
            )
        if fault == "stall":
            with self.chaos._lock:
                self.chaos.injected["stall"] += 1
            if self.chaos.clock is not None:
                self.chaos.clock.sleep(self.chaos.profile.stall_seconds)
            if self.chaos.watchdog is not None:
                self.chaos.watchdog.check()
        return self.inner.interest_over_time(
            term,
            geo,
            window,
            sample_round=sample_round,
            include_rising=include_rising,
        )


def damage_stream_column(
    store, geo: str, kind: str, seed: int, tick: int, torn_bytes: int = 16
) -> str | None:
    """Corrupt one geo's stream column on disk; returns the file path.

    ``truncate`` tears the configured tail bytes off (a short write);
    ``bitflip`` flips one bit at a seeded offset (silent media rot).
    Both leave the manifest digest stale, which is the point: the
    damage is invisible until the next restart's ``verify`` pass.
    Returns ``None`` (no damage) when the column does not exist —
    e.g. it is already quarantined.
    """
    path = os.path.join(store.root, SERIES_DIR, f"{geo}.stream.npy")
    if not os.path.exists(path):
        return None
    size = os.path.getsize(path)
    rng = substream(seed, "damage", geo, tick)
    if kind == "truncate":
        torn = min(max(1, size - 1), torn_bytes)
        with open(path, "r+b") as handle:
            handle.truncate(size - torn)
    elif kind == "bitflip":
        offset = int(rng.integers(size))
        bit = 1 << int(rng.integers(8))
        with open(path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)[0]
            handle.seek(offset)
            handle.write(bytes([byte ^ bit]))
    else:
        raise ConfigurationError(f"unknown corruption kind: {kind!r}")
    return path
