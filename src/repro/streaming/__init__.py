"""Streaming SIFT: incremental ingest, bounded re-stitch, delta installs.

``StreamConfig`` is import-light (the runtime config embeds it); the
daemon and its collaborators pull in the whole pipeline, so they load
lazily on first attribute access.
"""

from repro.streaming.config import StreamConfig
from repro.streaming.delta import GeoDelta, StudyDelta

__all__ = [
    "StreamConfig",
    "GeoDelta",
    "StudyDelta",
    "StudyDaemon",
    "GeoStream",
    "TickResult",
    "TailDetector",
    "DetectionDelta",
    "DaemonSupervisor",
    "SupervisorConfig",
    "HealthState",
    "ProcessChaos",
    "ProcessFaultProfile",
    "PROCESS_PROFILES",
    "ChaoticFrameSource",
    "Watchdog",
    "damage_stream_column",
]

_LAZY = {
    "StudyDaemon": "repro.streaming.daemon",
    "GeoStream": "repro.streaming.daemon",
    "TickResult": "repro.streaming.daemon",
    "TailDetector": "repro.streaming.detector",
    "DetectionDelta": "repro.streaming.detector",
    "DaemonSupervisor": "repro.streaming.supervisor",
    "SupervisorConfig": "repro.streaming.supervisor",
    "HealthState": "repro.streaming.supervisor",
    "ProcessChaos": "repro.streaming.chaos",
    "ProcessFaultProfile": "repro.streaming.chaos",
    "PROCESS_PROFILES": "repro.streaming.chaos",
    "ChaoticFrameSource": "repro.streaming.chaos",
    "Watchdog": "repro.streaming.chaos",
    "damage_stream_column": "repro.streaming.chaos",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
