"""Streaming SIFT: incremental ingest, bounded re-stitch, delta installs.

``StreamConfig`` is import-light (the runtime config embeds it); the
daemon and its collaborators pull in the whole pipeline, so they load
lazily on first attribute access.
"""

from repro.streaming.config import StreamConfig
from repro.streaming.delta import GeoDelta, StudyDelta

__all__ = [
    "StreamConfig",
    "GeoDelta",
    "StudyDelta",
    "StudyDaemon",
    "GeoStream",
    "TickResult",
    "TailDetector",
    "DetectionDelta",
]

_LAZY = {
    "StudyDaemon": "repro.streaming.daemon",
    "GeoStream": "repro.streaming.daemon",
    "TickResult": "repro.streaming.daemon",
    "TailDetector": "repro.streaming.detector",
    "DetectionDelta": "repro.streaming.detector",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
