"""What one streaming tick changed, per geography and study-wide.

The serving layer consumes these to perform delta snapshot installs:
append the new hours to each geography's column, rebuild only what the
tick actually touched, and drop only the cache entries whose window
reaches into the appended range (see ``QueryIndex.apply_delta``).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.spikes import Spike
    from repro.timeutil import TimeWindow


@dataclasses.dataclass(frozen=True, slots=True)
class GeoDelta:
    """One geography's change across a tick."""

    geo: str
    #: Series length before / after the tick's feed.
    old_hours: int
    new_hours: int
    #: The raw series maximum moved, so the renormalization factor — and
    #: with it every previously served value — changed.
    scale_changed: bool
    #: The stitcher rewrote hours before ``old_hours`` (calibrated
    #: anchor blending); the column prefix can no longer be trusted.
    rewrote_prefix: bool
    #: The spike set changed (bounds added/removed, or rescaled).
    spikes_changed: bool
    #: Spikes newly surfaced by this tick, ready to announce.
    published: tuple["Spike", ...] = ()

    @property
    def appendable(self) -> bool:
        """True when the column can extend in place instead of rebuilding."""
        return not (self.scale_changed or self.rewrote_prefix)


@dataclasses.dataclass(frozen=True, slots=True)
class StudyDelta:
    """The study-wide change of one tick."""

    tick: int
    frame: "TimeWindow"
    geos: dict[str, GeoDelta]

    @property
    def published(self) -> tuple["Spike", ...]:
        return tuple(
            spike for delta in self.geos.values() for spike in delta.published
        )

    @property
    def appended_hours(self) -> int:
        return sum(d.new_hours - d.old_hours for d in self.geos.values())
