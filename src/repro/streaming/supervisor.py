"""The daemon supervisor: a self-healing harness around the watch loop.

The streaming daemon made the repo a long-running service; this module
makes it an *unattended* one.  :class:`DaemonSupervisor` runs
:class:`~repro.streaming.daemon.StudyDaemon` ticks under a virtual-time
watchdog and owns every failure the per-frame retry machinery cannot:

* a tick failure is classified with :func:`repro.errors.classify_error`
  — retryable failures (crashes, watchdog timeouts, transient storms
  that escaped the fetcher budget) trigger a **restart from the
  columnar stream checkpoint** after seeded-jitter exponential backoff;
  fatal ones (and an exhausted restart budget) **halt**;
* every restart first runs the store's integrity pass
  (:meth:`~repro.store.columnar.ColumnarStore.verify` with quarantine),
  so torn or bit-flipped partitions are moved aside and the rebuilt
  daemon re-crawls exactly the quarantined geographies;
* health is an explicit three-state machine — ``healthy`` → ``degraded``
  on the first failure, back to ``healthy`` after
  ``recovery_ticks`` consecutive clean ticks, ``halted`` terminally —
  emitted as :class:`~repro.core.progress.HealthChanged` progress
  events and served by the web layer's ``/healthz`` / ``/readyz``;
* the serving layer degrades instead of dying: while the daemon is
  down the attached app keeps answering from its last installed
  snapshot, and after any rebuild the supervisor resynchronizes it
  with a full snapshot install before re-attaching delta installs
  (a rebuilt daemon and a stale app index must never splice).

Everything is virtual-time and seeded: backoff jitter comes from a
:func:`repro.rand.substream` keyed by ``(tick, attempt)``, chaos from
:class:`~repro.streaming.chaos.ProcessChaos` — a supervised soak
replays bit-exactly, which is what lets the resilience benchmark
commit recovery-time numbers as portable floors.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import TYPE_CHECKING

from repro.core.progress import (
    HealthChanged,
    Heartbeat,
    PartitionQuarantined,
    TickRestarted,
)
from repro.errors import (
    ConfigurationError,
    ErrorClass,
    ReproError,
    SupervisorHalted,
    classify_error,
)
from repro.rand import substream
from repro.streaming.chaos import (
    ChaoticFrameSource,
    ProcessChaos,
    Watchdog,
    damage_stream_column,
)
from repro.streaming.config import StreamConfig

if TYPE_CHECKING:
    from repro.runtime.study import StudyRuntime
    from repro.streaming.daemon import StudyDaemon, TickResult
    from repro.web.app import SiftWebApp


class HealthState(enum.Enum):
    """The supervisor's externally-visible condition."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    HALTED = "halted"


@dataclasses.dataclass(frozen=True, slots=True)
class SupervisorConfig:
    """Restart policy knobs (all time in virtual seconds)."""

    #: Watchdog deadline per tick; a tick spending more virtual time
    #: than this is killed (cooperatively — see ``chaos.Watchdog``).
    watchdog_seconds: float = 3600.0
    #: Consecutive-failure budget: the supervisor halts when one tick
    #: fails this many times in a row (success resets the count).
    max_restarts: int = 8
    #: Exponential backoff before each restart:
    #: ``min(cap, base * factor**(attempt-1))`` scaled by seeded jitter
    #: drawn uniformly from [0.5, 1.0].
    backoff_base: float = 2.0
    backoff_factor: float = 2.0
    backoff_cap: float = 600.0
    backoff_seed: int = 99
    #: Clean ticks required before ``degraded`` recovers to ``healthy``.
    recovery_ticks: int = 2
    #: Emit a :class:`Heartbeat` every N successful ticks (0 disables).
    heartbeat_every: int = 1

    def __post_init__(self) -> None:
        if self.watchdog_seconds <= 0:
            raise ConfigurationError(
                f"watchdog_seconds must be positive: {self.watchdog_seconds}"
            )
        if self.max_restarts < 1:
            raise ConfigurationError(
                f"max_restarts must be >= 1: {self.max_restarts}"
            )
        if (
            self.backoff_base <= 0
            or self.backoff_factor < 1
            or self.backoff_cap < self.backoff_base
        ):
            raise ConfigurationError(
                f"invalid backoff geometry: base={self.backoff_base}, "
                f"factor={self.backoff_factor}, cap={self.backoff_cap}"
            )
        if self.recovery_ticks < 1:
            raise ConfigurationError(
                f"recovery_ticks must be >= 1: {self.recovery_ticks}"
            )
        if self.heartbeat_every < 0:
            raise ConfigurationError(
                f"heartbeat_every must be >= 0: {self.heartbeat_every}"
            )


class DaemonSupervisor:
    """Runs daemon ticks, restarts from checkpoint, reports health."""

    def __init__(
        self,
        runtime: "StudyRuntime",
        geos,
        *,
        config: SupervisorConfig | None = None,
        stream: StreamConfig | None = None,
        app: "SiftWebApp | None" = None,
        chaos: ProcessChaos | None = None,
    ) -> None:
        self.runtime = runtime
        self.geos = tuple(geos)
        self.config = config or SupervisorConfig()
        self.stream = stream
        self.app = app
        self.chaos = chaos
        self.state = HealthState.HEALTHY
        #: Lifetime restart count (never resets; health_payload reports it).
        self.restarts = 0
        #: Geographies quarantined by integrity passes, in order.
        self.quarantined: list[str] = []
        #: One entry per degraded incident that recovered: tick indices,
        #: failure count, and virtual seconds from first failure to the
        #: recovery transition.
        self.recovery_log: list[dict] = []
        self._consecutive_failures = 0
        self._clean_streak = 0
        self._incident: dict | None = None
        self._last_error: str | None = None
        self.watchdog = Watchdog(runtime.clock, self.config.watchdog_seconds)
        if chaos is not None:
            chaos.clock = runtime.clock
            chaos.watchdog = self.watchdog
            if not isinstance(runtime.sift.source, ChaoticFrameSource):
                runtime.sift.source = ChaoticFrameSource(
                    runtime.sift.source, chaos
                )
        self.daemon: "StudyDaemon | None" = self._spawn()
        self._sync_app()

    # -- daemon lifecycle ------------------------------------------------------

    def _spawn(self) -> "StudyDaemon":
        """Verify the store, quarantine damage, build a fresh daemon.

        The daemon's own resume then restores every intact geography
        from the stream checkpoint and re-crawls exactly the
        quarantined ones.
        """
        if self.runtime.store is not None:
            verification = self.runtime.store.verify(quarantine=True)
            for item in verification.damage:
                self._emit(
                    PartitionQuarantined(
                        geo=item.geo, file=item.file, reason=item.kind
                    )
                )
            self.quarantined.extend(verification.quarantined)
        return self.runtime.stream_daemon(self.geos, stream=self.stream)

    def _sync_app(self) -> None:
        """Resynchronize the serving app with the (re)built daemon.

        Delta installs splice onto the app's current index position, so
        after any rebuild the app gets one full snapshot install at the
        daemon's position before delta installs re-attach.  A daemon
        with no completed tick has no snapshot yet; the attach then
        happens on its first success.
        """
        if self.app is None or self.daemon is None:
            return
        self.daemon.app = None
        if self.daemon.ticks_done > 0:
            self.app.install_study(
                self.daemon.snapshot_study(),
                stream_tick=self.daemon.ticks_done - 1,
            )
            self.daemon.app = self.app

    def attach_app(self, app: "SiftWebApp") -> None:
        """Wire a serving app in after construction (e.g. once the first
        tick has produced a snapshot to build it from)."""
        self.app = app
        self._sync_app()

    # -- geometry --------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.daemon is not None and self.daemon.done

    @property
    def ticks_done(self) -> int:
        return self.daemon.ticks_done if self.daemon is not None else 0

    @property
    def total_ticks(self) -> int:
        return self.daemon.total_ticks if self.daemon is not None else 0

    # -- the supervised tick ---------------------------------------------------

    def tick(self) -> "TickResult":
        """Run one tick to completion, restarting through failures.

        Returns the successful :class:`TickResult`; raises
        :class:`SupervisorHalted` when the restart budget is spent or a
        fatal error surfaces.
        """
        while True:
            if self.state is HealthState.HALTED:
                raise SupervisorHalted(
                    "supervisor is halted", restarts=self.restarts
                )
            if self.daemon is None:
                try:
                    self.daemon = self._spawn()
                    self._sync_app()
                except SupervisorHalted:
                    raise
                except Exception as error:  # rebuild failed: same policy
                    self._failure(error)
                    continue
            tick_index = self.daemon.ticks_done
            self.watchdog.arm()
            try:
                result = self.daemon.tick()
            except SupervisorHalted:
                raise
            except Exception as error:
                self._failure(error, tick_index)
                continue
            finally:
                self.watchdog.disarm()
            self._success(result)
            return result

    def run(self, max_ticks: int | None = None):
        """Supervised ticks to the stream's end; finalize when done."""
        ran = 0
        while not self.done and (max_ticks is None or ran < max_ticks):
            self.tick()
            ran += 1
        return self.finalize() if self.done else None

    def finalize(self):
        return self.daemon.finalize()

    # -- failure policy --------------------------------------------------------

    def _failure(self, error: Exception, tick_index: int | None = None) -> None:
        tick = self.ticks_done if tick_index is None else tick_index
        self._last_error = f"{type(error).__name__}: {error}"
        if isinstance(error, ReproError):
            error_class = classify_error(error)
        else:
            # Anything foreign (a real bug, an OS error) is treated as
            # a process crash: restartable, budget permitting.
            error_class = ErrorClass.RETRYABLE
        if error_class is ErrorClass.FATAL:
            self._halt(f"fatal error at tick {tick}: {self._last_error}", error)
        self._consecutive_failures += 1
        self._clean_streak = 0
        if self._consecutive_failures > self.config.max_restarts:
            self._halt(
                f"restart budget exhausted: tick {tick} failed "
                f"{self._consecutive_failures} times in a row "
                f"(last: {self._last_error})",
                error,
            )
        self.restarts += 1
        self._transition(
            HealthState.DEGRADED, f"tick failed: {self._last_error}", tick
        )
        if self._incident is None:
            self._incident = {
                "tick": tick,
                "started": float(self.runtime.clock()),
                "failures": 0,
            }
        self._incident["failures"] += 1
        backoff = self._backoff(tick, self._consecutive_failures)
        self._emit(
            TickRestarted(
                tick=tick,
                attempt=self._consecutive_failures,
                error_class=error_class.value,
                error=self._last_error,
                backoff_seconds=round(backoff, 3),
            )
        )
        self.runtime.clock.sleep(backoff)
        if self.runtime.store is not None:
            # A real restart loses the process: rebuild the daemon from
            # the stream checkpoint (running the integrity pass on the
            # way) instead of reusing in-memory state.
            self.daemon = None
        # Without a store there is no checkpoint to rebuild from; the
        # tick itself is retry-safe, so the same daemon just tries again.

    def _backoff(self, tick: int, attempt: int) -> float:
        base = min(
            self.config.backoff_cap,
            self.config.backoff_base
            * self.config.backoff_factor ** (attempt - 1),
        )
        rng = substream(
            self.config.backoff_seed, "supervisor-backoff", tick, attempt
        )
        return base * (0.5 + 0.5 * float(rng.random()))

    def _halt(self, reason: str, error: Exception | None = None) -> None:
        self._transition(HealthState.HALTED, reason, self.ticks_done)
        raise SupervisorHalted(reason, restarts=self.restarts, last_error=error)

    # -- success path ----------------------------------------------------------

    def _success(self, result: "TickResult") -> None:
        self._consecutive_failures = 0
        if self.state is HealthState.DEGRADED:
            self._clean_streak += 1
            if self._clean_streak >= self.config.recovery_ticks:
                incident = self._incident or {}
                self.recovery_log.append(
                    {
                        "tick": incident.get("tick", result.tick),
                        "failures": incident.get("failures", 0),
                        "recovered_tick": result.tick,
                        "ticks_degraded": result.tick
                        - incident.get("tick", result.tick),
                        "virtual_seconds": round(
                            float(self.runtime.clock())
                            - incident.get(
                                "started", float(self.runtime.clock())
                            ),
                            3,
                        ),
                    }
                )
                self._incident = None
                self._transition(
                    HealthState.HEALTHY,
                    f"{self._clean_streak} consecutive clean ticks",
                    result.tick,
                )
                self._clean_streak = 0
        if self.app is not None and self.daemon.app is None:
            # First success of an app that could not attach at spawn.
            self._sync_app()
        if (
            self.config.heartbeat_every
            and self.daemon.ticks_done % self.config.heartbeat_every == 0
        ):
            beat = Heartbeat(
                tick=result.tick,
                health=self.state.value,
                ticks_done=self.daemon.ticks_done,
                total_ticks=self.daemon.total_ticks,
                restarts=self.restarts,
            )
            self._emit(beat)
            if self.app is not None:
                self.app.publish_stream_events([beat])
        self._corrupt_after(result.tick)

    def _corrupt_after(self, tick: int) -> None:
        """Apply planned chaos corruption to the freshly-written checkpoint.

        The damage lands *after* the tick completes — like a torn write
        racing a crash — and goes undetected until the next restart's
        verify pass, which is exactly how real corruption behaves.
        """
        if self.chaos is None or self.runtime.store is None:
            return
        if self.daemon is None or self.runtime.store.load_stream() is None:
            return
        planned = self.chaos.corruption(tick, self.geos)
        if planned is None:
            return
        geo, kind = planned
        damaged = damage_stream_column(
            self.runtime.store,
            geo,
            kind,
            self.chaos.seed,
            tick,
            torn_bytes=self.chaos.profile.torn_bytes,
        )
        if damaged is not None:
            with self.chaos._lock:
                self.chaos.injected[kind] += 1

    # -- health ----------------------------------------------------------------

    def _transition(self, state: HealthState, reason: str, tick: int) -> None:
        if state is self.state:
            return
        previous = self.state
        self.state = state
        self._emit(
            HealthChanged(
                state=state.value,
                previous=previous.value,
                reason=reason,
                tick=tick,
                restarts=self.restarts,
            )
        )

    def health_payload(self) -> dict:
        """What ``/healthz`` (and ``/api/runtime``'s health field) serves."""
        return {
            "state": self.state.value,
            "restarts": self.restarts,
            "consecutive_failures": self._consecutive_failures,
            "ticks_done": self.ticks_done,
            "total_ticks": self.total_ticks,
            "quarantined": list(self.quarantined),
            "recoveries": len(self.recovery_log),
            "last_error": self._last_error,
        }

    # -- progress --------------------------------------------------------------

    def _emit(self, event) -> None:
        self.runtime.sift._emit(event)
