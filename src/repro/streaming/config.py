"""Configuration for the streaming study daemon.

Kept import-free of the rest of ``repro`` so the runtime layer can
embed a :class:`StreamConfig` inside ``RuntimeConfig`` without pulling
the daemon (and through it the whole pipeline) into its import graph —
``repro.streaming`` proper loads lazily.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True, slots=True)
class StreamConfig:
    """How the daemon paces ingest, publishing, and persistence.

    ``rounds`` fixes how many sample rounds each newly arrived weekly
    frame is fetched for at its tick.  Batch SIFT decides rounds
    adaptively (fetch until the spike set converges), which a streaming
    ingest cannot replay — it sees one new frame per tick, not a whole
    round.  ``None`` derives the count from the study's
    ``AveragingConfig`` and requires ``min_rounds == max_rounds``;
    byte-identity with the batch pipeline holds exactly under that
    fixed-round configuration.
    """

    rounds: int | None = None
    #: Persist resumable stream state every N ticks (0 disables).
    checkpoint_every: int = 1
    #: Ring-buffer capacity of the ``/api/stream`` event feed.
    event_buffer: int = 1024

    def __post_init__(self) -> None:
        if self.rounds is not None and self.rounds < 1:
            raise ValueError(f"rounds must be positive: {self.rounds}")
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0: {self.checkpoint_every}"
            )
        if self.event_buffer < 1:
            raise ValueError(f"event_buffer must be positive: {self.event_buffer}")
