"""Incremental prominence-walk detection over a growing series.

The batch detector (:mod:`repro.core.detection`) walks the whole study
every time.  Streaming ingest appends a tail per tick, so the
:class:`TailDetector` exploits a structural property of the walk:
neither :func:`walk_forward` nor :func:`walk_backward` ever crosses a
zero hour, and claims are created by walks, so **no spike and no claim
spans a zero**.  Privacy-threshold zeros therefore cut the series into
independent detection segments, and global detection equals per-segment
detection (a stable descending argsort restricted to a segment keeps
the same visit order the global pass would use within it).

Per tick the detector:

* records which of the newly appended hours are zero (an append-only
  sorted list — rescaling by positive stitch ratios and the calibrated
  stitcher's positive-pair blending never create or destroy zeros in
  hours already seen);
* finds the start of the zero-delimited segment containing the first
  *dirty* hour (``Stitcher.dirty_from``) by bisection;
* discards every remembered spike at or after that segment start and
  re-walks only ``values[region_start:]``.

Frozen spikes before the region are never re-walked, so the cost per
tick is O(tail + last segment), not O(study).

Detection runs on the **raw** stitched series, not the renormalized
one: with ``min_peak == 0`` and quantization off the walk is scale
invariant, so the bounds match what batch detection finds on the
renormalized timeline — magnitudes and ranks are attached later from
the renormalized values.  The daemon enforces that configuration.
"""

from __future__ import annotations

import dataclasses
from bisect import bisect_left, insort

import numpy as np

from repro.core.detection import DetectionConfig, SpikeBounds, detect_bounds


@dataclasses.dataclass(frozen=True, slots=True)
class DetectionDelta:
    """What one incremental update changed."""

    #: First hour index that was re-walked this update.
    region_start: int
    #: Bounds present now that were absent before the update.
    added: tuple[SpikeBounds, ...]
    #: Bounds discarded by the re-walk and not re-found identically.
    removed: tuple[SpikeBounds, ...]

    @property
    def changed(self) -> bool:
        return bool(self.added or self.removed)


class TailDetector:
    """Carries claimed-block state across ticks; re-walks only the tail."""

    def __init__(self, config: DetectionConfig | None = None) -> None:
        self.config = config or DetectionConfig()
        #: Current spike bounds, sorted by start index.
        self.bounds: list[SpikeBounds] = []
        self._zeros: list[int] = []  # sorted indices of zero-valued hours
        self._scanned = 0  # hours whose zero-ness has been recorded

    def update(self, values: np.ndarray, dirty_from: int) -> DetectionDelta:
        """Fold the current raw series after a feed; return the delta.

        *dirty_from* is the stitcher's bound on the first hour the feed
        may have rewritten; hours before it are trusted unchanged.
        """
        size = int(values.size)
        previously_scanned = self._scanned
        dirty = max(0, min(int(dirty_from), size))
        if dirty >= size and previously_scanned == size:
            # Nothing appended and nothing rewritten (a fully-contained
            # frame was skipped by the stitcher).
            return DetectionDelta(region_start=size, added=(), removed=())
        if size > previously_scanned:
            fresh = np.flatnonzero(values[previously_scanned:size] == 0)
            for index in fresh:
                insort(self._zeros, int(index) + previously_scanned)
            self._scanned = size
        dirty = min(dirty, previously_scanned)
        # Start of the zero-delimited segment containing the first
        # dirty hour: one past the largest zero strictly below it.
        position = bisect_left(self._zeros, dirty)
        region_start = self._zeros[position - 1] + 1 if position else 0
        kept: list[SpikeBounds] = []
        dropped: list[SpikeBounds] = []
        for bound in self.bounds:
            (kept if bound.start < region_start else dropped).append(bound)
        rewalked = [
            SpikeBounds(
                start=bound.start + region_start,
                peak=bound.peak + region_start,
                end=bound.end + region_start,
            )
            for bound in detect_bounds(values[region_start:], self.config)
        ]
        self.bounds = kept + sorted(rewalked, key=lambda bound: bound.start)
        dropped_set = set(dropped)
        rewalked_set = set(rewalked)
        return DetectionDelta(
            region_start=region_start,
            added=tuple(
                sorted(rewalked_set - dropped_set, key=lambda bound: bound.start)
            ),
            removed=tuple(
                sorted(dropped_set - rewalked_set, key=lambda bound: bound.start)
            ),
        )

    def restore(self, bounds: list[SpikeBounds], values: np.ndarray) -> None:
        """Rehydrate from checkpointed bounds plus the saved raw series."""
        self.bounds = sorted(bounds, key=lambda bound: bound.start)
        self._zeros = [int(i) for i in np.flatnonzero(values == 0)]
        self._scanned = int(values.size)
