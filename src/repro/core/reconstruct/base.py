"""Strategy interfaces for timeline reconstruction (paper §3.2).

Reconstruction has two orthogonal decisions baked into the paper's
pipeline — how overlapping frames are *stitched* onto one scale, and
how repeated fetch rounds are *merged* before re-detection.  This
package makes each a strategy:

* :class:`Stitcher` — incremental by design: ``feed(frame)`` extends
  the series with a bounded tail recompute (only the new frame's
  overlap is touched), ``finalize()`` returns the timeline plus a
  :class:`~repro.core.stitching.StitchReport`.  The incremental
  contract is what lets a future *streaming* SIFT stitch frames as the
  crawl delivers them instead of holding a round in memory.
* :class:`Averager` — owns the fetch-average-detect convergence loop
  and the policy for merging sample rounds (flat running means,
  variance-weighted, …).

Concrete backends register under short names in
:mod:`repro.core.reconstruct.registry`; configuration layers refer to
them by name (``SiftConfig(stitcher=..., averager=...)``, the CLI's
``--stitcher``/``--averager``), and checkpoints record the names so a
resume cannot silently mix outputs of different backends.
"""

from __future__ import annotations

import abc
from collections.abc import Callable
from typing import TYPE_CHECKING, Any, ClassVar

import numpy as np

from repro.core.averaging import (
    AveragingConfig,
    AveragingResult,
    FrameFetcher,
    MissingFrame,
)
from repro.core.detection import DetectionConfig, detect_spikes
from repro.core.spikes import SpikeSet
from repro.errors import CollectionError, ConvergenceError

if TYPE_CHECKING:
    from repro.core.series import HourlyTimeline
    from repro.core.stitching import StitchReport
    from repro.trends.records import TimeFrameResponse


class Stitcher(abc.ABC):
    """Incremental frame-to-timeline reconstruction.

    One instance stitches one (term, geo) series: frames arrive in
    start order through :meth:`feed`, each extending the series in a
    bounded tail recompute, and :meth:`finalize` materializes the
    current timeline without consuming the instance — feeding more
    frames after a finalize is legal, so a streaming caller can
    snapshot mid-crawl.
    """

    #: Registry name recorded in checkpoints and telemetry.
    name: ClassVar[str] = "?"

    #: Index of the first series hour the most recent :meth:`feed` may
    #: have rewritten.  Streaming callers re-walk detection only from
    #: here; ``0`` (the conservative default) means "assume everything
    #: changed".  An append-only feed sets it to the series length
    #: before the feed; a stitcher that rewrites overlap hours (e.g.
    #: ``calibrated`` blending) sets it to the overlap offset.
    dirty_from: int = 0

    @abc.abstractmethod
    def feed(self, frame: TimeFrameResponse) -> None:
        """Extend the series with the next frame (sorted by start)."""

    @abc.abstractmethod
    def finalize(
        self, renormalize: bool = True
    ) -> tuple[HourlyTimeline, StitchReport]:
        """Current stitched timeline plus diagnostics (non-destructive)."""

    def params(self) -> dict[str, Any]:
        """Backend parameters worth recording next to the name."""
        return {}


#: A zero-argument constructor of fresh :class:`Stitcher` instances;
#: the averaging loop stitches once per round, each from a clean slate.
StitcherFactory = Callable[[], Stitcher]


class FrameAccumulator(abc.ABC):
    """Per-geography state merging sample rounds frame-by-frame."""

    @abc.abstractmethod
    def fold(self, entries: list) -> None:
        """Merge one round of frame entries (``MissingFrame`` tolerated)."""

    @abc.abstractmethod
    def to_responses(self) -> list[TimeFrameResponse]:
        """Current merged frames, re-indexed onto the 0..100 contract."""


class Averager(abc.ABC):
    """The fetch-round convergence loop plus a round-merging policy.

    Subclasses provide the accumulator that merges sample rounds
    (:meth:`make_accumulator`); the loop itself — fetch, fold, stitch,
    detect, compare spike sets — lives here so every backend shares
    identical convergence semantics and differs *only* in how rounds
    are merged.
    """

    #: Registry name recorded in checkpoints and telemetry.
    name: ClassVar[str] = "?"

    def params(self) -> dict[str, Any]:
        """Backend parameters worth recording next to the name."""
        return {}

    @abc.abstractmethod
    def make_accumulator(self, entries: list) -> FrameAccumulator:
        """A fresh accumulator sized for one round's frame list."""

    def average(
        self,
        fetch_round: FrameFetcher,
        config: AveragingConfig | None = None,
        detection: DetectionConfig | None = None,
        stitcher_factory: StitcherFactory | None = None,
    ) -> AveragingResult:
        """Run the fetch-average-detect loop until the spike set stabilizes.

        ``fetch_round(k)`` must return the full ordered list of weekly
        frame responses for sample round *k*; the loop folds each round
        into the backend's accumulator, stitches the merged frames with
        a fresh stitcher from *stitcher_factory* (default: the
        overlap-ratio backend), detects spikes, and stops once
        consecutive rounds' spike sets match.
        """
        if stitcher_factory is None:
            # Deferred: stitchers.py imports this module for Stitcher.
            from repro.core.reconstruct.stitchers import OverlapRatioStitcher

            stitcher_factory = OverlapRatioStitcher
        config = config or AveragingConfig()
        running: FrameAccumulator | None = None
        previous_spikes: SpikeSet | None = None
        history: list[float] = []
        missing: list[MissingFrame] = []
        result: AveragingResult | None = None
        for round_index in range(config.max_rounds):
            entries = fetch_round(round_index)
            if not entries:
                raise ConvergenceError("fetch_round returned no frames")
            dropped = [
                entry for entry in entries if isinstance(entry, MissingFrame)
            ]
            if len(dropped) > config.max_missing_fraction * len(entries):
                raise CollectionError(
                    f"round {round_index} lost {len(dropped)}/{len(entries)} "
                    f"frames; exceeds max_missing_fraction="
                    f"{config.max_missing_fraction}"
                )
            missing.extend(dropped)
            if running is None:
                running = self.make_accumulator(entries)
            running.fold(entries)
            averaged_responses = running.to_responses()
            stitcher = stitcher_factory()
            for response in averaged_responses:
                stitcher.feed(response)
            timeline, report = stitcher.finalize()
            if config.quantize:
                timeline = timeline.with_values(np.round(timeline.values))
            spikes = SpikeSet(detect_spikes(timeline, detection))
            converged = False
            if previous_spikes is not None:
                similarity = spikes.weighted_match_similarity(
                    previous_spikes, config.tolerance_hours
                )
                history.append(similarity)
                converged = (
                    round_index + 1 >= config.min_rounds
                    and similarity >= config.similarity_threshold
                )
            previous_spikes = spikes
            result = AveragingResult(
                timeline=timeline,
                spikes=spikes,
                rounds_used=round_index + 1,
                converged=converged,
                similarity_history=tuple(history),
                stitch_report=report,
                responses=tuple(averaged_responses),
                missing_frames=tuple(missing),
                stitcher=stitcher.name,
                averager=self.name,
            )
            if converged:
                return result
        if config.strict:
            raise ConvergenceError(
                f"spike set did not converge within {config.max_rounds} rounds "
                f"(similarities: {history})"
            )
        assert result is not None  # max_rounds >= 1 guarantees one iteration
        return result
