"""Stitching backends: overlap-ratio (the paper's) and calibrated.

Both stitchers share the same incremental skeleton — track the series
built so far, compute the new frame's overlap with it, estimate a scale
ratio from the overlap, append the rescaled tail — and differ in the
ratio estimator and in whether the overlap region itself is rewritten:

* :class:`OverlapRatioStitcher` reproduces
  :func:`repro.core.stitching.stitch_frames` operation-for-operation
  (the ratio is the smoothed quotient of the overlap *sums*, and the
  overlap hours keep the earlier frame's rendition).  The default
  backend; seeded studies built through it are byte-identical to the
  pre-strategy pipeline.
* :class:`CalibratedStitcher` follows West's "Calibration of Google
  Trends Time Series": with no explicitly crawled anchor query, the
  overlap hours where *both* renditions carry signal act as the shared
  anchor.  The ratio is a signal-weighted geometric mean of the
  per-hour quotients (log-space, so a single high hour cannot dominate
  the way it does a quotient of sums), and the anchor hours are
  blended across both renditions, halving their sampling variance.

Each ``feed`` touches only the tail of the series (the new frame's
overlap), so cost per frame is bounded by the frame length — the
incremental contract :class:`~repro.core.reconstruct.base.Stitcher`
promises to streaming callers.
"""

from __future__ import annotations

from datetime import datetime
from typing import Any

import numpy as np

from repro.core.reconstruct.base import Stitcher
from repro.core.series import HourlyTimeline
from repro.core.stitching import (
    _RATIO_CLAMP,
    StitchReport,
    estimate_ratio,
)
from repro.errors import StitchingError
from repro.timeutil import hour_index
from repro.trends.records import TimeFrameResponse


class _ChainStitcher(Stitcher):
    """Shared incremental skeleton of the ratio-chain stitchers.

    Subclasses override :meth:`_ratio` (scale mapping the next frame
    onto the series, ``None`` when the overlap is uninformative) and
    :meth:`_merge_overlap` (what the shared hours become once the ratio
    is known).
    """

    def __init__(self) -> None:
        self._term: str | None = None
        self._geo: str | None = None
        self._origin: datetime | None = None
        self._previous_start: datetime | None = None
        self._series: np.ndarray | None = None
        self._frames = 0
        self._ratios: list[float] = []
        self._carried = 0
        self._carried_positions: list[int] = []
        self._last_ratio = 1.0
        self.dirty_from = 0

    # -- strategy hooks ---------------------------------------------------------

    def _ratio(self, tail: np.ndarray, next_overlap: np.ndarray) -> float | None:
        raise NotImplementedError

    def _merge_overlap(
        self, tail: np.ndarray, scaled_overlap: np.ndarray
    ) -> np.ndarray:
        """The overlap hours after rescaling (default: keep the series)."""
        return tail

    # -- the incremental contract ----------------------------------------------

    def feed(self, frame: TimeFrameResponse) -> None:
        if self._series is None:
            self._term = frame.request.term
            self._geo = frame.request.geo
            self._origin = frame.window.start
            self._previous_start = frame.window.start
            self._series = frame.values.astype(np.float64)
            self._frames = 1
            self.dirty_from = 0
            return
        if frame.request.term != self._term or frame.request.geo != self._geo:
            raise StitchingError(
                "cannot stitch frames of different terms or geographies"
            )
        offset = hour_index(self._origin, frame.window.start)
        if offset < 0 or offset > self._series.size:
            raise StitchingError(
                f"frame starting {frame.window.start} is not contiguous "
                f"with the series built so far"
            )
        overlap = self._series.size - offset
        if overlap <= 0:
            raise StitchingError(
                f"frames {self._previous_start} and {frame.window.start} "
                f"do not overlap"
            )
        self._frames += 1
        self._previous_start = frame.window.start
        if overlap >= frame.values.size:
            # Frame fully contained in what we already have; skip it.
            # The repeated ratio is a placeholder, not an estimate.
            self._carried_positions.append(len(self._ratios))
            self._ratios.append(self._last_ratio)
            self.dirty_from = self._series.size
            return
        current_values = frame.values.astype(np.float64)
        tail = self._series[offset:]
        ratio = self._ratio(tail, current_values[:overlap])
        if ratio is None:
            ratio = 1.0  # both renditions silent: neutral scale
            self._carried += 1
            self._carried_positions.append(len(self._ratios))
        else:
            self._last_ratio = ratio
        self._ratios.append(ratio)
        merged = self._merge_overlap(tail, current_values[:overlap] * ratio)
        # Only a stitcher that rewrote the overlap returns a new array;
        # identity with the untouched tail means the feed was pure append.
        self.dirty_from = self._series.size if merged is tail else offset
        self._series = np.concatenate(
            [self._series[:offset], merged, current_values[overlap:] * ratio]
        )

    def finalize(
        self, renormalize: bool = True
    ) -> tuple[HourlyTimeline, StitchReport]:
        if self._series is None:
            raise StitchingError("no frames to stitch")
        timeline = HourlyTimeline(
            term=self._term, geo=self._geo, start=self._origin, values=self._series
        )
        if renormalize:
            timeline = timeline.renormalized()
        report = StitchReport(
            frames=self._frames,
            carried_ratios=self._carried,
            ratios=tuple(self._ratios),
            carried_positions=tuple(self._carried_positions),
        )
        return timeline, report

    # -- streaming checkpoint support -------------------------------------------

    def export_state(self) -> dict[str, Any]:
        """JSON-safe scalar state (the series is persisted separately)."""
        if self._series is None:
            raise StitchingError("no frames fed; nothing to export")
        return {
            "term": self._term,
            "geo": self._geo,
            "origin": self._origin.isoformat(),
            "previous_start": self._previous_start.isoformat(),
            "frames": self._frames,
            "ratios": list(self._ratios),
            "carried": self._carried,
            "carried_positions": list(self._carried_positions),
            "last_ratio": self._last_ratio,
        }

    def restore_state(self, state: dict[str, Any], series: np.ndarray) -> None:
        """Rehydrate from :meth:`export_state` plus the saved raw series."""
        if self._series is not None:
            raise StitchingError("cannot restore into a stitcher already fed")
        self._term = state["term"]
        self._geo = state["geo"]
        self._origin = datetime.fromisoformat(state["origin"])
        self._previous_start = datetime.fromisoformat(state["previous_start"])
        self._series = np.ascontiguousarray(series, dtype=np.float64)
        self._frames = int(state["frames"])
        self._ratios = [float(r) for r in state["ratios"]]
        self._carried = int(state["carried"])
        self._carried_positions = [int(p) for p in state["carried_positions"]]
        self._last_ratio = float(state["last_ratio"])
        self.dirty_from = 0


class OverlapRatioStitcher(_ChainStitcher):
    """The paper's stitcher: smoothed quotient of overlap sums.

    Bit-identical to the historical ``stitch_frames`` — same estimator,
    same carried-ratio fallbacks, same concatenation arithmetic — which
    is now a thin batch wrapper over this class.
    """

    name = "overlap_ratio"

    def _ratio(self, tail: np.ndarray, next_overlap: np.ndarray) -> float | None:
        return estimate_ratio(tail, next_overlap)

    def _merge_overlap(
        self, tail: np.ndarray, scaled_overlap: np.ndarray
    ) -> np.ndarray:
        # Keep the earlier rendition untouched: byte-identity with the
        # pre-strategy pipeline depends on the overlap hours never
        # being rewritten.
        return tail


class CalibratedStitcher(_ChainStitcher):
    """West-style calibration with the overlap as the shared anchor.

    West calibrates frames by crawling a shared *anchor query* along
    with every frame and equating its renditions.  SIFT's crawl carries
    no anchor term, but consecutive frames already share hours — the
    overlap — so the hours where **both** renditions are positive play
    the anchor's role:

    * the ratio is ``exp(mean_w(log(prev/next)))`` over those hours,
      weighted by ``min(prev, next)`` — hours with real signal on both
      sides count most, and the log-space mean keeps a single spiky
      hour from dominating the estimate the way it dominates a
      quotient of sums;
    * the anchor hours are then *blended* (mean of both renditions
      after rescaling), halving their sampling variance instead of
      discarding the newer rendition.

    Falls back to the overlap-sum estimator when fewer than
    ``min_anchor_hours`` anchor hours exist (a quiet overlap), and to
    the neutral carried ratio when both sides are silent.  Privacy
    zeros on the series side stay zero: blending only touches hours
    that are positive in both renditions.
    """

    name = "calibrated"

    def __init__(self, min_anchor_hours: int = 3) -> None:
        super().__init__()
        if min_anchor_hours < 1:
            raise StitchingError(
                f"min_anchor_hours must be positive: {min_anchor_hours}"
            )
        self.min_anchor_hours = min_anchor_hours

    def params(self) -> dict[str, Any]:
        return {"min_anchor_hours": self.min_anchor_hours}

    def _ratio(self, tail: np.ndarray, next_overlap: np.ndarray) -> float | None:
        anchor = (tail > 0) & (next_overlap > 0)
        if int(anchor.sum()) >= self.min_anchor_hours:
            quotients = np.log(tail[anchor] / next_overlap[anchor])
            weights = np.minimum(tail[anchor], next_overlap[anchor])
            ratio = float(np.exp(np.average(quotients, weights=weights)))
            return float(np.clip(ratio, 1.0 / _RATIO_CLAMP, _RATIO_CLAMP))
        return estimate_ratio(tail, next_overlap)

    def _merge_overlap(
        self, tail: np.ndarray, scaled_overlap: np.ndarray
    ) -> np.ndarray:
        anchor = (tail > 0) & (scaled_overlap > 0)
        if not anchor.any():
            return tail
        merged = tail.copy()
        merged[anchor] = 0.5 * (tail[anchor] + scaled_overlap[anchor])
        return merged
