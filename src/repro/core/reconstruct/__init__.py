"""Pluggable reconstruction backends (stitching + round averaging).

See :mod:`repro.core.reconstruct.base` for the strategy contracts and
:mod:`repro.core.reconstruct.registry` for the name-keyed registry the
configuration layers use.
"""

from repro.core.reconstruct.averagers import (
    MeanAverager,
    NoiseAwareAverager,
    RunningMeanAccumulator,
    VarianceWeightedAccumulator,
)
from repro.core.reconstruct.base import (
    Averager,
    FrameAccumulator,
    Stitcher,
    StitcherFactory,
)
from repro.core.reconstruct.registry import (
    AVERAGERS,
    DEFAULT_AVERAGER,
    DEFAULT_STITCHER,
    STITCHERS,
    averager_names,
    make_averager,
    make_stitcher,
    stitcher_factory,
    stitcher_names,
)
from repro.core.reconstruct.stitchers import CalibratedStitcher, OverlapRatioStitcher

__all__ = [
    "AVERAGERS",
    "Averager",
    "CalibratedStitcher",
    "DEFAULT_AVERAGER",
    "DEFAULT_STITCHER",
    "FrameAccumulator",
    "MeanAverager",
    "NoiseAwareAverager",
    "OverlapRatioStitcher",
    "RunningMeanAccumulator",
    "STITCHERS",
    "Stitcher",
    "StitcherFactory",
    "VarianceWeightedAccumulator",
    "averager_names",
    "make_averager",
    "make_stitcher",
    "stitcher_factory",
    "stitcher_names",
]
