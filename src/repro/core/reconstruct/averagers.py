"""Averaging backends: flat running means and variance-weighted merging.

The convergence loop itself lives on
:class:`repro.core.reconstruct.base.Averager`; a backend contributes
only the accumulator that merges sample rounds per frame:

* :class:`MeanAverager` folds rounds into incremental running means —
  the paper's §3.2 mitigation, bit-identical to the historical
  ``average_until_convergence``.
* :class:`NoiseAwareAverager` keeps every round and merges them with
  per-round inverse-deviation weights, in the spirit of Djorno et
  al.'s noise-aware Google Trends preprocessing: a round whose
  rendition sits far from the per-hour median across rounds is mostly
  sampling noise and is down-weighted instead of diluting the merge at
  full weight.  Under heavy sampling noise the merged series stabilizes
  in fewer rounds — i.e. fewer crawl requests per geography — which is
  what ``benchmarks/bench_reconstruction_quality.py`` measures.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.averaging import MissingFrame
from repro.core.reconstruct.base import Averager, FrameAccumulator
from repro.errors import ConvergenceError
from repro.trends.records import TimeFrameResponse


def _reindex(values: np.ndarray) -> np.ndarray:
    """Merged floats back onto the integer 0..100 response contract."""
    peak = values.max()
    if peak > 0:
        return np.round(100.0 * values / peak).astype(np.int16)
    return np.zeros(values.shape, dtype=np.int16)


def _rebuild(
    values: np.ndarray,
    template: TimeFrameResponse | None,
    request,
) -> TimeFrameResponse:
    """Wrap merged values into a response record for stitching."""
    return TimeFrameResponse(
        request=template.request if template is not None else request,
        values=_reindex(values),
        rising=template.rising if template is not None else (),
        sample_round=template.sample_round if template is not None else 0,
    )


class RunningMeanAccumulator(FrameAccumulator):
    """Per-frame incremental means with per-frame fold counts.

    A missing frame simply does not fold, so its mean keeps averaging
    over the rounds that did arrive — when nothing is missing,
    ``counts[i] == rounds_done`` everywhere and the fold is exactly the
    classic ``mean + (fresh - mean) / (rounds_done + 1)``.
    """

    def __init__(self, entries: list) -> None:
        self.means = [
            np.zeros(entry.request.window.hours, dtype=np.float64)
            for entry in entries
        ]
        self.counts = [0] * len(entries)
        #: First real response seen per position: carries the request,
        #: rising terms and sample round for the rebuilt frames.
        self.templates: list[TimeFrameResponse | None] = [None] * len(entries)
        self.requests = [entry.request for entry in entries]

    def fold(self, entries: list) -> None:
        if len(entries) != len(self.means):
            raise ConvergenceError(
                f"round returned {len(entries)} frames, "
                f"expected {len(self.means)}"
            )
        for index, entry in enumerate(entries):
            if isinstance(entry, MissingFrame):
                continue
            fresh = entry.values.astype(np.float64)
            if fresh.shape != self.means[index].shape:
                raise ConvergenceError("frame shapes changed between rounds")
            if self.templates[index] is None:
                self.templates[index] = entry
            self.means[index] = self.means[index] + (
                fresh - self.means[index]
            ) / (self.counts[index] + 1)
            self.counts[index] += 1

    def to_responses(self) -> list[TimeFrameResponse]:
        # A frame no round delivered stays all-zero.
        return [
            _rebuild(values, self.templates[index], self.requests[index])
            for index, values in enumerate(self.means)
        ]


class VarianceWeightedAccumulator(FrameAccumulator):
    """Every round retained; merged with inverse-deviation weights.

    For one frame with rounds ``x_1..x_n`` (each a week of indexed
    values), the merge is ``sum_r w_r * x_r`` with

    ``w_r ∝ 1 / (mean_h (x_r[h] - median_h)^2 + epsilon)``

    where ``median_h`` is the per-hour median across rounds — the
    robust center a noisy round is measured against.  With one or two
    rounds the weights are uniform (the median *is* the mean of two),
    so the backend only starts to differ from flat means when there is
    enough evidence to call a round an outlier.
    """

    def __init__(self, entries: list, epsilon: float) -> None:
        self.rounds: list[list[np.ndarray]] = [[] for _ in entries]
        self.hours = [entry.request.window.hours for entry in entries]
        self.templates: list[TimeFrameResponse | None] = [None] * len(entries)
        self.requests = [entry.request for entry in entries]
        self.epsilon = epsilon

    def fold(self, entries: list) -> None:
        if len(entries) != len(self.rounds):
            raise ConvergenceError(
                f"round returned {len(entries)} frames, "
                f"expected {len(self.rounds)}"
            )
        for index, entry in enumerate(entries):
            if isinstance(entry, MissingFrame):
                continue
            fresh = entry.values.astype(np.float64)
            if fresh.shape != (self.hours[index],):
                raise ConvergenceError("frame shapes changed between rounds")
            if self.templates[index] is None:
                self.templates[index] = entry
            self.rounds[index].append(fresh)

    def _merge(self, index: int) -> np.ndarray:
        rounds = self.rounds[index]
        if not rounds:  # no round delivered this frame: stays all-zero
            return np.zeros(self.hours[index], dtype=np.float64)
        stack = np.stack(rounds)
        if stack.shape[0] < 3:
            return stack.mean(axis=0)
        center = np.median(stack, axis=0)
        deviation = np.mean((stack - center) ** 2, axis=1)
        weights = 1.0 / (deviation + self.epsilon)
        weights = weights / weights.sum()
        return weights @ stack

    def to_responses(self) -> list[TimeFrameResponse]:
        return [
            _rebuild(self._merge(index), self.templates[index], self.requests[index])
            for index in range(len(self.rounds))
        ]


class MeanAverager(Averager):
    """The paper's flat running-mean merge (the default backend)."""

    name = "mean"

    def make_accumulator(self, entries: list) -> RunningMeanAccumulator:
        return RunningMeanAccumulator(entries)


class NoiseAwareAverager(Averager):
    """Variance-weighted merging of sample rounds."""

    name = "noise_aware"

    def __init__(self, epsilon: float = 0.5) -> None:
        if epsilon <= 0:
            raise ConvergenceError(f"epsilon must be positive: {epsilon}")
        self.epsilon = epsilon

    def params(self) -> dict[str, Any]:
        return {"epsilon": self.epsilon}

    def make_accumulator(self, entries: list) -> VarianceWeightedAccumulator:
        return VarianceWeightedAccumulator(entries, self.epsilon)
