"""Name-keyed registry of reconstruction backends.

Configuration layers (``SiftConfig``, the CLI, checkpoints) refer to
backends by these short names; the registry is the single place a new
backend plugs in — the CLI choices, the ablation sweep and the
reconstruction-quality benchmark all enumerate it instead of hardcoding
class lists.
"""

from __future__ import annotations

from typing import Any

from repro.core.reconstruct.averagers import MeanAverager, NoiseAwareAverager
from repro.core.reconstruct.base import Averager, Stitcher, StitcherFactory
from repro.core.reconstruct.stitchers import CalibratedStitcher, OverlapRatioStitcher
from repro.errors import ConfigurationError

DEFAULT_STITCHER = "overlap_ratio"
DEFAULT_AVERAGER = "mean"

STITCHERS: dict[str, type[Stitcher]] = {
    OverlapRatioStitcher.name: OverlapRatioStitcher,
    CalibratedStitcher.name: CalibratedStitcher,
}

AVERAGERS: dict[str, type[Averager]] = {
    MeanAverager.name: MeanAverager,
    NoiseAwareAverager.name: NoiseAwareAverager,
}


def stitcher_names() -> tuple[str, ...]:
    """Registered stitcher names, sorted."""
    return tuple(sorted(STITCHERS))


def averager_names() -> tuple[str, ...]:
    """Registered averager names, sorted."""
    return tuple(sorted(AVERAGERS))


def make_stitcher(name: str, **params: Any) -> Stitcher:
    """A fresh stitcher instance for *name* (raises on unknown names)."""
    return stitcher_factory(name, **params)()


def stitcher_factory(name: str, **params: Any) -> StitcherFactory:
    """A zero-argument constructor of fresh *name* stitchers.

    The averaging loop stitches once per round, each time from a clean
    slate, so callers hold a factory rather than an instance.
    """
    cls = STITCHERS.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown stitcher {name!r}; choose from {stitcher_names()}"
        )
    return lambda: cls(**params)


def make_averager(name: str, **params: Any) -> Averager:
    """An averager instance for *name* (raises on unknown names).

    Averagers are stateless across calls — per-geography state lives in
    the accumulator each ``average()`` call creates — so one instance
    is safely shared by concurrent worker threads.
    """
    cls = AVERAGERS.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown averager {name!r}; choose from {averager_names()}"
        )
    return cls(**params)
