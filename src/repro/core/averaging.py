"""Iterative re-fetch averaging (paper §3.2, "Random sampling").

Every Trends response is computed from an independent random sample, so
a single crawl carries sampling error that can create or destroy small
spikes.  SIFT's mitigation: fetch the same frames again, average the
frame values position-wise, re-detect, and stop once the detected spike
set stops changing between rounds.  The paper reports this converging
after about six rounds; the convergence criterion here is a Jaccard
similarity threshold between consecutive rounds' spike sets, with the
round budget and threshold configurable.

The averaging happens *per frame, on the indexed values* — before
stitching — because frames from different rounds share the same
piecewise scale (their own maximum), whereas stitched series from
different rounds may not.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from repro.core.detection import DetectionConfig
from repro.core.series import HourlyTimeline
from repro.core.spikes import SpikeSet
from repro.core.stitching import StitchReport
from repro.errors import ConvergenceError
from repro.trends.records import TimeFrameRequest, TimeFrameResponse


@dataclasses.dataclass(frozen=True, slots=True)
class MissingFrame:
    """A frame the crawl could not deliver for one sample round.

    The collection layer dead-letters frames that exhaust every fetcher
    (see DESIGN.md §7); the pipeline substitutes this record so the
    averaging loop can keep folding the rounds that *did* arrive.
    """

    request: TimeFrameRequest
    sample_round: int
    error: str = ""


#: A round of frame entries, one per weekly frame, in order; frames the
#: crawl gave up on arrive as :class:`MissingFrame` placeholders.
FrameFetcher = Callable[[int], "list[TimeFrameResponse | MissingFrame]"]


@dataclasses.dataclass(frozen=True, slots=True)
class AveragingConfig:
    """Convergence policy for iterative re-fetch averaging."""

    max_rounds: int = 6
    min_rounds: int = 3
    #: Consecutive rounds whose spike sets reach this match similarity
    #: are considered converged.
    similarity_threshold: float = 0.93
    #: Peak-time slack when matching spikes between rounds: sampling
    #: noise jitters a peak by an hour without making it a new spike.
    tolerance_hours: int = 2
    #: Quantize the stitched series onto the integer 0..100 *global*
    #: index before detection.  Off by default: global quantization
    #: couples detection to stitching-ratio noise (a region whose chain
    #: of ratios drifted low would round to zero wholesale).  Frames are
    #: always re-quantized to integers individually, which is where the
    #: privacy-rounding zeros live.  The ablation benchmark exercises
    #: the ``True`` setting.
    quantize: bool = False
    #: Raise :class:`ConvergenceError` when the budget runs out without
    #: convergence instead of returning the best effort.
    strict: bool = False
    #: Largest tolerated fraction of missing frames in any single round
    #: before the run is declared unsalvageable.  Below the bound the
    #: loop degrades gracefully: each frame folds only the rounds that
    #: actually arrived, and a frame no round delivered becomes zeros.
    max_missing_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.min_rounds < 1 or self.max_rounds < self.min_rounds:
            raise ConvergenceError(
                f"invalid round budget: min={self.min_rounds} max={self.max_rounds}"
            )
        if not 0.0 < self.similarity_threshold <= 1.0:
            raise ConvergenceError(
                f"similarity_threshold must be in (0, 1]: {self.similarity_threshold}"
            )
        if not 0.0 <= self.max_missing_fraction < 1.0:
            raise ConvergenceError(
                f"max_missing_fraction must be in [0, 1): "
                f"{self.max_missing_fraction}"
            )


@dataclasses.dataclass(frozen=True)
class AveragingResult:
    """Output of one averaging run for one geography."""

    timeline: HourlyTimeline  # stitched from the final averaged frames
    spikes: SpikeSet
    rounds_used: int
    converged: bool
    similarity_history: tuple[float, ...]  # between consecutive rounds
    stitch_report: StitchReport
    responses: tuple[TimeFrameResponse, ...]  # final averaged frames
    #: Every frame-fetch the crawl dropped across all rounds (empty in
    #: a healthy run; bounded by ``max_missing_fraction`` per round).
    missing_frames: tuple[MissingFrame, ...] = ()
    #: Reconstruction backends that produced this result (registry
    #: names, see :mod:`repro.core.reconstruct`); checkpoints persist
    #: them so a resume refuses to mix backends.
    stitcher: str = "overlap_ratio"
    averager: str = "mean"


def average_until_convergence(
    fetch_round: FrameFetcher,
    config: AveragingConfig | None = None,
    detection: DetectionConfig | None = None,
) -> AveragingResult:
    """Run the fetch-average-detect loop until the spike set stabilizes.

    ``fetch_round(k)`` must return the full ordered list of weekly frame
    responses for sample round *k*; the function handles averaging,
    stitching, detection, and the convergence decision.

    This is the batch form of the default backend — running-mean
    merging over overlap-ratio stitching, exactly the paper's §3.2.
    The loop itself lives on
    :class:`repro.core.reconstruct.base.Averager`; alternate backends
    are selected through the strategy registry
    (:mod:`repro.core.reconstruct`), not here.
    """
    # Deferred: the reconstruct package imports this module for the
    # config/result records.
    from repro.core.reconstruct.averagers import MeanAverager

    return MeanAverager().average(fetch_round, config=config, detection=detection)
