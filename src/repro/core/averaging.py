"""Iterative re-fetch averaging (paper §3.2, "Random sampling").

Every Trends response is computed from an independent random sample, so
a single crawl carries sampling error that can create or destroy small
spikes.  SIFT's mitigation: fetch the same frames again, average the
frame values position-wise, re-detect, and stop once the detected spike
set stops changing between rounds.  The paper reports this converging
after about six rounds; the convergence criterion here is a Jaccard
similarity threshold between consecutive rounds' spike sets, with the
round budget and threshold configurable.

The averaging happens *per frame, on the indexed values* — before
stitching — because frames from different rounds share the same
piecewise scale (their own maximum), whereas stitched series from
different rounds may not.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

import numpy as np

from repro.core.detection import DetectionConfig, detect_spikes
from repro.core.series import HourlyTimeline
from repro.core.spikes import SpikeSet
from repro.core.stitching import StitchReport, stitch_frames
from repro.errors import CollectionError, ConvergenceError
from repro.trends.records import TimeFrameRequest, TimeFrameResponse


@dataclasses.dataclass(frozen=True, slots=True)
class MissingFrame:
    """A frame the crawl could not deliver for one sample round.

    The collection layer dead-letters frames that exhaust every fetcher
    (see DESIGN.md §7); the pipeline substitutes this record so the
    averaging loop can keep folding the rounds that *did* arrive.
    """

    request: TimeFrameRequest
    sample_round: int
    error: str = ""


#: A round of frame entries, one per weekly frame, in order; frames the
#: crawl gave up on arrive as :class:`MissingFrame` placeholders.
FrameFetcher = Callable[[int], "list[TimeFrameResponse | MissingFrame]"]


@dataclasses.dataclass(frozen=True, slots=True)
class AveragingConfig:
    """Convergence policy for iterative re-fetch averaging."""

    max_rounds: int = 6
    min_rounds: int = 3
    #: Consecutive rounds whose spike sets reach this match similarity
    #: are considered converged.
    similarity_threshold: float = 0.93
    #: Peak-time slack when matching spikes between rounds: sampling
    #: noise jitters a peak by an hour without making it a new spike.
    tolerance_hours: int = 2
    #: Quantize the stitched series onto the integer 0..100 *global*
    #: index before detection.  Off by default: global quantization
    #: couples detection to stitching-ratio noise (a region whose chain
    #: of ratios drifted low would round to zero wholesale).  Frames are
    #: always re-quantized to integers individually, which is where the
    #: privacy-rounding zeros live.  The ablation benchmark exercises
    #: the ``True`` setting.
    quantize: bool = False
    #: Raise :class:`ConvergenceError` when the budget runs out without
    #: convergence instead of returning the best effort.
    strict: bool = False
    #: Largest tolerated fraction of missing frames in any single round
    #: before the run is declared unsalvageable.  Below the bound the
    #: loop degrades gracefully: each frame folds only the rounds that
    #: actually arrived, and a frame no round delivered becomes zeros.
    max_missing_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.min_rounds < 1 or self.max_rounds < self.min_rounds:
            raise ConvergenceError(
                f"invalid round budget: min={self.min_rounds} max={self.max_rounds}"
            )
        if not 0.0 < self.similarity_threshold <= 1.0:
            raise ConvergenceError(
                f"similarity_threshold must be in (0, 1]: {self.similarity_threshold}"
            )
        if not 0.0 <= self.max_missing_fraction < 1.0:
            raise ConvergenceError(
                f"max_missing_fraction must be in [0, 1): "
                f"{self.max_missing_fraction}"
            )


@dataclasses.dataclass(frozen=True)
class AveragingResult:
    """Output of one averaging run for one geography."""

    timeline: HourlyTimeline  # stitched from the final averaged frames
    spikes: SpikeSet
    rounds_used: int
    converged: bool
    similarity_history: tuple[float, ...]  # between consecutive rounds
    stitch_report: StitchReport
    responses: tuple[TimeFrameResponse, ...]  # final averaged frames
    #: Every frame-fetch the crawl dropped across all rounds (empty in
    #: a healthy run; bounded by ``max_missing_fraction`` per round).
    missing_frames: tuple[MissingFrame, ...] = ()


class _RunningMeans:
    """Per-frame incremental means with per-frame fold counts.

    A missing frame simply does not fold, so its mean keeps averaging
    over the rounds that did arrive — when nothing is missing,
    ``counts[i] == rounds_done`` everywhere and the fold is exactly the
    classic ``mean + (fresh - mean) / (rounds_done + 1)``.
    """

    def __init__(self, entries: list) -> None:
        self.means = [
            np.zeros(entry.request.window.hours, dtype=np.float64)
            for entry in entries
        ]
        self.counts = [0] * len(entries)
        #: First real response seen per position: carries the request,
        #: rising terms and sample round for the rebuilt frames.
        self.templates: list[TimeFrameResponse | None] = [None] * len(entries)
        self.requests = [entry.request for entry in entries]

    def fold(self, entries: list) -> None:
        if len(entries) != len(self.means):
            raise ConvergenceError(
                f"round returned {len(entries)} frames, "
                f"expected {len(self.means)}"
            )
        for index, entry in enumerate(entries):
            if isinstance(entry, MissingFrame):
                continue
            fresh = entry.values.astype(np.float64)
            if fresh.shape != self.means[index].shape:
                raise ConvergenceError("frame shapes changed between rounds")
            if self.templates[index] is None:
                self.templates[index] = entry
            self.means[index] = self.means[index] + (
                fresh - self.means[index]
            ) / (self.counts[index] + 1)
            self.counts[index] += 1

    def to_responses(self) -> list[TimeFrameResponse]:
        """Wrap averaged values back into response records for stitching."""
        rebuilt = []
        for index, values in enumerate(self.means):
            # Averaged index values are no longer integers; re-index
            # onto 0..100 floats rounded to keep the response contract
            # (ints).  A frame no round delivered stays all-zero.
            peak = values.max()
            scaled = (
                np.round(100.0 * values / peak).astype(np.int16)
                if peak > 0
                else np.zeros(values.shape, dtype=np.int16)
            )
            template = self.templates[index]
            rebuilt.append(
                TimeFrameResponse(
                    request=(
                        template.request
                        if template is not None
                        else self.requests[index]
                    ),
                    values=scaled,
                    rising=template.rising if template is not None else (),
                    sample_round=(
                        template.sample_round if template is not None else 0
                    ),
                )
            )
        return rebuilt


def average_until_convergence(
    fetch_round: FrameFetcher,
    config: AveragingConfig | None = None,
    detection: DetectionConfig | None = None,
) -> AveragingResult:
    """Run the fetch-average-detect loop until the spike set stabilizes.

    ``fetch_round(k)`` must return the full ordered list of weekly frame
    responses for sample round *k*; the function handles averaging,
    stitching, detection, and the convergence decision.
    """
    config = config or AveragingConfig()
    running: _RunningMeans | None = None
    previous_spikes: SpikeSet | None = None
    history: list[float] = []
    missing: list[MissingFrame] = []
    result: AveragingResult | None = None
    for round_index in range(config.max_rounds):
        entries = fetch_round(round_index)
        if not entries:
            raise ConvergenceError("fetch_round returned no frames")
        dropped = [
            entry for entry in entries if isinstance(entry, MissingFrame)
        ]
        if len(dropped) > config.max_missing_fraction * len(entries):
            raise CollectionError(
                f"round {round_index} lost {len(dropped)}/{len(entries)} "
                f"frames; exceeds max_missing_fraction="
                f"{config.max_missing_fraction}"
            )
        missing.extend(dropped)
        if running is None:
            running = _RunningMeans(entries)
        running.fold(entries)
        averaged_responses = running.to_responses()
        timeline, report = stitch_frames(averaged_responses)
        if config.quantize:
            timeline = timeline.with_values(np.round(timeline.values))
        spikes = SpikeSet(detect_spikes(timeline, detection))
        converged = False
        if previous_spikes is not None:
            similarity = spikes.weighted_match_similarity(
                previous_spikes, config.tolerance_hours
            )
            history.append(similarity)
            converged = (
                round_index + 1 >= config.min_rounds
                and similarity >= config.similarity_threshold
            )
        previous_spikes = spikes
        result = AveragingResult(
            timeline=timeline,
            spikes=spikes,
            rounds_used=round_index + 1,
            converged=converged,
            similarity_history=tuple(history),
            stitch_report=report,
            responses=tuple(averaged_responses),
            missing_frames=tuple(missing),
        )
        if converged:
            return result
    if config.strict:
        raise ConvergenceError(
            f"spike set did not converge within {config.max_rounds} rounds "
            f"(similarities: {history})"
        )
    assert result is not None  # max_rounds >= 1 guarantees one iteration
    return result
