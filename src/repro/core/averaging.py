"""Iterative re-fetch averaging (paper §3.2, "Random sampling").

Every Trends response is computed from an independent random sample, so
a single crawl carries sampling error that can create or destroy small
spikes.  SIFT's mitigation: fetch the same frames again, average the
frame values position-wise, re-detect, and stop once the detected spike
set stops changing between rounds.  The paper reports this converging
after about six rounds; the convergence criterion here is a Jaccard
similarity threshold between consecutive rounds' spike sets, with the
round budget and threshold configurable.

The averaging happens *per frame, on the indexed values* — before
stitching — because frames from different rounds share the same
piecewise scale (their own maximum), whereas stitched series from
different rounds may not.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

import numpy as np

from repro.core.detection import DetectionConfig, detect_spikes
from repro.core.series import HourlyTimeline
from repro.core.spikes import SpikeSet
from repro.core.stitching import StitchReport, stitch_frames
from repro.errors import ConvergenceError
from repro.trends.records import TimeFrameResponse

#: A round of frame responses, one entry per weekly frame, in order.
FrameFetcher = Callable[[int], list[TimeFrameResponse]]


@dataclasses.dataclass(frozen=True, slots=True)
class AveragingConfig:
    """Convergence policy for iterative re-fetch averaging."""

    max_rounds: int = 6
    min_rounds: int = 3
    #: Consecutive rounds whose spike sets reach this match similarity
    #: are considered converged.
    similarity_threshold: float = 0.93
    #: Peak-time slack when matching spikes between rounds: sampling
    #: noise jitters a peak by an hour without making it a new spike.
    tolerance_hours: int = 2
    #: Quantize the stitched series onto the integer 0..100 *global*
    #: index before detection.  Off by default: global quantization
    #: couples detection to stitching-ratio noise (a region whose chain
    #: of ratios drifted low would round to zero wholesale).  Frames are
    #: always re-quantized to integers individually, which is where the
    #: privacy-rounding zeros live.  The ablation benchmark exercises
    #: the ``True`` setting.
    quantize: bool = False
    #: Raise :class:`ConvergenceError` when the budget runs out without
    #: convergence instead of returning the best effort.
    strict: bool = False

    def __post_init__(self) -> None:
        if self.min_rounds < 1 or self.max_rounds < self.min_rounds:
            raise ConvergenceError(
                f"invalid round budget: min={self.min_rounds} max={self.max_rounds}"
            )
        if not 0.0 < self.similarity_threshold <= 1.0:
            raise ConvergenceError(
                f"similarity_threshold must be in (0, 1]: {self.similarity_threshold}"
            )


@dataclasses.dataclass(frozen=True)
class AveragingResult:
    """Output of one averaging run for one geography."""

    timeline: HourlyTimeline  # stitched from the final averaged frames
    spikes: SpikeSet
    rounds_used: int
    converged: bool
    similarity_history: tuple[float, ...]  # between consecutive rounds
    stitch_report: StitchReport
    responses: tuple[TimeFrameResponse, ...]  # final averaged frames


def _average_round(
    running: list[np.ndarray], responses: list[TimeFrameResponse], rounds_done: int
) -> list[np.ndarray]:
    """Fold one more round of frame values into the running means."""
    if not running:
        return [response.values.astype(np.float64) for response in responses]
    if len(running) != len(responses):
        raise ConvergenceError(
            f"round returned {len(responses)} frames, expected {len(running)}"
        )
    averaged = []
    for mean, response in zip(running, responses):
        fresh = response.values.astype(np.float64)
        if fresh.shape != mean.shape:
            raise ConvergenceError("frame shapes changed between rounds")
        averaged.append(mean + (fresh - mean) / (rounds_done + 1))
    return averaged


def _to_responses(
    template: list[TimeFrameResponse], averaged: list[np.ndarray]
) -> list[TimeFrameResponse]:
    """Wrap averaged values back into response records for stitching."""
    rebuilt = []
    for response, values in zip(template, averaged):
        # Averaged index values are no longer integers; re-index onto
        # 0..100 floats rounded to keep the response contract (ints).
        peak = values.max()
        scaled = np.round(100.0 * values / peak).astype(np.int16) if peak > 0 else (
            np.zeros(values.shape, dtype=np.int16)
        )
        rebuilt.append(
            TimeFrameResponse(
                request=response.request,
                values=scaled,
                rising=response.rising,
                sample_round=response.sample_round,
            )
        )
    return rebuilt


def average_until_convergence(
    fetch_round: FrameFetcher,
    config: AveragingConfig | None = None,
    detection: DetectionConfig | None = None,
) -> AveragingResult:
    """Run the fetch-average-detect loop until the spike set stabilizes.

    ``fetch_round(k)`` must return the full ordered list of weekly frame
    responses for sample round *k*; the function handles averaging,
    stitching, detection, and the convergence decision.
    """
    config = config or AveragingConfig()
    running: list[np.ndarray] = []
    template: list[TimeFrameResponse] = []
    previous_spikes: SpikeSet | None = None
    history: list[float] = []
    result: AveragingResult | None = None
    for round_index in range(config.max_rounds):
        responses = fetch_round(round_index)
        if not responses:
            raise ConvergenceError("fetch_round returned no frames")
        if not template:
            template = responses
        running = _average_round(running, responses, round_index)
        averaged_responses = _to_responses(template, running)
        timeline, report = stitch_frames(averaged_responses)
        if config.quantize:
            timeline = timeline.with_values(np.round(timeline.values))
        spikes = SpikeSet(detect_spikes(timeline, detection))
        converged = False
        if previous_spikes is not None:
            similarity = spikes.weighted_match_similarity(
                previous_spikes, config.tolerance_hours
            )
            history.append(similarity)
            converged = (
                round_index + 1 >= config.min_rounds
                and similarity >= config.similarity_threshold
            )
        previous_spikes = spikes
        result = AveragingResult(
            timeline=timeline,
            spikes=spikes,
            rounds_used=round_index + 1,
            converged=converged,
            similarity_history=tuple(history),
            stitch_report=report,
            responses=tuple(averaged_responses),
        )
        if converged:
            return result
    if config.strict:
        raise ConvergenceError(
            f"spike set did not converge within {config.max_rounds} rounds "
            f"(similarities: {history})"
        )
    assert result is not None  # max_rounds >= 1 guarantees one iteration
    return result
