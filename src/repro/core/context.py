"""Context analysis: annotating spikes with simultaneously-rising terms.

For every spike, SIFT fetches the rising suggestions of a fine-grained
(daily) frame around the peak and turns them into *annotations* — the
service names and root causes the paper's tables show (paper §3.4).
Three transformations, in order:

1. **clustering** — raw phrases are merged onto canonical concepts via
   :class:`repro.core.nlp.PhraseClusterer` (``<is verizon down>`` and
   ``<verizon outage>`` become one suggestion whose weight is the sum);
2. **ranking** — suggestions sort by their rising weight (the percent
   increase GT assigns);
3. **heavy-hitter prioritization** — terms that dominate the global
   suggestion distribution outrank random correlations.

:class:`HeavyHitterAnalyzer` reproduces the paper's empirical finding
that a tiny head of the suggestion distribution (33 of 6655 terms)
covers half of all suggestions.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from collections.abc import Callable
from datetime import datetime

from repro.core.nlp import PhraseClusterer
from repro.core.spikes import Spike
from repro.errors import ConfigurationError
from repro.trends.records import RisingTerm
from repro.world.catalog import HEAVY_HITTERS

#: Fetches the rising suggestions for a fine-grained frame around a
#: spike: (geo, moment) -> rising terms.
RisingFetcher = Callable[[str, datetime], tuple[RisingTerm, ...]]


@dataclasses.dataclass(frozen=True, slots=True)
class ContextConfig:
    """Annotation policy."""

    max_annotations: int = 4
    #: Fraction of total suggestion mass the heavy-hitter set must cover.
    heavy_hitter_coverage: float = 0.5
    #: Cap on the *empirically* discovered heavy-hitter head.  The paper
    #: finds 33 heavy terms among 6655; with a compact catalog an uncapped
    #: 50%-coverage head would swallow most of the vocabulary and void
    #: the prioritization.
    max_heavy_hitters: int = 12
    #: Start from the paper's known heavy-hitters even before enough
    #: empirical mass has accumulated.
    seed_heavy_hitters: frozenset[str] = HEAVY_HITTERS

    def __post_init__(self) -> None:
        if self.max_annotations <= 0:
            raise ConfigurationError(
                f"max_annotations must be positive: {self.max_annotations}"
            )
        if not 0.0 < self.heavy_hitter_coverage < 1.0:
            raise ConfigurationError(
                f"heavy_hitter_coverage must be in (0, 1): "
                f"{self.heavy_hitter_coverage}"
            )


class HeavyHitterAnalyzer:
    """Superimposes all suggestions from all spikes (paper §3.4).

    Feeding every spike's clustered suggestions in, the analyzer can
    report the minimal head of the frequency distribution covering a
    target share of the total — the paper's heavy-hitters.
    """

    def __init__(self) -> None:
        self._counts: Counter = Counter()
        self.spikes_seen = 0

    def add(self, concepts: list[str] | tuple[str, ...]) -> None:
        self._counts.update(concepts)
        self.spikes_seen += 1

    @property
    def total_suggestions(self) -> int:
        return sum(self._counts.values())

    @property
    def distinct_terms(self) -> int:
        return len(self._counts)

    def heavy_hitters(self, coverage: float = 0.5) -> tuple[str, ...]:
        """Smallest frequency-ranked head covering *coverage* of the mass."""
        if not 0.0 < coverage < 1.0:
            raise ConfigurationError(f"coverage must be in (0, 1): {coverage}")
        total = self.total_suggestions
        if total == 0:
            return ()
        head: list[str] = []
        covered = 0
        for concept, count in self._counts.most_common():
            head.append(concept)
            covered += count
            if covered >= coverage * total:
                break
        return tuple(head)

    def frequency(self, concept: str) -> int:
        return self._counts[concept]

    def most_common(self, count: int) -> list[tuple[str, int]]:
        return self._counts.most_common(count)


@dataclasses.dataclass(frozen=True, slots=True)
class RankedSuggestion:
    """A clustered suggestion with its merged weight."""

    concept: str
    weight: int
    is_heavy_hitter: bool


def rank_suggestions(
    rising: tuple[RisingTerm, ...] | list[RisingTerm],
    clusterer: PhraseClusterer,
    heavy_hitters: frozenset[str] | set[str],
) -> list[RankedSuggestion]:
    """Cluster, merge, and rank a frame's rising suggestions."""
    merged: dict[str, int] = {}
    for term in rising:
        concept = clusterer.canonicalize(term.phrase)
        merged[concept] = merged.get(concept, 0) + term.weight
    ranked = [
        RankedSuggestion(
            concept=concept,
            weight=weight,
            is_heavy_hitter=concept in heavy_hitters,
        )
        for concept, weight in merged.items()
    ]
    # Weight-descending first, then heavy-hitters stably promoted to the
    # front — the paper's two-step ranking.
    ranked.sort(key=lambda item: item.weight, reverse=True)
    ranked.sort(key=lambda item: item.is_heavy_hitter, reverse=True)
    return ranked


class SpikeAnnotator:
    """Attaches context annotations to spikes."""

    def __init__(
        self,
        fetch_rising: RisingFetcher,
        clusterer: PhraseClusterer | None = None,
        config: ContextConfig | None = None,
    ) -> None:
        self.fetch_rising = fetch_rising
        self.clusterer = clusterer or PhraseClusterer()
        self.config = config or ContextConfig()
        self.analyzer = HeavyHitterAnalyzer()
        self._extra_heavy: set[str] = set()

    @property
    def heavy_hitters(self) -> frozenset[str]:
        """Current heavy-hitter set: seeded + empirically discovered."""
        return frozenset(self.config.seed_heavy_hitters | self._extra_heavy)

    def refresh_heavy_hitters(self) -> None:
        """Re-derive the empirical heavy-hitters from all seen spikes."""
        head = self.analyzer.heavy_hitters(self.config.heavy_hitter_coverage)
        self._extra_heavy = set(head[: self.config.max_heavy_hitters])

    def _rank(self, rising: tuple[RisingTerm, ...]) -> tuple[str, ...]:
        ranked = rank_suggestions(rising, self.clusterer, self.heavy_hitters)
        return tuple(item.concept for item in ranked[: self.config.max_annotations])

    def annotate(self, spike: Spike) -> Spike:
        """One spike -> the same spike with annotation terms attached.

        The fine-grained frame is anchored at the spike's *start*: for a
        multi-day surge, the peak day compares against an already-surging
        previous day and nothing rises, whereas the onset day carries the
        full increase.
        """
        rising = self.fetch_rising(spike.geo, spike.start)
        concepts = [self.clusterer.canonicalize(term.phrase) for term in rising]
        self.analyzer.add(concepts)
        return spike.annotated(self._rank(rising))

    def annotate_all(
        self, spikes: list[Spike] | tuple[Spike, ...], two_pass: bool = True
    ) -> list[Spike]:
        """Annotate a batch; optionally re-rank with empirical heavy-hitters.

        The two-pass mode mirrors the paper: the heavy-hitter set is a
        property of the *whole* data set, so a first pass accumulates
        the suggestion distribution and a second pass re-ranks every
        spike with the discovered heavy-hitters.  The rising suggestions
        are fetched exactly once per spike and reused in the re-rank.
        """
        fetched: list[tuple[Spike, tuple[RisingTerm, ...]]] = []
        for spike in spikes:
            rising = self.fetch_rising(spike.geo, spike.start)
            concepts = [self.clusterer.canonicalize(term.phrase) for term in rising]
            self.analyzer.add(concepts)
            fetched.append((spike, rising))
        if two_pass:
            self.refresh_heavy_hitters()
        return [spike.annotated(self._rank(rising)) for spike, rising in fetched]
