"""Area analysis: grouping concurrent spikes into multi-state outages.

The paper's area indicator (§4.2) asks in how many distinct states a
spike is observed *simultaneously* — the Verizon outage of 26 Jan 2021
shows up as concurrent spikes in 27 states.  The grouping here is a
single chronological sweep over spike peaks: peaks closer than
``window_hours`` join the same outage (transitively), which matches
"simultaneously trending" at hourly resolution while remaining O(n log n).
"""

from __future__ import annotations

import dataclasses
from datetime import datetime, timedelta

from repro.core.spikes import Spike, SpikeSet
from repro.errors import ConfigurationError
from repro.timeutil import format_spike_time


@dataclasses.dataclass(frozen=True, slots=True)
class AreaConfig:
    """Tunables of the concurrent-spike grouping."""

    #: Peaks at most this many hours apart count as simultaneous.
    window_hours: int = 1

    def __post_init__(self) -> None:
        if self.window_hours < 0:
            raise ConfigurationError(
                f"window_hours must be >= 0: {self.window_hours}"
            )


@dataclasses.dataclass(frozen=True)
class Outage:
    """A group of simultaneous spikes: one user-visible outage."""

    spikes: tuple[Spike, ...]

    def __post_init__(self) -> None:
        if not self.spikes:
            raise ConfigurationError("an outage needs at least one spike")

    @property
    def states(self) -> frozenset[str]:
        return frozenset(spike.state for spike in self.spikes)

    @property
    def footprint(self) -> int:
        """Number of distinct states simultaneously observing a spike."""
        return len(self.states)

    @property
    def start(self) -> datetime:
        return min(spike.start for spike in self.spikes)

    @property
    def peak(self) -> datetime:
        """Peak time of the strongest member spike."""
        strongest = max(self.spikes, key=lambda spike: spike.magnitude)
        return strongest.peak

    @property
    def max_duration_hours(self) -> int:
        return max(spike.duration_hours for spike in self.spikes)

    @property
    def annotations(self) -> tuple[str, ...]:
        """Member annotations merged by frequency (ties by first seen)."""
        counts: dict[str, int] = {}
        order: dict[str, int] = {}
        for spike in self.spikes:
            for rank, name in enumerate(spike.annotations):
                counts[name] = counts.get(name, 0) + 1
                order.setdefault(name, rank)
        ranked = sorted(counts, key=lambda name: (-counts[name], order[name]))
        return tuple(ranked)

    @property
    def label(self) -> str:
        return format_spike_time(self.start)


def group_outages(
    spikes: SpikeSet | list[Spike], config: AreaConfig | None = None
) -> list[Outage]:
    """Group spikes into outages by peak-time proximity.

    Grouping is *anchor-based*, not transitive: a group collects every
    spike whose peak lies within ``window_hours`` of the group's first
    (anchor) spike.  Simultaneity is what the paper measures — with
    transitive chaining, a lagged wave of spikes (the Facebook case,
    where 22 states spiked hours late) would merge into the prompt wave
    and overstate the simultaneous footprint.

    Returns outages ordered chronologically by their first spike.
    """
    config = config or AreaConfig()
    ordered = sorted(spikes, key=lambda spike: spike.peak)
    if not ordered:
        return []
    gap = timedelta(hours=config.window_hours)
    outages: list[Outage] = []
    bucket: list[Spike] = [ordered[0]]
    anchor = ordered[0].peak
    for spike in ordered[1:]:
        if spike.peak - anchor <= gap:
            bucket.append(spike)
        else:
            outages.append(Outage(spikes=tuple(bucket)))
            bucket = [spike]
            anchor = spike.peak
    outages.append(Outage(spikes=tuple(bucket)))
    return outages


def most_extensive(outages: list[Outage], count: int) -> list[Outage]:
    """The *count* outages with the largest geographical footprint."""
    ranked = sorted(
        outages,
        key=lambda outage: (outage.footprint, outage.max_duration_hours),
        reverse=True,
    )
    return ranked[:count]


def footprint_distribution(outages: list[Outage]) -> dict[int, int]:
    """Histogram: footprint (number of states) -> outage count (Fig. 5)."""
    histogram: dict[int, int] = {}
    for outage in outages:
        histogram[outage.footprint] = histogram.get(outage.footprint, 0) + 1
    return dict(sorted(histogram.items()))
