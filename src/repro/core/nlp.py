"""Lightweight semantic clustering of search phrases.

The paper's context stage uses an NLP library with pre-trained word
vectors to merge paraphrases like ``<is Verizon down>`` and ``<Verizon
outage>`` onto one concept.  Pre-trained vectors are unavailable
offline, so this module substitutes a deterministic combination that
solves the same (narrow) problem:

1. **token overlap** after normalizing case, punctuation, and the
   domain's stop words ("is", "down", "outage", "near", "me", ...);
2. **character trigram cosine similarity**, which catches misspellings
   and concatenations ("tmobile" vs "t-mobile") that token matching
   misses.

A :class:`PhraseClusterer` is primed with the canonical vocabulary (by
default the catalog's topics and variants) and assigns each incoming
phrase to its best-matching concept above a similarity threshold;
unmatched phrases form their own singleton clusters, preserving
genuinely novel suggestions.
"""

from __future__ import annotations

import dataclasses
import math
import re
from collections import Counter

from repro.world.catalog import TERMS

#: Words that carry no concept identity in outage-related queries.
STOP_WORDS: frozenset[str] = frozenset(
    {
        "is",
        "are",
        "my",
        "the",
        "a",
        "an",
        "down",
        "outage",
        "outages",
        "out",
        "not",
        "no",
        "working",
        "near",
        "me",
        "today",
        "now",
        "why",
        "current",
        "map",
        "report",
        "status",
        "issues",
        "problems",
    }
)

_TOKEN_RE = re.compile(r"[a-z0-9&]+")


def tokenize(phrase: str) -> tuple[str, ...]:
    """Lowercased content tokens of a phrase, stop words removed."""
    tokens = _TOKEN_RE.findall(phrase.lower())
    content = tuple(token for token in tokens if token not in STOP_WORDS)
    # A phrase made entirely of stop words ("is it down") keeps them:
    # an empty token set would match everything equally badly.
    return content or tuple(tokens)


def trigrams(phrase: str) -> Counter:
    """Character trigram multiset of the squashed phrase."""
    squashed = "".join(_TOKEN_RE.findall(phrase.lower()))
    padded = f"  {squashed} "
    return Counter(padded[i : i + 3] for i in range(len(padded) - 2))


def _cosine(left: Counter, right: Counter) -> float:
    if not left or not right:
        return 0.0
    common = set(left) & set(right)
    dot = sum(left[gram] * right[gram] for gram in common)
    norm = math.sqrt(sum(v * v for v in left.values())) * math.sqrt(
        sum(v * v for v in right.values())
    )
    return dot / norm if norm else 0.0


def token_overlap(left: tuple[str, ...], right: tuple[str, ...]) -> float:
    """Jaccard overlap of content-token sets."""
    a, b = set(left), set(right)
    if not a or not b:
        return 0.0
    return len(a & b) / len(a | b)


def phrase_similarity(left: str, right: str) -> float:
    """Blended similarity in [0, 1]: token overlap + trigram cosine."""
    tokens = token_overlap(tokenize(left), tokenize(right))
    grams = _cosine(trigrams(left), trigrams(right))
    return 0.6 * tokens + 0.4 * grams


@dataclasses.dataclass(frozen=True, slots=True)
class ClusterMatch:
    """Result of assigning a phrase to a concept."""

    concept: str
    similarity: float
    matched_exemplar: str


class PhraseClusterer:
    """Assigns raw phrases to canonical concepts by similarity."""

    def __init__(
        self,
        vocabulary: dict[str, tuple[str, ...]] | None = None,
        threshold: float = 0.45,
    ) -> None:
        """``vocabulary`` maps concept name -> exemplar phrasings.

        Defaults to the catalog's topics with their query variants —
        the same lexicon the world simulator emits phrases from, so the
        clustering task is end-to-end realistic.
        """
        if vocabulary is None:
            vocabulary = {term.name: term.all_phrasings() for term in TERMS}
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1]: {threshold}")
        self.threshold = threshold
        self._exemplars: list[tuple[str, str, tuple[str, ...], Counter]] = []
        for concept, phrasings in vocabulary.items():
            for phrasing in phrasings:
                self._exemplars.append(
                    (concept, phrasing, tokenize(phrasing), trigrams(phrasing))
                )
        # The exemplar scan is pure in the phrase, and study-scale
        # annotation re-asks the same few hundred catalog variants
        # thousands of times — memoization turns the annotation stage
        # from the study's dominant cost into a dict lookup.  Benign
        # race under threads: recomputed values are identical.
        self._match_cache: dict[str, ClusterMatch | None] = {}

    def match(self, phrase: str) -> ClusterMatch | None:
        """Best concept for *phrase*, or None below the threshold."""
        if phrase in self._match_cache:
            return self._match_cache[phrase]
        tokens = tokenize(phrase)
        grams = trigrams(phrase)
        best: ClusterMatch | None = None
        for concept, exemplar, ex_tokens, ex_grams in self._exemplars:
            score = 0.6 * token_overlap(tokens, ex_tokens) + 0.4 * _cosine(
                grams, ex_grams
            )
            if best is None or score > best.similarity:
                best = ClusterMatch(concept, score, exemplar)
        if best is not None and best.similarity < self.threshold:
            best = None
        if len(self._match_cache) >= 65536:
            self._match_cache.clear()
        self._match_cache[phrase] = best
        return best

    def canonicalize(self, phrase: str) -> str:
        """Concept name for *phrase*, or the phrase itself when novel."""
        match = self.match(phrase)
        return match.concept if match else phrase

    def cluster(self, phrases: list[str] | tuple[str, ...]) -> dict[str, list[str]]:
        """Group phrases by concept; novel phrases form singletons."""
        clusters: dict[str, list[str]] = {}
        for phrase in phrases:
            clusters.setdefault(self.canonicalize(phrase), []).append(phrase)
        return clusters
