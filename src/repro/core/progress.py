"""Structured progress events emitted by the pipeline.

The study driver used to report progress as free-form strings; anything
watching a run (CLI, web interface, benchmarks) had to parse prose.
These dataclasses replace that: every stage of a study emits a typed
event — geography started/finished, checkpoint hits, crawl and cache
statistics — and consumers pattern-match on the event type.

A *listener* is any callable taking one :class:`ProgressEvent`.  The
pipeline may invoke it from worker threads (one at a time — emission is
serialized), so listeners shared across runs should still be cheap.
:func:`text_listener` adapts a plain string sink such as ``print``;
:class:`ProgressLog` records events in memory for later inspection
(the web interface serves it as ``/api/runtime``).
"""

from __future__ import annotations

import dataclasses
import sys
import threading
from collections import deque
from collections.abc import Callable

from repro.timeutil import TimeWindow


def peak_rss_kb() -> int:
    """Peak resident-set size of the calling process, in KiB.

    ``getrusage`` reports KiB on Linux and bytes on macOS; both are
    normalized to KiB.  Returns 0 on platforms without ``resource``.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        peak //= 1024
    return int(peak)


@dataclasses.dataclass(frozen=True, slots=True)
class ProgressEvent:
    """Base class for everything a study run can report."""

    def describe(self) -> str:
        """One-line human rendering (what the old string hook printed)."""
        return repr(self)

    def to_dict(self) -> dict:
        """JSON-safe rendering for the web interface."""
        payload: dict = {"type": type(self).__name__, "message": self.describe()}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, TimeWindow):
                value = {
                    "start": value.start.isoformat(),
                    "end": value.end.isoformat(),
                }
            elif isinstance(value, tuple):
                value = list(value)
            payload[field.name] = value
        return payload


@dataclasses.dataclass(frozen=True, slots=True)
class StudyStarted(ProgressEvent):
    geos: tuple[str, ...]
    window: TimeWindow

    def describe(self) -> str:
        return (
            f"study started: {len(self.geos)} geographies, "
            f"{self.window.start:%Y-%m-%d}..{self.window.end:%Y-%m-%d}"
        )


@dataclasses.dataclass(frozen=True, slots=True)
class GeoStarted(ProgressEvent):
    geo: str
    index: int
    total: int

    def describe(self) -> str:
        return f"analyzing {self.geo} ({self.index + 1}/{self.total})"


@dataclasses.dataclass(frozen=True, slots=True)
class GeoFinished(ProgressEvent):
    geo: str
    index: int
    total: int
    spike_count: int
    rounds_used: int
    converged: bool
    from_checkpoint: bool
    elapsed_seconds: float

    def describe(self) -> str:
        source = "checkpoint" if self.from_checkpoint else (
            f"{self.rounds_used} rounds, converged={self.converged}"
        )
        return (
            f"{self.geo} done ({self.index + 1}/{self.total}): "
            f"{self.spike_count} spikes [{source}]"
        )


@dataclasses.dataclass(frozen=True, slots=True)
class CheckpointHit(ProgressEvent):
    """A geography was served from the study checkpoint, not recrawled."""

    geo: str
    spike_count: int

    def describe(self) -> str:
        return f"{self.geo}: resumed from checkpoint ({self.spike_count} spikes)"


@dataclasses.dataclass(frozen=True, slots=True)
class AnnotationStarted(ProgressEvent):
    spike_count: int

    def describe(self) -> str:
        return f"annotating {self.spike_count} spikes with rising suggestions"


@dataclasses.dataclass(frozen=True, slots=True)
class CacheStats(ProgressEvent):
    """Daily-rising cache accounting for one study run."""

    hits: int
    misses: int
    size: int
    capacity: int

    def describe(self) -> str:
        return (
            f"rising cache: {self.hits} hits / {self.misses} misses "
            f"({self.size}/{self.capacity} entries)"
        )


@dataclasses.dataclass(frozen=True, slots=True)
class CrawlStats(ProgressEvent):
    """Collection-layer accounting (mirrors ``CrawlReport``)."""

    requested: int
    fetched: int
    served_from_cache: int
    retries: int
    elapsed_seconds: float
    frames_per_second: float
    dead_lettered: int = 0

    def describe(self) -> str:
        dead = (
            f", {self.dead_lettered} dead-lettered" if self.dead_lettered else ""
        )
        return (
            f"crawl: {self.fetched} fetched, {self.served_from_cache} from "
            f"cache, {self.retries} retries "
            f"({self.frames_per_second:.0f} frames/s){dead}"
        )


@dataclasses.dataclass(frozen=True, slots=True)
class FramesDropped(ProgressEvent):
    """A geography's averaging ran with crawl-dropped (missing) frames."""

    geo: str
    dropped: int
    rounds_used: int

    def describe(self) -> str:
        return (
            f"{self.geo}: averaged around {self.dropped} missing "
            f"frame-fetches over {self.rounds_used} rounds"
        )


@dataclasses.dataclass(frozen=True, slots=True)
class FaultStats(ProgressEvent):
    """Chaos accounting for a fault-injected run (mirrors ``FaultReport``)."""

    profile: str
    seed: int
    injected: dict
    observed: dict
    retries: int
    breaker_opened: int
    breaker_half_opened: int
    breaker_closed: int
    dead_letters: int
    blackout_rejections: dict

    def describe(self) -> str:
        return (
            f"faults[{self.profile}/{self.seed}]: "
            f"{sum(self.injected.values())} injected, "
            f"{self.retries} retries, breaker {self.breaker_opened} opens, "
            f"{self.dead_letters} dead-lettered"
        )


@dataclasses.dataclass(frozen=True, slots=True)
class ShardStats(ProgressEvent):
    """Resource accounting for one execution shard of a study.

    A process-sharded study emits one per worker process (its slice of
    the geographies, wall-clock, and peak RSS as measured *inside* the
    worker); serial and thread runs emit a single shard covering the
    whole per-geography stage, so the memory profile of a workload is
    observable under every executor.
    """

    shard: int
    executor: str  # "serial" | "thread" | "process"
    worker_count: int
    geo_count: int
    elapsed_seconds: float
    peak_rss_kb: int

    def describe(self) -> str:
        return (
            f"shard {self.shard} [{self.executor}]: {self.geo_count} geos "
            f"in {self.elapsed_seconds:.2f}s, peak RSS "
            f"{self.peak_rss_kb / 1024:.0f} MiB"
        )


@dataclasses.dataclass(frozen=True, slots=True)
class SnapshotInstalled(ProgressEvent):
    """A study snapshot was installed into the web serving layer."""

    snapshot: int
    fingerprint: str
    geo_count: int
    preloaded: int

    def describe(self) -> str:
        return (
            f"serving snapshot v{self.snapshot} ({self.fingerprint}): "
            f"{self.geo_count} geographies, {self.preloaded} hot payloads "
            f"pre-encoded"
        )


@dataclasses.dataclass(frozen=True, slots=True)
class ServingStats(ProgressEvent):
    """Web serving-layer accounting (response cache + handle times)."""

    snapshot: int
    fingerprint: str
    requests: int
    hits: int
    misses: int
    not_modified: int
    errors: int
    evictions: int
    entries: int
    capacity: int
    preloaded: int
    bytes_served: int
    bytes_saved: int
    p50_handle_ms: float
    p99_handle_ms: float
    shed: int = 0

    def describe(self) -> str:
        shed = f", {self.shed} shed" if self.shed else ""
        return (
            f"serving[v{self.snapshot}]: {self.requests} requests, "
            f"{self.hits} hits / {self.misses} misses / "
            f"{self.not_modified} not-modified, "
            f"{self.bytes_saved} bytes saved, "
            f"p50 {self.p50_handle_ms:.2f} ms / p99 {self.p99_handle_ms:.2f} ms"
            f"{shed}"
        )


@dataclasses.dataclass(frozen=True, slots=True)
class TickFinished(ProgressEvent):
    """The streaming daemon ingested one weekly frame across all geos."""

    tick: int
    total_ticks: int
    frame: TimeWindow
    geo_count: int
    published: int
    removed: int
    spike_count: int
    elapsed_seconds: float

    def describe(self) -> str:
        delta = f"+{self.published}" + (f"/-{self.removed}" if self.removed else "")
        return (
            f"tick {self.tick + 1}/{self.total_ticks} "
            f"(..{self.frame.end:%Y-%m-%d}): {delta} spikes "
            f"({self.spike_count} total) in {self.elapsed_seconds * 1e3:.0f} ms"
        )


@dataclasses.dataclass(frozen=True, slots=True)
class SpikePublished(ProgressEvent):
    """A streamed tick surfaced a new (or re-bounded) spike."""

    geo: str
    tick: int
    start: str  # ISO timestamps: the event is JSON-safe as-is
    peak: str
    end: str
    magnitude: float
    duration_hours: int

    def describe(self) -> str:
        return (
            f"spike published [{self.geo}] peak {self.peak} "
            f"magnitude {self.magnitude:.1f} ({self.duration_hours}h)"
        )


@dataclasses.dataclass(frozen=True, slots=True)
class StreamResumed(ProgressEvent):
    """A killed watcher picked its stream back up from the columnar store."""

    tick: int
    total_ticks: int
    geo_count: int

    def describe(self) -> str:
        return (
            f"stream resumed at tick {self.tick}/{self.total_ticks} "
            f"({self.geo_count} geographies, zero refetch)"
        )


@dataclasses.dataclass(frozen=True, slots=True)
class DeltaInstalled(ProgressEvent):
    """A delta snapshot was appended into the web serving layer."""

    snapshot: int
    fingerprint: str
    tick: int
    appended_hours: int
    rebuilt_columns: int
    invalidated: int
    retained: int
    published: int

    def describe(self) -> str:
        return (
            f"serving snapshot v{self.snapshot} ({self.fingerprint}): "
            f"delta +{self.appended_hours}h, {self.published} spikes "
            f"published, {self.invalidated} cache entries dropped / "
            f"{self.retained} kept"
        )


@dataclasses.dataclass(frozen=True, slots=True)
class HealthChanged(ProgressEvent):
    """The supervisor's health state machine moved to a new state."""

    state: str  # "healthy" | "degraded" | "halted"
    previous: str
    reason: str
    tick: int
    restarts: int

    def describe(self) -> str:
        return (
            f"health {self.previous} -> {self.state} at tick {self.tick} "
            f"({self.reason}; {self.restarts} restarts so far)"
        )


@dataclasses.dataclass(frozen=True, slots=True)
class TickRestarted(ProgressEvent):
    """A supervised tick failed and is being restarted from checkpoint."""

    tick: int
    attempt: int
    error_class: str  # ErrorClass value: "retryable" | "rate_limited"
    error: str
    backoff_seconds: float

    def describe(self) -> str:
        return (
            f"tick {self.tick} restart #{self.attempt} after "
            f"{self.error_class} failure ({self.error}); "
            f"backing off {self.backoff_seconds:.2f}s"
        )


@dataclasses.dataclass(frozen=True, slots=True)
class PartitionQuarantined(ProgressEvent):
    """An integrity check moved a damaged store partition aside."""

    geo: str
    file: str
    reason: str

    def describe(self) -> str:
        return f"quarantined {self.geo} partition ({self.file}): {self.reason}"


@dataclasses.dataclass(frozen=True, slots=True)
class GeoRecrawled(ProgressEvent):
    """A quarantined geography was re-crawled back to the stream head."""

    geo: str
    ticks: int

    def describe(self) -> str:
        return f"re-crawled quarantined {self.geo} over {self.ticks} ticks"


@dataclasses.dataclass(frozen=True, slots=True)
class Heartbeat(ProgressEvent):
    """Periodic liveness signal from the supervisor (fed to /api/stream)."""

    tick: int
    health: str
    ticks_done: int
    total_ticks: int
    restarts: int

    def describe(self) -> str:
        return (
            f"heartbeat: {self.health}, tick {self.ticks_done}/"
            f"{self.total_ticks}, {self.restarts} restarts"
        )


@dataclasses.dataclass(frozen=True, slots=True)
class StudyFinished(ProgressEvent):
    geo_count: int
    spike_count: int
    outage_count: int
    resumed_geos: tuple[str, ...]

    def describe(self) -> str:
        resumed = f", {len(self.resumed_geos)} resumed" if self.resumed_geos else ""
        return (
            f"study finished: {self.spike_count} spikes across "
            f"{self.geo_count} geographies, {self.outage_count} outages{resumed}"
        )


#: Anything consuming progress events.
ProgressListener = Callable[[ProgressEvent], None]


def text_listener(write: Callable[[str], None]) -> ProgressListener:
    """Adapt a string sink (``print``, a logger method) to a listener."""

    def listen(event: ProgressEvent) -> None:
        write(event.describe())

    return listen


class ProgressLog:
    """A thread-safe in-memory event sink, oldest events evicted first."""

    def __init__(self, capacity: int = 2000) -> None:
        self._events: deque[ProgressEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def __call__(self, event: ProgressEvent) -> None:
        with self._lock:
            self._events.append(event)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def events(self) -> tuple[ProgressEvent, ...]:
        with self._lock:
            return tuple(self._events)

    def of_type(self, *types: type) -> tuple[ProgressEvent, ...]:
        return tuple(event for event in self.events() if isinstance(event, types))

    def describe(self) -> list[str]:
        return [event.describe() for event in self.events()]
