"""The SIFT orchestrator: input -> frames -> timeline -> spikes -> context.

:class:`Sift` wires the whole workflow of the paper's Fig. 2 together:

1. partition the requested time range into consecutive, overlapping
   weekly frames (step 2 in the figure);
2. crawl them from the Trends service through a frame source — a plain
   :class:`repro.trends.TrendsClient` or the collection layer's
   rate-limit-aware multi-fetcher frontend (steps 3-5);
3. average re-fetch rounds until the spike set converges, stitching and
   renormalizing each round (step 6);
4. detect spikes and rank them by magnitude within each geography
   (step 7);
5. annotate each spike with clustered rising suggestions from a daily
   frame around its peak, and group concurrent spikes across
   geographies into outages (steps 8-9).

``run_study`` executes this per state over an arbitrary set of
geographies — the paper's two-year, 51-geography study is
``run_study(all_geos, two_year_window)``.  The per-geography stage is
delegated to a pluggable executor (see :mod:`repro.runtime.executor`);
results are reassembled in geography order, so a seeded study is
byte-identical whether it ran on one thread or eight.  When a
checkpoint store is attached (see :mod:`repro.runtime.checkpoint`),
completed geographies are persisted as they finish and an interrupted
study resumes them from the database instead of recrawling.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
import time
from collections import OrderedDict
from datetime import datetime

from repro.core.averaging import (
    AveragingConfig,
    AveragingResult,
    MissingFrame,
)
from repro.core.area import AreaConfig, Outage, group_outages
from repro.core.context import ContextConfig, SpikeAnnotator
from repro.core.detection import DetectionConfig
from repro.core.nlp import PhraseClusterer
from repro.core.reconstruct import make_averager, stitcher_factory
from repro.core.progress import (
    AnnotationStarted,
    CacheStats,
    CheckpointHit,
    CrawlStats,
    FaultStats,
    FramesDropped,
    GeoFinished,
    GeoStarted,
    ProgressEvent,
    ProgressListener,
    ShardStats,
    StudyFinished,
    StudyStarted,
    peak_rss_kb,
)
from repro.core.series import HourlyTimeline
from repro.core.spikes import Spike, SpikeSet
from repro.errors import FrameDeadLettered
from repro.timeutil import TimeWindow, daily_frame, weekly_frames
from repro.trends.records import RisingTerm, TimeFrameRequest, TimeFrameResponse


class FrameSource:
    """What the pipeline needs from a crawler (structural protocol).

    :class:`repro.trends.TrendsClient` and the collection layer's
    :class:`repro.collection.CollectionManager` both satisfy it.
    """

    def interest_over_time(
        self,
        term: str,
        geo: str,
        window: TimeWindow,
        sample_round: int | None = None,
        include_rising: bool = True,
    ) -> TimeFrameResponse:
        raise NotImplementedError


class StudyCheckpoint:
    """What ``run_study`` needs to resume (structural protocol).

    The runtime layer's :class:`repro.runtime.DatabaseCheckpoint`
    persists through the collection database; anything matching this
    shape works.
    """

    def load_state(self, geo: str, window: TimeWindow) -> "StateResult | None":
        raise NotImplementedError

    def save_state(self, result: "StateResult", window: TimeWindow) -> None:
        raise NotImplementedError

    def save_annotated(self, spikes: SpikeSet) -> None:
        raise NotImplementedError


@dataclasses.dataclass(frozen=True, slots=True)
class SiftConfig:
    """End-to-end pipeline configuration."""

    term: str = "Internet outage"
    overlap_hours: int = 24
    averaging: AveragingConfig = dataclasses.field(default_factory=AveragingConfig)
    detection: DetectionConfig = dataclasses.field(default_factory=DetectionConfig)
    area: AreaConfig = dataclasses.field(default_factory=AreaConfig)
    context: ContextConfig = dataclasses.field(default_factory=ContextConfig)
    annotate: bool = True
    #: Reconstruction backends by registry name (see
    #: :mod:`repro.core.reconstruct`); the defaults reproduce the
    #: paper's overlap-ratio stitching and flat running means.
    stitcher: str = "overlap_ratio"
    averager: str = "mean"


@dataclasses.dataclass(frozen=True)
class StateResult:
    """Everything SIFT learned about one geography."""

    geo: str
    timeline: HourlyTimeline
    spikes: SpikeSet
    averaging: AveragingResult


@dataclasses.dataclass(frozen=True)
class StudyResult:
    """Everything SIFT learned across a multi-geography study."""

    window: TimeWindow
    spikes: SpikeSet  # all states, annotated when enabled
    outages: list[Outage]
    states: dict[str, StateResult]
    heavy_hitters: tuple[str, ...]
    suggestion_stats: tuple[int, int]  # (distinct terms, total suggestions)
    resumed_geos: tuple[str, ...] = ()  # served from checkpoints, not crawled

    @property
    def spike_count(self) -> int:
        return len(self.spikes)

    def spikes_in_year(self, year: int) -> SpikeSet:
        return self.spikes.in_year(year)

    def fingerprint(self) -> str:
        """Stable content digest of this study snapshot.

        The serving layer derives strong ETags and cache invalidation
        from it: two studies with identical timelines, spikes and
        outages share a fingerprint, and any content change — a value,
        an annotation, a resumed geography — produces a new one.

        Memoized: the streaming daemon fingerprints every tick's
        snapshot (once for the delta install, once for the tick
        result), and a result's content never changes after assembly.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        digest = hashlib.sha256()
        digest.update(self.window.start.isoformat().encode())
        digest.update(self.window.end.isoformat().encode())
        for geo in sorted(self.states):
            result = self.states[geo]
            digest.update(geo.encode())
            digest.update(result.timeline.start.isoformat().encode())
            digest.update(result.timeline.values.tobytes())
        for spike in self.spikes:
            digest.update(
                f"{spike.geo}|{spike.peak.isoformat()}|{spike.magnitude!r}|"
                f"{'|'.join(spike.annotations)}".encode()
            )
        digest.update(str(len(self.outages)).encode())
        digest.update("|".join(self.resumed_geos).encode())
        fingerprint = digest.hexdigest()[:16]
        # Frozen but not slotted: stash directly in the instance dict.
        self.__dict__["_fingerprint"] = fingerprint
        return fingerprint


class RisingCache:
    """A capacity-bounded LRU over daily rising-term fetches.

    A two-year study touches one daily frame per (geo, spike day); the
    cache used to grow without bound.  Eviction is safe — a re-fetch of
    the same daily frame is deterministic — so a small cap holds the
    memory ceiling while keeping the hit rate high (spikes cluster on
    outage days).
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive: {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple[str, datetime], tuple[RisingTerm, ...]] = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple[str, datetime]) -> tuple[RisingTerm, ...] | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple[str, datetime], value: tuple[RisingTerm, ...]) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            size=len(self._entries),
            capacity=self.capacity,
        )


class Sift:
    """The detection and analysis tool, end to end."""

    def __init__(
        self,
        source: FrameSource,
        config: SiftConfig | None = None,
        progress: ProgressListener | None = None,
        executor: object | None = None,
        checkpoint: StudyCheckpoint | None = None,
        rising_cache_size: int = 2048,
    ) -> None:
        self.source = source
        self.config = config or SiftConfig()
        # Resolved once: unknown backend names fail at construction,
        # not mid-study.  The averager is stateless across calls and
        # the factory yields a fresh stitcher per round, so both are
        # safe to share across worker threads.
        self.averager = make_averager(self.config.averager)
        self.stitcher_factory = stitcher_factory(self.config.stitcher)
        self.clusterer = PhraseClusterer()
        self.executor = executor  # anything with .map(fn, items); None = serial
        self.checkpoint = checkpoint
        self._progress = progress
        self._progress_lock = threading.Lock()
        self._rising_cache = RisingCache(rising_cache_size)

    # -- workflow steps ----------------------------------------------------------

    def fetch_week_frames(
        self, geo: str, window: TimeWindow, sample_round: int
    ) -> list[TimeFrameResponse | MissingFrame]:
        """Crawl one full round of weekly frames for a geography.

        Rising suggestions ride along only on the first round: they are
        frame metadata, not sampled values, and re-fetching them would
        only burn request budget (exactly what a crawler must avoid
        under IP rate limiting).

        A frame the collection layer dead-letters (see DESIGN.md §7)
        comes back as a :class:`MissingFrame` placeholder — the
        averaging loop tolerates a bounded fraction of those — instead
        of aborting the geography.
        """
        frames = weekly_frames(window, self.config.overlap_hours)
        entries: list[TimeFrameResponse | MissingFrame] = []
        for frame in frames:
            try:
                entries.append(
                    self.source.interest_over_time(
                        self.config.term,
                        geo,
                        frame,
                        sample_round=sample_round,
                        include_rising=(sample_round == 0),
                    )
                )
            except FrameDeadLettered as error:
                entries.append(
                    MissingFrame(
                        request=TimeFrameRequest(
                            term=self.config.term, geo=geo, window=frame
                        ),
                        sample_round=sample_round,
                        error=str(error),
                    )
                )
        return entries

    def build_timeline(self, geo: str, window: TimeWindow) -> AveragingResult:
        """Reconstruct the calibrated continuous series for a geography."""
        return self.averager.average(
            lambda round_index: self.fetch_week_frames(geo, window, round_index),
            config=self.config.averaging,
            detection=self.config.detection,
            stitcher_factory=self.stitcher_factory,
        )

    def analyze_state(self, geo: str, window: TimeWindow) -> StateResult:
        """Timeline + ranked spikes for one geography."""
        result, _ = self._analyze_or_resume(geo, window, index=0, total=1)
        return result

    def _resume_from_checkpoint(
        self, geo: str, window: TimeWindow, index: int, total: int
    ) -> StateResult | None:
        """A checkpointed result for *geo* (with progress events), or None.

        Shared by the inline per-geography stage and the sharded driver
        (:mod:`repro.runtime.shard`), which resumes in the parent before
        dispatching work to worker processes.
        """
        if self.checkpoint is None:
            return None
        restored = self.checkpoint.load_state(geo, window)
        if restored is None:
            return None
        self._emit(CheckpointHit(geo=geo, spike_count=len(restored.spikes)))
        self._emit(
            GeoFinished(
                geo=geo,
                index=index,
                total=total,
                spike_count=len(restored.spikes),
                rounds_used=restored.averaging.rounds_used,
                converged=restored.averaging.converged,
                from_checkpoint=True,
                elapsed_seconds=0.0,
            )
        )
        return restored

    def _analyze_or_resume(
        self, geo: str, window: TimeWindow, index: int, total: int
    ) -> tuple[StateResult, bool]:
        """One geography's result, from the checkpoint when possible."""
        restored = self._resume_from_checkpoint(geo, window, index, total)
        if restored is not None:
            return restored, True
        self._emit(GeoStarted(geo=geo, index=index, total=total))
        started = time.perf_counter()
        averaging = self.build_timeline(geo, window)
        if averaging.missing_frames:
            self._emit(
                FramesDropped(
                    geo=geo,
                    dropped=len(averaging.missing_frames),
                    rounds_used=averaging.rounds_used,
                )
            )
        result = StateResult(
            geo=geo,
            timeline=averaging.timeline,
            spikes=averaging.spikes,
            averaging=averaging,
        )
        if self.checkpoint is not None:
            self.checkpoint.save_state(result, window)
        self._emit(
            GeoFinished(
                geo=geo,
                index=index,
                total=total,
                spike_count=len(result.spikes),
                rounds_used=averaging.rounds_used,
                converged=averaging.converged,
                from_checkpoint=False,
                elapsed_seconds=time.perf_counter() - started,
            )
        )
        return result, False

    def daily_rising(self, geo: str, peak: datetime) -> tuple[RisingTerm, ...]:
        """Fine-grained rising terms for a spike day (LRU-cached per day)."""
        day = daily_frame(peak)
        key = (geo, day.start)
        cached = self._rising_cache.get(key)
        if cached is None:
            response = self.source.interest_over_time(
                self.config.term, geo, day, sample_round=0, include_rising=True
            )
            cached = response.rising
            self._rising_cache.put(key, cached)
        return cached

    @property
    def rising_cache(self) -> RisingCache:
        return self._rising_cache

    # -- the full study -------------------------------------------------------------

    def run_study(self, geos: list[str] | tuple[str, ...], window: TimeWindow) -> StudyResult:
        """The paper's workflow over many geographies.

        Per-geography analysis runs through ``self.executor`` (serial
        when ``None``); the result list is reassembled in the order the
        geographies were given, which keeps seeded runs deterministic
        at any worker count.  Annotation and area grouping need the
        whole spike set, so they stay on the calling thread.
        """
        geos = tuple(geos)
        total = len(geos)
        self._emit(StudyStarted(geos=geos, window=window))

        def analyze_one(indexed: tuple[int, str]) -> tuple[StateResult, bool]:
            index, geo = indexed
            return self._analyze_or_resume(geo, window, index=index, total=total)

        stage_started = time.perf_counter()
        sharded = getattr(self.executor, "shards_study", False)
        if self.executor is None:
            outcomes = [analyze_one(pair) for pair in enumerate(geos)]
        elif sharded:
            # A process executor drives the whole stage itself: parent
            # resume, shard dispatch, progress forwarding, partition
            # merge (see repro.runtime.shard).  Workers emit their own
            # ShardStats from inside each process.
            outcomes = self.executor.run_sharded_study(self, geos, window)
        else:
            outcomes = self.executor.map(analyze_one, list(enumerate(geos)))
        if not sharded:
            # In-process execution is one "shard": report its wall-clock
            # and peak RSS so every executor exposes a memory profile.
            self._emit(
                ShardStats(
                    shard=0,
                    executor=getattr(self.executor, "kind", "serial"),
                    worker_count=getattr(self.executor, "max_workers", 1),
                    geo_count=total,
                    elapsed_seconds=time.perf_counter() - stage_started,
                    peak_rss_kb=peak_rss_kb(),
                )
            )
        states = {geo: result for geo, (result, _) in zip(geos, outcomes)}
        resumed = tuple(
            geo for geo, (_, from_checkpoint) in zip(geos, outcomes) if from_checkpoint
        )
        all_spikes: list[Spike] = []
        for geo in geos:
            all_spikes.extend(states[geo].spikes)

        annotator = SpikeAnnotator(
            fetch_rising=self.daily_rising,
            clusterer=self.clusterer,
            config=self.config.context,
        )
        if self.config.annotate and all_spikes:
            self._emit(AnnotationStarted(spike_count=len(all_spikes)))
            all_spikes = annotator.annotate_all(all_spikes, two_pass=True)
        spike_set = SpikeSet(all_spikes)
        outages = group_outages(spike_set, self.config.area)
        if self.checkpoint is not None:
            self.checkpoint.save_annotated(spike_set)
        self._emit(self._rising_cache.stats())
        self._emit_crawl_stats()
        self._emit(
            StudyFinished(
                geo_count=total,
                spike_count=len(spike_set),
                outage_count=len(outages),
                resumed_geos=resumed,
            )
        )
        return StudyResult(
            window=window,
            spikes=spike_set,
            outages=outages,
            states=states,
            heavy_hitters=tuple(sorted(annotator.heavy_hitters)),
            suggestion_stats=(
                annotator.analyzer.distinct_terms,
                annotator.analyzer.total_suggestions,
            ),
            resumed_geos=resumed,
        )

    # -- progress ---------------------------------------------------------------

    def _emit(self, event: ProgressEvent) -> None:
        if self._progress is None:
            return
        # Worker threads emit too; keep listener invocations serialized.
        with self._progress_lock:
            self._progress(event)

    def _emit_crawl_stats(self) -> None:
        if self._progress is None:
            return
        report_fn = getattr(self.source, "report", None)
        if report_fn is not None:
            report = report_fn()
            self._emit(
                CrawlStats(
                    requested=report.requested,
                    fetched=report.fetched,
                    served_from_cache=report.served_from_cache,
                    retries=report.retries,
                    elapsed_seconds=report.elapsed_seconds,
                    frames_per_second=report.frames_per_second,
                    dead_lettered=getattr(report, "dead_lettered", 0),
                )
            )
        fault_fn = getattr(self.source, "fault_report", None)
        if fault_fn is not None:
            faults = fault_fn()
            if faults is not None:
                self._emit(FaultStats(**faults.to_dict()))
