"""The SIFT orchestrator: input -> frames -> timeline -> spikes -> context.

:class:`Sift` wires the whole workflow of the paper's Fig. 2 together:

1. partition the requested time range into consecutive, overlapping
   weekly frames (step 2 in the figure);
2. crawl them from the Trends service through a frame source — a plain
   :class:`repro.trends.TrendsClient` or the collection layer's
   rate-limit-aware multi-fetcher frontend (steps 3-5);
3. average re-fetch rounds until the spike set converges, stitching and
   renormalizing each round (step 6);
4. detect spikes and rank them by magnitude within each geography
   (step 7);
5. annotate each spike with clustered rising suggestions from a daily
   frame around its peak, and group concurrent spikes across
   geographies into outages (steps 8-9).

``run_study`` executes this per state over an arbitrary set of
geographies — the paper's two-year, 51-geography study is
``run_study(all_geos, two_year_window)``.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable
from datetime import datetime

from repro.core.averaging import (
    AveragingConfig,
    AveragingResult,
    average_until_convergence,
)
from repro.core.area import AreaConfig, Outage, group_outages
from repro.core.context import ContextConfig, SpikeAnnotator
from repro.core.detection import DetectionConfig
from repro.core.nlp import PhraseClusterer
from repro.core.series import HourlyTimeline
from repro.core.spikes import Spike, SpikeSet
from repro.timeutil import TimeWindow, daily_frame, weekly_frames
from repro.trends.records import RisingTerm, TimeFrameResponse


class FrameSource:
    """What the pipeline needs from a crawler (structural protocol).

    :class:`repro.trends.TrendsClient` and the collection layer's
    :class:`repro.collection.CollectionManager` both satisfy it.
    """

    def interest_over_time(
        self,
        term: str,
        geo: str,
        window: TimeWindow,
        sample_round: int | None = None,
        include_rising: bool = True,
    ) -> TimeFrameResponse:
        raise NotImplementedError


@dataclasses.dataclass(frozen=True, slots=True)
class SiftConfig:
    """End-to-end pipeline configuration."""

    term: str = "Internet outage"
    overlap_hours: int = 24
    averaging: AveragingConfig = dataclasses.field(default_factory=AveragingConfig)
    detection: DetectionConfig = dataclasses.field(default_factory=DetectionConfig)
    area: AreaConfig = dataclasses.field(default_factory=AreaConfig)
    context: ContextConfig = dataclasses.field(default_factory=ContextConfig)
    annotate: bool = True


@dataclasses.dataclass(frozen=True)
class StateResult:
    """Everything SIFT learned about one geography."""

    geo: str
    timeline: HourlyTimeline
    spikes: SpikeSet
    averaging: AveragingResult


@dataclasses.dataclass(frozen=True)
class StudyResult:
    """Everything SIFT learned across a multi-geography study."""

    window: TimeWindow
    spikes: SpikeSet  # all states, annotated when enabled
    outages: list[Outage]
    states: dict[str, StateResult]
    heavy_hitters: tuple[str, ...]
    suggestion_stats: tuple[int, int]  # (distinct terms, total suggestions)

    @property
    def spike_count(self) -> int:
        return len(self.spikes)

    def spikes_in_year(self, year: int) -> SpikeSet:
        return self.spikes.in_year(year)


ProgressHook = Callable[[str], None]


class Sift:
    """The detection and analysis tool, end to end."""

    def __init__(
        self,
        source: FrameSource,
        config: SiftConfig | None = None,
        progress: ProgressHook | None = None,
    ) -> None:
        self.source = source
        self.config = config or SiftConfig()
        self.clusterer = PhraseClusterer()
        self._progress = progress
        self._daily_rising_cache: dict[tuple[str, datetime], tuple[RisingTerm, ...]] = {}

    # -- workflow steps ----------------------------------------------------------

    def fetch_week_frames(
        self, geo: str, window: TimeWindow, sample_round: int
    ) -> list[TimeFrameResponse]:
        """Crawl one full round of weekly frames for a geography.

        Rising suggestions ride along only on the first round: they are
        frame metadata, not sampled values, and re-fetching them would
        only burn request budget (exactly what a crawler must avoid
        under IP rate limiting).
        """
        frames = weekly_frames(window, self.config.overlap_hours)
        return [
            self.source.interest_over_time(
                self.config.term,
                geo,
                frame,
                sample_round=sample_round,
                include_rising=(sample_round == 0),
            )
            for frame in frames
        ]

    def build_timeline(self, geo: str, window: TimeWindow) -> AveragingResult:
        """Reconstruct the calibrated continuous series for a geography."""
        return average_until_convergence(
            lambda round_index: self.fetch_week_frames(geo, window, round_index),
            config=self.config.averaging,
            detection=self.config.detection,
        )

    def analyze_state(self, geo: str, window: TimeWindow) -> StateResult:
        """Timeline + ranked spikes for one geography."""
        self._note(f"analyzing {geo}")
        averaging = self.build_timeline(geo, window)
        return StateResult(
            geo=geo,
            timeline=averaging.timeline,
            spikes=averaging.spikes,
            averaging=averaging,
        )

    def daily_rising(self, geo: str, peak: datetime) -> tuple[RisingTerm, ...]:
        """Fine-grained rising terms for a spike day (cached per day)."""
        day = daily_frame(peak)
        key = (geo, day.start)
        cached = self._daily_rising_cache.get(key)
        if cached is None:
            response = self.source.interest_over_time(
                self.config.term, geo, day, sample_round=0, include_rising=True
            )
            cached = response.rising
            self._daily_rising_cache[key] = cached
        return cached

    # -- the full study -------------------------------------------------------------

    def run_study(self, geos: list[str] | tuple[str, ...], window: TimeWindow) -> StudyResult:
        """The paper's workflow over many geographies."""
        states: dict[str, StateResult] = {}
        all_spikes: list[Spike] = []
        for geo in geos:
            result = self.analyze_state(geo, window)
            states[geo] = result
            all_spikes.extend(result.spikes)
        self._note(f"detected {len(all_spikes)} spikes across {len(geos)} geographies")
        annotator = SpikeAnnotator(
            fetch_rising=self.daily_rising,
            clusterer=self.clusterer,
            config=self.config.context,
        )
        if self.config.annotate and all_spikes:
            self._note("annotating spikes with rising suggestions")
            all_spikes = annotator.annotate_all(all_spikes, two_pass=True)
        spike_set = SpikeSet(all_spikes)
        outages = group_outages(spike_set, self.config.area)
        self._note(f"grouped into {len(outages)} outages")
        return StudyResult(
            window=window,
            spikes=spike_set,
            outages=outages,
            states=states,
            heavy_hitters=annotator.heavy_hitters and tuple(sorted(annotator.heavy_hitters)),
            suggestion_stats=(
                annotator.analyzer.distinct_terms,
                annotator.analyzer.total_suggestions,
            ),
        )

    def _note(self, message: str) -> None:
        if self._progress is not None:
            self._progress(message)
