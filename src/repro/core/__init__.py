"""SIFT core: the paper's primary contribution.

Processing (stitching + averaging), detection (prominence walk),
and analysis (area grouping + context annotation), orchestrated by
:class:`repro.core.pipeline.Sift`.
"""

from repro.core.area import AreaConfig, Outage, footprint_distribution, group_outages, most_extensive
from repro.core.averaging import (
    AveragingConfig,
    AveragingResult,
    MissingFrame,
    average_until_convergence,
)
from repro.core.context import (
    ContextConfig,
    HeavyHitterAnalyzer,
    RankedSuggestion,
    SpikeAnnotator,
    rank_suggestions,
)
from repro.core.detection import DetectionConfig, SpikeBounds, detect_bounds, detect_spikes
from repro.core.nlp import PhraseClusterer, phrase_similarity, tokenize
from repro.core.pipeline import (
    FrameSource,
    RisingCache,
    Sift,
    SiftConfig,
    StateResult,
    StudyCheckpoint,
    StudyResult,
)
from repro.core.reconstruct import (
    Averager,
    CalibratedStitcher,
    MeanAverager,
    NoiseAwareAverager,
    OverlapRatioStitcher,
    Stitcher,
    averager_names,
    make_averager,
    make_stitcher,
    stitcher_factory,
    stitcher_names,
)
from repro.core.progress import (
    FaultStats,
    FramesDropped,
    ProgressEvent,
    ProgressListener,
    ProgressLog,
    text_listener,
)
from repro.core.series import HourlyTimeline
from repro.core.spikes import Spike, SpikeSet
from repro.core.stitching import StitchReport, estimate_ratio, naive_concatenation, stitch_frames

__all__ = [
    "AreaConfig",
    "Averager",
    "AveragingConfig",
    "AveragingResult",
    "CalibratedStitcher",
    "ContextConfig",
    "DetectionConfig",
    "FaultStats",
    "FrameSource",
    "FramesDropped",
    "HeavyHitterAnalyzer",
    "HourlyTimeline",
    "MeanAverager",
    "MissingFrame",
    "NoiseAwareAverager",
    "Outage",
    "OverlapRatioStitcher",
    "PhraseClusterer",
    "ProgressEvent",
    "ProgressListener",
    "ProgressLog",
    "RankedSuggestion",
    "RisingCache",
    "Sift",
    "SiftConfig",
    "Spike",
    "SpikeBounds",
    "SpikeSet",
    "SpikeAnnotator",
    "StateResult",
    "StitchReport",
    "Stitcher",
    "StudyCheckpoint",
    "StudyResult",
    "average_until_convergence",
    "averager_names",
    "detect_bounds",
    "detect_spikes",
    "estimate_ratio",
    "footprint_distribution",
    "group_outages",
    "make_averager",
    "make_stitcher",
    "most_extensive",
    "naive_concatenation",
    "phrase_similarity",
    "rank_suggestions",
    "stitch_frames",
    "stitcher_factory",
    "stitcher_names",
    "text_listener",
    "tokenize",
]
