"""Spike detection via the paper's topographic-prominence walk.

Classic changepoint detectors need a known event distribution, which
Internet outages lack, so SIFT characterizes spikes geometrically
(paper §3.3): starting from the highest remaining peak,

* walk **forward** block by block until the current block drops below
  half the previous block's value, or to zero — that block ends the
  spike;
* walk **backward** from the peak until a zero block or the endpoint of
  an already-extracted spike — that bounds the spike's start.

Extracted blocks are claimed so successive peaks of the same surge are
not recounted as separate spikes; detection repeats with the next
highest unclaimed peak until peaks fall below a noise floor.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.series import HourlyTimeline
from repro.core.spikes import Spike
from repro.errors import DetectionError


@dataclasses.dataclass(frozen=True, slots=True)
class DetectionConfig:
    """Tunables of the prominence walk."""

    #: A block ends the spike when it falls below this fraction of the
    #: previous block (the paper uses one half).
    half_ratio: float = 0.5
    #: Noise floor: peaks must *exceed* this value to count as spikes.
    #: The default 0 accepts every strictly-positive peak — faithful to
    #: the paper, where even single privacy-threshold blips are spikes,
    #: and crucially scale-invariant: spike detection must not depend on
    #: how stitching-ratio noise scaled a region of the global series.
    min_peak: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.half_ratio < 1.0:
            raise DetectionError(f"half_ratio must be in (0, 1): {self.half_ratio}")
        if self.min_peak < 0:
            raise DetectionError(f"min_peak must be >= 0: {self.min_peak}")


@dataclasses.dataclass(frozen=True, slots=True)
class SpikeBounds:
    """Index-space result of one walk: ``start <= peak <= end``."""

    start: int
    peak: int
    end: int

    @property
    def duration_hours(self) -> int:
        """Blocks of user interest, inclusive of both endpoints."""
        return self.end - self.start + 1


def walk_forward(values: np.ndarray, peak: int, claimed: np.ndarray, half_ratio: float) -> int:
    """Forward walk from *peak*: last block still part of the spike.

    The walk includes every block while interest decays gently (ratio
    above *half_ratio*); the paper's "point" where a block falls below
    half of its predecessor marks the ending — that block *belongs* to
    the spike, as does the rest of the free-fall while each block keeps
    dropping below half again.  Claiming the whole cliff matters:
    otherwise the residue of a sharp spike would be re-counted as a
    separate (phantom) spike on the next detector iteration.
    """
    end = peak
    while end + 1 < values.size and not claimed[end + 1]:
        following = values[end + 1]
        if following <= 0:
            return end
        if following < half_ratio * values[end]:
            # The ending point: consume the remainder of the cliff.
            end += 1
            while (
                end + 1 < values.size
                and not claimed[end + 1]
                and 0 < values[end + 1] < half_ratio * values[end]
            ):
                end += 1
            return end
        end += 1
    return end


def walk_backward(values: np.ndarray, peak: int, claimed: np.ndarray) -> int:
    """Backward walk from *peak*: first block of the spike."""
    start = peak
    while start - 1 >= 0 and not claimed[start - 1]:
        if values[start - 1] <= 0:
            break
        start -= 1
    return start


def detect_bounds(
    values: np.ndarray, config: DetectionConfig | None = None
) -> list[SpikeBounds]:
    """All spike bounds in *values*, in descending peak order."""
    config = config or DetectionConfig()
    if values.ndim != 1:
        raise DetectionError("detection expects a 1-D series")
    if values.size == 0:
        return []
    if not np.isfinite(values).all():
        raise DetectionError("series contains non-finite values")
    claimed = np.zeros(values.size, dtype=bool)
    working = values.astype(np.float64).copy()
    spikes: list[SpikeBounds] = []
    # Values never change during extraction, so the candidate peaks can
    # be visited in one pre-sorted pass (ties broken by earliest index,
    # matching repeated argmax) instead of re-scanning the whole series
    # for every spike.
    order = np.argsort(-working, kind="stable")
    for peak in order:
        peak = int(peak)
        if claimed[peak]:
            continue
        if working[peak] <= config.min_peak:
            break
        end = walk_forward(working, peak, claimed, config.half_ratio)
        start = walk_backward(working, peak, claimed)
        claimed[start : end + 1] = True
        spikes.append(SpikeBounds(start=start, peak=peak, end=end))
    return spikes


def detect_spikes(
    timeline: HourlyTimeline, config: DetectionConfig | None = None
) -> list[Spike]:
    """Detect spikes on a timeline and attach wall-clock metadata.

    Spikes come back ordered by magnitude (highest first); the
    ``magnitude_rank`` field is 1-based within this timeline, matching
    the paper's "2nd out of 3" style reporting.
    """
    bounds = detect_bounds(timeline.values, config)
    spikes = []
    for rank, bound in enumerate(bounds, start=1):
        spikes.append(
            Spike(
                term=timeline.term,
                geo=timeline.geo,
                start=timeline.time_at(bound.start),
                peak=timeline.time_at(bound.peak),
                end=timeline.time_at(bound.end),
                magnitude=float(timeline.values[bound.peak]),
                magnitude_rank=rank,
            )
        )
    return spikes
