"""Stitching piecewise-normalized frames into one continuous series.

Google Trends indexes every frame against its own maximum (paper §2),
so two frames of the same signal live on unrelated scales.  SIFT's
reconstruction (paper §3.2) exploits the deliberate *overlap* between
consecutive weekly frames: the shared hours appear in both frames, so
the ratio between the two renditions recovers the relative scale.  Each
next frame is rescaled by that ratio and appended; a final global
renormalization maps the continuous series back onto 0-100.

Practical wrinkles handled here that the paper glosses over:

* an overlap can be all-zero on one side (privacy rounding) — the
  stitcher then carries the last trustworthy ratio forward and records
  the fact in :class:`StitchReport`;
* sampling noise makes per-hour ratios jumpy — the estimate uses the
  sums over the overlap, which is the least-squares scale through the
  origin weighted by the signal itself.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.series import HourlyTimeline
from repro.errors import StitchingError
from repro.timeutil import hour_index
from repro.trends.records import TimeFrameResponse


@dataclasses.dataclass(frozen=True, slots=True)
class StitchReport:
    """Diagnostics from one stitching run."""

    frames: int
    carried_ratios: int  # overlaps where the ratio had to be carried forward
    ratios: tuple[float, ...]  # scale applied to each appended frame
    #: Indices into ``ratios`` that are *not* fresh estimates: silent
    #: overlaps that fell back to the neutral ratio, and contained
    #: frames that repeated the last trusted ratio.  These mark where
    #: the calibration chain lost trust.
    carried_positions: tuple[int, ...] = ()

    @property
    def ratio_spread(self) -> float:
        """Max/min freshly-estimated ratio — a calibration-drift indicator.

        Carried positions are excluded: a carried ratio repeats a stale
        (or neutral) value, so counting it would mask real drift — a
        chain whose every estimate is 4.0 but with one silent-overlap
        1.0 fallback would report a spurious spread of 4.
        """
        if not self.ratios:
            return 1.0
        carried = set(self.carried_positions)
        positive = [
            ratio
            for position, ratio in enumerate(self.ratios)
            if ratio > 0 and position not in carried
        ]
        if not positive:
            return 1.0
        return max(positive) / min(positive)

    def to_dict(self) -> dict:
        """JSON-ready form (checkpoint metadata, ``/api/runtime``)."""
        return {
            "frames": self.frames,
            "carried_ratios": self.carried_ratios,
            "ratios": list(self.ratios),
            "carried_positions": list(self.carried_positions),
            "ratio_spread": self.ratio_spread,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StitchReport":
        """Rebuild a report persisted with :meth:`to_dict`."""
        return cls(
            frames=int(payload.get("frames", 0)),
            carried_ratios=int(payload.get("carried_ratios", 0)),
            ratios=tuple(float(ratio) for ratio in payload.get("ratios", ())),
            carried_positions=tuple(
                int(position) for position in payload.get("carried_positions", ())
            ),
        )


#: Additive smoothing on overlap sums: bounds the ratio noise injected
#: by near-empty overlaps (one stray privacy-threshold blip would
#: otherwise swing the chain by an order of magnitude).
_RATIO_SMOOTHING = 1.0

#: Sanity bounds on a single inter-frame ratio.  Real consecutive GT
#: frames of the same signal never differ by more than the dynamic
#: range of the index itself.
_RATIO_CLAMP = 100.0


def estimate_ratio(
    previous_overlap: np.ndarray, next_overlap: np.ndarray
) -> float | None:
    """Scale ratio mapping *next_overlap* onto *previous_overlap*.

    The estimate is the smoothed quotient of the overlap sums — the
    signal-weighted least-squares scale through the origin, with
    additive smoothing so near-empty overlaps cannot inject wild
    ratios, clamped to a sane dynamic range.

    Returns ``None`` when the overlap carries no signal on either side;
    two all-zero renditions say nothing about relative scale, and the
    caller should fall back to the neutral ratio 1 (both frames are
    indexed against their own maxima, so "same scale" is the unbiased
    default — carrying a previous, signal-derived ratio forward would
    compound drift through quiet regions).
    """
    if previous_overlap.shape != next_overlap.shape:
        raise StitchingError(
            f"overlap shapes differ: {previous_overlap.shape} vs {next_overlap.shape}"
        )
    if previous_overlap.size == 0:
        raise StitchingError("empty overlap between consecutive frames")
    next_sum = float(next_overlap.sum())
    previous_sum = float(previous_overlap.sum())
    if next_sum <= 0 and previous_sum <= 0:
        return None
    ratio = (previous_sum + _RATIO_SMOOTHING) / (next_sum + _RATIO_SMOOTHING)
    return float(np.clip(ratio, 1.0 / _RATIO_CLAMP, _RATIO_CLAMP))


def stitch_frames(
    responses: list[TimeFrameResponse] | tuple[TimeFrameResponse, ...],
    renormalize: bool = True,
) -> tuple[HourlyTimeline, StitchReport]:
    """Reconstruct a continuous timeline from overlapping frame responses.

    Frames must be sorted by start time, pairwise overlapping, and all
    for the same (term, geo).  Returns the stitched (and by default
    globally renormalized) timeline plus stitching diagnostics.

    This is the batch form of the default backend — a thin wrapper
    feeding every frame through a fresh
    :class:`repro.core.reconstruct.OverlapRatioStitcher`.  Alternate
    backends are selected through the strategy registry
    (:mod:`repro.core.reconstruct`), not here.
    """
    # Deferred: the stitchers module imports this one for StitchReport
    # and estimate_ratio.
    from repro.core.reconstruct.stitchers import OverlapRatioStitcher

    if not responses:
        raise StitchingError("no frames to stitch")
    stitcher = OverlapRatioStitcher()
    for response in responses:
        stitcher.feed(response)
    return stitcher.finalize(renormalize=renormalize)


def naive_concatenation(
    responses: list[TimeFrameResponse] | tuple[TimeFrameResponse, ...],
) -> HourlyTimeline:
    """Concatenate frames *without* overlap rescaling (ablation baseline).

    This is what a crawler that ignores piecewise normalization would
    produce; the stitching ablation benchmark contrasts it with
    :func:`stitch_frames` against ground truth.
    """
    if not responses:
        raise StitchingError("no frames to concatenate")
    origin = responses[0].window.start
    pieces = [responses[0].values.astype(np.float64)]
    size = responses[0].values.size
    for current in responses[1:]:
        offset = hour_index(origin, current.window.start)
        overlap = size - offset
        if overlap < 0:
            raise StitchingError("frames are not contiguous")
        pieces.append(current.values[overlap:].astype(np.float64))
        size += current.values.size - overlap
    return HourlyTimeline(
        term=responses[0].request.term,
        geo=responses[0].request.geo,
        start=origin,
        values=np.concatenate(pieces),
    )
