"""Spike records and collections.

A :class:`Spike` is SIFT's unit of finding: one surge of user interest
in one geography, with start/peak/end times, magnitude on the
geography's global 0-100 scale, duration, and (once the context stage
has run) annotation terms.  :class:`SpikeSet` is the analysis-friendly
container used by every evaluation module.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Iterable, Iterator
from datetime import datetime, timedelta

import numpy as np

from repro.errors import DetectionError
from repro.timeutil import ensure_grid, format_spike_time


@dataclasses.dataclass(frozen=True, slots=True)
class Spike:
    """One detected surge of user interest."""

    term: str
    geo: str  # "US-TX" style geography the spike was detected in
    start: datetime
    peak: datetime
    end: datetime
    magnitude: float  # peak value on the global 0-100 scale
    magnitude_rank: int = 0  # 1-based rank within the geography (0 = unranked)
    annotations: tuple[str, ...] = ()  # context terms, most relevant first

    def __post_init__(self) -> None:
        ensure_grid(self.start)
        ensure_grid(self.peak)
        ensure_grid(self.end)
        if not self.start <= self.peak <= self.end:
            raise DetectionError(
                f"spike ordering violated: {self.start} <= {self.peak} <= {self.end}"
            )
        if self.magnitude < 0:
            raise DetectionError(f"magnitude must be >= 0: {self.magnitude}")

    @property
    def state(self) -> str:
        """Two-letter state code extracted from the geography."""
        return self.geo.removeprefix("US-")

    @property
    def duration_hours(self) -> int:
        """Hours of user interest, inclusive of start and end blocks."""
        return int((self.end - self.start).total_seconds() // 3600) + 1

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``15 Feb. 2021-10h``."""
        return format_spike_time(self.start)

    def annotated(self, annotations: tuple[str, ...]) -> "Spike":
        return dataclasses.replace(self, annotations=annotations)

    def has_annotation(self, names: Iterable[str]) -> bool:
        wanted = set(names)
        return any(annotation in wanted for annotation in self.annotations)

    def to_dict(self) -> dict:
        return {
            "term": self.term,
            "geo": self.geo,
            "start": self.start.isoformat(),
            "peak": self.peak.isoformat(),
            "end": self.end.isoformat(),
            "magnitude": self.magnitude,
            "magnitude_rank": self.magnitude_rank,
            "annotations": list(self.annotations),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Spike":
        return cls(
            term=data["term"],
            geo=data["geo"],
            start=datetime.fromisoformat(data["start"]),
            peak=datetime.fromisoformat(data["peak"]),
            end=datetime.fromisoformat(data["end"]),
            magnitude=float(data["magnitude"]),
            magnitude_rank=int(data.get("magnitude_rank", 0)),
            annotations=tuple(data.get("annotations", ())),
        )


class SpikeSet:
    """An immutable, analysis-friendly collection of spikes."""

    def __init__(self, spikes: Iterable[Spike]) -> None:
        self._spikes = tuple(sorted(spikes, key=lambda s: (s.peak, s.geo)))

    def __len__(self) -> int:
        return len(self._spikes)

    def __iter__(self) -> Iterator[Spike]:
        return iter(self._spikes)

    def __getitem__(self, index: int) -> Spike:
        return self._spikes[index]

    @property
    def spikes(self) -> tuple[Spike, ...]:
        return self._spikes

    # -- filters ----------------------------------------------------------------

    def filter(self, predicate: Callable[[Spike], bool]) -> "SpikeSet":
        return SpikeSet(spike for spike in self._spikes if predicate(spike))

    def in_state(self, state: str) -> "SpikeSet":
        code = state.removeprefix("US-")
        return self.filter(lambda spike: spike.state == code)

    def in_year(self, year: int) -> "SpikeSet":
        return self.filter(lambda spike: spike.peak.year == year)

    def at_least_hours(self, hours: int) -> "SpikeSet":
        return self.filter(lambda spike: spike.duration_hours >= hours)

    def with_annotation(self, names: Iterable[str]) -> "SpikeSet":
        wanted = tuple(names)
        return self.filter(lambda spike: spike.has_annotation(wanted))

    # -- aggregate views -----------------------------------------------------------

    def durations(self) -> np.ndarray:
        return np.array([spike.duration_hours for spike in self._spikes], dtype=np.int64)

    def magnitudes(self) -> np.ndarray:
        return np.array([spike.magnitude for spike in self._spikes], dtype=np.float64)

    def states(self) -> tuple[str, ...]:
        return tuple(spike.state for spike in self._spikes)

    def count_by_state(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for spike in self._spikes:
            counts[spike.state] = counts.get(spike.state, 0) + 1
        return counts

    def top_by_duration(self, count: int) -> tuple[Spike, ...]:
        ranked = sorted(
            self._spikes, key=lambda s: (s.duration_hours, s.magnitude), reverse=True
        )
        return tuple(ranked[:count])

    def merged_with(self, other: "SpikeSet") -> "SpikeSet":
        return SpikeSet((*self._spikes, *other.spikes))

    # -- comparison (used by averaging convergence) ------------------------------

    def peak_signature(self) -> frozenset[tuple[str, datetime]]:
        """Identity of the set for convergence checks: (geo, peak hour)."""
        return frozenset((spike.geo, spike.peak) for spike in self._spikes)

    def jaccard_similarity(self, other: "SpikeSet") -> float:
        """Jaccard index between the two sets' peak signatures."""
        mine = self.peak_signature()
        theirs = other.peak_signature()
        if not mine and not theirs:
            return 1.0
        union = mine | theirs
        return len(mine & theirs) / len(union)

    def match_similarity(self, other: "SpikeSet", tolerance_hours: int = 2) -> float:
        """Jaccard-style similarity with peak-time tolerance.

        Two spikes match when they share a geography and their peaks
        are at most *tolerance_hours* apart; matching is greedy in time
        order, each spike used at most once.  This is the convergence
        metric for iterative averaging: sampling noise jitters a peak
        by an hour without making it a different spike.
        """
        if len(self) == 0 and len(other) == 0:
            return 1.0
        matched = 0
        mine_by_geo: dict[str, list[Spike]] = {}
        for spike in self._spikes:
            mine_by_geo.setdefault(spike.geo, []).append(spike)
        window = timedelta(hours=tolerance_hours)
        for geo, theirs in _group_by_geo(other).items():
            mine = mine_by_geo.get(geo, [])
            i = 0
            for candidate in theirs:
                while i < len(mine) and candidate.peak - mine[i].peak > window:
                    i += 1
                if i < len(mine) and abs(mine[i].peak - candidate.peak) <= window:
                    matched += 1
                    i += 1
        union = len(self) + len(other) - matched
        return matched / union if union else 1.0

    def weighted_match_similarity(
        self, other: "SpikeSet", tolerance_hours: int = 2
    ) -> float:
        """Magnitude-weighted match similarity.

        Like :meth:`match_similarity`, but each spike counts with its
        magnitude, so flickering privacy-threshold blips (magnitude ~1
        on the global scale) cannot hold convergence hostage while the
        actual spike picture is stable — which is how the paper's
        six-round convergence behaves in practice.
        """
        total = float(sum(s.magnitude for s in self) + sum(s.magnitude for s in other))
        if total <= 0:
            return 1.0
        matched_weight = 0.0
        mine_by_geo = _group_by_geo(self)
        window = timedelta(hours=tolerance_hours)
        for geo, theirs in _group_by_geo(other).items():
            mine = mine_by_geo.get(geo, [])
            i = 0
            for candidate in theirs:
                while i < len(mine) and candidate.peak - mine[i].peak > window:
                    i += 1
                if i < len(mine) and abs(mine[i].peak - candidate.peak) <= window:
                    matched_weight += mine[i].magnitude + candidate.magnitude
                    i += 1
        return matched_weight / total


def _group_by_geo(spikes: "SpikeSet") -> dict[str, list[Spike]]:
    grouped: dict[str, list[Spike]] = {}
    for spike in spikes:
        grouped.setdefault(spike.geo, []).append(spike)
    return grouped
