"""Continuous hourly time series: the object SIFT's stages pass around.

A :class:`HourlyTimeline` is a calibrated, real-valued series of search
interest for one (term, geo) pair over an arbitrary span — the output
of stitching and averaging, the input of spike detection.  Values are
floats because stitching rescales frames by fractional ratios; the
globally renormalized series maps its maximum to 100.0 like the
service's per-frame indexing does.
"""

from __future__ import annotations

import dataclasses
from datetime import datetime

import numpy as np

from repro.errors import DetectionError
from repro.timeutil import TimeWindow, hour_at, hour_index


@dataclasses.dataclass(frozen=True)
class HourlyTimeline:
    """A continuous, hour-resolution interest series for (term, geo)."""

    term: str
    geo: str
    start: datetime
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.values.ndim != 1 or self.values.size == 0:
            raise DetectionError("timeline values must be a non-empty 1-D array")
        if not np.isfinite(self.values).all():
            raise DetectionError("timeline values must be finite")
        if (self.values < 0).any():
            raise DetectionError("timeline values must be non-negative")

    # -- geometry -------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def window(self) -> TimeWindow:
        return TimeWindow(self.start, hour_at(self.start, len(self)))

    @property
    def end(self) -> datetime:
        return hour_at(self.start, len(self))

    def time_at(self, index: int) -> datetime:
        if not 0 <= index < len(self):
            raise IndexError(f"hour index {index} out of range 0..{len(self) - 1}")
        return hour_at(self.start, index)

    def index_of(self, moment: datetime) -> int:
        index = hour_index(self.start, moment)
        if not 0 <= index < len(self):
            raise IndexError(f"{moment} outside timeline {self.start}..{self.end}")
        return index

    # -- transformations -------------------------------------------------------

    def slice(self, window: TimeWindow) -> "HourlyTimeline":
        """The sub-timeline covering *window* (must lie inside)."""
        lo = self.index_of(window.start)
        hi = lo + window.hours
        if hi > len(self):
            raise IndexError(f"window {window} extends past timeline end")
        return HourlyTimeline(
            term=self.term,
            geo=self.geo,
            start=window.start,
            values=self.values[lo:hi].copy(),
        )

    def renormalized(self, top: float = 100.0) -> "HourlyTimeline":
        """Globally rescale so the series maximum equals *top*.

        This is SIFT's final renormalization step (paper §3.2): after
        stitching, the series is indexed 0-100 on a *global* scale so
        spike magnitudes become comparable within the geography.
        """
        peak = float(self.values.max())
        values = self.values * (top / peak) if peak > 0 else self.values.copy()
        return HourlyTimeline(self.term, self.geo, self.start, values)

    def with_values(self, values: np.ndarray) -> "HourlyTimeline":
        return HourlyTimeline(self.term, self.geo, self.start, values)

    # -- summaries ---------------------------------------------------------------

    @property
    def peak_value(self) -> float:
        return float(self.values.max())

    @property
    def nonzero_hours(self) -> int:
        return int((self.values > 0).sum())

    def describe(self) -> str:
        return (
            f"<{self.term}> in {self.geo}: {len(self)} hours from "
            f"{self.start:%Y-%m-%d %H:%M}, peak {self.peak_value:.1f}, "
            f"{self.nonzero_hours} non-zero hours"
        )
