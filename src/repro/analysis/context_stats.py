"""Context analysis statistics (paper §4.3, Fig. 6 and Table 3).

Everything here keys off spike annotations: power-relatedness means the
spike carries a ``<Power outage>``-family annotation, exactly how the
paper identifies the climate/power theme behind long outages.
"""

from __future__ import annotations

import dataclasses

from repro.core.spikes import Spike, SpikeSet
from repro.world.catalog import POWER_TERMS


def power_annotated(spikes: SpikeSet) -> SpikeSet:
    """Spikes carrying a power-related annotation."""
    return spikes.with_annotation(POWER_TERMS)


def monthly_power_long_spikes(
    spikes: SpikeSet, min_hours: int = 5
) -> dict[tuple[int, int], int]:
    """Fig. 6: per (year, month) count of power-annotated spikes >= 5 h."""
    longest = power_annotated(spikes.at_least_hours(min_hours))
    counts: dict[tuple[int, int], int] = {}
    for spike in longest:
        key = (spike.peak.year, spike.peak.month)
        counts[key] = counts.get(key, 0) + 1
    return dict(sorted(counts.items()))


def power_share_of_long_spikes(spikes: SpikeSet, min_hours: int = 5) -> float:
    """Share of >= *min_hours* spikes that are power-annotated (paper: 73%)."""
    longest = spikes.at_least_hours(min_hours)
    if len(longest) == 0:
        return 0.0
    return len(power_annotated(longest)) / len(longest)


def long_spike_share(spikes: SpikeSet, min_hours: int = 5) -> float:
    """Share of all spikes lasting >= *min_hours* (paper: top 3.5%)."""
    if len(spikes) == 0:
        return 0.0
    return len(spikes.at_least_hours(min_hours)) / len(spikes)


@dataclasses.dataclass(frozen=True, slots=True)
class PowerRow:
    """One row of Table 3."""

    spike: Spike

    @property
    def label(self) -> str:
        return self.spike.label

    @property
    def state(self) -> str:
        return self.spike.state

    @property
    def duration_hours(self) -> int:
        return self.spike.duration_hours

    @property
    def cause_hint(self) -> str:
        """The most cause-like annotation (weather/power term if any)."""
        for annotation in self.spike.annotations:
            if annotation in _WEATHER_HINTS:
                return annotation
        for annotation in self.spike.annotations:
            if annotation in POWER_TERMS:
                return annotation
        return self.spike.annotations[0] if self.spike.annotations else "(none)"


_WEATHER_HINTS = frozenset(
    {"Winter storm", "Thunderstorm", "Heat wave", "Wildfire", "Hurricane", "Tornado"}
)


def top_power_outages_by_state(
    spikes: SpikeSet, count: int = 7
) -> list[PowerRow]:
    """Table 3: the most impactful power-annotated spike per state.

    States rank by their longest power spike; at most one row per state,
    like the paper's table of distinct states.
    """
    best_per_state: dict[str, Spike] = {}
    for spike in power_annotated(spikes):
        current = best_per_state.get(spike.state)
        if current is None or spike.duration_hours > current.duration_hours:
            best_per_state[spike.state] = spike
    ranked = sorted(
        best_per_state.values(),
        key=lambda spike: (spike.duration_hours, spike.magnitude),
        reverse=True,
    )
    return [PowerRow(spike) for spike in ranked[:count]]
