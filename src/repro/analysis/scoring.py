"""Shared detection-quality scoring: one vocabulary for every benchmark.

Before this module, ``bench_detection_quality`` and
``bench_reconstruction_quality`` each computed their own ad-hoc metrics
inline.  This is the promoted, unit-tested version: spike-level quality
(precision / recall / strong-impact recall / detection delay / duration
fidelity) built on :func:`repro.analysis.validation.validate_study`,
plus grouped-outage F1 (did the area stage recover multi-state events
as multi-state outages?), and :func:`score_study` bundling both for the
scenario-pack benchmark and the ``repro scenarios score`` CLI.

All metrics are properties of a seeded scenario, never of the machine,
so benchmark floors built on them are portable across CI hardware by
construction.
"""

from __future__ import annotations

import dataclasses
from datetime import timedelta
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.analysis.validation import ValidationReport, validate_study
from repro.core.area import Outage
from repro.core.spikes import SpikeSet
from repro.world.events import OutageEvent
from repro.world.scenarios import Scenario
from repro.world.states import get_state

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pipeline import StudyResult

#: An impact at or above this intensity is unambiguously detectable —
#: the threshold the paper-calibrated benches already used for recall.
STRONG_INTENSITY = 5.0

#: Ground-truth events spanning at least this many (studied) states
#: should surface as grouped multi-state outages.
GROUP_FOOTPRINT = 3

#: Slack when matching a predicted outage to a truth event: grouping is
#: anchored on peak proximity, so allow the anchor to drift a few hours
#: past the event's own interest window.
_GROUP_SLACK = timedelta(hours=6)


def detection_delays(report: ValidationReport) -> np.ndarray:
    """Hours from impact onset to detected spike start, one per hit.

    Negative raw deltas (the detector's walk can open a spike on the
    pre-onset shoulder) clip to zero: "detected before it began" is a
    zero-delay detection, not negative latency.
    """
    delays = [
        max(0.0, (m.spike.start - m.impact.onset).total_seconds() / 3600.0)
        for m in report.matches
        if m.detected
    ]
    return np.array(delays, dtype=np.float64)


@dataclasses.dataclass(frozen=True, slots=True)
class SpikeQuality:
    """Spike-level detection quality against ground truth."""

    precision: float  # share of spikes explained by a GT impact
    recall: float  # share of GT impacts detected (any intensity)
    recall_strong: float  # recall over impacts with intensity >= threshold
    detected_strong: int
    total_strong: int
    mean_detection_delay_hours: float
    mean_abs_duration_error_hours: float
    total_spikes: int
    total_impacts: int

    def to_dict(self) -> dict:
        return {
            "precision": round(self.precision, 4),
            "recall": round(self.recall, 4),
            "recall_strong": round(self.recall_strong, 4),
            "detected_strong": self.detected_strong,
            "total_strong": self.total_strong,
            "mean_detection_delay_hours": round(
                self.mean_detection_delay_hours, 4
            ),
            "mean_abs_duration_error_hours": round(
                self.mean_abs_duration_error_hours, 4
            ),
            "total_spikes": self.total_spikes,
            "total_impacts": self.total_impacts,
        }


def score_spikes(
    spikes: SpikeSet,
    scenario: Scenario,
    *,
    states: Iterable[str] | None = None,
    strong_intensity: float = STRONG_INTENSITY,
) -> SpikeQuality:
    """Spike-level quality of a study against its scenario.

    *states* restricts the ground truth to the studied state codes so
    partial studies are not charged for impacts they never fetched.
    """
    state_filter = frozenset(states) if states is not None else None
    report = validate_study(spikes, scenario, states=state_filter)
    strong = [m for m in report.matches if m.impact.intensity >= strong_intensity]
    detected_strong = sum(1 for m in strong if m.detected)
    delays = detection_delays(report)
    return SpikeQuality(
        precision=report.precision,
        recall=report.recall,
        recall_strong=detected_strong / len(strong) if strong else 1.0,
        detected_strong=detected_strong,
        total_strong=len(strong),
        mean_detection_delay_hours=float(delays.mean()) if delays.size else 0.0,
        mean_abs_duration_error_hours=report.mean_absolute_duration_error,
        total_spikes=report.total_spikes,
        total_impacts=len(report.matches),
    )


@dataclasses.dataclass(frozen=True, slots=True)
class GroupedOutageQuality:
    """Did grouping recover multi-state events as multi-state outages?"""

    precision: float  # share of predicted groups matching a truth event
    recall: float  # share of truth events recovered as a group
    f1: float
    matched: int
    truth_events: int
    predicted_outages: int

    def to_dict(self) -> dict:
        return {
            "precision": round(self.precision, 4),
            "recall": round(self.recall, 4),
            "f1": round(self.f1, 4),
            "matched": self.matched,
            "truth_events": self.truth_events,
            "predicted_outages": self.predicted_outages,
        }


def _studied_footprint(
    event: OutageEvent, states: frozenset[str] | None
) -> frozenset[str]:
    codes = frozenset(event.states)
    return codes if states is None else codes & states


def score_grouped_outages(
    outages: Iterable[Outage],
    scenario: Scenario,
    *,
    states: Iterable[str] | None = None,
    min_footprint: int = GROUP_FOOTPRINT,
) -> GroupedOutageQuality:
    """Grouped-outage F1 against the scenario's multi-state events.

    A truth event counts when at least *min_footprint* of its impacts
    fall on studied states; a predicted outage counts at the same
    footprint bar.  Greedy one-to-one matching: a prediction matches an
    event when its anchor peak lies inside the event's padded interest
    window and the two share at least two states.
    """
    state_filter = frozenset(states) if states is not None else None
    truths: list[tuple[OutageEvent, frozenset[str]]] = []
    for event in scenario.events:
        footprint = _studied_footprint(event, state_filter)
        if len(footprint) >= min_footprint:
            truths.append((event, footprint))
    predictions = [
        outage for outage in outages if outage.footprint >= min_footprint
    ]

    used: set[int] = set()
    matched = 0
    for event, footprint in truths:
        lo = event.start - _GROUP_SLACK
        hi = event.end + _GROUP_SLACK
        for index, outage in enumerate(predictions):
            if index in used:
                continue
            if not lo <= outage.peak <= hi:
                continue
            if len(outage.states & footprint) < 2:
                continue
            used.add(index)
            matched += 1
            break

    precision = matched / len(predictions) if predictions else 1.0
    recall = matched / len(truths) if truths else 1.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return GroupedOutageQuality(
        precision=precision,
        recall=recall,
        f1=f1,
        matched=matched,
        truth_events=len(truths),
        predicted_outages=len(predictions),
    )


@dataclasses.dataclass(frozen=True, slots=True)
class ScenarioScore:
    """The bundled per-study scorecard the scenario pack reports."""

    spikes: SpikeQuality
    outages: GroupedOutageQuality

    def to_dict(self) -> dict:
        return {"spikes": self.spikes.to_dict(), "outages": self.outages.to_dict()}


def score_study(
    study: "StudyResult",
    scenario: Scenario,
    *,
    strong_intensity: float = STRONG_INTENSITY,
    min_footprint: int = GROUP_FOOTPRINT,
) -> ScenarioScore:
    """Score a finished study against its scenario's ground truth.

    The studied states are taken from the study itself, so the caller
    never has to repeat the geo list.
    """
    states = frozenset(get_state(geo).code for geo in study.states)
    return ScenarioScore(
        spikes=score_spikes(
            study.spikes,
            scenario,
            states=states,
            strong_intensity=strong_intensity,
        ),
        outages=score_grouped_outages(
            study.outages,
            scenario,
            states=states,
            min_footprint=min_footprint,
        ),
    )
