"""Evaluation analytics: the paper's figures and tables as functions."""

from repro.analysis.area_stats import (
    ExtensiveRow,
    FootprintCdf,
    footprint_cdf,
    mean_footprint,
    most_extensive_table,
)
from repro.analysis.context_stats import (
    PowerRow,
    long_spike_share,
    monthly_power_long_spikes,
    power_annotated,
    power_share_of_long_spikes,
    top_power_outages_by_state,
)
from repro.analysis.daily import DAY_NAMES, DailyDistribution, daily_distribution
from repro.analysis.impact import (
    DurationCdf,
    ImpactRow,
    StateCdf,
    duration_cdf,
    long_lasting_ratio,
    most_impactful,
    state_cdf,
    yearly_counts,
)
from repro.analysis.export import export_study
from repro.analysis.scoring import (
    GroupedOutageQuality,
    ScenarioScore,
    SpikeQuality,
    detection_delays,
    score_grouped_outages,
    score_spikes,
    score_study,
)
from repro.analysis.validation import ImpactMatch, ValidationReport, validate_study
from repro.analysis.reporting import (
    paper_vs_measured,
    render_bars,
    render_cdf,
    render_table,
    render_timeline,
)

__all__ = [
    "DAY_NAMES",
    "DailyDistribution",
    "DurationCdf",
    "ExtensiveRow",
    "FootprintCdf",
    "ImpactRow",
    "PowerRow",
    "StateCdf",
    "daily_distribution",
    "duration_cdf",
    "footprint_cdf",
    "long_lasting_ratio",
    "long_spike_share",
    "mean_footprint",
    "monthly_power_long_spikes",
    "most_extensive_table",
    "most_impactful",
    "paper_vs_measured",
    "power_annotated",
    "power_share_of_long_spikes",
    "render_bars",
    "render_cdf",
    "render_table",
    "render_timeline",
    "state_cdf",
    "top_power_outages_by_state",
    "yearly_counts",
    "GroupedOutageQuality",
    "ImpactMatch",
    "ScenarioScore",
    "SpikeQuality",
    "ValidationReport",
    "detection_delays",
    "score_grouped_outages",
    "score_spikes",
    "score_study",
    "validate_study",
    "export_study",
]
