"""Impact analysis: magnitude/duration indicators (paper §4.1).

Duration is the paper's inter-state impact metric (magnitudes are
normalized per state and thus not comparable across states); this
module produces the two cumulative-frequency views of Fig. 3 and the
most-impactful-spikes ranking of Table 1.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.spikes import Spike, SpikeSet


@dataclasses.dataclass(frozen=True)
class StateCdf:
    """Fig. 3 (left): spike share by ranked state."""

    states: tuple[str, ...]  # descending by spike count
    counts: np.ndarray  # spikes per ranked state
    cumulative: np.ndarray  # cumulative fraction of all spikes

    def share_of_top(self, top_n: int) -> float:
        """Fraction of all spikes hosted by the *top_n* busiest states."""
        if top_n <= 0 or self.cumulative.size == 0:
            return 0.0
        return float(self.cumulative[min(top_n, self.cumulative.size) - 1])


def state_cdf(spikes: SpikeSet) -> StateCdf:
    """Rank states by spike count and accumulate their share."""
    counts = spikes.count_by_state()
    ranked = sorted(counts.items(), key=lambda item: item[1], reverse=True)
    states = tuple(code for code, _ in ranked)
    values = np.array([count for _, count in ranked], dtype=np.float64)
    total = values.sum()
    cumulative = np.cumsum(values) / total if total else np.zeros_like(values)
    return StateCdf(states=states, counts=values.astype(np.int64), cumulative=cumulative)


@dataclasses.dataclass(frozen=True)
class DurationCdf:
    """Fig. 3 (right): cumulative distribution of spike durations."""

    hours: np.ndarray  # sorted distinct durations
    cumulative: np.ndarray  # fraction of spikes with duration <= hours

    def fraction_at_least(self, hours: int) -> float:
        """Share of spikes lasting at least *hours* (paper: 10% >= 3 h)."""
        below = self.hours < hours
        if not below.any():
            return 1.0
        index = int(np.max(np.nonzero(below)))
        return float(1.0 - self.cumulative[index])


def duration_cdf(spikes: SpikeSet) -> DurationCdf:
    durations = spikes.durations()
    if durations.size == 0:
        return DurationCdf(hours=np.array([]), cumulative=np.array([]))
    values, counts = np.unique(durations, return_counts=True)
    cumulative = np.cumsum(counts) / durations.size
    return DurationCdf(hours=values, cumulative=cumulative)


@dataclasses.dataclass(frozen=True, slots=True)
class ImpactRow:
    """One row of Table 1."""

    spike: Spike

    @property
    def label(self) -> str:
        return self.spike.label

    @property
    def state(self) -> str:
        return self.spike.state

    @property
    def duration_hours(self) -> int:
        return self.spike.duration_hours

    @property
    def outage(self) -> str:
        """Best-guess outage name: the top annotation."""
        return self.spike.annotations[0] if self.spike.annotations else "(unannotated)"


def most_impactful(spikes: SpikeSet, count: int = 7) -> list[ImpactRow]:
    """Table 1: the most impactful spikes by duration."""
    return [ImpactRow(spike) for spike in spikes.top_by_duration(count)]


def yearly_counts(spikes: SpikeSet, years: tuple[int, ...] = (2020, 2021)) -> dict[int, int]:
    """Per-year spike counts (paper: 25 494 vs 23 695)."""
    return {year: len(spikes.in_year(year)) for year in years}


def long_lasting_ratio(
    spikes: SpikeSet, min_hours: int = 5, years: tuple[int, int] = (2020, 2021)
) -> float:
    """Ratio of long-lasting spikes between two years (paper: ~1.5x)."""
    first = len(spikes.in_year(years[0]).at_least_hours(min_hours))
    second = len(spikes.in_year(years[1]).at_least_hours(min_hours))
    return first / second if second else float("inf")
