"""Day-of-week distribution of spikes (paper Fig. 4).

The paper's daily distribution shows fewer outages on weekends —
conjectured to reflect less service-side human error.  Days are
evaluated in each spike's *state-local* time: a late-Friday-evening UTC
peak is still Friday for the users searching.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.spikes import SpikeSet
from repro.world.states import get_state

DAY_NAMES = ("Mon.", "Tue.", "Wed.", "Thu.", "Fri.", "Sat.", "Sun.")


@dataclasses.dataclass(frozen=True)
class DailyDistribution:
    """Share of spikes per day of week (Monday first)."""

    counts: np.ndarray  # 7 integers, Monday..Sunday
    fractions: np.ndarray  # counts / total

    @property
    def weekday_mean(self) -> float:
        """Average share of a Monday..Friday day."""
        return float(self.fractions[:5].mean())

    @property
    def weekend_mean(self) -> float:
        """Average share of a Saturday/Sunday day."""
        return float(self.fractions[5:].mean())

    @property
    def weekend_dip(self) -> float:
        """Weekday/weekend ratio (> 1 reproduces the paper's finding)."""
        if self.weekend_mean == 0:
            return float("inf")
        return self.weekday_mean / self.weekend_mean

    def as_rows(self) -> list[tuple[str, float]]:
        return [(DAY_NAMES[i], float(self.fractions[i])) for i in range(7)]


def daily_distribution(spikes: SpikeSet) -> DailyDistribution:
    """Distribute spikes over local days of the week."""
    counts = np.zeros(7, dtype=np.int64)
    for spike in spikes:
        local_peak = spike.peak.astimezone(get_state(spike.state).tzinfo)
        counts[local_peak.weekday()] += 1
    total = counts.sum()
    fractions = counts / total if total else np.zeros(7)
    return DailyDistribution(counts=counts, fractions=fractions)
