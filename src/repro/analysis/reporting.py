"""ASCII rendering of the paper's tables and figures.

Every benchmark prints its artifact through these helpers so the
"regenerate Table 1 / Fig. 3" output is consistent and diffable.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

_BAR = "#"


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """A boxless, aligned ASCII table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_cdf(
    xs: np.ndarray,
    ys: np.ndarray,
    x_label: str,
    y_label: str,
    title: str = "",
    points: int = 12,
) -> str:
    """A coarse textual CDF: sampled (x, y) pairs plus a bar per point."""
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{x_label:>12}  {y_label:>10}")
    if xs.size == 0:
        lines.append("(empty)")
        return "\n".join(lines)
    indices = np.unique(
        np.linspace(0, xs.size - 1, num=min(points, xs.size)).astype(int)
    )
    for index in indices:
        fraction = float(ys[index])
        bar = _BAR * int(round(40 * fraction))
        lines.append(f"{xs[index]:>12}  {fraction:>9.1%}  {bar}")
    return "\n".join(lines)


def render_bars(
    labels: Sequence[str], values: Sequence[float], title: str = "", width: int = 40
) -> str:
    """Horizontal bar chart for categorical distributions (Figs. 4, 6)."""
    lines = []
    if title:
        lines.append(title)
    peak = max(values) if values else 1.0
    label_width = max((len(label) for label in labels), default=0)
    for label, value in zip(labels, values):
        bar = _BAR * int(round(width * value / peak)) if peak else ""
        if isinstance(value, float) and value < 1:
            rendered = f"{value:.1%}"
        else:
            rendered = f"{value:g}"
        lines.append(f"{label.ljust(label_width)}  {rendered:>7}  {bar}")
    return "\n".join(lines)


def render_timeline(
    values: np.ndarray, title: str = "", height: int = 10, width: int = 80
) -> str:
    """A compact vertical-bar sketch of a series (for Fig. 1 style output)."""
    lines = []
    if title:
        lines.append(title)
    if values.size == 0:
        lines.append("(empty)")
        return "\n".join(lines)
    if values.size > width:
        # max-pool into `width` buckets so spikes stay visible
        edges = np.linspace(0, values.size, num=width + 1).astype(int)
        pooled = np.array(
            [values[lo:hi].max() if hi > lo else 0.0 for lo, hi in zip(edges, edges[1:])]
        )
    else:
        pooled = values.astype(np.float64)
    peak = pooled.max()
    if peak <= 0:
        lines.append("(flat)")
        return "\n".join(lines)
    scaled = np.round(pooled / peak * height).astype(int)
    for level in range(height, 0, -1):
        row = "".join("|" if column >= level else " " for column in scaled)
        lines.append(row)
    lines.append("-" * pooled.size)
    return "\n".join(lines)


def paper_vs_measured(
    rows: Sequence[tuple[str, object, object]], title: str = "paper vs measured"
) -> str:
    """Three-column comparison used by every benchmark's summary."""
    return render_table(
        ("metric", "paper", "measured"),
        [(name, paper, measured) for name, paper, measured in rows],
        title=title,
    )
