"""Ground-truth validation of the pipeline (the paper's open problem).

The paper's §6 concedes that validating SIFT is hard because no ground
truth exists for "what users sensed".  The simulation flips that: the
scenario *is* ground truth, so detection quality is measurable exactly.
This module matches detected spikes to ground-truth state impacts and
reports recall (by intensity), precision, duration fidelity, and
annotation accuracy — the numbers EXPERIMENTS.md records alongside the
paper's artifacts.
"""

from __future__ import annotations

import dataclasses
from datetime import timedelta

import numpy as np

from repro.core.spikes import Spike, SpikeSet
from repro.timeutil import TimeWindow
from repro.world.events import OutageEvent, StateImpact
from repro.world.scenarios import Scenario

#: Slack around an impact window when matching spikes to it: detection
#: pads spike boundaries by walk mechanics and the interest tail.
_MATCH_SLACK = timedelta(hours=3)


@dataclasses.dataclass(frozen=True, slots=True)
class ImpactMatch:
    """One ground-truth impact with its best matching spike (if any)."""

    event: OutageEvent
    impact: StateImpact
    spike: Spike | None

    @property
    def detected(self) -> bool:
        return self.spike is not None

    @property
    def duration_error_hours(self) -> float | None:
        if self.spike is None:
            return None
        return self.spike.duration_hours - self.impact.interest_hours


@dataclasses.dataclass(frozen=True)
class ValidationReport:
    """Detection quality against the full ground truth."""

    matches: tuple[ImpactMatch, ...]
    unmatched_spikes: int  # spikes with no ground-truth impact (noise)
    total_spikes: int

    @property
    def recall(self) -> float:
        if not self.matches:
            return 0.0
        return sum(1 for m in self.matches if m.detected) / len(self.matches)

    def recall_above_intensity(self, intensity: float) -> float:
        strong = [m for m in self.matches if m.impact.intensity >= intensity]
        if not strong:
            return 0.0
        return sum(1 for m in strong if m.detected) / len(strong)

    @property
    def precision(self) -> float:
        """Share of spikes explained by a ground-truth impact.

        "Noise" spikes are not necessarily wrong — privacy-threshold
        blips exist in the real data too — but the ratio bounds how much
        of the spike population is event-driven.
        """
        if self.total_spikes == 0:
            return 0.0
        return 1.0 - self.unmatched_spikes / self.total_spikes

    def duration_errors(self) -> np.ndarray:
        errors = [
            m.duration_error_hours for m in self.matches if m.detected
        ]
        return np.array(errors, dtype=np.float64)

    @property
    def mean_absolute_duration_error(self) -> float:
        errors = self.duration_errors()
        return float(np.abs(errors).mean()) if errors.size else 0.0

    def annotation_accuracy(self) -> float:
        """Share of detected impacts whose spike names an event term.

        Only events that carry search terms count (Cause.OTHER events
        rise without a specific companion term by design).
        """
        relevant = [
            m
            for m in self.matches
            if m.detected and m.event.terms and m.spike.annotations
        ]
        if not relevant:
            return 0.0
        hits = sum(
            1
            for m in relevant
            if set(m.spike.annotations) & set(m.event.terms)
        )
        return hits / len(relevant)


def validate_study(
    spikes: SpikeSet,
    scenario: Scenario,
    min_intensity: float = 0.0,
    *,
    states: frozenset[str] | None = None,
) -> ValidationReport:
    """Match every ground-truth impact against the detected spikes.

    With *states*, only impacts on those state codes count — the filter
    partial studies (and the scenario-pack benchmark) need so impacts in
    geographies the study never fetched are not scored as misses.
    """
    spikes_by_state: dict[str, list[Spike]] = {}
    for spike in spikes:
        spikes_by_state.setdefault(spike.state, []).append(spike)

    matches: list[ImpactMatch] = []
    claimed: set[tuple[str, object]] = set()
    for event in scenario.events:
        for impact in event.impacts:
            if impact.intensity < min_intensity:
                continue
            if states is not None and impact.state not in states:
                continue
            window = TimeWindow(
                impact.onset - _MATCH_SLACK,
                impact.window.end + _MATCH_SLACK,
            )
            best: Spike | None = None
            for spike in spikes_by_state.get(impact.state, ()):
                if not window.contains(spike.peak):
                    continue
                if best is None or spike.magnitude > best.magnitude:
                    best = spike
            matches.append(ImpactMatch(event=event, impact=impact, spike=best))
            if best is not None:
                claimed.add((best.geo, best.peak))

    unmatched = sum(
        1 for spike in spikes if (spike.geo, spike.peak) not in claimed
    )
    return ValidationReport(
        matches=tuple(matches),
        unmatched_spikes=unmatched,
        total_spikes=len(spikes),
    )
