"""Export study results as CSV/JSON for external plotting.

The ASCII renderers are for terminals; anyone regenerating the paper's
figures in matplotlib/gnuplot wants the underlying series.  One call
writes a directory of plain files, one per artifact:

    fig1_<geo>.csv      hour,value               (timeline)
    fig3_states.csv     rank,state,spikes,cumulative_share
    fig3_durations.csv  hours,cumulative_share
    fig4_daily.csv      day,fraction
    fig5_footprints.csv states,cumulative_share
    fig6_monthly.csv    year,month,power_spikes_ge5h
    table1.csv / table2.csv / table3.csv
    summary.json        the headline statistics
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.analysis.area_stats import footprint_cdf, most_extensive_table
from repro.analysis.context_stats import (
    monthly_power_long_spikes,
    power_share_of_long_spikes,
    top_power_outages_by_state,
)
from repro.analysis.daily import DAY_NAMES, daily_distribution
from repro.analysis.impact import (
    duration_cdf,
    most_impactful,
    state_cdf,
    yearly_counts,
)
from repro.core.pipeline import StudyResult


def _write_csv(path: Path, header: tuple[str, ...], rows) -> None:
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_study(study: StudyResult, directory: str | Path) -> list[Path]:
    """Write every figure/table of *study* under *directory*.

    Returns the list of files written.  Existing files are overwritten.
    """
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    def emit(name: str, header: tuple[str, ...], rows) -> None:
        path = base / name
        _write_csv(path, header, rows)
        written.append(path)

    # Fig 1 style: one timeline per analyzed geography.
    for geo, state_result in sorted(study.states.items()):
        timeline = state_result.timeline
        emit(
            f"fig1_{geo.replace('US-', '').lower()}.csv",
            ("hour_utc", "value"),
            (
                (timeline.time_at(i).isoformat(), round(float(v), 4))
                for i, v in enumerate(timeline.values)
            ),
        )

    states = state_cdf(study.spikes)
    emit(
        "fig3_states.csv",
        ("rank", "state", "spikes", "cumulative_share"),
        (
            (rank + 1, code, int(states.counts[rank]), round(float(states.cumulative[rank]), 6))
            for rank, code in enumerate(states.states)
        ),
    )

    durations = duration_cdf(study.spikes)
    emit(
        "fig3_durations.csv",
        ("hours", "cumulative_share"),
        (
            (int(h), round(float(c), 6))
            for h, c in zip(durations.hours, durations.cumulative)
        ),
    )

    daily = daily_distribution(study.spikes)
    emit(
        "fig4_daily.csv",
        ("day", "fraction"),
        ((DAY_NAMES[i], round(float(daily.fractions[i]), 6)) for i in range(7)),
    )

    footprints = footprint_cdf(study.outages)
    emit(
        "fig5_footprints.csv",
        ("states", "cumulative_share"),
        (
            (int(size), round(float(c), 6))
            for size, c in zip(footprints.footprints, footprints.cumulative)
        ),
    )

    monthly = monthly_power_long_spikes(study.spikes)
    emit(
        "fig6_monthly.csv",
        ("year", "month", "power_spikes_ge5h"),
        ((year, month, count) for (year, month), count in monthly.items()),
    )

    emit(
        "table1.csv",
        ("spike_time", "state", "duration_hours", "annotations"),
        (
            (row.label, row.state, row.duration_hours, "|".join(row.spike.annotations))
            for row in most_impactful(study.spikes, 7)
        ),
    )
    emit(
        "table2.csv",
        ("spike_time", "states", "top_annotation"),
        (
            (row.label, row.footprint, row.name)
            for row in most_extensive_table(study.outages, 9)
        ),
    )
    emit(
        "table3.csv",
        ("spike_time", "state", "duration_hours", "cause_hint"),
        (
            (row.label, row.state, row.duration_hours, row.cause_hint)
            for row in top_power_outages_by_state(study.spikes, 7)
        ),
    )

    summary = {
        "spikes": study.spike_count,
        "outages": len(study.outages),
        "yearly_counts": {str(k): v for k, v in yearly_counts(study.spikes).items()},
        "top10_state_share": round(states.share_of_top(10), 4),
        "spikes_ge_3h": round(durations.fraction_at_least(3), 4),
        "spikes_ge_5h": round(durations.fraction_at_least(5), 4),
        "outages_ge_10_states": round(footprints.fraction_at_least(10), 4),
        "weekend_dip": round(daily.weekend_dip, 4),
        "power_share_of_long_spikes": round(
            power_share_of_long_spikes(study.spikes), 4
        ),
        "heavy_hitters": list(study.heavy_hitters),
    }
    summary_path = base / "summary.json"
    summary_path.write_text(json.dumps(summary, indent=1))
    written.append(summary_path)
    return written
