"""Area analysis statistics (paper §4.2, Fig. 5 and Table 2)."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.area import Outage, most_extensive


@dataclasses.dataclass(frozen=True)
class FootprintCdf:
    """Fig. 5: distribution of outages over their state footprint."""

    footprints: np.ndarray  # sorted distinct footprint sizes
    cumulative: np.ndarray  # fraction of outages with footprint <= size

    def fraction_at_least(self, states: int) -> float:
        """Share of outages spanning at least *states* (paper: 11% >= 10)."""
        below = self.footprints < states
        if not below.any():
            return 1.0
        index = int(np.max(np.nonzero(below)))
        return float(1.0 - self.cumulative[index])


def footprint_cdf(outages: list[Outage]) -> FootprintCdf:
    sizes = np.array([outage.footprint for outage in outages], dtype=np.int64)
    if sizes.size == 0:
        return FootprintCdf(footprints=np.array([]), cumulative=np.array([]))
    values, counts = np.unique(sizes, return_counts=True)
    cumulative = np.cumsum(counts) / sizes.size
    return FootprintCdf(footprints=values, cumulative=cumulative)


@dataclasses.dataclass(frozen=True, slots=True)
class ExtensiveRow:
    """One row of Table 2."""

    outage: Outage

    @property
    def label(self) -> str:
        return self.outage.label

    @property
    def footprint(self) -> int:
        return self.outage.footprint

    @property
    def name(self) -> str:
        annotations = self.outage.annotations
        return annotations[0] if annotations else "(unannotated)"


def most_extensive_table(outages: list[Outage], count: int = 9) -> list[ExtensiveRow]:
    """Table 2: the most extensive outages by footprint."""
    return [ExtensiveRow(outage) for outage in most_extensive(outages, count)]


def mean_footprint(outages: list[Outage]) -> float:
    if not outages:
        return 0.0
    return float(np.mean([outage.footprint for outage in outages]))
