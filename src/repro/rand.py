"""Counter-based deterministic randomness.

The search-world simulator needs noise that is a pure *function* of
(seed, term, state, hour): any window of any series can then be
recomputed lazily, in any chunking, and always agree with itself.  A
stateful generator cannot do that, so we derive uniforms from a
SplitMix64-style integer hash, vectorized with numpy.

The Trends service's per-request sampling, by contrast, must differ
between re-fetches of the same frame; that path uses ordinary seeded
``numpy.random.Generator`` streams keyed by (request, round).
"""

from __future__ import annotations

import numpy as np

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_U64_MAX_PLUS_1 = float(2**64)


def stable_key(*parts: object) -> int:
    """Derive a 64-bit key from arbitrary hashable parts, stable across runs.

    Python's builtin ``hash`` is salted per process for strings, so we
    fold the UTF-8 bytes manually (FNV-1a) instead.
    """
    acc = 0xCBF29CE484222325
    for part in parts:
        data = str(part).encode("utf-8") + b"\x1f"
        for byte in data:
            acc ^= byte
            acc = (acc * 0x100000001B3) % (1 << 64)
    return acc


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 finalizer over a uint64 array."""
    with np.errstate(over="ignore"):
        z = (values + _GOLDEN).astype(np.uint64)
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        return z ^ (z >> np.uint64(31))


def hashed_uniform(key: int, indices: np.ndarray, salt: int = 0) -> np.ndarray:
    """Uniform(0, 1) values as a pure function of (key, salt, index)."""
    base = np.uint64((key ^ (salt * 0x9E3779B97F4A7C15)) % (1 << 64))
    with np.errstate(over="ignore"):
        mixed = _splitmix64(indices.astype(np.uint64) * _GOLDEN + base)
    # Scale into (0, 1); add half a ULP so 0.0 never appears (log-safe).
    return (mixed.astype(np.float64) + 0.5) / _U64_MAX_PLUS_1


def hashed_normal(key: int, indices: np.ndarray, salt: int = 0) -> np.ndarray:
    """Standard-normal values as a pure function of (key, salt, index).

    Box-Muller over two independent hashed uniform streams.
    """
    u1 = hashed_uniform(key, indices, salt=salt * 2 + 1)
    u2 = hashed_uniform(key, indices, salt=salt * 2 + 2)
    return np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)


def substream(seed: int, *parts: object) -> np.random.Generator:
    """An independent ``Generator`` for a named substream of *seed*."""
    return np.random.default_rng(np.random.SeedSequence([seed, stable_key(*parts)]))
