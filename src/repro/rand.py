"""Counter-based deterministic randomness.

The search-world simulator needs noise that is a pure *function* of
(seed, term, state, hour): any window of any series can then be
recomputed lazily, in any chunking, and always agree with itself.  A
stateful generator cannot do that, so we derive uniforms from a
SplitMix64-style integer hash, vectorized with numpy.

The Trends service's per-request sampling, by contrast, must differ
between re-fetches of the same frame; that path uses ordinary seeded
``numpy.random.Generator`` streams keyed by (request, round).

Hashing itself is on the frame-serving hot path, so :func:`stable_key`
folds long inputs through numpy (FNV-1a decomposes into a byte-wise
low-8-bit chain plus a wrap-around dot product with prime powers) and
keeps the plain masked Python loop for the short keys that dominate in
practice.  :func:`stable_key_from` exposes the fold's prefix property —
``stable_key(a, b) == stable_key_from(stable_key(a), b)`` — which lets
callers memoize a common key prefix and extend it per call.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_U64_MAX_PLUS_1 = float(2**64)

_MASK64 = (1 << 64) - 1
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_GOLDEN_INT = 0x9E3779B97F4A7C15

#: Byte count above which the numpy FNV fold beats the Python loop.
_NUMPY_FOLD_MIN = 192

#: ``_FNV_PRIME ** n (mod 2**64)`` for n = 0 .. chunk; grown on demand.
_PRIME_POWERS = np.array([1], dtype=np.uint64)


def _prime_powers(count: int) -> np.ndarray:
    """First *count* powers of the FNV prime, modulo 2**64."""
    global _PRIME_POWERS
    if len(_PRIME_POWERS) < count:
        powers = [1]
        for _ in range(count - 1):
            powers.append((powers[-1] * _FNV_PRIME) & _MASK64)
        _PRIME_POWERS = np.array(powers, dtype=np.uint64)
    return _PRIME_POWERS[:count]


def _fold_bytes_numpy(acc: int, data: bytes) -> int:
    """One FNV-1a fold of *data* into *acc*, vectorized.

    FNV-1a is ``acc = (acc ^ b) * p`` per byte.  Because the xor only
    touches the low 8 bits, the low byte of the accumulator evolves
    independently: ``l_{i+1} = ((l_i ^ b_i) * (p & 0xFF)) & 0xFF``.
    With that chain in hand the full-width recurrence is affine, and
    the accumulator after n bytes decomposes exactly (mod 2**64) into
    ``acc_0 * p**n + sum(d_i * p**(n - i))`` where
    ``d_i = (l_i ^ b_i) - l_i``.  The low-byte chain is a cheap Python
    loop over one byte of state; the dot product is numpy.
    """
    n = len(data)
    low_prime = _FNV_PRIME & 0xFF
    lows = np.empty(n, dtype=np.uint64)
    low = acc & 0xFF
    for i, byte in enumerate(data):
        lows[i] = low
        low = ((low ^ byte) * low_prime) & 0xFF
    values = np.frombuffer(data, dtype=np.uint8).astype(np.uint64)
    with np.errstate(over="ignore"):
        deltas = (lows ^ values) - lows  # uint64 wrap-around == mod 2**64
        powers = _prime_powers(n + 1)[1:][::-1]  # p**n .. p**1
        total = np.multiply(deltas, powers, dtype=np.uint64).sum(dtype=np.uint64)
    head = (acc * pow(_FNV_PRIME, n, 1 << 64)) & _MASK64
    return (head + int(total)) & _MASK64


def _fold_part(acc: int, part: object) -> int:
    data = str(part).encode("utf-8") + b"\x1f"
    if len(data) >= _NUMPY_FOLD_MIN:
        return _fold_bytes_numpy(acc, data)
    for byte in data:
        acc = ((acc ^ byte) * _FNV_PRIME) & _MASK64
    return acc


def stable_key(*parts: object) -> int:
    """Derive a 64-bit key from arbitrary hashable parts, stable across runs.

    Python's builtin ``hash`` is salted per process for strings, so we
    fold the UTF-8 bytes manually (FNV-1a) instead.
    """
    acc = _FNV_OFFSET
    for part in parts:
        acc = _fold_part(acc, part)
    return acc


def stable_key_from(base: int, *parts: object) -> int:
    """Extend an existing :func:`stable_key` with more parts.

    The FNV fold is a left fold over bytes, so
    ``stable_key(a, b, c) == stable_key_from(stable_key(a, b), c)``.
    Hot paths memoize the key of a repeated prefix and extend it with
    the varying suffix instead of re-hashing the whole tuple.
    """
    acc = base
    for part in parts:
        acc = _fold_part(acc, part)
    return acc


@lru_cache(maxsize=4096)
def stable_key_cached(*parts: object) -> int:
    """Memoized :func:`stable_key` for hashable, high-repeat parts."""
    return stable_key(*parts)


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 finalizer over a uint64 array."""
    with np.errstate(over="ignore"):
        z = (values + _GOLDEN).astype(np.uint64)
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        return z ^ (z >> np.uint64(31))


def _splitmix64_scalar(value: int) -> int:
    """Scalar SplitMix64 finalizer, bit-identical to :func:`_splitmix64`."""
    z = (value + _GOLDEN_INT) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def _base_key(key: int, salt: int) -> int:
    """The pre-mix base ``(key ^ salt * golden) mod 2**64``.

    Computed in Python ints: ``salt * golden`` can exceed 64 bits, and
    the original expression reduces it modulo 2**64 only after the xor.
    """
    return (key ^ (salt * _GOLDEN_INT)) % (1 << 64)


def hashed_uniform(key: int, indices: np.ndarray, salt: int = 0) -> np.ndarray:
    """Uniform(0, 1) values as a pure function of (key, salt, index)."""
    base = np.uint64(_base_key(key, salt))
    with np.errstate(over="ignore"):
        mixed = _splitmix64(indices.astype(np.uint64) * _GOLDEN + base)
    # Scale into (0, 1); add half a ULP so 0.0 never appears (log-safe).
    return (mixed.astype(np.float64) + 0.5) / _U64_MAX_PLUS_1


def hashed_uniform_scalar(key: int, index: int, salt: int = 0) -> float:
    """One Uniform(0, 1) draw, bit-identical to ``hashed_uniform(...)[i]``.

    Avoids allocating a 1-element array when a single draw is needed;
    int→float64 conversion rounds half-even exactly like numpy's cast.
    """
    base = _base_key(key, salt)
    mixed = _splitmix64_scalar((index * _GOLDEN_INT + base) & _MASK64)
    return (mixed + 0.5) / _U64_MAX_PLUS_1


def hashed_uniform_keys(
    keys: np.ndarray, indices: np.ndarray, salt: int = 0
) -> np.ndarray:
    """Uniform(0, 1) draws for many keys over one index axis at once.

    Returns shape ``(len(keys), len(indices))``; row *k* is bit-identical
    to ``hashed_uniform(int(keys[k]), indices, salt)``.
    """
    bases = np.array(
        [_base_key(int(key), salt) for key in np.asarray(keys).tolist()],
        dtype=np.uint64,
    )
    with np.errstate(over="ignore"):
        counters = indices.astype(np.uint64)[None, :] * _GOLDEN + bases[:, None]
        mixed = _splitmix64(counters)
    return (mixed.astype(np.float64) + 0.5) / _U64_MAX_PLUS_1


def hashed_normal(key: int, indices: np.ndarray, salt: int = 0) -> np.ndarray:
    """Standard-normal values as a pure function of (key, salt, index).

    Box-Muller over two independent hashed uniform streams.
    """
    u1 = hashed_uniform(key, indices, salt=salt * 2 + 1)
    u2 = hashed_uniform(key, indices, salt=salt * 2 + 2)
    return np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)


def hashed_normal_keys(
    keys: np.ndarray, indices: np.ndarray, salt: int = 0
) -> np.ndarray:
    """Batched :func:`hashed_normal`: one row per key, bit-identical."""
    u1 = hashed_uniform_keys(keys, indices, salt=salt * 2 + 1)
    u2 = hashed_uniform_keys(keys, indices, salt=salt * 2 + 2)
    return np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)


def substream(seed: int, *parts: object) -> np.random.Generator:
    """An independent ``Generator`` for a named substream of *seed*."""
    return np.random.default_rng(np.random.SeedSequence([seed, stable_key(*parts)]))


def substream_from(seed: int, base: int, *parts: object) -> np.random.Generator:
    """A substream whose key extends a memoized :func:`stable_key` prefix."""
    return np.random.default_rng(
        np.random.SeedSequence([seed, stable_key_from(base, *parts)])
    )
