"""Ground-truth search world: states, terms, events, and search volume.

This subpackage is the *substrate* standing in for Google's search
database and the real 2020-2021 US outage landscape.  The SIFT pipeline
itself never imports from here except through the simulated Trends
service — the separation mirrors the paper's situation, where ground
truth is unobservable.
"""

from repro.world.behavior import BehaviorConfig, DEFAULT_BEHAVIOR, interest_shape
from repro.world.catalog import (
    HEAVY_HITTERS,
    INTERNET_OUTAGE,
    POWER_TERMS,
    TERMS,
    Category,
    Term,
    get_term,
    resolve_phrase,
)
from repro.world.events import Cause, NewsRecord, OutageEvent, StateImpact
from repro.world.population import SearchPopulation
from repro.world.scenarios import Scenario, ScenarioConfig, headline_events
from repro.world.states import (
    ALL_CODES,
    STATES,
    WORLD_CODES,
    WORLD_REGIONS,
    State,
    get_state,
)

__all__ = [
    "ALL_CODES",
    "BehaviorConfig",
    "Category",
    "Cause",
    "DEFAULT_BEHAVIOR",
    "HEAVY_HITTERS",
    "INTERNET_OUTAGE",
    "NewsRecord",
    "OutageEvent",
    "POWER_TERMS",
    "Scenario",
    "ScenarioConfig",
    "SearchPopulation",
    "State",
    "StateImpact",
    "STATES",
    "Term",
    "TERMS",
    "WORLD_CODES",
    "WORLD_REGIONS",
    "get_state",
    "get_term",
    "headline_events",
    "interest_shape",
    "resolve_phrase",
]
