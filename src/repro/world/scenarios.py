"""Scenario generator: the 2020-2021 US outage landscape.

A :class:`Scenario` is the complete ground truth the simulated Trends
service is built on: the paper's *headline* events (Texas winter storm,
CA wildfires, T-Mobile, Akamai, Facebook, ...) plus a calibrated
stochastic *background* outage process that reproduces the paper's
distributional findings:

* ~49 000 spikes over two years, slightly more in 2020 than 2021;
* the top-10 states host about half of all spikes;
* ~10% of spikes last >= 3 hours, ~3.5% last >= 5 hours;
* ~11% of grouped outages span >= 10 states;
* power-related causes dominate the long spikes (~73% of >= 5 h);
* a weekday/weekend imbalance (fewer outages on weekends);
* outlier months: California Aug/Sep 2020 (wildfires, heat waves) and
  Texas Jan/Feb 2021 (winter storms).

The generator is fully deterministic given a seed.  ``background_scale``
shrinks the background event rate so tests and benchmarks can run the
*entire* pipeline in seconds while preserving every distributional
shape; the full paper-scale study is ``background_scale=1.0``.
"""

from __future__ import annotations

import dataclasses
from datetime import datetime, timedelta

import numpy as np

from repro.errors import ConfigurationError
from repro.timeutil import TimeWindow, utc
from repro.world.events import Cause, NewsRecord, OutageEvent, StateImpact, uniform_impacts
from repro.world.states import ALL_CODES, CODES_BY_POPULATION, STATES

# --------------------------------------------------------------------------
# Calibration constants (tuned against the paper's reported shapes).
# --------------------------------------------------------------------------

#: Background events per day at paper scale.  With a mean footprint of
#: ~2.4 states per event this yields on the order of 49 000 state-level
#: spikes over the two-year study window.
_BASE_EVENTS_PER_DAY = 20.0

#: Year-level modulation: the paper counts 25 494 spikes in 2020 versus
#: 23 695 in 2021.
_YEAR_RATE = {2020: 1.04, 2021: 0.96}

#: Day-of-week modulation (Mon..Sun).  The paper's Fig. 4 shows a dip on
#: weekends, conjectured to come from less service-side human error.
_DOW_RATE = (1.06, 1.08, 1.07, 1.06, 1.04, 0.86, 0.83)

#: Footprint distribution over background events: most outages are
#: single-state, a minority are regional, and a deliberate tail of
#: broad (>= 10 states) events reproduces Fig. 5's 11%.
_FOOTPRINT_BUCKETS = (
    (0.78, (1, 1)),  # single state
    (0.12, (2, 9)),  # regional
    (0.10, (10, 35)),  # broad / national
)

#: Duration (hours of user interest) mixture for background events.
#: Calibrated so ~10% of spikes are >= 3 h and ~3.5% are >= 5 h (Fig. 3
#: right, and the Fig. 6 caption).  The >=5 h tail extends to the
#: mid-40s like the Texas winter storm.
_DURATION_BUCKETS = (
    (0.715, (1, 1)),
    (0.212, (2, 2)),
    (0.032, (3, 3)),
    (0.016, (4, 4)),
    (0.014, (5, 7)),
    (0.008, (8, 16)),
    (0.003, (17, 45)),
)

#: Extra weight on long durations in 2020: the paper reports 50% more
#: long-lasting (>= 5 h) spikes in 2020 than in 2021.
_LONG_TAIL_YEAR_BOOST = {2020: 1.25, 2021: 0.85}

#: Cause mix for background events, by duration class.  Long-lasting
#: interest is dominated by power/weather problems (73% of >= 5 h
#: spikes carry a power annotation in the paper).
_CAUSE_MIX_SHORT = (
    (Cause.ISP, 0.52),
    (Cause.MOBILE, 0.08),
    (Cause.CLOUD, 0.07),
    (Cause.APPLICATION, 0.09),
    (Cause.POWER_WEATHER, 0.13),
    (Cause.POWER_GRID, 0.05),
    (Cause.OTHER, 0.06),
)
_CAUSE_MIX_LONG = (
    (Cause.ISP, 0.05),
    (Cause.MOBILE, 0.01),
    (Cause.CLOUD, 0.01),
    (Cause.APPLICATION, 0.01),
    (Cause.POWER_WEATHER, 0.73),
    (Cause.POWER_GRID, 0.17),
    (Cause.OTHER, 0.02),
)

#: Broad (>= 10 state) events are service-side: provider, cloud or
#: application failures rather than local power problems.
_CAUSE_MIX_BROAD = (
    (Cause.ISP, 0.45),
    (Cause.MOBILE, 0.10),
    (Cause.CLOUD, 0.22),
    (Cause.APPLICATION, 0.18),
    (Cause.OTHER, 0.05),
)

#: State attractiveness exponent: spike counts skew toward populous
#: states but sub-linearly (state-level GT normalization means the
#: imbalance is not purely population, per the paper's §4.1).
_STATE_WEIGHT_EXPONENT = 1.15

#: Outlier clusters driving Fig. 6: (state, first day, last day,
#: extra long power events per day).  Wildfire/heat-wave season in
#: California 2020 and the Texas winter storms of early 2021.
_POWER_CLUSTERS = (
    ("CA", utc(2020, 8, 14), utc(2020, 9, 30), 2.5, "Wildfire"),
    ("CA", utc(2020, 9, 5), utc(2020, 9, 12), 2.0, "Heat wave"),
    ("TX", utc(2021, 1, 9), utc(2021, 2, 1), 2.0, "Winter storm"),
    ("TX", utc(2021, 2, 10), utc(2021, 2, 25), 3.0, "Winter storm"),
)

#: ISP terms a background provider outage can surface, with rough
#: national popularity weights (heavy-hitters first).
_ISP_TERM_WEIGHTS = (
    ("Xfinity", 0.17),
    ("Spectrum", 0.16),
    ("Comcast", 0.14),
    ("AT&T", 0.13),
    ("Verizon", 0.12),
    ("Cox Communications", 0.08),
    ("CenturyLink", 0.06),
    ("Frontier", 0.04),
    ("Optimum", 0.04),
    ("Windstream", 0.02),
    ("Mediacom", 0.02),
    ("Suddenlink", 0.02),
)
_MOBILE_TERMS = ("T-Mobile", "Metro PCS")
_CLOUD_TERMS = ("Akamai", "Cloudflare", "Fastly", "AWS")
_APP_TERMS = ("Facebook", "Youtube", "Netflix", "Zoom")

#: Weather terms by meteorological season (Dec-Feb, Mar-May, ...).
_SEASON_WEATHER = {
    0: ("Winter storm", "Thunderstorm"),
    1: ("Thunderstorm", "Tornado"),
    2: ("Thunderstorm", "Heat wave", "Hurricane", "Wildfire"),
    3: ("Thunderstorm", "Hurricane", "Winter storm"),
}


@dataclasses.dataclass(frozen=True, slots=True)
class ScenarioConfig:
    """Parameters of a generated scenario."""

    start: datetime = utc(2020, 1, 1)
    end: datetime = utc(2022, 1, 1)
    seed: int = 20221025  # IMC'22 first day; any integer works
    background_scale: float = 1.0
    include_headline_events: bool = True

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigurationError("scenario end must follow start")
        if not 0.0 <= self.background_scale <= 4.0:
            raise ConfigurationError(
                f"background_scale out of range: {self.background_scale}"
            )

    @property
    def window(self) -> TimeWindow:
        return TimeWindow(self.start, self.end)


class Scenario:
    """Ground truth: a window plus every outage event inside it."""

    def __init__(self, config: ScenarioConfig, events: tuple[OutageEvent, ...]):
        self.config = config
        self.events = events
        self._by_state: dict[str, list[OutageEvent]] = {}
        for event in events:
            for code in event.states:
                self._by_state.setdefault(code, []).append(event)

    @property
    def window(self) -> TimeWindow:
        return self.config.window

    def events_in_state(self, state: str) -> tuple[OutageEvent, ...]:
        return tuple(self._by_state.get(state, ()))

    def events_overlapping(self, window: TimeWindow) -> tuple[OutageEvent, ...]:
        return tuple(event for event in self.events if event.overlaps(window))

    @property
    def total_impacts(self) -> int:
        """Total state-level impact count (upper bound on SIFT spikes)."""
        return sum(event.footprint for event in self.events)

    @classmethod
    def build(cls, config: ScenarioConfig | None = None) -> "Scenario":
        config = config or ScenarioConfig()
        events: list[OutageEvent] = []
        if config.include_headline_events:
            events.extend(
                event
                for event in headline_events()
                if event.overlaps(config.window)
            )
        if config.background_scale > 0:
            events.extend(_background_events(config))
        events.sort(key=lambda event: (event.start, event.event_id))
        return cls(config, tuple(events))


# --------------------------------------------------------------------------
# Headline events: the paper's named, news-verified outages.
# --------------------------------------------------------------------------

def _broad_states(rng_seed: int, count: int, include: tuple[str, ...]) -> tuple[str, ...]:
    """Deterministically pick *count* states, preferring populous ones."""
    rng = np.random.default_rng(rng_seed)
    chosen = list(include)
    pool = [code for code in CODES_BY_POPULATION if code not in chosen]
    weights = np.array(
        [0.97**rank for rank, _ in enumerate(pool)], dtype=np.float64
    )
    weights /= weights.sum()
    extra = rng.choice(len(pool), size=count - len(chosen), replace=False, p=weights)
    chosen.extend(pool[i] for i in sorted(extra))
    return tuple(chosen[:count])


def headline_events() -> tuple[OutageEvent, ...]:
    """The named outages behind the paper's Tables 1-3 and Figs. 1 and 6.

    Spike times, durations and footprints follow the tables; states
    beyond the anchor ones are picked deterministically by population.
    """
    events: list[OutageEvent] = []

    def add(
        event_id: str,
        name: str,
        cause: Cause,
        impacts: tuple[StateImpact, ...],
        terms: tuple[str, ...],
        headline: str,
        source: str,
    ) -> None:
        events.append(
            OutageEvent(
                event_id=event_id,
                name=name,
                cause=cause,
                impacts=impacts,
                terms=terms,
                news=NewsRecord(headline, source),
            )
        )

    # ---- Table 1: most impactful by duration --------------------------------
    add(
        "hl-tx-winter-storm",
        "Texas winter storm power crisis",
        Cause.POWER_WEATHER,
        (
            StateImpact("TX", utc(2021, 2, 15, 10), 45, 42.0),
            StateImpact("OK", utc(2021, 2, 15, 11), 17, 7.0),
            StateImpact("LA", utc(2021, 2, 15, 13), 14, 5.5),
            StateImpact("MS", utc(2021, 2, 15, 14), 11, 4.0),
            StateImpact("AR", utc(2021, 2, 15, 13), 10, 3.5),
        ),
        ("Power outage", "Winter storm", "Spectrum", "AT&T", "T-Mobile", "Electric power"),
        "Networks are struggling in Texas amid historic winter storms",
        "The Verge",
    )
    add(
        "hl-ca-xfinity",
        "Xfinity outage across California",
        Cause.ISP,
        (
            StateImpact("CA", utc(2021, 11, 9, 4), 23, 17.0),
            StateImpact("WA", utc(2021, 11, 9, 5), 9, 4.0),
            StateImpact("OR", utc(2021, 11, 9, 5), 8, 3.5),
        ),
        ("Xfinity", "Comcast"),
        "Comcast Xfinity internet outage hits customers across the US",
        "CNN",
    )
    add(
        "hl-fastly",
        "Fastly global CDN outage",
        Cause.CLOUD,
        (StateImpact("CA", utc(2021, 6, 8, 9), 22, 14.0),)
        + uniform_impacts(
            tuple(
                code
                for code in _broad_states(
                    rng_seed=8621, count=26, include=("CA", "NY", "TX", "FL", "WA")
                )
                if code != "CA"
            ),
            utc(2021, 6, 8, 9),
            3,
            9.0,
        ),
        ("Fastly",),
        "Massive internet outage: websites and apps around the world go dark",
        "CNN",
    )
    add(
        "hl-tn-att",
        "AT&T outage after Nashville bombing",
        Cause.ISP,
        (
            StateImpact("TN", utc(2020, 12, 26, 12), 21, 16.0),
            StateImpact("KY", utc(2020, 12, 26, 14), 9, 4.5),
            StateImpact("AL", utc(2020, 12, 26, 15), 8, 4.0),
            StateImpact("GA", utc(2020, 12, 26, 15), 6, 3.0),
        ),
        ("AT&T", "Power outage"),
        "AT&T outage Sunday updates: progress continues after Nashville bombing",
        "Tennessean",
    )
    add(
        "hl-ga-comcast",
        "Comcast outage in Georgia during tropical storm Zeta",
        Cause.POWER_WEATHER,
        (
            StateImpact("GA", utc(2020, 10, 29, 9), 20, 13.0),
            StateImpact("AL", utc(2020, 10, 29, 8), 9, 4.5),
            StateImpact("SC", utc(2020, 10, 29, 11), 7, 3.5),
        ),
        ("Comcast", "Power outage", "Hurricane", "Xfinity"),
        "Tropical storm Zeta causes disruptions in Georgia",
        "Crisis24",
    )
    add(
        "hl-tmobile",
        "T-Mobile nationwide voice and data outage",
        Cause.MOBILE,
        (StateImpact("CA", utc(2020, 6, 15, 14), 19, 12.0),)
        + uniform_impacts(
            tuple(
                code
                for code in _broad_states(
                    rng_seed=615, count=23, include=("CA", "TX", "FL", "NY")
                )
                if code != "CA"
            ),
            utc(2020, 6, 15, 14),
            4,
            8.0,
        ),
        ("T-Mobile", "Metro PCS"),
        "June 15, 2020 T-Mobile network outage report",
        "Benton Institute",
    )
    add(
        "hl-nc-centurylink",
        "CenturyLink outage in North Carolina",
        Cause.ISP,
        (
            StateImpact("NC", utc(2020, 4, 13, 11), 18, 11.0),
            StateImpact("VA", utc(2020, 4, 13, 12), 6, 3.0),
        ),
        ("CenturyLink",),
        "Outages spike in late April as COVID-19 trends strain internet",
        "S&P Global",
    )

    # ---- Table 2: most extensive by footprint -------------------------------
    add(
        "hl-akamai",
        "Akamai Edge DNS outage",
        Cause.CLOUD,
        uniform_impacts(
            _broad_states(rng_seed=722, count=34, include=("CA", "TX", "NY", "FL", "CO")),
            utc(2021, 7, 22, 14),
            3,
            10.0,
        ),
        ("Akamai",),
        "What led to internet outage that took down some major websites on July 22",
        "Republic World",
    )
    add(
        "hl-cloudflare",
        "Cloudflare backbone outage",
        Cause.OTHER,
        uniform_impacts(
            _broad_states(rng_seed=717, count=30, include=("CA", "NY", "TX", "IL")),
            utc(2020, 7, 17, 19),
            3,
            9.5,
        ),
        ("Cloudflare",),
        "Cloudflare outage on July 17, 2020",
        "Cloudflare blog",
    )
    # Facebook spiked in every state; 29 states spiked at the outage hour
    # while 22 lagged behind local daytime (paper §4.2).
    facebook_prompt = _broad_states(
        rng_seed=104, count=29, include=("CA", "NY", "TX", "FL", "IL")
    )
    facebook_lagged = tuple(
        code for code in ALL_CODES if code not in facebook_prompt
    )
    add(
        "hl-facebook",
        "Facebook BGP withdrawal outage",
        Cause.APPLICATION,
        uniform_impacts(facebook_prompt, utc(2021, 10, 4, 15), 4, 11.0)
        + uniform_impacts(
            facebook_lagged,
            utc(2021, 10, 4, 15),
            3,
            3.0,
            lag_hours={code: 3 + (i % 3) for i, code in enumerate(facebook_lagged)},
        ),
        ("Facebook",),
        "Update about the October 4th outage",
        "Meta engineering",
    )
    add(
        "hl-verizon",
        "Verizon East Coast outage",
        Cause.ISP,
        uniform_impacts(
            _broad_states(
                rng_seed=126,
                count=27,
                include=("NY", "NJ", "PA", "VA", "MA", "TX"),
            ),
            utc(2021, 1, 26, 16),
            4,
            9.0,
        ),
        ("Verizon",),
        "Thousands hit by internet outage on East Coast",
        "Associated Press",
    )
    add(
        "hl-youtube",
        "Youtube worldwide playback outage",
        Cause.APPLICATION,
        uniform_impacts(
            _broad_states(rng_seed=1111, count=27, include=("CA", "NY", "TX")),
            utc(2020, 11, 11, 23),
            3,
            8.5,
        ),
        ("Youtube",),
        "YouTube went down around the world, but it's now fixed",
        "The Verge",
    )
    add(
        "hl-aws",
        "AWS us-east-1 outage",
        Cause.CLOUD,
        uniform_impacts(
            _broad_states(rng_seed=1215, count=26, include=("VA", "CA", "NY", "WA")),
            utc(2021, 12, 15, 14),
            3,
            8.0,
        ),
        ("AWS",),
        "Amazon cloud unit recovers from brief outage affecting third-party services",
        "Reuters",
    )
    add(
        "hl-comcast-nationwide",
        "Comcast nationwide outage",
        Cause.ISP,
        uniform_impacts(
            _broad_states(rng_seed=123, count=25, include=("PA", "IL", "CA", "FL")),
            utc(2020, 1, 23, 18),
            3,
            8.0,
        ),
        ("Comcast", "Xfinity"),
        "Comcast experienced a nationwide internet outage on Thursday",
        "PhillyVoice",
    )
    add(
        "hl-centurylink-bgp",
        "CenturyLink/Level 3 BGP outage",
        Cause.ISP,
        uniform_impacts(
            _broad_states(rng_seed=830, count=24, include=("CO", "CA", "NY", "GA")),
            utc(2020, 8, 30, 9),
            3,
            7.5,
        ),
        ("CenturyLink", "Cloudflare"),
        "Major internet outage: dozens of websites and apps were down",
        "CNN",
    )

    # ---- Table 3: high-profile power outages (beyond TX already added) ------
    add(
        "hl-ca-heatwave",
        "California heat wave rotating blackouts",
        Cause.POWER_WEATHER,
        (StateImpact("CA", utc(2020, 9, 6, 18), 18, 13.0),),
        ("Power outage", "Heat wave", "Electric power"),
        "Rotating blackouts and power shutoffs possible in parts of Bay Area",
        "SFist",
    )
    add(
        "hl-mi-storm",
        "Michigan heavy rain and storm power outage",
        Cause.POWER_WEATHER,
        (
            StateImpact("MI", utc(2021, 8, 11, 9), 15, 10.0),
            StateImpact("OH", utc(2021, 8, 11, 11), 6, 3.0),
        ),
        ("Power outage", "Thunderstorm"),
        "Storms leave 600,000+ Michiganders without power",
        "Detroit Free Press",
    )
    add(
        "hl-wa-storm",
        "Pacific Northwest storm power outage",
        Cause.POWER_WEATHER,
        (
            StateImpact("WA", utc(2021, 10, 24, 18), 13, 9.0),
            StateImpact("OR", utc(2021, 10, 24, 19), 8, 4.0),
        ),
        ("Power outage", "Thunderstorm"),
        "Massive Pacific Northwest storm causes power outages, downed trees",
        "OPB",
    )
    add(
        "hl-co-powerline",
        "Severed power line in Colorado City",
        Cause.POWER_GRID,
        (StateImpact("CO", utc(2021, 7, 22, 14), 9, 6.0),),
        ("Power outage", "Electric power"),
        "Severed power line causing water outages and issues in Colorado City",
        "The Pueblo Chieftain",
    )
    add(
        "hl-oh-storm",
        "Ohio storm power outage",
        Cause.POWER_WEATHER,
        (StateImpact("OH", utc(2021, 8, 12, 20), 7, 5.0),),
        ("Power outage", "Thunderstorm"),
        "Several schools closed as thousands remain without power",
        "Spectrum News",
    )
    add(
        "hl-ky-tornado",
        "Kentucky tornado outbreak power outage",
        Cause.POWER_WEATHER,
        (
            StateImpact("KY", utc(2021, 12, 11, 23), 7, 5.5),
            StateImpact("TN", utc(2021, 12, 12, 0), 5, 3.0),
        ),
        ("Power outage", "Tornado"),
        "Thousands still without power in Kentucky following tornado outbreak",
        "Courier Journal",
    )
    # Fig. 1's second anchor: a mid-February Verizon blip in Texas would be
    # drowned by the storm; the paper's circled Verizon spike is the
    # 26 Jan event already added above (27 states include TX).
    return tuple(events)


# --------------------------------------------------------------------------
# Background process.
# --------------------------------------------------------------------------

def _pick_bucket(rng: np.random.Generator, buckets) -> tuple[int, int]:
    probs = np.array([weight for weight, _ in buckets], dtype=np.float64)
    probs /= probs.sum()
    index = rng.choice(len(buckets), p=probs)
    return buckets[index][1]


def _pick_cause(rng: np.random.Generator, mix) -> Cause:
    causes = [cause for cause, _ in mix]
    probs = np.array([weight for _, weight in mix], dtype=np.float64)
    probs /= probs.sum()
    return causes[rng.choice(len(causes), p=probs)]


def _state_weights() -> np.ndarray:
    populations = np.array([state.population for state in STATES], dtype=np.float64)
    weights = populations**_STATE_WEIGHT_EXPONENT
    return weights / weights.sum()


_CODES = tuple(state.code for state in STATES)


def _season_index(month: int) -> int:
    if month in (12, 1, 2):
        return 0
    if month in (3, 4, 5):
        return 1
    if month in (6, 7, 8):
        return 2
    return 3


def _terms_for(
    rng: np.random.Generator, cause: Cause, month: int
) -> tuple[str, ...]:
    """Pick the search terms users reach for during an event."""
    if cause is Cause.ISP:
        names = [name for name, _ in _ISP_TERM_WEIGHTS]
        probs = np.array([w for _, w in _ISP_TERM_WEIGHTS])
        probs /= probs.sum()
        return (names[rng.choice(len(names), p=probs)],)
    if cause is Cause.MOBILE:
        return (_MOBILE_TERMS[rng.choice(len(_MOBILE_TERMS), p=(0.75, 0.25))],)
    if cause is Cause.CLOUD:
        return (_CLOUD_TERMS[rng.integers(len(_CLOUD_TERMS))],)
    if cause is Cause.APPLICATION:
        return (_APP_TERMS[rng.integers(len(_APP_TERMS))],)
    if cause.is_power_related:
        terms = ["Power outage"]
        if rng.random() < 0.45:
            terms.append("Electric power")
        if cause is Cause.POWER_WEATHER:
            weather = _SEASON_WEATHER[_season_index(month)]
            terms.append(weather[rng.integers(len(weather))])
        if rng.random() < 0.35:  # power outages drag provider names along
            names = [name for name, _ in _ISP_TERM_WEIGHTS[:6]]
            terms.append(names[rng.integers(len(names))])
        return tuple(terms)
    return ()  # Cause.OTHER: no specific term rises


def _event_duration(rng: np.random.Generator, year: int, cause: Cause) -> int:
    low, high = _pick_bucket(rng, _DURATION_BUCKETS)
    duration = int(rng.integers(low, high + 1))
    if duration >= 5:
        # Rebalance the long tail across years per the paper's finding.
        keep = _LONG_TAIL_YEAR_BOOST.get(year, 1.0)
        if rng.random() > keep / max(_LONG_TAIL_YEAR_BOOST.values()):
            duration = int(rng.integers(1, 5))
    if cause.is_power_related and duration >= 3 and rng.random() < 0.3:
        duration += int(rng.integers(1, 6))  # power problems linger
    return min(duration, 46)


def _start_hour(rng: np.random.Generator) -> int:
    """Outage onsets skew toward (US) waking hours in UTC."""
    hours = np.arange(24)
    weights = 1.0 + 0.9 * np.cos((hours - 19.0) * np.pi / 12.0)
    weights /= weights.sum()
    return int(rng.choice(24, p=weights))


def _background_events(config: ScenarioConfig) -> list[OutageEvent]:
    rng = np.random.default_rng(config.seed)
    state_weights = _state_weights()
    events: list[OutageEvent] = []
    day = config.start
    serial = 0
    while day < config.end:
        dow = day.weekday()
        rate = (
            _BASE_EVENTS_PER_DAY
            * config.background_scale
            * _YEAR_RATE.get(day.year, 1.0)
            * _DOW_RATE[dow]
        )
        for _ in range(rng.poisson(rate)):
            serial += 1
            events.append(_one_background_event(rng, config, day, serial, state_weights))
        for cluster_state, first, last, per_day, weather_term in _POWER_CLUSTERS:
            if first <= day < last:
                cluster_rate = per_day * config.background_scale
                for _ in range(rng.poisson(cluster_rate)):
                    serial += 1
                    events.append(
                        _cluster_power_event(
                            rng, day, serial, cluster_state, weather_term
                        )
                    )
        day += timedelta(days=1)
    return events


def _one_background_event(
    rng: np.random.Generator,
    config: ScenarioConfig,
    day: datetime,
    serial: int,
    state_weights: np.ndarray,
) -> OutageEvent:
    lo, hi = _pick_bucket(rng, _FOOTPRINT_BUCKETS)
    footprint = int(rng.integers(lo, hi + 1))
    if footprint >= 10:
        cause = _pick_cause(rng, _CAUSE_MIX_BROAD)
        duration = int(rng.integers(2, 4))
    else:
        duration = _event_duration(rng, day.year, Cause.OTHER)
        mix = _CAUSE_MIX_LONG if duration >= 5 else _CAUSE_MIX_SHORT
        cause = _pick_cause(rng, mix)
        if cause.is_power_related and duration >= 5:
            pass  # long power event, keep as drawn
    states = rng.choice(
        len(_CODES), size=footprint, replace=False, p=state_weights
    )
    codes = tuple(_CODES[i] for i in states)
    start = day + timedelta(hours=_start_hour(rng))
    # Seed state carries the full interest; secondary states decay.
    impacts = []
    for rank, code in enumerate(codes):
        hours = duration if rank == 0 else max(1, int(round(duration * 0.6)))
        intensity = float(
            np.clip(rng.lognormal(mean=1.05, sigma=0.55), 1.6, 30.0)
        )
        if rank > 0:
            intensity = max(1.6, intensity * 0.6)
        impacts.append(
            StateImpact(
                state=code,
                start=start,
                interest_hours=hours,
                intensity=intensity,
                lag_hours=0 if rank == 0 else int(rng.integers(0, 2)),
            )
        )
    return OutageEvent(
        event_id=f"bg-{serial:06d}",
        name=f"background {cause.value} outage",
        cause=cause,
        impacts=tuple(impacts),
        terms=_terms_for(rng, cause, day.month),
    )


def _cluster_power_event(
    rng: np.random.Generator,
    day: datetime,
    serial: int,
    state: str,
    weather_term: str,
) -> OutageEvent:
    duration = int(np.clip(rng.lognormal(mean=1.9, sigma=0.4), 5, 24))
    start = day + timedelta(hours=_start_hour(rng))
    intensity = float(np.clip(rng.lognormal(mean=1.7, sigma=0.5), 3.0, 35.0))
    terms = ("Power outage", weather_term)
    if rng.random() < 0.5:
        terms += ("Electric power",)
    return OutageEvent(
        event_id=f"cl-{serial:06d}",
        name=f"{state} {weather_term.lower()} power outage",
        cause=Cause.POWER_WEATHER,
        impacts=(
            StateImpact(
                state=state,
                start=start,
                interest_hours=duration,
                intensity=intensity,
            ),
        ),
        terms=terms,
    )
