"""The frozen scenario pack: nine families the pipeline must survive.

``scenario_pack()`` returns the benchmark's fixed specs — one
:class:`~.spec.ScenarioSpec` per event family, every parameter written
out literally so the pack is versioned by this file's diff, not by any
generator default drifting.  All specs share one four-week window in
early 2021 chosen to contain the 2021-03-14 US daylight-saving
transition (the ``dst_spanning`` family needs one in range); the smoke
variant halves the window and the occurrence counts but keeps the
transition inside.

``run_family_study`` / ``score_pack_family`` are the shared execution
path of the scenario-pack benchmark and the ``repro scenarios score``
CLI: compile the spec, run the unmodified pipeline over the spec's own
geographies, and score the result against the generated ground truth.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.timeutil import utc
from repro.world.foundry.families import (
    BgpLeak,
    CascadingCdnFailure,
    CorrelatedPowerNetwork,
    DstSpanning,
    FlappingRecurrence,
    NightTrough,
    OffshoreDiurnal,
    SharpOutage,
    SlowBrownout,
)
from repro.world.foundry.spec import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.scoring import ScenarioScore
    from repro.core.pipeline import StudyResult
    from repro.world.scenarios import Scenario

#: The pack's committed seed — BENCH_scenarios.json numbers are taken
#: at exactly this seed, so regressions diff cleanly.
PACK_SEED = 20210314

PACK_START = utc(2021, 2, 22)
PACK_END = utc(2021, 3, 22)
SMOKE_START = utc(2021, 3, 8)


def scenario_pack(smoke: bool = False) -> dict[str, ScenarioSpec]:
    """The frozen per-family specs, keyed by family name."""
    start = SMOKE_START if smoke else PACK_START
    end = PACK_END
    n = 1 if smoke else 3
    pairs = 1 if smoke else 2
    specs = (
        ScenarioSpec(
            name="cascading_cdn",
            start=start,
            end=end,
            geos=("US-CA", "US-TX", "US-NY", "US-FL", "US-WA", "US-IL"),
            families=(CascadingCdnFailure(occurrences=pairs),),
        ),
        ScenarioSpec(
            name="bgp_leak",
            start=start,
            end=end,
            geos=(
                "US-CA", "US-TX", "US-NY", "US-FL",
                "US-PA", "US-IL", "US-OH", "US-GA",
            ),
            families=(BgpLeak(occurrences=pairs, footprint=(5, 8)),),
        ),
        ScenarioSpec(
            name="slow_brownout",
            start=start,
            end=end,
            geos=("US-TX", "US-OH", "US-CO"),
            families=(SlowBrownout(occurrences=n),),
        ),
        ScenarioSpec(
            name="sharp_outage",
            start=start,
            end=end,
            geos=("US-NY", "US-AZ", "US-MN"),
            families=(SharpOutage(occurrences=n),),
        ),
        ScenarioSpec(
            name="correlated_power_network",
            start=start,
            end=end,
            geos=("US-TX", "US-MI", "US-GA"),
            families=(CorrelatedPowerNetwork(occurrences=pairs),),
        ),
        ScenarioSpec(
            name="offshore_diurnal",
            start=start,
            end=end,
            geos=("GB", "JP", "AU", "LK"),
            families=(OffshoreDiurnal(occurrences=n),),
        ),
        ScenarioSpec(
            name="night_trough",
            start=start,
            end=end,
            geos=("US-CA", "US-WA", "US-CO"),
            families=(NightTrough(occurrences=n),),
        ),
        ScenarioSpec(
            name="flapping",
            start=start,
            end=end,
            geos=("US-OH", "US-PA"),
            families=(FlappingRecurrence(occurrences=pairs),),
        ),
        ScenarioSpec(
            name="dst_spanning",
            start=start,
            end=end,
            geos=("US-TX", "US-NY", "US-CA"),
            families=(DstSpanning(occurrences=pairs),),
        ),
    )
    return {spec.name: spec for spec in specs}


def run_family_study(
    spec: ScenarioSpec,
    seed: int = PACK_SEED,
    *,
    stitcher: str | None = None,
    averager: str | None = None,
    sample_rate: float = 0.03,
) -> tuple["StudyResult", "Scenario"]:
    """Compile *spec* and run the unmodified pipeline over its geos."""
    # Deferred: repro.world must stay importable without the runtime.
    from repro.core.pipeline import SiftConfig
    from repro.core.reconstruct import DEFAULT_AVERAGER, DEFAULT_STITCHER
    from repro.runtime.study import StudyRuntime

    scenario = spec.compile(seed)
    sift = SiftConfig(
        annotate=False,
        stitcher=stitcher or DEFAULT_STITCHER,
        averager=averager or DEFAULT_AVERAGER,
    )
    with StudyRuntime.build(
        seed=seed,
        scenario=scenario,
        sift=sift,
        sample_rate=sample_rate,
        checkpoint=False,
    ) as runtime:
        study = runtime.run_study(geos=spec.geos)
    return study, scenario


def score_pack_family(
    spec: ScenarioSpec,
    seed: int = PACK_SEED,
    *,
    stitcher: str | None = None,
    averager: str | None = None,
    sample_rate: float = 0.03,
) -> "ScenarioScore":
    """One family's scorecard: run the study, score it against truth."""
    from repro.analysis.scoring import score_study

    study, scenario = run_family_study(
        spec,
        seed,
        stitcher=stitcher,
        averager=averager,
        sample_rate=sample_rate,
    )
    return score_study(study, scenario)
