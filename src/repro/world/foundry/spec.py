"""Declarative scenario DSL: specs that compile into ground-truth worlds.

A :class:`ScenarioSpec` is a small, JSON-serializable description of a
*world to generate*: a study window, a set of focus geographies, and a
tuple of composable event-family generators (:mod:`.families`).  Calling
:meth:`ScenarioSpec.compile` with a seed deterministically expands the
spec into the existing :class:`~repro.world.scenarios.Scenario` /
:class:`~repro.world.events.OutageEvent` ground-truth types, so every
generated world runs through the *unmodified* pipeline — the foundry
adds worlds, never code paths.

Determinism contract: ``spec.compile(seed)`` is a pure function.  Each
family draws from its own ``np.random.default_rng([salt, seed, index])``
substream, families never share generator state, and the final event
list is sorted by ``(start, event_id)`` exactly like the calibrated
scenario builder — so two compiles of the same ``(spec, seed)`` produce
byte-identical worlds (and byte-identical study fingerprints).

Serialization: :meth:`ScenarioSpec.to_dict` / :meth:`ScenarioSpec.from_dict`
round-trip specs through plain JSON types.  Event families register
themselves by ``kind`` in :data:`FAMILY_KINDS` (via
``EventFamily.__init_subclass__``), which is what lets the fuzzer
archive a shrunk failing spec as a fixture and the regression suite
rebuild it years later.
"""

from __future__ import annotations

import dataclasses
from datetime import datetime, timedelta
from typing import Any, ClassVar

import numpy as np

from repro.errors import ConfigurationError
from repro.timeutil import TimeWindow, ensure_grid, hour_index
from repro.world.events import OutageEvent
from repro.world.scenarios import Scenario, ScenarioConfig
from repro.world.states import CODES_BY_POPULATION, get_state

#: Root salt of every foundry RNG substream; families never collide
#: with the background generator (which seeds ``default_rng(seed)``).
_FOUNDRY_SALT = 0xF0DD

#: Interest tails persist ~3 h past the modeled window (behavior.py);
#: generators keep this margin so events resolve inside the study.
_TAIL_MARGIN_HOURS = 3

#: Event families register themselves here, keyed by ``kind``.
FAMILY_KINDS: dict[str, type["EventFamily"]] = {}


@dataclasses.dataclass(frozen=True, slots=True)
class EventFamily:
    """Base class for one composable generator of ground-truth events.

    Subclasses are frozen dataclasses whose fields are all plain JSON
    scalars or ``(lo, hi)`` range tuples, declare a unique ``kind``
    class variable, and implement :meth:`generate`.  Field values are
    the *grammar* of the DSL — a spec is data, not code.
    """

    kind: ClassVar[str] = ""

    def __init_subclass__(cls, **kwargs: Any) -> None:
        # No super() chain-up: ``dataclass(slots=True)`` rebuilds each
        # subclass, which both breaks zero-arg super's class cell and
        # re-runs this hook for the rebuilt class — so registration
        # must be idempotent per class *name* (the slotted rebuild wins)
        # while still rejecting two different families sharing a kind.
        if kwargs:  # pragma: no cover - object.__init_subclass__ contract
            raise TypeError(f"unexpected class kwargs: {sorted(kwargs)}")
        if not cls.kind:
            raise TypeError(f"{cls.__name__} must declare a non-empty kind")
        existing = FAMILY_KINDS.get(cls.kind)
        if existing is not None and existing.__name__ != cls.__name__:
            raise TypeError(f"duplicate family kind {cls.kind!r}")
        FAMILY_KINDS[cls.kind] = cls

    def generate(
        self,
        rng: np.random.Generator,
        window: TimeWindow,
        codes: tuple[str, ...],
        prefix: str,
    ) -> list[OutageEvent]:
        """Expand this family into concrete events inside *window*.

        ``codes`` are the spec's focus geographies as bare registry
        codes; ``prefix`` namespaces event ids so multiple families in
        one spec never collide.
        """
        raise NotImplementedError

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"kind": self.kind}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            payload[field.name] = list(value) if isinstance(value, tuple) else value
        return payload


def family_from_dict(payload: dict[str, Any]) -> EventFamily:
    """Rebuild a registered family from its :meth:`EventFamily.to_dict`."""
    data = dict(payload)
    kind = data.pop("kind", None)
    cls = FAMILY_KINDS.get(kind)
    if cls is None:
        raise ConfigurationError(f"unknown event-family kind: {kind!r}")
    field_names = {field.name for field in dataclasses.fields(cls)}
    unknown = set(data) - field_names
    if unknown:
        raise ConfigurationError(
            f"family {kind!r} does not accept: {sorted(unknown)}"
        )
    coerced = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in data.items()
    }
    return cls(**coerced)


# --------------------------------------------------------------------------
# Shared draw helpers for family generators.
# --------------------------------------------------------------------------

def draw_int(rng: np.random.Generator, bounds: tuple[int, int]) -> int:
    """Uniform integer in the inclusive ``(lo, hi)`` range."""
    lo, hi = int(bounds[0]), int(bounds[1])
    if hi < lo:
        lo, hi = hi, lo
    return int(rng.integers(lo, hi + 1))


def draw_float(rng: np.random.Generator, bounds: tuple[float, float]) -> float:
    """Uniform float in the ``(lo, hi)`` range."""
    lo, hi = float(bounds[0]), float(bounds[1])
    if hi < lo:
        lo, hi = hi, lo
    return float(lo + (hi - lo) * rng.random())


def draw_onset(
    rng: np.random.Generator, window: TimeWindow, margin_hours: int
) -> datetime:
    """A grid-aligned start leaving *margin_hours* of room before the end.

    Everything the foundry places on the timeline is ``window.start``
    plus a whole number of hours, which is what keeps every generated
    impact on the UTC hour grid by construction — including in
    half-hour-offset zones like Asia/Colombo.
    """
    latest = max(0, window.hours - margin_hours - 1)
    return window.start + timedelta(hours=int(rng.integers(0, latest + 1)))


def draw_local_onset(
    rng: np.random.Generator,
    window: TimeWindow,
    state_code: str,
    local_hours: tuple[int, int],
    margin_hours: int,
) -> datetime:
    """A grid-aligned start whose *local* wall-clock hour is in range.

    Picks a day uniformly, then scans that day's UTC grid hours for one
    whose local hour (in the geography's zone) falls inside
    ``local_hours``.  The scan works for any UTC offset — in a +05:30
    zone every grid hour reads ``X:30`` locally, and ``.hour`` still
    yields ``X`` — so the returned datetime is always on the grid.
    """
    tz = get_state(state_code).tzinfo
    lo, hi = int(local_hours[0]), int(local_hours[1])
    latest = max(0, window.hours - margin_hours - 1)
    day = int(rng.integers(0, max(1, latest // 24)))
    base = window.start + timedelta(hours=24 * day)
    fallback = min(base, window.start + timedelta(hours=latest))
    for offset in range(48):
        candidate = base + timedelta(hours=offset)
        if hour_index(window.start, candidate) > latest:
            break
        if lo <= candidate.astimezone(tz).hour <= hi:
            return candidate
    return fallback


def dst_transitions(state_code: str, window: TimeWindow) -> tuple[datetime, ...]:
    """Grid hours at which the geography's UTC offset changes in *window*."""
    tz = get_state(state_code).tzinfo
    transitions: list[datetime] = []
    previous = window.start.astimezone(tz).utcoffset()
    for hour in range(1, window.hours):
        moment = window.start + timedelta(hours=hour)
        offset = moment.astimezone(tz).utcoffset()
        if offset != previous:
            transitions.append(moment)
            previous = offset
    return tuple(transitions)


def pick_codes(
    rng: np.random.Generator, codes: tuple[str, ...], count: int
) -> tuple[str, ...]:
    """*count* distinct codes, drawn without replacement."""
    count = min(count, len(codes))
    order = rng.permutation(len(codes))
    return tuple(codes[int(i)] for i in order[:count])


# --------------------------------------------------------------------------
# The spec itself.
# --------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """One declarative world: window + focus geographies + families."""

    name: str
    start: datetime
    end: datetime
    geos: tuple[str, ...]
    families: tuple[EventFamily, ...] = ()
    background_scale: float = 0.0
    include_headline_events: bool = False

    def __post_init__(self) -> None:
        ensure_grid(self.start)
        ensure_grid(self.end)
        if self.end <= self.start:
            raise ConfigurationError(f"spec {self.name!r}: end must follow start")
        if not self.geos:
            raise ConfigurationError(f"spec {self.name!r} lists no geographies")
        for geo in self.geos:
            get_state(geo)  # raises UnknownGeoError on bad codes
        if not self.families and self.background_scale == 0.0:
            raise ConfigurationError(
                f"spec {self.name!r} generates nothing: no families and "
                "no background process"
            )

    @property
    def window(self) -> TimeWindow:
        return TimeWindow(self.start, self.end)

    @property
    def codes(self) -> tuple[str, ...]:
        """Focus geographies as bare registry codes (``TX``, ``GB``)."""
        return tuple(get_state(geo).code for geo in self.geos)

    def compile(self, seed: int) -> Scenario:
        """Deterministically expand this spec into a ground-truth world."""
        config = ScenarioConfig(
            start=self.start,
            end=self.end,
            seed=seed,
            background_scale=self.background_scale,
            include_headline_events=self.include_headline_events,
        )
        events = list(Scenario.build(config).events)
        codes = self.codes
        for index, family in enumerate(self.families):
            rng = np.random.default_rng([_FOUNDRY_SALT, seed, index])
            prefix = f"fy{index:02d}-{family.kind}"
            events.extend(family.generate(rng, self.window, codes, prefix))
        events.sort(key=lambda event: (event.start, event.event_id))
        return Scenario(config, tuple(events))

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start.isoformat(),
            "end": self.end.isoformat(),
            "geos": list(self.geos),
            "families": [family.to_dict() for family in self.families],
            "background_scale": self.background_scale,
            "include_headline_events": self.include_headline_events,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ScenarioSpec":
        return cls(
            name=payload["name"],
            start=datetime.fromisoformat(payload["start"]),
            end=datetime.fromisoformat(payload["end"]),
            geos=tuple(payload["geos"]),
            families=tuple(
                family_from_dict(item) for item in payload.get("families", ())
            ),
            background_scale=float(payload.get("background_scale", 0.0)),
            include_headline_events=bool(
                payload.get("include_headline_events", False)
            ),
        )


def default_us_codes(count: int = 16) -> tuple[str, ...]:
    """The most populous US codes — the fallback focus pool."""
    return CODES_BY_POPULATION[:count]
