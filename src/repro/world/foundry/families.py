"""Event-family generators: the vocabulary of the scenario DSL.

Each family is a frozen dataclass of plain scalars and ``(lo, hi)``
ranges, registered by ``kind`` (see :class:`~.spec.EventFamily`).  A
family expands into concrete :class:`~repro.world.events.OutageEvent`
ground truth using only the substream it is handed, so a spec's worlds
are reproducible draw-for-draw.

The families deliberately stress *different* detector weaknesses:

* ``cascading_cdn`` — multi-region waves with lagged secondary onsets;
* ``bgp_leak`` — wide footprint but mostly *partial* (weak) reachability;
* ``slow_brownout`` — long, low-intensity interest that barely rises;
* ``sharp_outage`` — short, violent spikes (the easy case, as control);
* ``correlated_power_network`` — a power event dragging a provider
  event behind it in the same state (annotation confusion);
* ``offshore_diurnal`` — non-US geographies with shifted timezone and
  diurnal structure, including a half-hour-offset zone;
* ``night_trough`` — onsets at local 01:00–04:00 where the response
  floor, not the diurnal curve, carries the signal;
* ``flapping`` — a burst train of 1-hour spikes from one provider;
* ``dst_spanning`` — interest windows crossing a DST transition.
"""

from __future__ import annotations

import dataclasses
from datetime import timedelta
from typing import ClassVar

import numpy as np

from repro.timeutil import TimeWindow
from repro.world.events import Cause, OutageEvent, StateImpact
from repro.world.foundry.spec import (
    _TAIL_MARGIN_HOURS,
    EventFamily,
    draw_float,
    draw_int,
    draw_local_onset,
    draw_onset,
    dst_transitions,
    pick_codes,
)
from repro.world.states import get_state

_CDN_TERMS = ("Fastly", "Cloudflare", "Akamai", "AWS")
_ISP_TERMS = ("Xfinity", "Spectrum", "Comcast", "AT&T", "Verizon", "CenturyLink")

#: The non-US provider topic(s) users in each foundry geography reach
#: for (catalog terms with matching ``home_geos``).
_REGION_TERMS: dict[str, tuple[str, ...]] = {
    "GB": ("BT", "Vodafone"),
    "FR": ("Orange",),
    "JP": ("NTT Docomo",),
    "AU": ("Telstra",),
    "BR": ("Vivo",),
    "LK": ("Dialog Axiata",),
}


def _provider_terms(rng: np.random.Generator, code: str) -> tuple[str, ...]:
    """The provider topic an outage in *code* surfaces."""
    regional = _REGION_TERMS.get(get_state(code).code)
    pool = regional if regional else _ISP_TERMS
    return (pool[int(rng.integers(len(pool)))],)


@dataclasses.dataclass(frozen=True, slots=True)
class CascadingCdnFailure(EventFamily):
    """A CDN failure sweeping across regions in lagged waves."""

    kind: ClassVar[str] = "cascading_cdn"

    occurrences: int = 1
    waves: tuple[int, int] = (2, 3)
    states_per_wave: tuple[int, int] = (2, 4)
    wave_gap_hours: tuple[int, int] = (1, 3)
    duration_hours: tuple[int, int] = (3, 5)
    intensity: tuple[float, float] = (7.0, 13.0)

    def generate(self, rng, window, codes, prefix):
        events = []
        for serial in range(self.occurrences):
            term = _CDN_TERMS[int(rng.integers(len(_CDN_TERMS)))]
            waves = draw_int(rng, self.waves)
            gap = draw_int(rng, self.wave_gap_hours)
            duration = draw_int(rng, self.duration_hours)
            peak = draw_float(rng, self.intensity)
            margin = duration + waves * gap + _TAIL_MARGIN_HOURS
            start = draw_onset(rng, window, margin)
            pool = list(pick_codes(rng, codes, waves * self.states_per_wave[1]))
            impacts = []
            for wave in range(waves):
                want = draw_int(rng, self.states_per_wave)
                decay = 0.75**wave
                for _ in range(want):
                    if not pool:
                        break
                    code = pool.pop(0)
                    impacts.append(
                        StateImpact(
                            state=code,
                            start=start,
                            interest_hours=max(1, round(duration * decay)),
                            intensity=max(1.2, peak * decay),
                            lag_hours=wave * gap,
                        )
                    )
            events.append(
                OutageEvent(
                    event_id=f"{prefix}-{serial:03d}",
                    name=f"cascading {term} CDN failure",
                    cause=Cause.CLOUD,
                    impacts=tuple(impacts),
                    terms=(term,),
                )
            )
        return events


@dataclasses.dataclass(frozen=True, slots=True)
class BgpLeak(EventFamily):
    """BGP-leak-style partial reachability: wide but mostly weak."""

    kind: ClassVar[str] = "bgp_leak"

    occurrences: int = 1
    footprint: tuple[int, int] = (6, 12)
    severe_share: float = 0.35
    duration_hours: tuple[int, int] = (1, 3)
    severe_intensity: tuple[float, float] = (7.0, 12.0)
    partial_intensity: tuple[float, float] = (1.8, 3.2)

    def generate(self, rng, window, codes, prefix):
        events = []
        for serial in range(self.occurrences):
            term = _ISP_TERMS[int(rng.integers(len(_ISP_TERMS)))]
            duration = draw_int(rng, self.duration_hours)
            start = draw_onset(rng, window, duration + 2 + _TAIL_MARGIN_HOURS)
            chosen = pick_codes(rng, codes, draw_int(rng, self.footprint))
            severe_count = max(1, round(len(chosen) * self.severe_share))
            impacts = []
            for rank, code in enumerate(chosen):
                severe = rank < severe_count
                impacts.append(
                    StateImpact(
                        state=code,
                        start=start,
                        interest_hours=duration if severe else max(1, duration - 1),
                        intensity=draw_float(
                            rng,
                            self.severe_intensity if severe else self.partial_intensity,
                        ),
                        lag_hours=0 if severe else int(rng.integers(0, 2)),
                    )
                )
            events.append(
                OutageEvent(
                    event_id=f"{prefix}-{serial:03d}",
                    name=f"{term} route leak (partial reachability)",
                    cause=Cause.ISP,
                    impacts=tuple(impacts),
                    terms=(term,),
                )
            )
        return events


@dataclasses.dataclass(frozen=True, slots=True)
class SlowBrownout(EventFamily):
    """Long, low-grade degradation: interest rises slowly and stays low."""

    kind: ClassVar[str] = "slow_brownout"

    occurrences: int = 1
    duration_hours: tuple[int, int] = (12, 28)
    intensity: tuple[float, float] = (2.2, 4.0)

    def generate(self, rng, window, codes, prefix):
        events = []
        for serial in range(self.occurrences):
            code = pick_codes(rng, codes, 1)[0]
            duration = draw_int(rng, self.duration_hours)
            start = draw_onset(rng, window, duration + _TAIL_MARGIN_HOURS)
            events.append(
                OutageEvent(
                    event_id=f"{prefix}-{serial:03d}",
                    name="slow brownout",
                    cause=Cause.ISP,
                    impacts=(
                        StateImpact(
                            state=code,
                            start=start,
                            interest_hours=duration,
                            intensity=draw_float(rng, self.intensity),
                        ),
                    ),
                    terms=_provider_terms(rng, code),
                )
            )
        return events


@dataclasses.dataclass(frozen=True, slots=True)
class SharpOutage(EventFamily):
    """Short, violent outage: the detector's easy case, kept as control."""

    kind: ClassVar[str] = "sharp_outage"

    occurrences: int = 1
    footprint: tuple[int, int] = (1, 2)
    duration_hours: tuple[int, int] = (1, 2)
    intensity: tuple[float, float] = (12.0, 26.0)

    def generate(self, rng, window, codes, prefix):
        events = []
        for serial in range(self.occurrences):
            duration = draw_int(rng, self.duration_hours)
            start = draw_onset(rng, window, duration + _TAIL_MARGIN_HOURS)
            chosen = pick_codes(rng, codes, draw_int(rng, self.footprint))
            intensity = draw_float(rng, self.intensity)
            events.append(
                OutageEvent(
                    event_id=f"{prefix}-{serial:03d}",
                    name="sharp outage",
                    cause=Cause.ISP,
                    impacts=tuple(
                        StateImpact(
                            state=code,
                            start=start,
                            interest_hours=duration,
                            intensity=intensity if rank == 0 else intensity * 0.7,
                        )
                        for rank, code in enumerate(chosen)
                    ),
                    terms=_provider_terms(rng, chosen[0]),
                )
            )
        return events


@dataclasses.dataclass(frozen=True, slots=True)
class CorrelatedPowerNetwork(EventFamily):
    """A power event dragging a provider outage behind it, same state."""

    kind: ClassVar[str] = "correlated_power_network"

    occurrences: int = 1
    power_duration_hours: tuple[int, int] = (6, 14)
    power_intensity: tuple[float, float] = (7.0, 16.0)
    network_gap_hours: tuple[int, int] = (1, 3)
    network_intensity: tuple[float, float] = (4.0, 9.0)

    def generate(self, rng, window, codes, prefix):
        events = []
        for serial in range(self.occurrences):
            code = pick_codes(rng, codes, 1)[0]
            power_hours = draw_int(rng, self.power_duration_hours)
            gap = draw_int(rng, self.network_gap_hours)
            network_hours = max(2, round(power_hours * 0.6))
            margin = power_hours + gap + network_hours + _TAIL_MARGIN_HOURS
            start = draw_onset(rng, window, margin)
            events.append(
                OutageEvent(
                    event_id=f"{prefix}-{serial:03d}-pw",
                    name="storm power outage",
                    cause=Cause.POWER_WEATHER,
                    impacts=(
                        StateImpact(
                            state=code,
                            start=start,
                            interest_hours=power_hours,
                            intensity=draw_float(rng, self.power_intensity),
                        ),
                    ),
                    terms=("Power outage", "Electric power", "Thunderstorm"),
                )
            )
            events.append(
                OutageEvent(
                    event_id=f"{prefix}-{serial:03d}-net",
                    name="provider outage following power loss",
                    cause=Cause.ISP,
                    impacts=(
                        StateImpact(
                            state=code,
                            start=start + timedelta(hours=gap),
                            interest_hours=network_hours,
                            intensity=draw_float(rng, self.network_intensity),
                        ),
                    ),
                    terms=_provider_terms(rng, code),
                )
            )
        return events


@dataclasses.dataclass(frozen=True, slots=True)
class OffshoreDiurnal(EventFamily):
    """Non-US geography outages pinned to the *local* evening peak."""

    kind: ClassVar[str] = "offshore_diurnal"

    occurrences: int = 1
    local_hour: tuple[int, int] = (18, 22)
    duration_hours: tuple[int, int] = (2, 6)
    intensity: tuple[float, float] = (6.0, 12.0)

    def generate(self, rng, window, codes, prefix):
        events = []
        for serial in range(self.occurrences):
            code = pick_codes(rng, codes, 1)[0]
            duration = draw_int(rng, self.duration_hours)
            start = draw_local_onset(
                rng, window, code, self.local_hour, duration + _TAIL_MARGIN_HOURS
            )
            events.append(
                OutageEvent(
                    event_id=f"{prefix}-{serial:03d}",
                    name=f"{get_state(code).name} evening provider outage",
                    cause=Cause.ISP,
                    impacts=(
                        StateImpact(
                            state=code,
                            start=start,
                            interest_hours=duration,
                            intensity=draw_float(rng, self.intensity),
                        ),
                    ),
                    terms=_provider_terms(rng, code),
                )
            )
        return events


@dataclasses.dataclass(frozen=True, slots=True)
class NightTrough(EventFamily):
    """Outages starting in the dead of local night (01:00–04:00)."""

    kind: ClassVar[str] = "night_trough"

    occurrences: int = 1
    local_hour: tuple[int, int] = (1, 4)
    duration_hours: tuple[int, int] = (2, 4)
    intensity: tuple[float, float] = (5.0, 9.0)

    def generate(self, rng, window, codes, prefix):
        events = []
        for serial in range(self.occurrences):
            code = pick_codes(rng, codes, 1)[0]
            duration = draw_int(rng, self.duration_hours)
            start = draw_local_onset(
                rng, window, code, self.local_hour, duration + _TAIL_MARGIN_HOURS
            )
            events.append(
                OutageEvent(
                    event_id=f"{prefix}-{serial:03d}",
                    name="overnight grid failure",
                    cause=Cause.POWER_GRID,
                    impacts=(
                        StateImpact(
                            state=code,
                            start=start,
                            interest_hours=duration,
                            intensity=draw_float(rng, self.intensity),
                        ),
                    ),
                    terms=("Power outage", "Electric power"),
                )
            )
        return events


@dataclasses.dataclass(frozen=True, slots=True)
class FlappingRecurrence(EventFamily):
    """A train of short repeated spikes from one flapping provider."""

    kind: ClassVar[str] = "flapping"

    occurrences: int = 1
    bursts: tuple[int, int] = (3, 5)
    burst_gap_hours: tuple[int, int] = (3, 6)
    intensity: tuple[float, float] = (7.0, 12.0)

    def generate(self, rng, window, codes, prefix):
        events = []
        for serial in range(self.occurrences):
            code = pick_codes(rng, codes, 1)[0]
            terms = _provider_terms(rng, code)
            bursts = draw_int(rng, self.bursts)
            gap = draw_int(rng, self.burst_gap_hours)
            margin = bursts * (gap + 1) + _TAIL_MARGIN_HOURS
            start = draw_onset(rng, window, margin)
            for burst in range(bursts):
                events.append(
                    OutageEvent(
                        event_id=f"{prefix}-{serial:03d}-b{burst}",
                        name="flapping provider outage",
                        cause=Cause.ISP,
                        impacts=(
                            StateImpact(
                                state=code,
                                start=start + timedelta(hours=burst * gap),
                                interest_hours=1,
                                intensity=draw_float(rng, self.intensity),
                            ),
                        ),
                        terms=terms,
                    )
                )
        return events


@dataclasses.dataclass(frozen=True, slots=True)
class ExplicitOutage(EventFamily):
    """One fully explicit event — the fuzzer's shrink-friendly probe.

    Every parameter is a literal (no RNG draws at all), so hypothesis
    can shrink a failing world coordinate by coordinate and the archived
    fixture reads as plain numbers.  The event lands on the spec's first
    focus geography; ``echo_gap_hours >= 0`` adds a second, overlapping
    half-duration echo event (the event-overlap case from the fuzzer's
    strategy), and out-of-window coordinates clamp inward so every
    generated spec is a valid world.
    """

    kind: ClassVar[str] = "explicit"

    day_offset: int = 1
    hour: int = 12
    duration_hours: int = 2
    intensity: float = 8.0
    lag_hours: int = 0
    echo_gap_hours: int = -1

    def generate(self, rng, window, codes, prefix):
        code = codes[0]
        offset = 24 * max(0, self.day_offset) + min(23, max(0, self.hour))
        latest = max(
            0, window.hours - self.duration_hours - self.lag_hours - 1
        )
        start = window.start + timedelta(hours=min(offset, latest))
        events = [
            OutageEvent(
                event_id=f"{prefix}-probe",
                name="explicit probe outage",
                cause=Cause.ISP,
                impacts=(
                    StateImpact(
                        state=code,
                        start=start,
                        interest_hours=self.duration_hours,
                        intensity=self.intensity,
                        lag_hours=self.lag_hours,
                    ),
                ),
                terms=_provider_terms(rng, code),
            )
        ]
        if self.echo_gap_hours >= 0:
            echo_hours = max(1, self.duration_hours // 2)
            echo_start = min(
                start + timedelta(hours=self.echo_gap_hours),
                window.end - timedelta(hours=echo_hours + 1),
            )
            events.append(
                OutageEvent(
                    event_id=f"{prefix}-echo",
                    name="overlapping echo outage",
                    cause=Cause.ISP,
                    impacts=(
                        StateImpact(
                            state=code,
                            start=max(echo_start, window.start),
                            interest_hours=echo_hours,
                            intensity=max(1.2, self.intensity * 0.6),
                        ),
                    ),
                    terms=_provider_terms(rng, code),
                )
            )
        return events


@dataclasses.dataclass(frozen=True, slots=True)
class DstSpanning(EventFamily):
    """Interest windows straddling a daylight-saving transition."""

    kind: ClassVar[str] = "dst_spanning"

    occurrences: int = 1
    lead_hours: tuple[int, int] = (1, 3)
    duration_hours: tuple[int, int] = (5, 9)
    intensity: tuple[float, float] = (6.0, 12.0)

    def generate(self, rng, window, codes, prefix):
        events = []
        for serial in range(self.occurrences):
            code = pick_codes(rng, codes, 1)[0]
            duration = draw_int(rng, self.duration_hours)
            lead = draw_int(rng, self.lead_hours)
            transitions = dst_transitions(code, window)
            if transitions:
                pivot = transitions[int(rng.integers(len(transitions)))]
                start = pivot - timedelta(hours=lead)
                if start < window.start:
                    start = window.start
                latest = window.end - timedelta(
                    hours=duration + _TAIL_MARGIN_HOURS + 1
                )
                if start > latest >= window.start:
                    start = latest
            else:
                # No transition in the window (or a fixed-offset zone):
                # degrade to a plain placed event so the family still
                # contributes ground truth for any spec window.
                start = draw_onset(rng, window, duration + _TAIL_MARGIN_HOURS)
            events.append(
                OutageEvent(
                    event_id=f"{prefix}-{serial:03d}",
                    name="power outage across a DST transition",
                    cause=Cause.POWER_WEATHER,
                    impacts=(
                        StateImpact(
                            state=code,
                            start=start,
                            interest_hours=duration,
                            intensity=draw_float(rng, self.intensity),
                        ),
                    ),
                    terms=("Power outage", "Winter storm"),
                )
            )
        return events
