"""Adversarial scenario fuzzer: hunt worlds where detection goes quiet.

The fuzzer composes a hypothesis strategy over the DSL — generated
window bounds (including DST-spanning placements), onset wall-clock
hours, durations, intensities, lags, and overlapping event pairs — and
asks one question per example: *does the pipeline silently lose a
ground-truth impact that should be unambiguously detectable?*

``hunt()`` drives :func:`hypothesis.find`, so a hit comes back already
shrunk to a minimal reproducing :class:`~.spec.ScenarioSpec`.
``archive_finding`` freezes the shrunk spec plus the full per-impact
detection outcome as a JSON fixture under ``tests/fixtures/scenarios/``,
and ``replay_fixture`` reruns the archived world through the live
pipeline — the regression suite asserts outcome parity, so every
counterexample the fuzzer ever found stays a permanent guard.

Everything is deterministic: the pipeline seed is pinned per fixture,
and ``hunt(seed=N)`` reproduces the same search.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
from datetime import timedelta
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.timeutil import utc
from repro.world.foundry.families import ExplicitOutage
from repro.world.foundry.spec import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pipeline import StudyResult

#: Archived fixtures carry this tag; bump on layout changes.
FIXTURE_FORMAT = "sift-scenario-fixture/1"

#: Pipeline seed every probe world runs at (pinned so archived
#: expectations replay bit-identically).
EVAL_SEED = 1309

#: An impact at or above this intensity losing its spike counts as a
#: *silent* loss — well past the privacy threshold and the detector's
#: prominence floor, so "too faint" is not an excuse.
SILENT_LOSS_INTENSITY = 6.0

#: Probe geographies: two tiny US states (low baselines, where the
#: privacy threshold bites hardest), one huge one, a non-US geography,
#: and the half-hour-offset zone.
PROBE_GEOS = ("US-WY", "US-VT", "US-TX", "GB", "LK")

#: Fuzz windows are anchored in early 2021 so longer draws straddle the
#: 2021-03-14 US DST transition.
WINDOW_EPOCH = utc(2021, 2, 1)


def probe_specs():
    """Strategy over small single-geo probe worlds (one per example)."""
    import hypothesis.strategies as st

    @st.composite
    def _specs(draw) -> ScenarioSpec:
        geo = draw(st.sampled_from(PROBE_GEOS))
        start_day = draw(st.integers(min_value=0, max_value=28))
        window_days = draw(st.integers(min_value=7, max_value=21))
        day_offset = draw(st.integers(min_value=1, max_value=window_days - 2))
        hour = draw(st.integers(min_value=0, max_value=23))
        duration = draw(st.integers(min_value=1, max_value=8))
        intensity = draw(
            st.floats(
                min_value=SILENT_LOSS_INTENSITY,
                max_value=14.0,
                allow_nan=False,
                allow_infinity=False,
            )
        )
        lag = draw(st.integers(min_value=0, max_value=2))
        echo_gap = draw(
            st.one_of(st.just(-1), st.integers(min_value=0, max_value=6))
        )
        start = WINDOW_EPOCH + timedelta(days=start_day)
        return ScenarioSpec(
            name="fuzz-probe",
            start=start,
            end=start + timedelta(days=window_days),
            geos=(geo,),
            families=(
                ExplicitOutage(
                    day_offset=day_offset,
                    hour=hour,
                    duration_hours=duration,
                    intensity=round(float(intensity), 2),
                    lag_hours=lag,
                    echo_gap_hours=echo_gap,
                ),
            ),
        )

    return _specs()


def run_probe(spec: ScenarioSpec, seed: int = EVAL_SEED) -> "StudyResult":
    """One fast pipeline run over a probe world (single geo, 2 rounds)."""
    from repro.core.averaging import AveragingConfig
    from repro.core.pipeline import SiftConfig
    from repro.runtime.study import StudyRuntime

    sift = SiftConfig(
        annotate=False,
        averaging=AveragingConfig(min_rounds=1, max_rounds=2),
    )
    with StudyRuntime.build(
        seed=seed,
        scenario=spec.compile(seed),
        sift=sift,
        checkpoint=False,
    ) as runtime:
        return runtime.run_study(geos=spec.geos)


def detection_outcomes(
    spec: ScenarioSpec, seed: int = EVAL_SEED
) -> tuple[dict[str, Any], ...]:
    """Per-impact ground-truth outcome of one probe run, sorted stably."""
    from repro.analysis.validation import validate_study

    study = run_probe(spec, seed)
    scenario = spec.compile(seed)
    report = validate_study(
        study.spikes, scenario, states=frozenset(spec.codes)
    )
    outcomes = [
        {
            "event_id": match.event.event_id,
            "state": match.impact.state,
            "onset": match.impact.onset.isoformat(),
            "interest_hours": match.impact.interest_hours,
            "intensity": round(match.impact.intensity, 4),
            "detected": match.detected,
        }
        for match in report.matches
    ]
    outcomes.sort(key=lambda item: (item["event_id"], item["state"]))
    return tuple(outcomes)


def silent_losses(
    spec: ScenarioSpec,
    seed: int = EVAL_SEED,
    min_intensity: float = SILENT_LOSS_INTENSITY,
) -> tuple[dict[str, Any], ...]:
    """The strong impacts this world's run loses without a trace."""
    return tuple(
        outcome
        for outcome in detection_outcomes(spec, seed)
        if not outcome["detected"] and outcome["intensity"] >= min_intensity
    )


@dataclasses.dataclass(frozen=True)
class FuzzFinding:
    """A shrunk counterexample: the minimal world that loses a spike."""

    spec: ScenarioSpec
    seed: int
    min_intensity: float
    outcomes: tuple[dict[str, Any], ...]

    @property
    def losses(self) -> tuple[dict[str, Any], ...]:
        return tuple(
            o
            for o in self.outcomes
            if not o["detected"] and o["intensity"] >= self.min_intensity
        )


def hunt(
    *,
    seed: int = 0,
    max_examples: int = 60,
    min_intensity: float = SILENT_LOSS_INTENSITY,
) -> FuzzFinding | None:
    """Search for a world with a silent loss; return it shrunk, or None.

    Reuses hypothesis's example generation *and* shrinking: ``find``
    hands back the minimal spec satisfying the predicate, which is what
    makes archived fixtures readable.
    """
    import hypothesis
    from hypothesis.errors import NoSuchExample

    settings = hypothesis.settings(
        max_examples=max_examples,
        deadline=None,
        database=None,
        derandomize=False,
    )
    try:
        spec = hypothesis.find(
            probe_specs(),
            lambda candidate: bool(
                silent_losses(candidate, EVAL_SEED, min_intensity)
            ),
            settings=settings,
            random=random.Random(seed),
        )
    except NoSuchExample:
        return None
    return FuzzFinding(
        spec=spec,
        seed=EVAL_SEED,
        min_intensity=min_intensity,
        outcomes=detection_outcomes(spec, EVAL_SEED),
    )


# --------------------------------------------------------------------------
# Fixture archive: shrunk counterexamples as permanent regression guards.
# --------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class ScenarioFixture:
    """One archived world with its recorded detection outcome."""

    path: Path
    spec: ScenarioSpec
    seed: int
    min_intensity: float
    expected: tuple[dict[str, Any], ...]


def _fixture_payload(finding: FuzzFinding) -> dict[str, Any]:
    return {
        "format": FIXTURE_FORMAT,
        "spec": finding.spec.to_dict(),
        "seed": finding.seed,
        "min_intensity": finding.min_intensity,
        "expected": list(finding.outcomes),
    }


def archive_finding(finding: FuzzFinding, directory: Path) -> Path:
    """Freeze *finding* as a JSON fixture; returns the written path.

    The filename embeds a content hash of ``(spec, seed)``, so archiving
    the same shrunk world twice is idempotent and distinct worlds never
    collide.
    """
    payload = _fixture_payload(finding)
    key = json.dumps(
        {"spec": payload["spec"], "seed": payload["seed"]}, sort_keys=True
    )
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:10]
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"silent-loss-{digest}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_fixture(path: Path) -> ScenarioFixture:
    payload = json.loads(path.read_text())
    if payload.get("format") != FIXTURE_FORMAT:
        raise ValueError(
            f"{path}: unsupported fixture format {payload.get('format')!r}"
        )
    return ScenarioFixture(
        path=path,
        spec=ScenarioSpec.from_dict(payload["spec"]),
        seed=int(payload["seed"]),
        min_intensity=float(payload.get("min_intensity", SILENT_LOSS_INTENSITY)),
        expected=tuple(payload["expected"]),
    )


def load_fixtures(directory: Path) -> tuple[ScenarioFixture, ...]:
    if not directory.is_dir():
        return ()
    return tuple(
        load_fixture(path) for path in sorted(directory.glob("*.json"))
    )


def replay_fixture(
    fixture: ScenarioFixture,
) -> tuple[tuple[dict[str, Any], ...], tuple[dict[str, Any], ...]]:
    """Rerun an archived world; returns ``(expected, actual)`` outcomes.

    Parity (expected == actual) is the regression contract: if a change
    *improves* detection on an archived world, regenerate the fixture
    deliberately (see tests/test_scenario_regressions.py) instead of
    letting the improvement pass silently.
    """
    return fixture.expected, detection_outcomes(fixture.spec, fixture.seed)
