"""Scenario foundry: a generative DSL over the ground-truth world.

Three layers (DESIGN.md §11):

* :mod:`.spec` — the declarative DSL: :class:`ScenarioSpec` compiles
  deterministically into the existing :class:`~repro.world.scenarios.Scenario`
  ground truth, so generated worlds run through the unmodified pipeline;
* :mod:`.families` — composable event-family generators (cascading CDN
  waves, BGP-leak partial reachability, brownouts, correlated
  power+network events, non-US diurnal structure, DST-spanning windows,
  ...);
* :mod:`.fuzzer` / :mod:`.pack` — the adversarial search for worlds
  where detection silently loses ground truth, and the frozen scenario
  pack the ``scenarios`` benchmark scores per family.
"""

from repro.world.foundry.families import (
    BgpLeak,
    CascadingCdnFailure,
    CorrelatedPowerNetwork,
    DstSpanning,
    ExplicitOutage,
    FlappingRecurrence,
    NightTrough,
    OffshoreDiurnal,
    SharpOutage,
    SlowBrownout,
)
from repro.world.foundry.fuzzer import (
    EVAL_SEED,
    FuzzFinding,
    ScenarioFixture,
    archive_finding,
    detection_outcomes,
    hunt,
    load_fixture,
    load_fixtures,
    replay_fixture,
    silent_losses,
)
from repro.world.foundry.pack import (
    PACK_SEED,
    run_family_study,
    scenario_pack,
    score_pack_family,
)
from repro.world.foundry.spec import (
    FAMILY_KINDS,
    EventFamily,
    ScenarioSpec,
    dst_transitions,
    family_from_dict,
)

__all__ = [
    "BgpLeak",
    "CascadingCdnFailure",
    "CorrelatedPowerNetwork",
    "DstSpanning",
    "EVAL_SEED",
    "EventFamily",
    "ExplicitOutage",
    "FAMILY_KINDS",
    "FlappingRecurrence",
    "FuzzFinding",
    "NightTrough",
    "OffshoreDiurnal",
    "PACK_SEED",
    "ScenarioFixture",
    "ScenarioSpec",
    "SharpOutage",
    "SlowBrownout",
    "archive_finding",
    "detection_outcomes",
    "dst_transitions",
    "family_from_dict",
    "hunt",
    "load_fixture",
    "load_fixtures",
    "replay_fixture",
    "run_family_study",
    "scenario_pack",
    "score_pack_family",
    "silent_losses",
]
