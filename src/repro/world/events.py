"""Ground-truth outage events for the simulated search world.

An :class:`OutageEvent` is what *actually happened*: which states were
affected, when, for how long user interest persisted, how intense it
was, what caused it, and which search terms users reached for.  The
behaviour model (:mod:`repro.world.behavior`) turns events into search
volume; the SIFT pipeline never sees events directly — it must recover
them from the simulated Trends service, which is exactly the paper's
setting except that here a ground truth exists to validate against.
"""

from __future__ import annotations

import dataclasses
import enum
from datetime import datetime, timedelta

from repro.errors import ConfigurationError
from repro.timeutil import TimeWindow, ensure_grid
from repro.world.states import get_state


class Cause(enum.Enum):
    """Root cause of a ground-truth outage event."""

    ISP = "isp"  # fixed-line provider network failure
    MOBILE = "mobile"  # mobile-carrier network failure
    CLOUD = "cloud"  # CDN / cloud / DNS provider failure
    APPLICATION = "application"  # application-layer failure (backend, buffering)
    POWER_WEATHER = "power-weather"  # weather-driven power outage
    POWER_GRID = "power-grid"  # non-weather grid failure
    OTHER = "other"  # anything else (fiber cuts, human error, ...)

    @property
    def is_power_related(self) -> bool:
        return self in (Cause.POWER_WEATHER, Cause.POWER_GRID)


#: Causes that take end-host address blocks offline and are therefore
#: observable by ANT-style active probing.  Application/CDN/DNS problems
#: leave hosts ping-responsive (the paper's Akamai and Youtube cases),
#: and mobile-network failures are invisible because mobile nodes do not
#: answer probes in the first place (the T-Mobile case).
NETWORK_VISIBLE_CAUSES: frozenset[Cause] = frozenset(
    {Cause.ISP, Cause.POWER_WEATHER, Cause.POWER_GRID, Cause.OTHER}
)


@dataclasses.dataclass(frozen=True, slots=True)
class NewsRecord:
    """A machine-readable stand-in for the paper's manual news checks."""

    headline: str
    source: str


@dataclasses.dataclass(frozen=True, slots=True)
class StateImpact:
    """One event's effect on one state.

    Attributes:
        state: two-letter state code.
        start: UTC hour when user interest begins to rise.
        interest_hours: how long user interest persists.  This maps
            (approximately) onto the spike duration SIFT should measure.
        intensity: peak search-rate boost as a multiple of the state's
            typical busy-hour interest in the tracked topic.  1.0 is a
            barely-detectable blip; the Texas winter storm is ~40.
        lag_hours: onset delay relative to the event's nominal start
            (models the paper's observation of lagged spikes for leisure
            applications across timezones).
    """

    state: str
    start: datetime
    interest_hours: int
    intensity: float
    lag_hours: int = 0

    def __post_init__(self) -> None:
        get_state(self.state)  # raises UnknownGeoError on bad codes
        ensure_grid(self.start)
        if self.interest_hours <= 0:
            raise ConfigurationError(
                f"interest_hours must be positive: {self.interest_hours}"
            )
        if self.intensity <= 0:
            raise ConfigurationError(f"intensity must be positive: {self.intensity}")
        if self.lag_hours < 0:
            raise ConfigurationError(f"lag_hours must be >= 0: {self.lag_hours}")

    @property
    def onset(self) -> datetime:
        return self.start + timedelta(hours=self.lag_hours)

    @property
    def window(self) -> TimeWindow:
        """Hours during which this impact contributes search interest."""
        return TimeWindow(
            self.onset, self.onset + timedelta(hours=self.interest_hours)
        )


@dataclasses.dataclass(frozen=True, slots=True)
class OutageEvent:
    """A ground-truth user-affecting outage."""

    event_id: str
    name: str
    cause: Cause
    impacts: tuple[StateImpact, ...]
    terms: tuple[str, ...]  # canonical catalog topics users search alongside
    news: NewsRecord | None = None

    def __post_init__(self) -> None:
        if not self.impacts:
            raise ConfigurationError(f"event {self.event_id!r} affects no state")
        codes = [impact.state for impact in self.impacts]
        if len(set(codes)) != len(codes):
            raise ConfigurationError(
                f"event {self.event_id!r} lists a state twice: {codes}"
            )

    @property
    def network_visible(self) -> bool:
        """Whether ANT-style active probing can observe this event."""
        return self.cause in NETWORK_VISIBLE_CAUSES

    @property
    def states(self) -> tuple[str, ...]:
        return tuple(impact.state for impact in self.impacts)

    @property
    def footprint(self) -> int:
        """Number of distinct affected states."""
        return len(self.impacts)

    @property
    def start(self) -> datetime:
        return min(impact.onset for impact in self.impacts)

    @property
    def end(self) -> datetime:
        return max(impact.window.end for impact in self.impacts)

    @property
    def max_interest_hours(self) -> int:
        return max(impact.interest_hours for impact in self.impacts)

    @property
    def peak_intensity(self) -> float:
        return max(impact.intensity for impact in self.impacts)

    def impact_on(self, state: str) -> StateImpact | None:
        for impact in self.impacts:
            if impact.state == state:
                return impact
        return None

    def overlaps(self, window: TimeWindow) -> bool:
        """Whether any impact contributes interest inside *window*."""
        return any(impact.window.overlaps(window) for impact in self.impacts)


def uniform_impacts(
    states: tuple[str, ...],
    start: datetime,
    interest_hours: int,
    intensity: float,
    lag_hours: dict[str, int] | None = None,
) -> tuple[StateImpact, ...]:
    """Build identical impacts for several states (helper for scenarios)."""
    lags = lag_hours or {}
    return tuple(
        StateImpact(
            state=code,
            start=start,
            interest_hours=interest_hours,
            intensity=intensity,
            lag_hours=lags.get(code, 0),
        )
        for code in states
    )
