"""The synthetic Google search database.

:class:`SearchPopulation` is the ground-truth population the simulated
Trends service samples from: expected hourly search volumes for every
(term, state, hour) triple, plus the total all-topics search volume the
proportions are taken against.

Volumes are *expected values* (floats); the integer randomness of real
user behaviour is folded into the service's per-request sampling, which
is where Google Trends' own sampling error comes from.  Per-hour
deterministic noise (hash-based log-normal) models organic popularity
wobble that re-fetching cannot average away — the distinction matters:
re-fetch averaging (paper §3.2) reduces *sampling* error only.

Volumes are materialized as one ``(len(TERMS), span.hours)`` float64
tensor per state, built in a single batched pass over all catalog terms
(baselines and noise broadcast across the term axis, event boosts added
per affected row).  Every windowed query — ``term_volume``,
``volumes_matrix``, the rising stage's per-term window sums — is then a
slice of the cached tensor.  The batched arithmetic keeps the exact
per-element operation order of the original per-term computation, so
series are bit-identical to building each term alone.

Memory accounting stays in *series units*: one tensor pins
``len(TERMS)`` series, so the LRU evicts whole states once the cached
tensors exceed :data:`_CACHE_LIMIT` series (~70 MB at paper scale).
"""

from __future__ import annotations

import collections
import dataclasses
import threading
from datetime import datetime

import numpy as np

from repro.rand import hashed_normal_keys, stable_key
from repro.timeutil import TimeWindow, hour_index
from repro.world.behavior import (
    DEFAULT_BEHAVIOR,
    _ASSOCIATED_TERM_FACTOR,
    BehaviorConfig,
    event_window_shape,
    local_diurnal,
    term_baseline_per_hour,
)
from repro.world.catalog import INTERNET_OUTAGE, TERM_INDEX, TERMS, get_term
from repro.world.scenarios import Scenario
from repro.world.states import get_state

#: Cache budget in single-term series units; one state tensor costs
#: ``len(TERMS)`` units, so the default keeps ~13 states resident.
_CACHE_LIMIT = 512

#: Bound on the memoized window->slice lookups (windows are tiny, the
#: bound only guards against adversarial churn).
_CLIP_CACHE_LIMIT = 8192


@dataclasses.dataclass(frozen=True, slots=True)
class PopulationCacheStats:
    """Tensor-cache accounting, in series units (like ``_CACHE_LIMIT``)."""

    hits: int
    misses: int
    size: int  # cached series units: states x len(TERMS)
    capacity: int

    def describe(self) -> str:
        return (
            f"population cache: {self.hits} hits / {self.misses} misses "
            f"({self.size}/{self.capacity} series)"
        )


class SearchPopulation:
    """Expected search volumes over a scenario's window."""

    def __init__(
        self,
        scenario: Scenario,
        behavior: BehaviorConfig = DEFAULT_BEHAVIOR,
        noise_seed: int = 7,
    ) -> None:
        self.scenario = scenario
        self.behavior = behavior
        self.noise_seed = noise_seed
        self._span = scenario.window
        self._matrix_cache: collections.OrderedDict[str, np.ndarray] = (
            collections.OrderedDict()
        )
        self._matrix_lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        # Diurnal/response series depend only on the timezone, so all
        # states sharing a zone share one entry.
        self._diurnal_cache: dict[str, np.ndarray] = {}
        self._response_cache: dict[str, np.ndarray] = {}
        self._total_cache: dict[str, np.ndarray] = {}
        self._clip_cache: dict[TimeWindow, tuple[int, int]] = {}
        # Windowed aggregates are pure in (state, window); averaging
        # rounds re-ask for the same windows, so memoizing the sums
        # saves a slice-copy-reduce per round.  Benign-race dicts.
        self._term_sums_cache: dict[tuple[str, TimeWindow], np.ndarray] = {}
        self._total_sum_cache: dict[tuple[str, TimeWindow], float] = {}

    # -- public API ---------------------------------------------------------

    @property
    def window(self) -> TimeWindow:
        return self._span

    def term_volume(
        self, term_name: str, state_code: str, window: TimeWindow
    ) -> np.ndarray:
        """Expected hourly search volume for a term in a state."""
        get_term(term_name)  # raise UnknownTermError early
        matrix = self._matrix(get_state(state_code).code)
        lo, hi = self._clip(window)
        return matrix[TERM_INDEX[term_name], lo:hi].copy()

    def total_volume(self, state_code: str, window: TimeWindow) -> np.ndarray:
        """Expected hourly volume of *all* searches in a state."""
        state = get_state(state_code)
        full = self._total_cache.get(state.code)
        if full is None:
            base = state.population * self.behavior.engagement_per_capita
            full = base * self._diurnal(state.code)
            self._total_cache[state.code] = full
        lo, hi = self._clip(window)
        return full[lo:hi].copy()

    def proportion(
        self, term_name: str, state_code: str, window: TimeWindow
    ) -> np.ndarray:
        """Hourly share of the term among all searches (GT's raw metric)."""
        volume = self.term_volume(term_name, state_code, window)
        total = self.total_volume(state_code, window)
        return volume / total

    def volumes_matrix(
        self, term_names: tuple[str, ...], state_code: str, window: TimeWindow
    ) -> np.ndarray:
        """Stacked term volumes, shape ``(len(term_names), window.hours)``."""
        if not term_names:
            return np.empty((0, window.hours))
        for name in term_names:
            get_term(name)  # raise UnknownTermError early
        matrix = self._matrix(get_state(state_code).code)
        lo, hi = self._clip(window)
        rows = [TERM_INDEX[name] for name in term_names]
        return matrix[rows, lo:hi]  # fancy indexing: already a copy

    def term_window_sums(self, state_code: str, window: TimeWindow) -> np.ndarray:
        """Per-catalog-term volume sums over *window*, in ``TERMS`` order.

        The rising stage's bulk query: one row-sum over the state tensor
        instead of ``len(TERMS)`` separate slice-and-sum calls.
        """
        code = get_state(state_code).code
        key = (code, window)
        sums = self._term_sums_cache.get(key)
        if sums is None:
            matrix = self._matrix(code)
            lo, hi = self._clip(window)
            sums = matrix[:, lo:hi].sum(axis=1)
            sums.setflags(write=False)
            if len(self._term_sums_cache) >= _CLIP_CACHE_LIMIT:
                self._term_sums_cache.clear()
            self._term_sums_cache[key] = sums
        return sums

    def total_window_sum(self, state_code: str, window: TimeWindow) -> float:
        """Sum of :meth:`total_volume` over *window*, memoized."""
        code = get_state(state_code).code
        key = (code, window)
        total = self._total_sum_cache.get(key)
        if total is None:
            total = float(self.total_volume(code, window).sum())
            if len(self._total_sum_cache) >= _CLIP_CACHE_LIMIT:
                self._total_sum_cache.clear()
            self._total_sum_cache[key] = total
        return total

    def cache_stats(self) -> PopulationCacheStats:
        """Tensor-cache hit/miss counters (thread-safe snapshot)."""
        with self._matrix_lock:
            return PopulationCacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._matrix_cache) * len(TERMS),
                capacity=_CACHE_LIMIT,
            )

    # -- internals ------------------------------------------------------------

    def _clip(self, window: TimeWindow) -> tuple[int, int]:
        cached = self._clip_cache.get(window)
        if cached is not None:
            return cached
        lo = hour_index(self._span.start, window.start)
        hi = hour_index(self._span.start, window.end)
        if lo < 0 or hi > self._span.hours:
            raise ValueError(
                f"window {window.start}..{window.end} outside scenario span"
            )
        if len(self._clip_cache) >= _CLIP_CACHE_LIMIT:
            self._clip_cache.clear()
        self._clip_cache[window] = (lo, hi)
        return lo, hi

    def _diurnal(self, code: str) -> np.ndarray:
        tz_name = str(get_state(code).tzinfo)
        series = self._diurnal_cache.get(tz_name)
        if series is None:
            series = local_diurnal(code, self._span)
            self._diurnal_cache[tz_name] = series
        return series

    def _response(self, code: str) -> np.ndarray:
        tz_name = str(get_state(code).tzinfo)
        series = self._response_cache.get(tz_name)
        if series is None:
            floor = self.behavior.night_response_floor
            series = floor + (1.0 - floor) * self._diurnal(code)
            self._response_cache[tz_name] = series
        return series

    def _matrix(self, code: str) -> np.ndarray:
        with self._matrix_lock:
            cached = self._matrix_cache.get(code)
            if cached is not None:
                self._matrix_cache.move_to_end(code)
                self._hits += 1
                return cached
            self._misses += 1
        # Build outside the lock: concurrent duplicate builds are
        # wasteful but benign — the tensor is a pure function of
        # (scenario, behavior, noise_seed, state).
        matrix = self._build_matrix(code)
        with self._matrix_lock:
            self._matrix_cache.setdefault(code, matrix)
            self._matrix_cache.move_to_end(code)
            while (
                len(self._matrix_cache) * len(TERMS) > _CACHE_LIMIT
                and len(self._matrix_cache) > 1
            ):
                self._matrix_cache.popitem(last=False)
            return self._matrix_cache[code]

    def _build_matrix(self, code: str) -> np.ndarray:
        """All term series for one state, shape ``(len(TERMS), hours)``.

        Every arithmetic step reproduces the original per-term series
        computation element for element: broadcasting ``(terms, 1) *
        (1, hours)`` yields the same ``baseline * diurnal`` products,
        the noise rows are the same per-term hash streams, and event
        boosts accumulate per affected row in the same event order.
        """
        hours = self._span.hours
        diurnal = self._diurnal(code)
        baselines = np.array(
            [term_baseline_per_hour(term.name, code) for term in TERMS],
            dtype=np.float64,
        )
        noise_keys = np.array(
            [stable_key(self.noise_seed, term.name, code) for term in TERMS],
            dtype=np.uint64,
        )
        noise = np.exp(
            self.behavior.noise_sigma
            * hashed_normal_keys(noise_keys, np.arange(hours))
        )
        matrix = (baselines[:, None] * diurnal[None, :]) * noise
        response = self._response(code)
        unit = self.behavior.unit_boost_volume
        for event in self.scenario.events_in_state(code):
            placed = event_window_shape(event, code, self._span)
            if placed is None:
                continue
            padded, impact = placed
            factors: dict[int, float] = {
                TERM_INDEX[INTERNET_OUTAGE.name]: 1.0
            }
            for name in event.terms:
                row = TERM_INDEX.get(name)
                if row is not None:
                    factors.setdefault(row, _ASSOCIATED_TERM_FACTOR)
            for row, factor in factors.items():
                # Scalar first, then two elementwise passes — the exact
                # float ordering of the scalar ``event_boost`` path.
                scale = impact.intensity * unit * factor
                matrix[row] += (padded * scale) * response
        return matrix

    # -- ground-truth helpers (for validation, never used by the pipeline) ----

    def _full_series(self, term_name: str, code: str) -> np.ndarray:
        """Full-span series view for one term (validation helper)."""
        return self._matrix(code)[TERM_INDEX[term_name]]

    def expected_peak(
        self, term_name: str, state_code: str, around: datetime, radius_hours: int = 6
    ) -> float:
        """Max expected volume near a moment — handy in tests."""
        lo_idx = max(0, hour_index(self._span.start, around) - radius_hours)
        hi_idx = min(
            self._span.hours, hour_index(self._span.start, around) + radius_hours
        )
        full = self._full_series(term_name, get_state(state_code).code)
        return float(full[lo_idx:hi_idx].max()) if hi_idx > lo_idx else 0.0
