"""The synthetic Google search database.

:class:`SearchPopulation` is the ground-truth population the simulated
Trends service samples from: expected hourly search volumes for every
(term, state, hour) triple, plus the total all-topics search volume the
proportions are taken against.

Volumes are *expected values* (floats); the integer randomness of real
user behaviour is folded into the service's per-request sampling, which
is where Google Trends' own sampling error comes from.  Per-hour
deterministic noise (hash-based log-normal) models organic popularity
wobble that re-fetching cannot average away — the distinction matters:
re-fetch averaging (paper §3.2) reduces *sampling* error only.

Full-span series per (term, state) are computed once and cached; every
windowed query is a cheap slice.  At paper scale one cached series is
~140 KB, so even touching every catalog term in every state stays well
under a gigabyte; an LRU bound keeps casual use far below that.
"""

from __future__ import annotations

import collections
from datetime import datetime

import numpy as np

from repro.rand import hashed_normal, stable_key
from repro.timeutil import TimeWindow, hour_index
from repro.world.behavior import (
    DEFAULT_BEHAVIOR,
    BehaviorConfig,
    event_boost,
    local_diurnal,
    response_modulation,
    term_baseline_per_hour,
)
from repro.world.catalog import get_term
from repro.world.scenarios import Scenario
from repro.world.states import get_state

_CACHE_LIMIT = 512


class SearchPopulation:
    """Expected search volumes over a scenario's window."""

    def __init__(
        self,
        scenario: Scenario,
        behavior: BehaviorConfig = DEFAULT_BEHAVIOR,
        noise_seed: int = 7,
    ) -> None:
        self.scenario = scenario
        self.behavior = behavior
        self.noise_seed = noise_seed
        self._span = scenario.window
        self._series_cache: collections.OrderedDict[tuple[str, str], np.ndarray] = (
            collections.OrderedDict()
        )
        self._diurnal_cache: dict[str, np.ndarray] = {}
        self._response_cache: dict[str, np.ndarray] = {}

    # -- public API ---------------------------------------------------------

    @property
    def window(self) -> TimeWindow:
        return self._span

    def term_volume(
        self, term_name: str, state_code: str, window: TimeWindow
    ) -> np.ndarray:
        """Expected hourly search volume for a term in a state."""
        get_term(term_name)  # raise UnknownTermError early
        full = self._full_series(term_name, get_state(state_code).code)
        lo, hi = self._clip(window)
        return full[lo:hi].copy()

    def total_volume(self, state_code: str, window: TimeWindow) -> np.ndarray:
        """Expected hourly volume of *all* searches in a state."""
        state = get_state(state_code)
        diurnal = self._diurnal(state.code)
        lo, hi = self._clip(window)
        base = state.population * self.behavior.engagement_per_capita
        return base * diurnal[lo:hi]

    def proportion(
        self, term_name: str, state_code: str, window: TimeWindow
    ) -> np.ndarray:
        """Hourly share of the term among all searches (GT's raw metric)."""
        volume = self.term_volume(term_name, state_code, window)
        total = self.total_volume(state_code, window)
        return volume / total

    def volumes_matrix(
        self, term_names: tuple[str, ...], state_code: str, window: TimeWindow
    ) -> np.ndarray:
        """Stacked term volumes, shape ``(len(term_names), window.hours)``."""
        rows = [self.term_volume(name, state_code, window) for name in term_names]
        return np.vstack(rows) if rows else np.empty((0, window.hours))

    # -- internals ------------------------------------------------------------

    def _clip(self, window: TimeWindow) -> tuple[int, int]:
        lo = hour_index(self._span.start, window.start)
        hi = hour_index(self._span.start, window.end)
        if lo < 0 or hi > self._span.hours:
            raise ValueError(
                f"window {window.start}..{window.end} outside scenario span"
            )
        return lo, hi

    def _diurnal(self, code: str) -> np.ndarray:
        series = self._diurnal_cache.get(code)
        if series is None:
            series = local_diurnal(code, self._span)
            self._diurnal_cache[code] = series
        return series

    def _response(self, code: str) -> np.ndarray:
        series = self._response_cache.get(code)
        if series is None:
            series = response_modulation(code, self._span, self.behavior)
            self._response_cache[code] = series
        return series

    def _full_series(self, term_name: str, code: str) -> np.ndarray:
        key = (term_name, code)
        cached = self._series_cache.get(key)
        if cached is not None:
            self._series_cache.move_to_end(key)
            return cached
        series = self._compute_series(term_name, code)
        self._series_cache[key] = series
        if len(self._series_cache) > _CACHE_LIMIT:
            self._series_cache.popitem(last=False)
        return series

    def _compute_series(self, term_name: str, code: str) -> np.ndarray:
        hours = self._span.hours
        baseline = term_baseline_per_hour(term_name, code) * self._diurnal(code)
        noise_key = stable_key(self.noise_seed, term_name, code)
        noise = np.exp(
            self.behavior.noise_sigma * hashed_normal(noise_key, np.arange(hours))
        )
        series = baseline * noise
        response = self._response(code)
        for event in self.scenario.events_in_state(code):
            boost = event_boost(event, term_name, code, self._span, self.behavior)
            if boost is not None:
                series = series + boost * response
        return series

    # -- ground-truth helpers (for validation, never used by the pipeline) ----

    def expected_peak(
        self, term_name: str, state_code: str, around: datetime, radius_hours: int = 6
    ) -> float:
        """Max expected volume near a moment — handy in tests."""
        lo_idx = max(0, hour_index(self._span.start, around) - radius_hours)
        hi_idx = min(
            self._span.hours, hour_index(self._span.start, around) + radius_hours
        )
        full = self._full_series(term_name, get_state(state_code).code)
        return float(full[lo_idx:hi_idx].max()) if hi_idx > lo_idx else 0.0
