"""User search-behaviour model: from outage events to search volume.

This module answers one question: *how many searches for term T happen
in state S during hour H?*  The answer combines

* a diurnal/weekly engagement curve in the state's local time,
* a small per-capita baseline for each catalog term,
* the interest contributed by ground-truth outage events, shaped by
  :func:`interest_shape` (fast rise, slow decay while the problem
  persists, sharp drop once it is resolved), and
* deterministic multiplicative noise (hash-based, so any window can be
  recomputed consistently).

Scaling philosophy: outage-driven search volume scales with how many
*users are affected and reach for the search box*, which the scenario
encodes in each impact's ``intensity``.  One intensity unit corresponds
to :data:`BehaviorConfig.unit_boost_volume` searches per hour at the
spike peak, independent of state population — a tiny state with a bad
outage produces a huge *relative* (and thus GT-indexed) spike, exactly
the state-level normalization behaviour the paper describes.
"""

from __future__ import annotations

import dataclasses
import functools
from datetime import timedelta

import numpy as np

from repro.timeutil import TimeWindow, hour_index
from repro.world.catalog import INTERNET_OUTAGE, TERMS, Category, get_term
from repro.world.events import OutageEvent
from repro.world.states import get_state

#: Relative popularity of each category's baseline search volume,
#: as a per-capita searches-per-hour figure at the busiest local hour.
_CATEGORY_BASE_PER_MILLION = {
    Category.TRACKER: 0.8,
    Category.ISP: 1.6,
    Category.CLOUD: 0.25,
    Category.APPLICATION: 6.0,
    Category.CAUSE: 1.2,
    Category.NOISE: 60.0,
}

#: How strongly an event boosts its *associated* terms relative to the
#: tracked <Internet outage> topic itself.
_ASSOCIATED_TERM_FACTOR = 0.85

#: Spike interest never disappears instantly: after the underlying
#: problem ends, interest collapses by this per-hour ratio for a few
#: hours.  0.30 < 0.5 guarantees the detector's half-drop rule fires.
_TAIL_RATIO = 0.30
_TAIL_HOURS = 3


@dataclasses.dataclass(frozen=True, slots=True)
class BehaviorConfig:
    """Tunables of the behaviour model."""

    #: Total searches (all topics) per person per hour at the busiest hour.
    engagement_per_capita: float = 0.10
    #: Searches per hour contributed by one intensity unit at spike peak.
    unit_boost_volume: float = 50.0
    #: Sigma of the multiplicative log-normal noise on term volumes.
    noise_sigma: float = 0.22
    #: Floor on the diurnal modulation of outage-driven searches: people
    #: do notice night outages, just less promptly.
    night_response_floor: float = 0.35


DEFAULT_BEHAVIOR = BehaviorConfig()


@functools.lru_cache(maxsize=1)
def diurnal_curve() -> np.ndarray:
    """Relative engagement by local hour (0..23), peak 1.0 at ~20:00."""
    hours = np.arange(24)
    # Two-humped curve: daytime activity plus an evening leisure peak.
    day = np.exp(-0.5 * ((hours - 14.0) / 4.5) ** 2)
    evening = np.exp(-0.5 * ((hours - 20.0) / 2.5) ** 2)
    curve = 0.18 + 0.55 * day + 0.75 * evening
    return curve / curve.max()


def _local_hour(start, tz, index: int) -> int:
    return (start + timedelta(hours=index)).astimezone(tz).hour


def _utc_offset(start, tz, index: int):
    return (start + timedelta(hours=index)).astimezone(tz).utcoffset()


def _first_change(start, tz, lo: int, hi: int, offset) -> int:
    """Smallest index in ``(lo, hi]`` whose UTC offset differs from *offset*.

    Real tzdata has at most one transition per day, so within a 24-hour
    probe gap the "offset changed" predicate is monotone and binary
    search finds the exact transition hour.
    """
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if _utc_offset(start, tz, mid) == offset:
            lo = mid
        else:
            hi = mid
    return hi


@functools.lru_cache(maxsize=1024)
def _tz_local_hours(tz, window: TimeWindow) -> np.ndarray:
    """Local wall-clock hour (0..23) of each UTC hour in *window*.

    One ``astimezone`` per day plus a binary search per DST transition,
    instead of one per hour: within a constant-UTC-offset segment the
    local hour just advances by one per hour, modulo 24.  Cached per
    timezone *object*, so all states sharing a zone share one entry.
    """
    n = window.hours
    start = window.start
    hours = np.empty(n, dtype=np.intp)
    probes = list(range(0, n, 24))
    if probes[-1] != n - 1:
        probes.append(n - 1)
    seg_start = 0
    seg_offset = _utc_offset(start, tz, 0)
    for probe in probes[1:]:
        while _utc_offset(start, tz, probe) != seg_offset:
            cut = _first_change(start, tz, seg_start, probe, seg_offset)
            base = _local_hour(start, tz, seg_start)
            hours[seg_start:cut] = (base + np.arange(cut - seg_start)) % 24
            seg_start = cut
            seg_offset = _utc_offset(start, tz, cut)
    base = _local_hour(start, tz, seg_start)
    hours[seg_start:] = (base + np.arange(n - seg_start)) % 24
    hours.setflags(write=False)
    return hours


def local_diurnal(state_code: str, window: TimeWindow) -> np.ndarray:
    """Diurnal engagement per UTC hour of *window*, in state-local time.

    Computed via each UTC hour's local wall-clock hour, so daylight
    saving transitions are handled by ``zoneinfo``.
    """
    state = get_state(state_code)
    curve = diurnal_curve()
    return curve[_tz_local_hours(state.tzinfo, window)]


def interest_shape(interest_hours: int) -> np.ndarray:
    """Spike interest envelope: rise, persist with slow decay, collapse.

    Returns an array of ``interest_hours + _TAIL_HOURS`` relative values
    with peak 1.0.  While the problem persists the per-hour decay ratio
    stays above 0.5 (so the detector keeps walking), and the tail drops
    at :data:`_TAIL_RATIO` per hour (so the half-drop rule terminates
    the spike right at the end of user interest).
    """
    if interest_hours <= 0:
        raise ValueError(f"interest_hours must be positive: {interest_hours}")
    body = np.empty(interest_hours, dtype=np.float64)
    body[0] = 0.6 if interest_hours > 1 else 1.0
    if interest_hours > 1:
        # Peak on the second block, then decay slowly over the event.
        tau = 2.2 * interest_hours
        decay = np.exp(-np.arange(interest_hours - 1) / tau)
        body[1:] = decay
    tail = body[-1] * _TAIL_RATIO ** np.arange(1, _TAIL_HOURS + 1)
    return np.concatenate([body, tail])


def event_window_shape(
    event: OutageEvent, state_code: str, window: TimeWindow
):
    """Term-independent part of an event's boost: the placed envelope.

    Returns ``(padded_shape, impact)`` — the unit-peak interest envelope
    zero-padded onto the window's hour grid — or ``None`` when the event
    does not touch this state/window.  The tensor build computes this
    once per event and reuses it across every affected term row.
    """
    impact = event.impact_on(state_code)
    if impact is None:
        return None
    shape = interest_shape(impact.interest_hours)
    onset_offset = hour_index(window.start, impact.onset)
    lo = max(0, onset_offset)
    hi = min(window.hours, onset_offset + shape.size)
    if hi <= lo:
        return None
    padded = np.zeros(window.hours, dtype=np.float64)
    padded[lo:hi] = shape[lo - onset_offset : hi - onset_offset]
    return padded, impact


def event_boost(
    event: OutageEvent,
    term_name: str,
    state_code: str,
    window: TimeWindow,
    config: BehaviorConfig = DEFAULT_BEHAVIOR,
) -> np.ndarray | None:
    """Hourly search-volume boost *event* adds to (term, state) in *window*.

    Returns ``None`` when the event does not touch this term/state/window
    so callers can skip the array work entirely.
    """
    if term_name == INTERNET_OUTAGE.name:
        factor = 1.0
    elif term_name in event.terms:
        factor = _ASSOCIATED_TERM_FACTOR
    else:
        return None
    placed = event_window_shape(event, state_code, window)
    if placed is None:
        return None
    padded, impact = placed
    return padded * (impact.intensity * config.unit_boost_volume * factor)


#: Population pivot and exponent for baseline flattening.  Per-capita
#: search interest in outage terms is mildly *higher* in small states
#: (fewer alternative information channels, per-capita normalization of
#: the real index) — sub-linear scaling keeps the privacy-threshold
#: blip population from concentrating entirely in the largest states.
_BASELINE_PIVOT = 5_000_000.0
_BASELINE_FLATTENING = -0.2


def term_baseline_per_hour(term_name: str, state_code: str) -> float:
    """Busy-hour baseline volume for a term in a state (before diurnal)."""
    term = get_term(term_name)
    state = get_state(state_code)
    if not term.at_home(state.code):
        # Geo-homed topics (the foundry's non-US ISPs) have exactly zero
        # organic volume elsewhere, so the US world is bit-unchanged.
        return 0.0
    per_million = _CATEGORY_BASE_PER_MILLION[term.category]
    flattening = (state.population / _BASELINE_PIVOT) ** _BASELINE_FLATTENING
    return per_million * flattening * state.population / 1_000_000.0


def response_modulation(
    state_code: str, window: TimeWindow, config: BehaviorConfig = DEFAULT_BEHAVIOR
) -> np.ndarray:
    """How promptly users translate an outage into searches, per hour."""
    diurnal = local_diurnal(state_code, window)
    return config.night_response_floor + (1.0 - config.night_response_floor) * diurnal


def all_term_names() -> tuple[str, ...]:
    return tuple(term.name for term in TERMS)
