"""US state registry: codes, names, populations, and timezones.

The registry drives both the search-world simulator (per-state user
bases and local-time behaviour) and the SIFT pipeline (one Google
Trends geography per state, ``US-XX`` codes as in the real service).

Populations are 2020 census counts rounded to thousands — they only set
*relative* search volumes, so rounding is harmless.  Each state is
assigned its dominant IANA timezone; states split across timezones use
the zone covering most of their population, which is the resolution the
paper's per-state analysis works at anyway.
"""

from __future__ import annotations

import dataclasses
from zoneinfo import ZoneInfo

from repro.errors import UnknownGeoError


@dataclasses.dataclass(frozen=True, slots=True)
class State:
    """One Trends geography: a US state/DC or a whole non-US country."""

    code: str  # two-letter postal code, e.g. "TX" (or ISO country, "GB")
    name: str  # full name, e.g. "Texas"
    population: int  # 2020 census, rounded to thousands
    tz_name: str  # dominant IANA timezone
    country: str = "US"  # ISO country the geography belongs to

    @property
    def geo(self) -> str:
        """Google-Trends-style geography code, e.g. ``US-TX`` or ``GB``."""
        if self.country == "US":
            return f"US-{self.code}"
        return self.code

    @property
    def tzinfo(self) -> ZoneInfo:
        return ZoneInfo(self.tz_name)


_EASTERN = "America/New_York"
_CENTRAL = "America/Chicago"
_MOUNTAIN = "America/Denver"
_ARIZONA = "America/Phoenix"
_PACIFIC = "America/Los_Angeles"
_ALASKA = "America/Anchorage"
_HAWAII = "Pacific/Honolulu"

#: All 50 states plus the District of Columbia, alphabetical by code.
STATES: tuple[State, ...] = (
    State("AK", "Alaska", 733_000, _ALASKA),
    State("AL", "Alabama", 5_024_000, _CENTRAL),
    State("AR", "Arkansas", 3_011_000, _CENTRAL),
    State("AZ", "Arizona", 7_152_000, _ARIZONA),
    State("CA", "California", 39_538_000, _PACIFIC),
    State("CO", "Colorado", 5_774_000, _MOUNTAIN),
    State("CT", "Connecticut", 3_606_000, _EASTERN),
    State("DC", "District of Columbia", 690_000, _EASTERN),
    State("DE", "Delaware", 990_000, _EASTERN),
    State("FL", "Florida", 21_538_000, _EASTERN),
    State("GA", "Georgia", 10_712_000, _EASTERN),
    State("HI", "Hawaii", 1_455_000, _HAWAII),
    State("IA", "Iowa", 3_190_000, _CENTRAL),
    State("ID", "Idaho", 1_839_000, _MOUNTAIN),
    State("IL", "Illinois", 12_813_000, _CENTRAL),
    State("IN", "Indiana", 6_786_000, _EASTERN),
    State("KS", "Kansas", 2_938_000, _CENTRAL),
    State("KY", "Kentucky", 4_506_000, _EASTERN),
    State("LA", "Louisiana", 4_658_000, _CENTRAL),
    State("MA", "Massachusetts", 7_030_000, _EASTERN),
    State("MD", "Maryland", 6_177_000, _EASTERN),
    State("ME", "Maine", 1_363_000, _EASTERN),
    State("MI", "Michigan", 10_077_000, _EASTERN),
    State("MN", "Minnesota", 5_706_000, _CENTRAL),
    State("MO", "Missouri", 6_155_000, _CENTRAL),
    State("MS", "Mississippi", 2_961_000, _CENTRAL),
    State("MT", "Montana", 1_084_000, _MOUNTAIN),
    State("NC", "North Carolina", 10_439_000, _EASTERN),
    State("ND", "North Dakota", 779_000, _CENTRAL),
    State("NE", "Nebraska", 1_962_000, _CENTRAL),
    State("NH", "New Hampshire", 1_378_000, _EASTERN),
    State("NJ", "New Jersey", 9_289_000, _EASTERN),
    State("NM", "New Mexico", 2_118_000, _MOUNTAIN),
    State("NV", "Nevada", 3_105_000, _PACIFIC),
    State("NY", "New York", 20_201_000, _EASTERN),
    State("OH", "Ohio", 11_799_000, _EASTERN),
    State("OK", "Oklahoma", 3_959_000, _CENTRAL),
    State("OR", "Oregon", 4_237_000, _PACIFIC),
    State("PA", "Pennsylvania", 13_003_000, _EASTERN),
    State("RI", "Rhode Island", 1_097_000, _EASTERN),
    State("SC", "South Carolina", 5_118_000, _EASTERN),
    State("SD", "South Dakota", 887_000, _CENTRAL),
    State("TN", "Tennessee", 6_911_000, _CENTRAL),
    State("TX", "Texas", 29_146_000, _CENTRAL),
    State("UT", "Utah", 3_272_000, _MOUNTAIN),
    State("VA", "Virginia", 8_631_000, _EASTERN),
    State("VT", "Vermont", 643_000, _EASTERN),
    State("WA", "Washington", 7_705_000, _PACIFIC),
    State("WI", "Wisconsin", 5_894_000, _CENTRAL),
    State("WV", "West Virginia", 1_794_000, _EASTERN),
    State("WY", "Wyoming", 577_000, _MOUNTAIN),
)

#: Whole-country Trends geographies used by the scenario foundry's
#: non-US families.  They live *outside* :data:`STATES` on purpose: the
#: paper's study universe (ALL_CODES, population weights, headline
#: events) stays the 51 US geographies, and the US-only registry views
#: below are untouched, so nothing in the calibrated world shifts.
#: Codes are ISO-3166 alpha-2 chosen not to collide with US postal
#: codes (so no DE/IN/PR).  ``LK`` (UTC+05:30) deliberately exercises a
#: half-hour-offset zone in the diurnal and hour-grid machinery.
WORLD_REGIONS: tuple[State, ...] = (
    State("AU", "Australia", 25_688_000, "Australia/Sydney", country="AU"),
    State("BR", "Brazil", 213_196_000, "America/Sao_Paulo", country="BR"),
    State("FR", "France", 67_571_000, "Europe/Paris", country="FR"),
    State("GB", "United Kingdom", 67_081_000, "Europe/London", country="GB"),
    State("JP", "Japan", 126_146_000, "Asia/Tokyo", country="JP"),
    State("LK", "Sri Lanka", 21_919_000, "Asia/Colombo", country="LK"),
)

WORLD_CODES: tuple[str, ...] = tuple(region.code for region in WORLD_REGIONS)

_BY_CODE = {state.code: state for state in (*STATES, *WORLD_REGIONS)}
_BY_GEO = {state.geo: state for state in (*STATES, *WORLD_REGIONS)}

#: Codes ordered by descending population — used by the scenario
#: generator's state-weight model and by ranking plots.
CODES_BY_POPULATION: tuple[str, ...] = tuple(
    state.code for state in sorted(STATES, key=lambda s: s.population, reverse=True)
)

ALL_CODES: tuple[str, ...] = tuple(state.code for state in STATES)


def get_state(code_or_geo: str) -> State:
    """Look up a state by postal code (``TX``) or Trends geo (``US-TX``)."""
    state = _BY_CODE.get(code_or_geo) or _BY_GEO.get(code_or_geo)
    if state is None:
        raise UnknownGeoError(code_or_geo)
    return state


def is_known_geo(code_or_geo: str) -> bool:
    return code_or_geo in _BY_CODE or code_or_geo in _BY_GEO


def total_population() -> int:
    return sum(state.population for state in STATES)
