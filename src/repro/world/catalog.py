"""Search-term catalog for the simulated search world.

Google Trends distinguishes *search topics* (semantic clusters) from
*search queries* (raw user inputs).  The catalog models both: every
:class:`Term` is a topic with a canonical name, a category, and the raw
query variants users actually type.  The variants feed two places:

* the world simulator emits rising *queries* (like the paper's
  ``<spectrum internet outage>``, ``<is verizon down>``), and
* SIFT's context stage must cluster those variants back onto one topic,
  exactly the job the paper solves with pre-trained word vectors.

The ``HEAVY_HITTERS`` set reflects the paper's finding that a few dozen
terms dominate the rising suggestions (Power outage, Xfinity, Spectrum,
Comcast, AT&T, Cox Communications, Verizon, Electric power, ...).
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import UnknownTermError


class Category(enum.Enum):
    """Coarse semantic category of a search topic."""

    TRACKER = "tracker"  # the tracked topic itself (<Internet outage>)
    ISP = "isp"  # network providers
    CLOUD = "cloud"  # CDN / cloud / backbone providers
    APPLICATION = "application"  # consumer applications
    CAUSE = "cause"  # root-cause terms (power, weather, ...)
    NOISE = "noise"  # background terms unrelated to outages


@dataclasses.dataclass(frozen=True, slots=True)
class Term:
    """One search topic with its raw query variants."""

    name: str  # canonical topic name, e.g. "Verizon"
    category: Category
    variants: tuple[str, ...] = ()  # raw queries mapping to this topic
    #: Geography codes where the topic has organic baseline volume.
    #: Empty means everywhere (all the paper's US terms); non-empty
    #: restricts the baseline to those geographies, which is how the
    #: foundry's non-US ISPs stay invisible in every US study.
    home_geos: tuple[str, ...] = ()

    def all_phrasings(self) -> tuple[str, ...]:
        """Canonical name first, then every raw variant."""
        return (self.name, *self.variants)

    def at_home(self, state_code: str) -> bool:
        """Whether the topic has organic volume in *state_code*."""
        return not self.home_geos or state_code in self.home_geos


def _isp(name: str, *variants: str) -> Term:
    return Term(name, Category.ISP, variants)


def _cloud(name: str, *variants: str) -> Term:
    return Term(name, Category.CLOUD, variants)


def _app(name: str, *variants: str) -> Term:
    return Term(name, Category.APPLICATION, variants)


def _cause(name: str, *variants: str) -> Term:
    return Term(name, Category.CAUSE, variants)


def _noise(name: str, *variants: str) -> Term:
    return Term(name, Category.NOISE, variants)


def _world_isp(name: str, home: tuple[str, ...], *variants: str) -> Term:
    return Term(name, Category.ISP, variants, home_geos=home)


#: The topic SIFT tracks, i.e. the paper's ``<Internet outage>``.
INTERNET_OUTAGE = Term(
    "Internet outage",
    Category.TRACKER,
    (
        "internet outage",
        "internet down",
        "is my internet down",
        "internet not working",
        "no internet",
        "wifi down",
        "internet outage near me",
    ),
)

TERMS: tuple[Term, ...] = (
    INTERNET_OUTAGE,
    # --- network providers -------------------------------------------------
    _isp("Spectrum", "spectrum outage", "spectrum internet outage", "is spectrum down"),
    _isp("Xfinity", "xfinity outage", "xfinity down", "is xfinity down"),
    _isp("Comcast", "comcast outage", "comcast down", "comcast internet outage"),
    _isp("AT&T", "att outage", "at&t outage", "att down", "is att down"),
    _isp("Verizon", "verizon outage", "is verizon down", "verizon down", "verizon fios outage"),
    _isp("Cox Communications", "cox outage", "cox internet outage", "is cox down"),
    _isp("CenturyLink", "centurylink outage", "centurylink down", "is centurylink down"),
    _isp("T-Mobile", "t-mobile outage", "tmobile down", "is tmobile down", "t mobile outage"),
    _isp("Metro PCS", "metro pcs outage", "metropcs down", "metro pcs not working"),
    _isp("Frontier", "frontier outage", "frontier internet down"),
    _isp("Optimum", "optimum outage", "optimum down"),
    _isp("Windstream", "windstream outage", "windstream down"),
    _isp("Mediacom", "mediacom outage", "mediacom down"),
    _isp("Suddenlink", "suddenlink outage", "suddenlink down"),
    # --- cloud / CDN providers ---------------------------------------------
    _cloud("Akamai", "akamai outage", "akamai down", "dns outage"),
    _cloud("Cloudflare", "cloudflare outage", "cloudflare down", "is cloudflare down"),
    _cloud("Fastly", "fastly outage", "fastly down", "websites down"),
    _cloud("AWS", "aws outage", "aws down", "amazon web services outage"),
    # --- consumer applications ----------------------------------------------
    _app("Facebook", "facebook down", "facebook outage", "is facebook down", "instagram down"),
    _app("Youtube", "youtube down", "youtube outage", "is youtube down", "youtube not loading"),
    _app("Netflix", "netflix down", "netflix outage", "is netflix down"),
    _app("Zoom", "zoom down", "zoom outage", "is zoom down"),
    # --- root causes ---------------------------------------------------------
    _cause(
        "Power outage",
        "power outage",
        "power outage near me",
        "power out",
        "electricity out",
        "san jose power outage",
    ),
    _cause("Electric power", "electric power", "power company", "power grid"),
    _cause("Thunderstorm", "thunderstorm", "storm damage", "lightning storm"),
    _cause("Winter storm", "winter storm", "ice storm", "snow storm",
           "february 13-17, 2021 north american winter storm"),
    _cause("Wildfire", "wildfire", "fire evacuation", "california wildfires"),
    _cause("Heat wave", "heat wave", "rolling blackouts", "heat advisory"),
    _cause("Hurricane", "hurricane", "tropical storm"),
    _cause("Tornado", "tornado", "tornado warning"),
    # --- background noise (candidate rising terms unrelated to outages) -----
    _noise("Weather", "weather", "weather tomorrow"),
    _noise("News", "news", "breaking news"),
    _noise("Speed test", "speed test", "internet speed test"),
    _noise("Router", "router reset", "restart router", "modem lights"),
    # --- non-US providers (scenario-foundry geographies) ---------------------
    # Appended strictly at the END of the catalog: population tensors and
    # the rising-candidate binomial fill both iterate in TERMS order, so
    # appending keeps every existing seeded draw bit-identical, and the
    # ``home_geos`` baseline gate keeps these rows at exactly zero volume
    # in all 51 US geographies.
    _world_isp("BT", ("GB",), "bt outage", "bt broadband down", "bt internet down"),
    _world_isp("Vodafone", ("GB",), "vodafone outage", "vodafone down", "is vodafone down"),
    _world_isp("Orange", ("FR",), "orange outage", "panne orange", "orange internet down"),
    _world_isp("NTT Docomo", ("JP",), "docomo outage", "docomo down", "ntt communications outage"),
    _world_isp("Telstra", ("AU",), "telstra outage", "telstra down", "is telstra down"),
    _world_isp("Vivo", ("BR",), "vivo outage", "vivo down", "vivo sem internet"),
    _world_isp("Dialog Axiata", ("LK",), "dialog outage", "dialog down", "dialog internet down"),
)

_BY_NAME = {term.name: term for term in TERMS}

#: Row index of each catalog term in the population tensors — the
#: (terms × hours) matrices are laid out in ``TERMS`` order.
TERM_INDEX: dict[str, int] = {term.name: row for row, term in enumerate(TERMS)}
_BY_PHRASE = {
    phrase.lower(): term for term in TERMS for phrase in term.all_phrasings()
}

#: The paper: "only 33 of the 6655 search terms suggested comprise half
#: of the overall suggestions".  These canonical names are the
#: prioritized heavy-hitters listed in §3.4.
HEAVY_HITTERS: frozenset[str] = frozenset(
    {
        "Power outage",
        "Xfinity",
        "Spectrum",
        "Comcast",
        "AT&T",
        "Cox Communications",
        "Verizon",
        "Electric power",
        "T-Mobile",
        "CenturyLink",
    }
)

#: Terms whose annotation marks a spike as power-related (Fig. 6).
POWER_TERMS: frozenset[str] = frozenset({"Power outage", "Electric power"})


def get_term(name: str) -> Term:
    """Look up a topic by canonical name."""
    term = _BY_NAME.get(name)
    if term is None:
        raise UnknownTermError(name)
    return term


def resolve_phrase(phrase: str) -> Term | None:
    """Map a raw query phrase onto its topic, if the catalog knows it."""
    return _BY_PHRASE.get(phrase.strip().lower())


def terms_in_category(category: Category) -> tuple[Term, ...]:
    return tuple(term for term in TERMS if term.category is category)


def is_heavy_hitter(name: str) -> bool:
    return name in HEAVY_HITTERS


def is_power_term(name: str) -> bool:
    return name in POWER_TERMS
