"""Study executors: the strategy for *where* per-geography work runs.

The paper's study is embarrassingly parallel — each geography's
collect → stitch → average → detect chain is independent until area
grouping — so the study driver delegates the per-geography stage to a
pluggable :class:`StudyExecutor`.  Three implementations ship:

* :class:`SerialExecutor` — the classic single-threaded walk;
* :class:`ThreadPoolStudyExecutor` — a bounded thread pool (one GIL,
  good for the I/O-ish crawl, ~1× on the CPU-bound stages);
* :class:`ProcessPoolStudyExecutor` — geography-sharded worker
  *processes*, each rebuilding the seeded deployment and analyzing its
  shard with no shared interpreter (see :mod:`repro.runtime.shard`).

All of them return results **in input order**, whatever order the work
completes in, so a seeded study produces byte-identical results
regardless of worker count or executor kind (the frames themselves are
deterministic per ``(request, sample_round)``; only wall-clock
interleaving varies).

Executor choice threads through :class:`repro.runtime.RuntimeConfig`
(``executor="auto"|"serial"|"thread"|"process"``), the CLI
(``--executor``), and ``/api/runtime``.
"""

from __future__ import annotations

import concurrent.futures
from collections.abc import Callable, Iterable
from typing import TYPE_CHECKING, TypeVar

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.collection.database import CollectionDatabase
    from repro.core.pipeline import Sift, StateResult
    from repro.timeutil import TimeWindow

T = TypeVar("T")
R = TypeVar("R")

#: Executor kinds accepted by :func:`make_executor` (and the CLI).
EXECUTOR_KINDS: tuple[str, ...] = ("auto", "serial", "thread", "process")


def _check_workers(max_workers: int | None) -> None:
    """Negative worker counts raise everywhere, not just in the pools."""
    if max_workers is not None and max_workers < 0:
        raise ConfigurationError(f"max_workers cannot be negative: {max_workers}")


class StudyExecutor:
    """Maps a function over work items, preserving input order."""

    #: Registry-style name surfaced by the CLI and ``/api/runtime``.
    kind: str = "serial"

    #: Upper bound on concurrently-running items (1 = serial).
    max_workers: int = 1

    #: True when the executor drives the whole per-geography stage
    #: itself (sharded across processes) instead of mapping a closure.
    shards_study: bool = False

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        raise NotImplementedError


class SerialExecutor(StudyExecutor):
    """One item at a time, on the calling thread."""

    kind = "serial"

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        return [fn(item) for item in items]


class ThreadPoolStudyExecutor(StudyExecutor):
    """A bounded thread pool; results still come back in input order."""

    kind = "thread"

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ConfigurationError(f"max_workers must be positive: {max_workers}")
        self.max_workers = max_workers

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        work = list(items)
        if len(work) <= 1 or self.max_workers == 1:
            return [fn(item) for item in work]
        workers = min(self.max_workers, len(work))
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="sift-geo"
        ) as pool:
            # Executor.map preserves input order and re-raises the first
            # failure, which is exactly the deterministic contract.
            return list(pool.map(fn, work))


class ProcessPoolStudyExecutor(StudyExecutor):
    """Geography-sharded worker processes with deterministic reassembly.

    The per-geography stage cannot ship closures across a process
    boundary, so this executor does not run ``Sift``'s inline lambda:
    the study driver detects ``shards_study`` and hands the whole stage
    to :meth:`run_sharded_study`, which

    1. serves already-checkpointed geographies from the **parent**
       checkpoint first (zero-refetch resume works across executor
       switches),
    2. deals the remaining geographies round-robin into
       ``max_workers`` shards and runs each shard in its own process
       via the picklable :func:`repro.runtime.shard.run_shard`,
    3. forwards the workers' structured progress events to the parent
       listener through a manager queue as they happen,
    4. gives each shard a private sqlite partition
       (``<db>.shard<k>``) and/or columnar partition
       (``<store>/.shard-<k>``) and merges them into the parent stores
       **in shard order** on finalize, and
    5. reassembles results in input-geography order.

    Every per-geography result is fully determined by the (seeded)
    runtime configuration, so the study is byte-identical to a serial
    run at any worker count.

    The executor must be bound to a runtime via :meth:`configure`
    before it can shard a study (``StudyRuntime`` does this); the plain
    :meth:`map` works standalone for picklable top-level functions.
    """

    kind = "process"
    shards_study = True

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ConfigurationError(f"max_workers must be positive: {max_workers}")
        self.max_workers = max_workers
        self._config = None  # RuntimeConfig template for shard workers
        self._database: CollectionDatabase | None = None
        self._store = None  # parent ColumnarStore, when configured
        #: CrawlStats forwarded by worker processes, accumulated across
        #: runs; the parent's collection layer never sees the workers'
        #: crawls, so ``StudyRuntime.report`` folds these in to keep
        #: lifetime accounting executor-independent.
        self.worker_crawl: list = []

    def configure(self, config, database=None, store=None) -> None:
        """Bind the runtime pieces shard workers are rebuilt from."""
        self._config = config
        self._database = database
        self._store = store

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Order-preserving map over worker processes.

        ``fn`` must be picklable (a top-level function); this is the
        generic contract shared with the other executors, not the study
        fast path (see :meth:`run_sharded_study`).
        """
        from repro.runtime.shard import process_context

        work = list(items)
        if len(work) <= 1 or self.max_workers == 1:
            return [fn(item) for item in work]
        workers = min(self.max_workers, len(work))
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=process_context()
        ) as pool:
            return list(pool.map(fn, work))

    def run_sharded_study(
        self,
        sift: "Sift",
        geos: tuple[str, ...],
        window: "TimeWindow",
    ) -> list[tuple["StateResult", bool]]:
        """Run the per-geography stage of a study, sharded by geography."""
        if self._config is None:
            raise ConfigurationError(
                "ProcessPoolStudyExecutor is not bound to a runtime; "
                "construct it through StudyRuntime (or call configure())"
            )
        from repro.runtime.shard import run_sharded_study

        return run_sharded_study(
            self, sift, geos, window,
            config=self._config,
            database=self._database,
            store=self._store,
        )


def make_executor(
    max_workers: int | None, kind: str = "auto"
) -> StudyExecutor:
    """Build the executor for a worker count and kind.

    ``kind="auto"`` preserves the historical behaviour — serial for
    ``None``/0/1, a thread pool otherwise.  Explicit kinds are strict:
    ``"thread"`` and ``"process"`` require a positive worker count.
    Negative worker counts raise for every kind.
    """
    _check_workers(max_workers)
    if kind not in EXECUTOR_KINDS:
        raise ConfigurationError(
            f"unknown executor kind {kind!r}; choose from {EXECUTOR_KINDS}"
        )
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadPoolStudyExecutor(max_workers or 1)
    if kind == "process":
        return ProcessPoolStudyExecutor(max_workers or 1)
    # auto: serial unless parallelism was asked for
    if max_workers is None or max_workers <= 1:
        return SerialExecutor()
    return ThreadPoolStudyExecutor(max_workers)
