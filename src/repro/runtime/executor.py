"""Study executors: the strategy for *where* per-geography work runs.

The paper's study is embarrassingly parallel — each geography's
collect → stitch → average → detect chain is independent until area
grouping — so the study driver delegates the per-geography stage to a
pluggable :class:`StudyExecutor`.  Two implementations ship:

* :class:`SerialExecutor` — the classic single-threaded walk;
* :class:`ThreadPoolStudyExecutor` — a bounded thread pool.

Both return results **in input order**, whatever order the work
completes in, so a seeded study produces byte-identical results
regardless of worker count (the frames themselves are deterministic
per ``(request, sample_round)``; only wall-clock interleaving varies).
"""

from __future__ import annotations

import concurrent.futures
from collections.abc import Callable, Iterable
from typing import TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")


class StudyExecutor:
    """Maps a function over work items, preserving input order."""

    #: Upper bound on concurrently-running items (1 = serial).
    max_workers: int = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        raise NotImplementedError


class SerialExecutor(StudyExecutor):
    """One item at a time, on the calling thread."""

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        return [fn(item) for item in items]


class ThreadPoolStudyExecutor(StudyExecutor):
    """A bounded thread pool; results still come back in input order."""

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ConfigurationError(f"max_workers must be positive: {max_workers}")
        self.max_workers = max_workers

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        work = list(items)
        if len(work) <= 1 or self.max_workers == 1:
            return [fn(item) for item in work]
        workers = min(self.max_workers, len(work))
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="sift-geo"
        ) as pool:
            # Executor.map preserves input order and re-raises the first
            # failure, which is exactly the deterministic contract.
            return list(pool.map(fn, work))


def make_executor(max_workers: int | None) -> StudyExecutor:
    """Serial for ``None``/1, a thread pool otherwise."""
    if max_workers is None or max_workers <= 1:
        return SerialExecutor()
    return ThreadPoolStudyExecutor(max_workers)
