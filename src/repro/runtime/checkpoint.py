"""Study checkpointing through the collection database.

``run_study`` over 51 geographies is a long crawl; the paper's own
archive-style collection (and any production deployment) must survive
interrupts without recrawling finished work.  The pipeline persists a
per-geography checkpoint — the stitched timeline into the ``series``
table, the detected spikes into the ``spikes`` table, both written in
one transaction as the geography completes — and a resuming study
serves those geographies straight from the database.

The checkpoint is keyed by (term, geo) and stamped with the shared
metadata record of :mod:`repro.store.meta`: the study window, the
averaging diagnostics, and the reconstruction backend
(stitcher/averager registry names plus the stitch report).  A stored
result is only honored when the requested window matches — a database
file can never leak a stale study into a different one — and a
*backend* mismatch refuses loudly
(:class:`repro.errors.CheckpointMismatchError`): silently mixing
timelines produced under different calibration semantics would corrupt
the study, whereas a window mismatch just means the geography
re-analyzes.  Because the metadata record is shared with
:class:`repro.store.ColumnarStore`, checkpoints copy losslessly
between the two formats and a study resumes from either.
"""

from __future__ import annotations

from repro.collection.database import CollectionDatabase
from repro.core.pipeline import StateResult, StudyCheckpoint
from repro.core.reconstruct import DEFAULT_AVERAGER, DEFAULT_STITCHER
from repro.core.spikes import SpikeSet
from repro.store.meta import (
    require_backend,
    restore_state,
    state_meta,
    window_matches,
)
from repro.timeutil import TimeWindow


class DatabaseCheckpoint(StudyCheckpoint):
    """Persists per-geography study results in a collection database."""

    def __init__(
        self,
        database: CollectionDatabase,
        term: str,
        stitcher: str = DEFAULT_STITCHER,
        averager: str = DEFAULT_AVERAGER,
    ) -> None:
        self.database = database
        self.term = term
        #: Backend this study runs with; stored results built by any
        #: other backend are refused on load.
        self.stitcher = stitcher
        self.averager = averager

    def save_state(self, result: StateResult, window: TimeWindow) -> None:
        self.database.store_checkpoint(
            self.term,
            result.geo,
            result.timeline.start,
            result.timeline.values,
            state_meta(result, window),
            list(result.spikes),
        )

    def load_state(self, geo: str, window: TimeWindow) -> StateResult | None:
        meta = self.database.load_series_meta(self.term, geo)
        if meta is None:
            return None
        if not window_matches(meta, window):
            return None
        # Checkpoints written before backends existed are default-backend.
        stitcher, averager = require_backend(
            meta, geo, self.stitcher, self.averager,
            DEFAULT_STITCHER, DEFAULT_AVERAGER,
        )
        series = self.database.load_series(self.term, geo)
        if series is None:
            return None
        start, values = series
        return restore_state(
            term=self.term,
            geo=geo,
            start=start,
            values=values,
            meta=meta,
            spikes=SpikeSet(self.database.load_spikes(term=self.term, geo=geo)),
            stitcher=stitcher,
            averager=averager,
        )

    def save_annotated(self, spikes: SpikeSet) -> None:
        """Overwrite stored spikes with their final annotated versions."""
        self.database.store_spikes(list(spikes))

    def completed_geos(self, window: TimeWindow) -> tuple[str, ...]:
        """Geographies with a checkpoint valid for *window* (sorted)."""
        return tuple(
            geo
            for geo in self.database.series_geos(self.term)
            if self.load_state(geo, window) is not None
        )
